(* faulty-search: command-line front end.

   Subcommands:
     bounds    closed-form competitive ratios and derived quantities
     simulate  synthesize the optimal strategy and verify it empirically
     certify   run the lower-bound certificate against a claimed lambda
     sweep     competitive ratio of the exponential strategy vs its base
     trace     narrate a concrete search run

   Exit-code contract (kept consistent across subcommands, and relied on
   by CI and scripts):
     0  success — the command ran and found nothing adverse
     1  verified failure / finding — the tool worked and the answer is
        "bad": a refuted certificate, a failed verification, invariant
        violations from fuzz, lint findings, a corpus replay mismatch
     2  usage error — bad flags, invalid (m,k,f) instances, instances
        outside the regime a subcommand needs, unreadable inputs
     3  internal error — the runtime itself failed: an uncaught
        exception, a supervised task that exhausted its retries, a
        budget blowout, an I/O failure in the journal/lock layer *)

module FS = Faulty_search
open Cmdliner

let exit_ok = 0
let exit_finding = 1
let exit_usage = 2
let exit_internal = 3

(* ------------------------------------------------------------------ *)
(* common arguments                                                    *)

let m_arg =
  let doc = "Number of rays (the line is m = 2)." in
  Arg.(value & opt int 2 & info [ "m"; "rays" ] ~docv:"M" ~doc)

let k_arg =
  let doc = "Number of robots." in
  Arg.(value & opt int 1 & info [ "k"; "robots" ] ~docv:"K" ~doc)

let f_arg =
  let doc = "Number of (crash-type) faulty robots." in
  Arg.(value & opt int 0 & info [ "f"; "faulty" ] ~docv:"F" ~doc)

let n_arg =
  let doc = "Evaluation horizon: targets range over [1, N]." in
  Arg.(value & opt float 1e4 & info [ "n"; "horizon" ] ~docv:"N" ~doc)

let alpha_arg =
  let doc = "Base of the exponential strategy (default: the optimal one)." in
  Arg.(value & opt (some float) None & info [ "alpha" ] ~docv:"ALPHA" ~doc)

(* File helpers: close on every path, including raising ones, so a
   failed write/parse does not leak the descriptor.  [close_out_noerr]
   in the finally preserves the original exception. *)
let with_out_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_params m k f yield =
  match FS.Params.make ~m ~k ~f with
  | p -> yield p
  | exception FS.Search_error.Error (FS.Search_error.Regime_violation _ as e) ->
      Format.eprintf "invalid parameters: %s@." (FS.Search_error.to_string e);
      exit_usage

(* ------------------------------------------------------------------ *)
(* bounds                                                              *)

let bounds_run m k f =
  with_params m k f @@ fun p ->
  Format.printf "instance:        %a@." FS.Params.pp p;
  Format.printf "regime:          %a@." FS.Params.pp_regime (FS.Params.regime p);
  Format.printf "q = m(f+1):      %d@." (FS.Params.q p);
  Format.printf "s = q - k:       %d@." (FS.Params.s p);
  Format.printf "rho = q/k:       %.6f@." (FS.Params.rho p);
  let bound = FS.Formulas.a_mray ~m ~k ~f in
  Format.printf "A(m,k,f):        %.6f@." bound;
  (match FS.Params.regime p with
  | FS.Params.Searching ->
      Format.printf "optimal alpha:   %.6f@."
        (FS.Formulas.alpha_star ~q:(FS.Params.q p) ~k);
      if m = 2 then
        Format.printf "Byzantine:       B(%d,%d) >= %.6f (crash transfer)@." k f
          (FS.Byzantine.lower_bound ~k ~f)
  | FS.Params.Ratio_one | FS.Params.Unsolvable -> ());
  0

let bounds_cmd =
  let doc = "Closed-form competitive ratios (Theorems 1 and 6)." in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const bounds_run $ m_arg $ k_arg $ f_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_run m k f n alpha =
  with_params m k f @@ fun _p ->
  match FS.Problem.make ~m ~k ~f ~horizon:n () with
  | exception Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit_usage
  | problem -> (
      match FS.Solve.solve ?alpha problem with
      | exception
          FS.Search_error.Error (FS.Search_error.Regime_violation _ as e) ->
          Format.eprintf "unsolvable: %s@." (FS.Search_error.to_string e);
          exit_usage
      | solution ->
          let report = FS.Verify.verify solution in
          Format.printf "%a@." FS.Verify.pp report;
          if FS.Verify.all_ok report then exit_ok else exit_finding)

let simulate_cmd =
  let doc = "Synthesize the optimal strategy and verify it empirically." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(const simulate_run $ m_arg $ k_arg $ f_arg $ n_arg $ alpha_arg)

(* ------------------------------------------------------------------ *)
(* certify                                                             *)

let lambda_arg =
  let doc = "Claimed competitive ratio to test." in
  Arg.(required & opt (some float) None & info [ "lambda" ] ~docv:"L" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel paths (default: the machine's \
     recommended domain count).  Results are identical at any job count."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

let grid_arg =
  let doc =
    "Also certify $(docv) evenly spaced lambda values between the claimed \
     ratio and the theoretical bound, sharded across the domain pool."
  in
  Arg.(value & opt (some int) None & info [ "grid" ] ~docv:"C" ~doc)

let kernel_arg =
  let doc =
    "Inner-loop implementation: $(b,compiled) (flat-array fast path, the \
     default) or $(b,lazy) (the memoised reference path).  The two \
     perform the same float operations in the same order, so all outputs \
     are byte-identical."
  in
  Arg.(
    value
    & opt (enum [ ("compiled", `Compiled); ("lazy", `Lazy) ]) `Compiled
    & info [ "kernel" ] ~docv:"KERNEL" ~doc)

let check_jobs = function
  | Some j when j < 1 ->
      Format.eprintf "--jobs must be at least 1@.";
      false
  | _ -> true

let json_out_arg =
  let doc = "Also write the certificate as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let certify_run m k f n lambda json_out jobs grid kernel =
  with_params m k f @@ fun p ->
  if not (check_jobs jobs) then exit_usage
  else
  match FS.Params.regime p with
  | FS.Params.Ratio_one | FS.Params.Unsolvable ->
      Format.eprintf "certify: instance not in the searching regime@.";
      exit_usage
  | FS.Params.Searching ->
      let problem = FS.Problem.make ~m ~k ~f ~horizon:n () in
      let solution = FS.Solve.solve problem in
      let turns = Option.get (FS.Solve.orc_turns solution) in
      let q = FS.Params.q p in
      let bound = FS.Problem.bound problem in
      (* the λ-grid (the single claimed λ plus any --grid points) is
         refuted point-by-point across the domain pool; verdicts come
         back in input order, so the output does not depend on --jobs *)
      let lambdas =
        lambda
        ::
        (match grid with
        | Some c when c > 0 ->
            FS.Certificate.lambda_grid
              ~lo:(Float.min lambda bound)
              ~hi:(Float.max lambda bound)
              ~count:c
        | _ -> [])
      in
      let verdicts =
        if m = 2 then
          FS.Certificate.check_line_sharded ?jobs ~kernel ~turns ~f ~lambdas
            ~n ()
        else
          FS.Certificate.check_orc_sharded ?jobs ~kernel ~turns ~demand:q
            ~lambdas ~n ()
      in
      let verdict = snd (List.hd verdicts) in
      Format.printf "bound:   %.6f@." bound;
      Format.printf "claimed: %.6f@." lambda;
      Format.printf "verdict: %a@." FS.Certificate.pp_verdict verdict;
      (match List.tl verdicts with
      | [] -> ()
      | grid_verdicts ->
          Format.printf "lambda grid (%d points):@."
            (List.length grid_verdicts);
          List.iter
            (fun (l, v) ->
              Format.printf "  lambda = %.6f: %a@." l
                FS.Certificate.pp_verdict v)
            grid_verdicts);
      (match json_out with
      | Some path ->
          let setting =
            if m = 2 then FS.Assigned.Line_symmetric else FS.Assigned.Orc_setting
          in
          let demand = if m = 2 then FS.Params.s p else q in
          let s =
            FS.Certificate_io.export_string ~pretty:true ~setting ~k ~demand
              ~lambda ~n verdict
          in
          with_out_file path (fun oc ->
              output_string oc s;
              output_char oc '\n');
          Format.printf "certificate written to %s@." path
      | None -> ());
      let lhb =
        FS.Certificate.log_horizon_bound
          (if m = 2 then FS.Assigned.Line_symmetric else FS.Assigned.Orc_setting)
          ~k ~demand:(if m = 2 then FS.Params.s p else q)
          ~lambda ()
      in
      if lhb < infinity then
        Format.printf
          "no strategy can cover beyond ln N = %.3f (N ~ 10^%.1f) at this \
           lambda@."
          lhb
          (lhb /. log 10.);
      (* a refutation of the claimed lambda is a verified finding *)
      (match verdict with
      | FS.Certificate.Refuted_gap _ | FS.Certificate.Refuted_potential _ ->
          exit_finding
      | FS.Certificate.Not_refuted _ | FS.Certificate.Inconclusive _ ->
          exit_ok)

let certify_cmd =
  let doc = "Run the lower-bound certificate against a claimed ratio." in
  Cmd.v
    (Cmd.info "certify" ~doc)
    Term.(
      const certify_run $ m_arg $ k_arg $ f_arg $ n_arg $ lambda_arg
      $ json_out_arg $ jobs_arg $ grid_arg $ kernel_arg)

(* ------------------------------------------------------------------ *)
(* recheck                                                             *)

let cert_file_arg =
  let doc = "Certificate JSON file to re-check." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let recheck_run m k f file =
  with_params m k f @@ fun p ->
  let contents = read_file file in
  match FS.Certificate_io.parse_string contents with
  | Error msg ->
      Format.eprintf "cannot parse certificate: %s@." msg;
      exit_usage
  | Ok parsed -> (
      match FS.Params.regime p with
      | FS.Params.Ratio_one | FS.Params.Unsolvable ->
          Format.eprintf "recheck: instance not in the searching regime@.";
          exit_usage
      | FS.Params.Searching -> (
          let strat = FS.Mray_exponential.make p in
          let turns = FS.Orc_cover.of_mray_group strat in
          match FS.Certificate_io.recheck parsed ~turns with
          | Ok () ->
              Format.printf "certificate CONFIRMED against the (m=%d,k=%d,f=%d) \
                             optimal strategy@." m k f;
              exit_ok
          | Error msg ->
              Format.printf "certificate MISMATCH: %s@." msg;
              exit_finding))

let recheck_cmd =
  let doc =
    "Re-derive a JSON certificate (from 'certify --json') against the \
     instance's optimal strategy and confirm the recorded verdict."
  in
  Cmd.v
    (Cmd.info "recheck" ~doc)
    Term.(const recheck_run $ m_arg $ k_arg $ f_arg $ cert_file_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let samples_arg =
  let doc = "Number of sample points." in
  Arg.(value & opt int 9 & info [ "samples" ] ~docv:"S" ~doc)

(* --- supervised-runtime flags, shared by sweep and fuzz ------------- *)

let chaos_seed_arg =
  let doc =
    "Enable deterministic fault injection with this seed.  The faults \
     are a pure function of (seed, task key): the same seed injects the \
     same faults at any $(b,--jobs) and on every rerun."
  in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let retries_arg =
  let doc =
    "Retry budget per task (total attempts = $(docv) + 1).  With \
     $(docv) at or above the chaos mode's worst case (2 faults per \
     task), a chaos run's output is byte-identical to a fault-free one."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"R" ~doc)

let checkpoint_arg =
  let doc =
    "Checkpoint/resume journal directory.  Completed tasks are recorded \
     as they land; a rerun with the same configuration resumes instead \
     of restarting, and the journal is deleted when the run completes."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let chaos_of = function
  | None -> FS.Chaos.disabled
  | Some seed -> FS.Chaos.make ~seed ()

let retry_of retries =
  if retries <= 0 then FS.Retry.none
  else FS.Retry.immediate ~attempts:(retries + 1)

let sweep_out_arg =
  let doc = "Write the results table to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let chunk_arg =
  let doc =
    "Grid cells dispatched per pool task.  Chunking amortises dispatch \
     overhead on cheap cells; the table is byte-identical at any chunk \
     size (and any $(b,--jobs))."
  in
  Arg.(value & opt int 4 & info [ "chunk" ] ~docv:"C" ~doc)

(* Checkpoint codec for one sweep row: [None] (sample below the alpha
   floor) is JSON null, [Some cells] is a list of strings. *)
let row_to_json = function
  | None -> FS.Json.Null
  | Some cells -> FS.Json.List (List.map (fun c -> FS.Json.String c) cells)

let row_of_json = function
  | FS.Json.Null -> Ok None
  | FS.Json.List items -> (
      let cells = List.filter_map FS.Json.to_string_value items in
      if List.length cells = List.length items then Ok (Some cells)
      else Error "sweep: malformed journalled row")
  | _ -> Error "sweep: expected null or a cell list"

let sweep_run m k f n samples jobs chaos_seed retries checkpoint out kernel
    chunk =
  with_params m k f @@ fun p ->
  if not (check_jobs jobs) then exit_usage
  else if samples < 2 then begin
    Format.eprintf "sweep: need --samples >= 2@.";
    exit_usage
  end
  else if chunk < 1 then begin
    Format.eprintf "sweep: need --chunk >= 1@.";
    exit_usage
  end
  else
  match FS.Params.regime p with
  | FS.Params.Ratio_one | FS.Params.Unsolvable ->
      Format.eprintf "sweep: instance not in the searching regime@.";
      exit_usage
  | FS.Params.Searching ->
      let q = FS.Params.q p in
      let a_star = FS.Formulas.alpha_star ~q ~k in
      let tbl =
        FS.Table.create
          ~title:
            (Format.asprintf "ratio vs alpha for %a (alpha* = %.6f)"
               FS.Params.pp p a_star)
          [ ("alpha", FS.Table.Right); ("predicted", FS.Table.Right);
            ("simulated", FS.Table.Right) ]
      in
      let persist =
        Option.map
          (fun dir ->
            let config =
              FS.Json.Assoc
                [
                  ("run", FS.Json.String "sweep");
                  ("m", FS.Json.Number (float_of_int m));
                  ("k", FS.Json.Number (float_of_int k));
                  ("f", FS.Json.Number (float_of_int f));
                  ("n", FS.Json.Number n);
                  ("samples", FS.Json.Number (float_of_int samples));
                ]
            in
            {
              FS.Supervise.journal = FS.Journal.open_ ~dir ~config;
              encode = row_to_json;
              decode = row_of_json;
            })
          checkpoint
      in
      let spec =
        {
          FS.Supervise.default with
          chaos = chaos_of chaos_seed;
          retry = retry_of retries;
        }
      in
      (* each sample point synthesizes and attacks its own strategy, so the
         rows shard across the pool; they are re-assembled in input order
         and the table is printed sequentially — same bytes at any --jobs.
         A failing cell degrades to a marked error row instead of aborting
         the table, and the command exits 3. *)
      let rows =
        FS.Pool.with_pool ?jobs @@ fun pool ->
        FS.Supervise.map pool ~spec ?persist ~chunk
          ~task:(fun i _ -> Printf.sprintf "sweep/alpha-%d" i)
          ~f:(fun _meter i ->
            let t = float_of_int i /. float_of_int (samples - 1) in
            let alpha = a_star *. (0.7 +. (0.8 *. t)) in
            if alpha > 1.001 then begin
              let problem = FS.Problem.make ~m ~k ~f ~horizon:n () in
              let solution = FS.Solve.solve ~alpha problem in
              let outcome =
                FS.Adversary.worst_case
                  (FS.Solve.trajectories solution)
                  ~f ~kernel ~n ()
              in
              Some
                [
                  FS.Table.cell_f ~decimals:4 alpha;
                  FS.Table.cell_f ~decimals:4 solution.FS.Solve.designed_ratio;
                  FS.Table.cell_f ~decimals:4 outcome.FS.Adversary.ratio;
                ]
            end
            else None)
          (List.init samples Fun.id)
      in
      Option.iter (fun pr -> FS.Journal.finish pr.FS.Supervise.journal) persist;
      let failed = ref 0 in
      List.iter
        (function
          | Ok row -> Option.iter (FS.Table.add_row tbl) row
          | Error err ->
              incr failed;
              Format.eprintf "sweep: %a@." FS.Search_error.pp err;
              FS.Table.add_row tbl
                [ "!ERR " ^ FS.Search_error.tag err; "-"; "-" ])
        rows;
      let text = FS.Table.render tbl in
      (match out with
      | None -> print_string text
      | Some file ->
          let oc = open_out_bin file in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc text);
          Format.printf "sweep table written to %s@." file);
      if !failed = 0 then exit_ok else exit_internal

let sweep_cmd =
  let doc = "Ratio of the exponential strategy as a function of its base." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const sweep_run $ m_arg $ k_arg $ f_arg $ n_arg $ samples_arg $ jobs_arg
      $ chaos_seed_arg $ retries_arg $ checkpoint_arg $ sweep_out_arg
      $ kernel_arg $ chunk_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let target_arg =
  let doc = "Target distance (placed on ray 0)." in
  Arg.(value & opt float 42. & info [ "target" ] ~docv:"X" ~doc)

let trace_run m k f target =
  with_params m k f @@ fun p ->
  match FS.Params.regime p with
  | FS.Params.Unsolvable ->
      Format.eprintf "trace: unsolvable instance@.";
      exit_usage
  | FS.Params.Ratio_one | FS.Params.Searching ->
      let problem = FS.Problem.make ~m ~k ~f ~horizon:(4. *. target) () in
      let solution = FS.Solve.solve problem in
      let trajectories = FS.Solve.trajectories solution in
      let world = FS.World.rays m in
      let point = FS.World.point world ~ray:0 ~dist:target in
      let horizon = 2. *. FS.Problem.bound problem *. target in
      let first_visits =
        FS.Engine.first_visits trajectories ~target:point ~horizon
      in
      let assignment =
        FS.Fault.worst_for_visits FS.Fault.Crash ~first_visits ~f
      in
      FS.Event_log.print
        (FS.Event_log.narrate_crash ~min_turn_depth:(target /. 100.)
           trajectories ~assignment ~target:point ~horizon);
      0

let trace_cmd =
  let doc = "Narrate a search run against the worst-case fault assignment." in
  Cmd.v
    (Cmd.info "trace" ~doc)
    Term.(const trace_run $ m_arg $ k_arg $ f_arg $ target_arg)

(* ------------------------------------------------------------------ *)
(* phase                                                               *)

let phase_run m =
  if m < 2 then begin
    Format.eprintf "phase: need m >= 2@.";
    exit_usage
  end
  else begin
    let tbl =
      FS.Table.create
        ~title:(Printf.sprintf "regimes and ratios for m = %d" m)
        ([ ("k \\ f", FS.Table.Right) ]
        @ List.map (fun f -> (Printf.sprintf "f=%d" f, FS.Table.Right))
            [ 0; 1; 2; 3 ])
    in
    for k = 1 to 10 do
      let row =
        string_of_int k
        :: List.map
             (fun f ->
               if f > k then "-"
               else
                 match FS.Params.regime (FS.Params.make ~m ~k ~f) with
                 | FS.Params.Unsolvable -> "x"
                 | FS.Params.Ratio_one -> "1"
                 | FS.Params.Searching ->
                     FS.Table.cell_f ~decimals:3 (FS.Formulas.a_mray ~m ~k ~f))
             [ 0; 1; 2; 3 ]
      in
      FS.Table.add_row tbl row
    done;
    FS.Table.print tbl;
    0
  end

let phase_cmd =
  let doc = "Regime table (unsolvable / ratio-one / searching) for m rays." in
  Cmd.v (Cmd.info "phase" ~doc) Term.(const phase_run $ m_arg)

(* ------------------------------------------------------------------ *)
(* fractional                                                          *)

let eta_arg =
  let doc = "Covering weight eta (> 1)." in
  Arg.(value & opt float 2.0 & info [ "eta" ] ~docv:"ETA" ~doc)

let fractional_run eta =
  if eta <= 1. then begin
    Format.eprintf "fractional: need eta > 1@.";
    exit_usage
  end
  else begin
    Format.printf "C(%g) = %.6f@." eta (FS.Fractional.c_eta eta);
    let tbl =
      FS.Table.create
        [
          ("q_i/k_i", FS.Table.Left); ("lambda0(q_i,k_i)", FS.Table.Right);
          ("excess", FS.Table.Right);
        ]
    in
    List.iter
      (fun (r, v) ->
        FS.Table.add_row tbl
          [
            Format.asprintf "%a" FS.Rational.pp r;
            FS.Table.cell_f ~decimals:6 v;
            FS.Table.cell_f ~decimals:6 (v -. FS.Fractional.c_eta eta);
          ])
      (FS.Fractional.upper_approximations ~eta ~count:8);
    FS.Table.print tbl;
    0
  end

let fractional_cmd =
  let doc = "The fractional relaxation C(eta) and its rational approximants." in
  Cmd.v (Cmd.info "fractional" ~doc) Term.(const fractional_run $ eta_arg)

(* ------------------------------------------------------------------ *)
(* random (the KRT randomized cow path)                                *)

let random_run () =
  let beta = FS.Randomized.optimal_beta () in
  Format.printf "optimal beta: %.6f (root of b ln b = b + 1)@." beta;
  Format.printf "expected competitive ratio: %.6f (deterministic: 9)@."
    (FS.Randomized.optimal_ratio ());
  Format.printf "quadrature check at x = 1000: %.6f@."
    (FS.Randomized.expected_ratio_exact ~beta ~x:1000. ~grid:2000);
  0

let random_cmd =
  let doc = "The optimal randomized single-robot line search (Kao-Reif-Tate)." in
  Cmd.v (Cmd.info "random" ~doc) Term.(const random_run $ const ())

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let budget_arg =
  let doc = "Target competitive ratio." in
  Arg.(value & opt float 6.0 & info [ "budget" ] ~docv:"L" ~doc)

let max_f_arg =
  let doc = "Largest fault count to tabulate." in
  Arg.(value & opt int 4 & info [ "max-f" ] ~docv:"F" ~doc)

let plan_run m budget max_f =
  if m < 2 then begin
    Format.eprintf "plan: need m >= 2@.";
    exit_usage
  end
  else begin
    Format.printf "fleets achieving ratio <= %g on %d rays:@." budget m;
    if budget >= 3. then
      Format.printf "(continuous frontier: rho = m(f+1)/k <= %.6f)@.@."
        (FS.Planning.rho_for_lambda ~lambda:budget);
    let tbl =
      FS.Table.create
        [
          ("f", FS.Table.Right); ("min robots k", FS.Table.Right);
          ("achieved ratio", FS.Table.Right);
        ]
    in
    List.iter
      (fun { FS.Planning.k; f; ratio } ->
        FS.Table.add_row tbl
          [
            FS.Table.cell_i f; FS.Table.cell_i k;
            FS.Table.cell_f ~decimals:6 ratio;
          ])
      (FS.Planning.cheapest_fleets ~m ~lambda:budget ~max_f);
    FS.Table.print tbl;
    0
  end

let plan_cmd =
  let doc = "Smallest fleets achieving a target ratio (inverse of Theorem 6)." in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const plan_run $ m_arg $ budget_arg $ max_f_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

let out_arg =
  let doc = "Write the markdown report to $(docv) ('-' for stdout)." in
  Arg.(value & opt string "-" & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let report_run m k f n out =
  with_params m k f @@ fun _p ->
  match FS.Problem.make ~m ~k ~f ~horizon:n () with
  | exception Invalid_argument msg ->
      Format.eprintf "%s@." msg;
      exit_usage
  | problem -> (
      match FS.Report.build problem with
      | exception
          FS.Search_error.Error (FS.Search_error.Regime_violation _ as e) ->
          Format.eprintf "unsolvable: %s@." (FS.Search_error.to_string e);
          exit_usage
      | report ->
          let md = FS.Report.to_markdown report in
          if out = "-" then print_string md
          else begin
            with_out_file out (fun oc -> output_string oc md);
            Format.printf "report written to %s@." out
          end;
          exit_ok)

let report_cmd =
  let doc = "Full markdown report for one instance (bounds, simulation, \
             exact supremum, covering, certificate)." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(const report_run $ m_arg $ k_arg $ f_arg $ n_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let seed_arg =
  let doc = "Seed of the deterministic case stream." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let cases_arg =
  let doc = "Number of random cases to generate and check." in
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc)

let replay_arg =
  let doc =
    "Replay corpus entries instead of fuzzing: $(docv) is a JSON case \
     file or a directory of them (e.g. test/corpus)."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PATH" ~doc)

let corpus_dir_arg =
  let doc =
    "Write each failing case (shrunk) into $(docv) as a replayable JSON \
     corpus entry."
  in
  Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR" ~doc)

let fuzz_replay path =
  let entries =
    if Sys.is_directory path then FS.Check.Corpus.files ~dir:path
    else [ path ]
  in
  if entries = [] then begin
    Format.eprintf "no corpus entries under %s@." path;
    exit_usage
  end
  else begin
    let failed = ref 0 in
    List.iter
      (fun file ->
        match FS.Check.Corpus.replay_file file with
        | Ok () -> Format.printf "replay %s: OK@." file
        | Error msg ->
            incr failed;
            Format.printf "replay %s: FAIL %s@." file msg)
      entries;
    Format.printf "replayed %d entr%s, %d failing@." (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      !failed;
    if !failed = 0 then exit_ok else exit_finding
  end

let fuzz_run seed cases jobs replay corpus_dir chaos_seed retries checkpoint =
  if not (check_jobs jobs) then exit_usage
  else
    match replay with
    | Some path -> fuzz_replay path
    | None ->
        let outcome =
          FS.Check.Fuzz.run ?jobs ~chaos:(chaos_of chaos_seed)
            ~retry:(retry_of retries) ?journal_dir:checkpoint ~seed ~cases ()
        in
        (* the report carries no timing or job count: identical bytes at
           any --jobs and across runs (and, with enough retries, under
           chaos) *)
        print_string (FS.Check.Fuzz.report outcome);
        (match corpus_dir with
        | Some dir when outcome.FS.Check.Fuzz.failures <> [] ->
            List.iter
              (Format.printf "corpus entry written to %s@.")
              (FS.Check.Fuzz.save_failures ~dir outcome)
        | _ -> ());
        if outcome.FS.Check.Fuzz.failures = [] then exit_ok else exit_finding

let fuzz_cmd =
  let doc =
    "Property-based fuzzing: random cases through the invariant \
     catalogue, with shrinking and corpus replay."
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz_run $ seed_arg $ cases_arg $ jobs_arg $ replay_arg
      $ corpus_dir_arg $ chaos_seed_arg $ retries_arg $ checkpoint_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

let root_arg =
  let doc = "Project root to lint (must contain lib/, bin/, ...)." in
  Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR" ~doc)

let format_arg =
  let doc = "Output format: $(b,text), $(b,json) or $(b,github) (GitHub \
             Actions ::error annotations)." in
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("github", `Github) ]) `Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let rules_arg =
  let doc =
    "Comma-separated rule ids to run (default: all).  Use \
     $(b,--rules list) to print the registry."
  in
  Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"RULES" ~doc)

let deep_arg =
  let doc =
    "Also run the typed interprocedural analyses (nondeterminism taint, \
     static race/lockset, mutex-order cycles) over the .cmt artefacts \
     dune emitted for the tree.  Build first: $(b,dune build @all)."
  in
  Arg.(value & flag & info [ "deep" ] ~doc)

let hotpath_arg =
  let doc =
    "Also run the hot-path performance analyses over the .cmt artefacts: \
     allocation budgets for [@hot] roots (checked against lint.budget) \
     and blocking-call detection from [@event_loop] select loops.  \
     Build first: $(b,dune build @all)."
  in
  Arg.(value & flag & info [ "hotpath" ] ~doc)

let escape_arg =
  let doc =
    "Also run the escape analyses over the .cmt artefacts: exception \
     flow out of public boundaries, resource-release discipline on \
     acquisition sites, and real-I/O hygiene of the simulation seam.  \
     Build first: $(b,dune build @all)."
  in
  Arg.(value & flag & info [ "escape" ] ~doc)

let strict_arg =
  let doc =
    "Fail (exit 1) when lint.allow or lint.budget contains stale \
     entries — audited exceptions that no longer match any finding or \
     [@hot] root."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

(* Exit codes follow the CLI-wide contract: 0 clean, 1 verified finding
   (or, under --strict, a stale allowlist/budget entry), 2 usage, 3
   internal (the tree itself could not be parsed/loaded). *)
let lint_run root format rules deep hotpath escape strict jobs =
  if not (check_jobs jobs) then exit_usage
  else
    let module A = FS.Analysis in
    match rules with
    | Some "list" ->
        List.iter
          (fun e ->
            Format.printf "%-24s %-9s %s%s@." e.A.Catalogue.id
              (A.Catalogue.family_to_string e.A.Catalogue.family)
              e.A.Catalogue.doc
              (match A.Catalogue.family_flag e.A.Catalogue.family with
              | Some flag -> Printf.sprintf " (under %s)" flag
              | None -> ""))
          A.Catalogue.all;
        0
    | _ -> (
        let rules = Option.map (String.split_on_char ',') rules in
        match
          let ( let* ) = Result.bind in
          let* allow = A.Driver.load_allow ~root in
          let* budget = A.Driver.load_budget ~root in
          Ok (allow, budget)
        with
        | Error msg ->
            Format.eprintf "lint: %s@." msg;
            exit_usage
        | Ok (allow, budget) -> (
            match
              A.Driver.run ?jobs ?rules ~deep ~hotpath ~escape ~allow ~budget
                ~root ()
            with
            | exception Invalid_argument msg ->
                Format.eprintf "lint: %s@." msg;
                exit_usage
            | outcome ->
                print_string
                  (match format with
                  | `Text -> A.Driver.render_text outcome
                  | `Json -> A.Driver.render_json outcome
                  | `Github -> A.Driver.render_github outcome);
                A.Driver.exit_code ~strict outcome))

let lint_cmd =
  let doc =
    "Determinism & numeric-safety lint over lib/, bin/, bench/ and test/ \
     (exit 1 on any finding not suppressed by lint.allow; with --deep, \
     also the typed interprocedural analyses; with --hotpath, the \
     hot-path allocation/blocking analyses; with --escape, the \
     exception-flow/leak/sim-hygiene analyses)."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const lint_run $ root_arg $ format_arg $ rules_arg $ deep_arg
      $ hotpath_arg $ escape_arg $ strict_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(
    value
    & opt string "/tmp/faulty-search.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_cap_arg =
  let doc =
    "Pending-request bound.  Requests arriving while the queue holds \
     $(docv) entries are answered with an explicit 'overloaded' response \
     instead of queueing without limit."
  in
  Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)

let batch_cap_arg =
  let doc = "Maximum requests dispatched onto the pool per cycle." in
  Arg.(value & opt int 32 & info [ "batch-cap" ] ~docv:"N" ~doc)

let cache_cap_arg =
  let doc =
    "Entry bound of the shared bound cache (LRU eviction beyond it; \
     hit/miss/eviction counters via the 'stats' request)."
  in
  Arg.(value & opt int 256 & info [ "cache-cap" ] ~docv:"N" ~doc)

let serve_run socket jobs queue_cap batch_cap cache_cap chaos_seed retries =
  if not (check_jobs jobs) then exit_usage
  else if queue_cap < 1 || batch_cap < 1 || cache_cap < 1 then begin
    Format.eprintf "serve: --queue-cap, --batch-cap and --cache-cap must be \
                    at least 1@.";
    exit_usage
  end
  else begin
    (* SIGTERM/SIGINT flip the stop flag; the event loop polls it every
       select timeout and tears down cleanly — socket file removed,
       exit 0 (the contract the CI smoke job asserts) *)
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    let spec =
      {
        FS.Supervise.default with
        chaos = chaos_of chaos_seed;
        retry = retry_of retries;
      }
    in
    FS.Pool.with_pool ?jobs @@ fun pool ->
    let dispatch =
      Search_serve.Dispatch.create ~pool ~cache_capacity:cache_cap ~spec ()
    in
    let config =
      Search_serve.Server.config ~queue_cap ~batch_cap
        ~log:(fun msg -> Format.printf "serve: %s@." msg)
        ~socket_path:socket ()
    in
    match Search_serve.Server.run config ~dispatch ~stop with
    | () -> exit_ok
    | exception FS.Search_error.Error err ->
        Format.eprintf "serve: %a@." FS.Search_error.pp err;
        exit_internal
  end

let serve_cmd =
  let doc =
    "Long-lived daemon: bound queries, certificates, sweeps and \
     Monte-Carlo simulations over a Unix-domain socket (length-prefixed \
     JSON; see DESIGN.md for the wire protocol).  Requests batch onto \
     the domain pool; responses are byte-identical at any $(b,--jobs)."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ socket_arg $ jobs_arg $ queue_cap_arg $ batch_cap_arg
      $ cache_cap_arg $ chaos_seed_arg $ retries_arg)

(* ------------------------------------------------------------------ *)
(* dst                                                                 *)

module Dst = Search_dst.Harness

let dst_seed_arg =
  let doc = "Schedule seed of the first simulated run." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let dst_seeds_arg =
  let doc =
    "Schedule-search width: run seeds SEED, SEED+1, ... until one \
     violates an invariant or $(docv) runs stay clean."
  in
  Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc)

let dst_clients_arg =
  let doc = "Simulated client fleet size." in
  Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc)

let dst_requests_arg =
  let doc = "Requests per simulated client." in
  Arg.(value & opt int 6 & info [ "requests" ] ~docv:"N" ~doc)

let dst_faults_arg =
  let doc =
    "Enable network faults: chunk reordering, drops (connection resets) \
     and scheduled peer crashes, all drawn from the run's split PRNG."
  in
  Arg.(value & flag & info [ "faults" ] ~doc)

let dst_light_arg =
  let doc = "Restrict the workload mix to cheap operations." in
  Arg.(value & flag & info [ "light" ] ~doc)

let dst_queue_cap_arg =
  let doc = "Backlog bound of the simulated daemon (small by default so \
             overload paths are exercised)." in
  Arg.(value & opt int 8 & info [ "queue-cap" ] ~docv:"N" ~doc)

let dst_inject_arg =
  let doc =
    Printf.sprintf
      "Inject a known server bug to validate the oracles; $(docv) is one \
       of: %s."
      (String.concat ", " Dst.injections)
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"BUG" ~doc)

let dst_replay_arg =
  let doc =
    "Replay corpus entries instead of searching: $(docv) is a \
     dst-scenario JSON file or a directory of them (e.g. \
     test/corpus/dst)."
  in
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PATH" ~doc)

let dst_corpus_dir_arg =
  let doc =
    "After shrinking a failing run, write it into $(docv) as a \
     replayable JSON corpus entry."
  in
  Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR" ~doc)

let dst_trace_arg =
  let doc =
    "Write the virtual-time event trace of the (first) run to $(docv) — \
     byte-identical across reruns of the same scenario; '-' for stdout."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let dst_write_trace trace = function
  | None -> ()
  | Some "-" -> print_string trace
  | Some file ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc trace)

let dst_replay path =
  let entries =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  if entries = [] then begin
    Format.eprintf "no corpus entries under %s@." path;
    exit_usage
  end
  else begin
    let failed = ref 0 in
    List.iter
      (fun file ->
        match Dst.replay_file file with
        | Ok o ->
            Format.printf "replay %s: OK (%s)@." file
              (if Dst.failing o then "violates, as recorded"
               else "clean, as recorded")
        | Error msg ->
            incr failed;
            Format.printf "replay %s: FAIL %s@." file msg)
      entries;
    Format.printf "replayed %d entr%s, %d failing@." (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      !failed;
    if !failed = 0 then exit_ok else exit_finding
  end

let dst_run seed seeds clients requests faults jobs light queue_cap inject
    replay corpus_dir trace_out =
  if not (check_jobs jobs) then exit_usage
  else
    match replay with
    | Some path -> dst_replay path
    | None -> (
        match
          Dst.scenario ~seed ~clients ~requests ~faults
            ?jobs ~light ~queue_cap ?inject ()
        with
        | exception FS.Search_error.Error err ->
            Format.eprintf "dst: %a@." FS.Search_error.pp err;
            exit_usage
        | sc -> (
            match Dst.search sc ~seeds with
            | `Clean n ->
                (* re-run the base seed for the trace so --trace-out is
                   useful on clean searches too *)
                let o = Dst.run sc in
                dst_write_trace o.Dst.trace trace_out;
                Format.printf
                  "dst: %d seed%s clean (served %d, overload give-ups %d, \
                   conn errors %d, digest %s)@."
                  n
                  (if n = 1 then "" else "s")
                  o.Dst.served o.Dst.overloaded_gaveup o.Dst.conn_errors
                  o.Dst.digest;
                exit_ok
            | `Found (o, tried) ->
                dst_write_trace o.Dst.trace trace_out;
                Format.printf "dst: seed %d violates after %d seed%s:@."
                  o.Dst.scenario.Dst.seed tried
                  (if tried = 1 then "" else "s");
                List.iter (Format.printf "  %s@.") o.Dst.violations;
                let shrunk = Dst.shrink o in
                let ssc = shrunk.Dst.scenario in
                Format.printf
                  "dst: shrunk to seed %d, %d client%s x %d request%s%s%s@."
                  ssc.Dst.seed ssc.Dst.clients
                  (if ssc.Dst.clients = 1 then "" else "s")
                  ssc.Dst.requests
                  (if ssc.Dst.requests = 1 then "" else "s")
                  (if ssc.Dst.faults then ", faults" else "")
                  (if ssc.Dst.light then ", light" else "");
                (match corpus_dir with
                | None -> ()
                | Some dir ->
                    Format.printf "corpus entry written to %s@."
                      (Dst.corpus_write ~dir shrunk));
                exit_finding))

let dst_cmd =
  let doc =
    "Deterministic whole-system simulation: the real daemon, simulated \
     clients and a seeded fault plan inside one discrete-event \
     scheduler.  A run is a pure function of the scenario (seed, fleet, \
     mix, faults); failing seeds replay exactly and shrink to minimal \
     corpus entries."
  in
  Cmd.v
    (Cmd.info "dst" ~doc)
    Term.(
      const dst_run $ dst_seed_arg $ dst_seeds_arg $ dst_clients_arg
      $ dst_requests_arg $ dst_faults_arg $ jobs_arg $ dst_light_arg
      $ dst_queue_cap_arg $ dst_inject_arg $ dst_replay_arg
      $ dst_corpus_dir_arg $ dst_trace_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "parallel search on m rays with faulty robots (PODC 2018)" in
  let info = Cmd.info "faulty-search" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      bounds_cmd; simulate_cmd; certify_cmd; recheck_cmd; sweep_cmd; trace_cmd;
      phase_cmd; fractional_cmd; random_cmd; report_cmd; plan_cmd; fuzz_cmd;
      lint_cmd; serve_cmd; dst_cmd;
    ]

(* Map cmdliner's evaluation onto the exit-code contract in the header:
   parse/term errors are usage (2); an escaping exception — including a
   [Search_error] no subcommand translated — is an internal error (3). *)
(* whole-system invariants hook into the fuzz catalogue at startup (the
   registry breaks the dst -> serve -> core -> check dependency cycle);
   the escape self-lint rides the same hook so `fuzz` runs also guard
   the tree's exception/resource/sim-hygiene discipline *)
let () = Dst.register_invariant ()
let () = FS.Check.Invariant.register_escape_invariant ()

let () =
  exit
    (match Cmd.eval_value ~catch:false main_cmd with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> exit_ok
    | Error (`Parse | `Term) -> exit_usage
    | Error `Exn -> exit_internal
    | exception FS.Search_error.Error err ->
        Format.eprintf "faulty-search: %a@." FS.Search_error.pp err;
        exit_internal
    | exception e ->
        Format.eprintf "faulty-search: uncaught exception: %s@."
          (Printexc.to_string e);
        exit_internal)
