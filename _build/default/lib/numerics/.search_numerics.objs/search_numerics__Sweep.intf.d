lib/numerics/sweep.mli: Interval1
