lib/numerics/rational.mli: Format
