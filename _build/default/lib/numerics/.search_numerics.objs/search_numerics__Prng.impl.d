lib/numerics/prng.ml: Int64
