lib/numerics/kahan.mli:
