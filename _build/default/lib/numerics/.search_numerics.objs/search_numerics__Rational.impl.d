lib/numerics/rational.ml: Float Format List Stdlib
