lib/numerics/table.mli:
