lib/numerics/minimize.mli:
