lib/numerics/interval1.mli: Format
