lib/numerics/lazy_seq.mli:
