lib/numerics/csv_out.ml: Buffer Filename Fun List Printf String Sys
