lib/numerics/xfloat.mli: Format
