lib/numerics/prng.mli:
