lib/numerics/root.mli:
