lib/numerics/csv_out.mli:
