lib/numerics/stats.ml: Float
