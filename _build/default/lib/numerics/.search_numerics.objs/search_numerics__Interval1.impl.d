lib/numerics/interval1.ml: Float Format Int
