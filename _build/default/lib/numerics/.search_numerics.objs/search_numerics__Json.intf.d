lib/numerics/json.mli:
