lib/numerics/sweep.ml: Float Interval1 List
