lib/numerics/root.ml: Float Printf
