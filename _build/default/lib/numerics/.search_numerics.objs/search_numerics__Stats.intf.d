lib/numerics/stats.mli:
