lib/numerics/xfloat.ml: Float Format List Printf
