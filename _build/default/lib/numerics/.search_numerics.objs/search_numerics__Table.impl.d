lib/numerics/table.ml: Array Buffer Float List Printf String
