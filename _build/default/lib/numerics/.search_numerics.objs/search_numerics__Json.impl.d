lib/numerics/json.ml: Buffer Char Float List Printf String
