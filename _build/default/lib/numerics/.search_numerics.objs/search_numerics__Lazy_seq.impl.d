lib/numerics/lazy_seq.ml: Array Hashtbl Kahan List
