(** One-dimensional intervals on the real line.

    The paper manipulates two interval shapes: the closed λ-cover intervals
    [[t'', t]] produced by a robot's round, and the half-open {e assigned}
    intervals [(t', t]] obtained after the truncation step of the proofs
    ("by truncating some of the intervals … to half-open intervals").  Both
    are represented here with an explicit left-end kind so that coverage
    counting at shared endpoints is exact. *)

type bound_kind = Closed | Open

type t = private {
  lo : float;
  lo_kind : bound_kind;  (** [Closed] for [[lo, …]], [Open] for [(lo, …]] *)
  hi : float;  (** the right end is always closed: […, hi] *)
}

val closed : float -> float -> t
(** [closed lo hi] is [[lo, hi]].  Requires [lo <= hi]. *)

val left_open : float -> float -> t
(** [left_open lo hi] is [(lo, hi]].  Requires [lo < hi]. *)

val make : bound_kind -> float -> float -> t
(** General constructor; validates as above. *)

val mem : float -> t -> bool
(** Membership respecting the left-end kind. *)

val length : t -> float
val is_empty : t -> bool
(** A closed interval is never empty; a half-open one of zero length is. *)

val intersects : t -> t -> bool
(** Whether the two intervals share at least one point. *)

val subset : t -> t -> bool
(** [subset a b] — every point of [a] lies in [b]. *)

val truncate_left : t -> float -> t option
(** [truncate_left iv x] replaces the left end by an open bound at [x]
    (keeping the original bound if it is already to the right of [x]);
    [None] if nothing remains.  This is exactly the proof's truncation
    [[t'', t] ↦ (t', t]] with [t' >= t'']. *)

val compare_by_left : t -> t -> int
(** Sort order used to build prefixes: by left endpoint, an open bound at x
    sorting {e after} a closed bound at x; ties broken by right endpoint. *)

val pp : Format.formatter -> t -> unit
