type t = { state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let make ~seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  let state = Int64.add t.state golden_gamma in
  (mix state, { state })

let float t =
  let v, t = next_int64 t in
  (* take the top 53 bits *)
  let bits = Int64.shift_right_logical v 11 in
  (Int64.to_float bits *. (1. /. 9007199254740992.), t)

let float_range ~lo ~hi t =
  if lo >= hi then invalid_arg "Prng.float_range: need lo < hi";
  let u, t = float t in
  (lo +. (u *. (hi -. lo)), t)

let bool t =
  let v, t = next_int64 t in
  (Int64.logand v 1L = 1L, t)

let int ~bound t =
  if bound <= 0 then invalid_arg "Prng.int: need bound > 0";
  let u, t = float t in
  let v = int_of_float (u *. float_of_int bound) in
  (min v (bound - 1), t)

let split t =
  let a, t = next_int64 t in
  let b, _ = next_int64 t in
  ({ state = a }, { state = mix b })
