let inv_phi = (sqrt 5. -. 1.) /. 2. (* 1/φ ≈ 0.618 *)

let golden ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  assert (lo <= hi);
  let rec loop a b c d fc fd iter =
    let scale = Float.max 1. (Float.abs ((a +. b) /. 2.)) in
    if b -. a <= tol *. scale || iter >= max_iter then
      let x = 0.5 *. (a +. b) in
      (x, f x)
    else if fc < fd then
      (* minimum in [a, d]: the old c becomes the new d *)
      let c' = d -. (inv_phi *. (d -. a)) in
      loop a d c' c (f c') fc (iter + 1)
    else
      (* minimum in [c, b]: the old d becomes the new c *)
      let d' = c +. (inv_phi *. (b -. c)) in
      loop c b d d' fd (f d') (iter + 1)
  in
  let c = hi -. (inv_phi *. (hi -. lo)) in
  let d = lo +. (inv_phi *. (hi -. lo)) in
  loop lo hi c d (f c) (f d) 0

let grid_then_golden ?(samples = 64) ?(tol = 1e-10) ~f lo hi =
  assert (samples >= 2);
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  let best_i = ref 0 and best_v = ref infinity in
  for i = 0 to samples - 1 do
    let x = lo +. (float_of_int i *. step) in
    let v = f x in
    if v < !best_v then begin
      best_v := v;
      best_i := i
    end
  done;
  let a = lo +. (float_of_int (max 0 (!best_i - 1)) *. step) in
  let b = lo +. (float_of_int (min (samples - 1) (!best_i + 1)) *. step) in
  golden ~tol ~f a b
