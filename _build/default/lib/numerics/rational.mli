(** Exact rationals over native (63-bit) integers.

    The appendix of the paper reduces the fractional one-ray retrieval
    problem (real weight η) to the integer ORC covering problem through a
    sequence of rational approximations [q_i / k_i ↓ η].  This module
    provides the exact arithmetic for that reduction; all operations
    normalise by the gcd and keep the denominator positive.

    Overflow policy: operations that would overflow the 63-bit range raise
    {!Overflow} rather than silently wrapping.  The approximation sequences
    used in the experiments stay far below that range. *)

type t
(** A normalised rational: gcd(num, den) = 1, den > 0. *)

exception Overflow
(** Raised when an exact result does not fit in native integers. *)

exception Division_by_zero_rational
(** Raised by {!div} and {!inv} on a zero divisor. *)

val make : int -> int -> t
(** [make num den] is the normalised [num/den].
    @raise Division_by_zero_rational if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val inv : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool

val to_float : t -> float

val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation of a float with denominator at most
    [max_den] (default 10_000), by the Stern–Brocot / continued-fraction
    walk.  Requires a finite argument. *)

val approximations_above : target:float -> count:int -> t list
(** [approximations_above ~target ~count] returns a strictly decreasing
    sequence of at most [count] rationals [q_i/k_i >= target] converging to
    [target], with geometrically growing denominators — the sequence shape
    used in the appendix reduction for C(η).  When [target] is itself a
    small rational the sequence reaches it exactly and is shorter than
    [count].  Requires [target > 1.]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [num/den], or just [num] when [den = 1]. *)
