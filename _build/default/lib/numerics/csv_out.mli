(** Minimal CSV emission for the experiment series.

    The figure-shaped experiments (F1–F5) also write their raw series to
    disk so they can be re-plotted outside the harness.  RFC-4180-ish:
    fields containing commas, quotes or newlines are quoted, quotes
    doubled. *)

val escape_field : string -> string
(** The quoted/escaped form of one field. *)

val write : path:string -> header:string list -> rows:string list list -> unit
(** Writes header + rows to [path], creating parent directories as
    needed (one level).  Every row must match the header arity.
    @raise Invalid_argument on an arity mismatch. *)

val float_cell : float -> string
(** Full-precision float formatting ([%.17g]-trimmed). *)
