(** One-dimensional minimisation over an interval.

    Used for the α-sweep experiments: the competitive ratio of the
    exponential strategy as a function of its base α is unimodal with the
    minimum at [α* = (q/(q-k))^(1/k)] (appendix of the paper); we verify
    this numerically by minimising the simulated ratio. *)

val golden :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float
  -> float * float
(** [golden ~f lo hi] minimises the unimodal [f] on [[lo, hi]] by
    golden-section search, returning [(argmin, min)].  [tol] is the relative
    x-tolerance (default [1e-10]). *)

val grid_then_golden :
  ?samples:int -> ?tol:float -> f:(float -> float) -> float -> float
  -> float * float
(** Robust variant for functions that are only piecewise-unimodal (simulated
    ratios have small plateaus): first scans [samples] (default 64) grid
    points to locate the best bracket, then refines with {!golden}. *)
