(** Robust floating-point helpers.

    Every quantity in this reproduction is a positive real (a distance, a
    time, a competitive ratio), frequently produced by long products such as
    [rho ** rho / (rho -. 1.) ** (rho -. 1.)] whose direct evaluation loses
    precision or overflows for extreme parameters.  This module centralises
    the tolerant comparisons and log-domain evaluation used throughout. *)

val default_eps : float
(** Relative tolerance used by the [approx_*] functions when [?eps] is not
    supplied: [1e-9]. *)

val approx_eq : ?eps:float -> float -> float -> bool
(** [approx_eq a b] holds when [a] and [b] agree up to relative tolerance
    [eps] (absolute tolerance [eps] near zero). *)

val approx_le : ?eps:float -> float -> float -> bool
(** [approx_le a b] is [a <= b] up to tolerance: true when [a < b] or
    [approx_eq a b]. *)

val approx_ge : ?eps:float -> float -> float -> bool
(** Mirror of {!approx_le}. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] restricted to [[lo, hi]].  Requires [lo <= hi]. *)

val is_finite : float -> bool
(** True for normal, subnormal and zero values; false for nan and infinities. *)

val log_pow : float -> float -> float
(** [log_pow b e] is [e *. log b] with the conventions needed by the paper's
    formulas: [log_pow 0. 0. = 0.] (the proofs use the continuous extension
    [0^0 = 1], e.g. at [s = k] where the bound degenerates to the classic 9).
    Requires [b >= 0.]. *)

val pow : float -> float -> float
(** [pow b e] = [exp (log_pow b e)]: [b ** e] with [pow 0. 0. = 1.]. *)

val sum : float list -> float
(** Naive left-to-right sum; see {!Kahan} for the compensated variant. *)

val pp : Format.formatter -> float -> unit
(** Prints with enough digits to round-trip ([%.17g] trimmed to [%g] when
    exact). *)
