type 'a t = { get_raw : int -> 'a; cache : (int, 'a) Hashtbl.t }

let of_fun f = { get_raw = f; cache = Hashtbl.create 64 }

let get t i =
  if i < 1 then invalid_arg "Lazy_seq.get: index must be >= 1"
  else
    match Hashtbl.find_opt t.cache i with
    | Some v -> v
    | None ->
        let v = t.get_raw i in
        Hashtbl.add t.cache i v;
        v

let of_list_then prefix tail =
  let arr = Array.of_list prefix in
  let n = Array.length arr in
  of_fun (fun i -> if i <= n then arr.(i - 1) else tail i)

let unfold ~init step =
  (* Memoise the state walk: states.(i) is the state before producing
     element i+1.  Grow on demand; [highest] is the largest computed
     index, so filling up to a deep index is an iterative walk (constant
     stack — trajectories can have millions of legs). *)
  let states = ref [| init |] in
  let values : (int, 'a) Hashtbl.t = Hashtbl.create 64 in
  let highest = ref 0 in
  let ensure i =
    while !highest < i do
      let j = !highest + 1 in
      let s = !states.(j - 1) in
      let v, s' = step s in
      Hashtbl.add values j v;
      if Array.length !states <= j then begin
        let bigger = Array.make ((2 * j) + 1) s' in
        Array.blit !states 0 bigger 0 (Array.length !states);
        states := bigger
      end;
      !states.(j) <- s';
      highest := j
    done
  in
  of_fun (fun i ->
      ensure i;
      Hashtbl.find values i)

let prefix t n = List.init n (fun i -> get t (i + 1))
let map f t = of_fun (fun i -> f (get t i))

let find_first p t ~limit =
  let rec loop i =
    if i > limit then None
    else
      let v = get t i in
      if p v then Some (i, v) else loop (i + 1)
  in
  loop 1

let partial_sums t =
  unfold ~init:(1, Kahan.zero) (fun (i, acc) ->
      let acc = Kahan.add acc (get t i) in
      (Kahan.value acc, (i + 1, acc)))
