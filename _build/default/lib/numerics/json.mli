(** Minimal JSON: values, printing, parsing.

    The certificate exporter ({!Search_covering.Certificate_io}, if you
    are reading this from the covering layer) emits machine-readable
    refutation certificates and re-checks them independently; that needs
    a JSON codec, and the project is dependency-sealed, so a small
    well-tested one is vendored here.  Numbers are floats (JSON has only
    one number type); strings are UTF-8, with [\uXXXX] escapes decoded on
    parse (basic multilingual plane). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default false) adds newlines and 2-space
    indentation.  Floats that are integral print without a fractional
    part; non-finite floats are not representable and raise
    [Invalid_argument]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed).  The
    error string includes the offending position. *)

val member : string -> t -> t option
(** Field lookup in an [Assoc]; [None] otherwise or when absent. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Number] fields that are integral. *)

val to_list : t -> t list option
val to_string_value : t -> string option
val to_bool : t -> bool option
