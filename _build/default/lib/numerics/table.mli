(** Plain-text table rendering for the experiment harness.

    Every experiment in EXPERIMENTS.md prints one table (or series); this
    keeps their formatting uniform: a header row, a rule, then data rows
    with columns padded to the widest cell. *)

type align = Left | Right

type t
(** A table under construction; mutable. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table whose header cells (and alignments) are
    [cols].  Rows must match the column count. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell; default 6 decimals, special-cases infinities. *)

val cell_i : int -> string

val render : t -> string
(** The complete table as a string (with trailing newline). *)

val print : t -> unit
(** [render] to stdout. *)
