(** Compensated (Kahan–Babuška–Neumaier) summation.

    Robot loads [L(r)(P) = t1 + t2 + ... + t_ir] are sums of geometrically
    growing terms; when a strategy is probed over long horizons the naive sum
    loses the small early terms.  The potential-function certificate divides
    by these loads, so we keep them exact to the last ulp. *)

type t
(** A running compensated sum.  Immutable: {!add} returns a new value. *)

val zero : t
(** The empty sum. *)

val add : t -> float -> t
(** [add acc x] incorporates [x]. *)

val value : t -> float
(** Current value of the sum (principal part plus compensation). *)

val of_list : float list -> t
(** [of_list xs] sums the list left to right. *)

val sum : float list -> float
(** [sum xs = value (of_list xs)]. *)

val sum_array : float array -> float
(** Compensated sum of an array. *)
