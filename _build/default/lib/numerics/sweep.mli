(** Sweep-line coverage counting for collections of intervals.

    Central verification primitive: both covering relaxations of the paper
    (the ± line-cover setting and the ORC setting) reduce to the question
    "is every point of [[1, N]] covered at least [s] times by this multiset
    of intervals?".  The sweep visits the sorted endpoint events once and
    reports either success or the leftmost under-covered witness point. *)

type verdict =
  | Covered
      (** every point of the queried segment has multiplicity >= the demand *)
  | Gap of { from_ : float; upto : float; at : float; multiplicity : int }
      (** [(from_, upto)] is the leftmost under-covered stretch; [at] is its
          midpoint, a witness point whose multiplicity falls short. *)

val check :
  demand:int -> within:float * float -> Interval1.t list -> verdict
(** [check ~demand ~within:(lo, hi) ivs] verifies [demand]-fold coverage of
    the closed segment [[lo, hi]].  Runs in O(n log n) for n intervals. *)

val multiplicity_at : float -> Interval1.t list -> int
(** Number of intervals containing the point (kind-aware). *)

val coverage_profile :
  within:float * float -> Interval1.t list -> (float * float * int) list
(** Piecewise-constant multiplicity profile over [(lo, hi)]: a list of
    [(from, to, multiplicity)] pieces in increasing order, partitioning the
    open segment.  Endpoint multiplicities can differ on measure-zero sets;
    the profile reports the multiplicity of the {e interior} of each piece. *)

val min_multiplicity :
  within:float * float -> Interval1.t list -> int
(** Minimum interior multiplicity over the segment (0 when some stretch is
    uncovered). *)
