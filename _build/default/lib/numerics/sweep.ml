type verdict =
  | Covered
  | Gap of { from_ : float; upto : float; at : float; multiplicity : int }

let multiplicity_at x ivs =
  List.fold_left (fun n iv -> if Interval1.mem x iv then n + 1 else n) 0 ivs

(* The profile works on interval interiors: collect all endpoints clipped to
   the window, sort/dedup them, and evaluate the multiplicity at each piece's
   midpoint.  Midpoint evaluation makes left-end kinds irrelevant (they only
   matter on a measure-zero set), which is exactly the resolution at which
   the covering proofs operate ("every point of R_{>1} is covered exactly s
   times" after truncation). *)
let coverage_profile ~within:(lo, hi) ivs =
  if lo >= hi then []
  else
    let cuts =
      List.concat_map
        (fun (iv : Interval1.t) -> [ iv.Interval1.lo; iv.Interval1.hi ])
        ivs
      |> List.filter (fun x -> x > lo && x < hi)
      |> List.sort_uniq Float.compare
    in
    let points = (lo :: cuts) @ [ hi ] in
    let rec pieces = function
      | a :: (b :: _ as rest) ->
          let mid = 0.5 *. (a +. b) in
          (a, b, multiplicity_at mid ivs) :: pieces rest
      | [ _ ] | [] -> []
    in
    pieces points

let min_multiplicity ~within ivs =
  match coverage_profile ~within ivs with
  | [] -> 0
  | pieces -> List.fold_left (fun m (_, _, c) -> min m c) max_int pieces

let check ~demand ~within ivs =
  let pieces = coverage_profile ~within ivs in
  let rec find = function
    | [] -> Covered
    | (a, b, c) :: rest ->
        if c < demand then
          Gap { from_ = a; upto = b; at = 0.5 *. (a +. b); multiplicity = c }
        else find rest
  in
  match pieces with
  | [] ->
      (* degenerate window: single point *)
      let lo, _ = within in
      let c = multiplicity_at lo ivs in
      if c >= demand then Covered
      else Gap { from_ = lo; upto = lo; at = lo; multiplicity = c }
  | pieces -> find pieces
