type t = { total : float; compensation : float }

let zero = { total = 0.; compensation = 0. }

(* Neumaier's variant: the compensation also captures the case where the
   incoming term is larger in magnitude than the running total. *)
let add { total; compensation } x =
  let t = total +. x in
  let c =
    if Float.abs total >= Float.abs x then compensation +. ((total -. t) +. x)
    else compensation +. ((x -. t) +. total)
  in
  { total = t; compensation = c }

let value { total; compensation } = total +. compensation
let of_list xs = List.fold_left add zero xs
let sum xs = value (of_list xs)
let sum_array a = value (Array.fold_left add zero a)
