lib/bounds/asymptotics.ml: Formulas Search_numerics
