lib/bounds/planning.ml: Formulas Fun List Params Search_numerics
