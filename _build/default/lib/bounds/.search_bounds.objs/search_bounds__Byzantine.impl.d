lib/bounds/byzantine.ml: Formulas
