lib/bounds/params.mli: Format
