lib/bounds/lemma.ml: Search_numerics
