lib/bounds/lemma.mli:
