lib/bounds/formulas.ml: Params Search_numerics
