lib/bounds/asymptotics.mli:
