lib/bounds/params.ml: Format Printf
