lib/bounds/formulas.mli: Params
