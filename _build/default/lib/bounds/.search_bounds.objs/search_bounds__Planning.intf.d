lib/bounds/planning.mli:
