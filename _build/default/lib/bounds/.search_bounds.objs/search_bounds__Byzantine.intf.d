lib/bounds/byzantine.mli:
