(** Limit behaviour and structural identities of the bound.

    These are the sanity anchors of the whole reproduction: the bound's
    scale invariance (used by the induction in Section 3.1), its endpoint
    values, and its monotonicity, each checkable numerically. *)

val scale_invariant : q:int -> k:int -> c:int -> bool
(** Section 3.1: [mu(q, k) = mu(cq, ck)] for any [c > 0] — the bound only
    depends on [rho = q/k].  Checked to relative tolerance 1e-12. *)

val strictly_decreasing_in_k : q:int -> k:int -> bool
(** Section 3.1: [mu(q, k) < mu(q-1, k-1)] provided [q > k > 1] — losing a
    robot and one unit of demand makes the problem strictly harder in the
    normalised sense.  (Used to define the induction gap [eps'].) *)

val epsilon' : q:int -> k:int -> float
(** The induction gap of Section 3.1:
    [eps' = 2 mu(q-1, k-1) - 2 mu(q, k)].  Requires [q > k > 1]. *)

val limit_rho_to_one : float
(** [lim_{rho -> 1+} lambda(rho) = 3.]: with as many robots as the covering
    demand, every point can be reached just in time both ways. *)

val lambda_at_two : float
(** [lambda(2) = 9.], the classic cow-path constant — one robot, two rays,
    no faults (or any instance with [rho = 2]). *)

val lambda_of_rho : float -> float
(** [2 mu_rho rho + 1] for [rho >= 1]; the curve of experiment F1. *)

val monotone_on : lo:float -> hi:float -> samples:int -> bool
(** Numerically verifies that {!lambda_of_rho} is strictly increasing on
    [[lo, hi]] (with [1 <= lo < hi]) over a sample grid — more faulty
    robots per searcher can only hurt. *)
