(** Lemmas 4 and 5 of the paper, as executable statements.

    The potential-function argument hinges on the pointwise inequality

    [mu*^s / (x^s (mu* - x)^k)  >=  (k+s)^(k+s) / (s^s k^k mu*^k)]

    for all [0 < x < mu*] (Lemma 5, first part), with equality at the
    maximiser [x = s mu* / (k + s)] of the denominator polynomial
    (Lemma 4).  The certificate checker uses {!delta} as the guaranteed
    per-step growth factor of the potential. *)

val poly : s:int -> k:int -> mu_star:float -> float -> float
(** [poly ~s ~k ~mu_star x = x^s (mu_star - x)^k], the polynomial of
    Lemma 4.  Defined for all real [x] (the lemma restricts attention to
    [(0, mu_star)]). *)

val argmax : s:int -> k:int -> mu_star:float -> float
(** Lemma 4: [s *. mu_star /. (k + s)], the unique interior maximiser of
    {!poly} on [(0, mu_star)].  Requires [s >= 1], [k >= 1],
    [mu_star > 0.]. *)

val ratio : s:int -> k:int -> mu_star:float -> x:float -> float
(** The left-hand side of Lemma 5: [mu_star^s / (x^s (mu_star - x)^k)].
    Requires [0 < x < mu_star]. *)

val ratio_lower_bound : s:int -> k:int -> mu_star:float -> float
(** The right-hand side of Lemma 5's first inequality:
    [(k+s)^(k+s) / (s^s k^k mu_star^k)].  Log-domain. *)

val delta : s:int -> k:int -> mu:float -> float
(** Lemma 5's growth factor [delta = (k+s)^(k+s) / (s^s k^k mu^k)].
    Strictly greater than 1 exactly when [mu < mu (q=k+s, k)] — i.e. when
    the claimed competitive ratio is below the paper's bound. *)
