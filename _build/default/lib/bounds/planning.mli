(** Inverse use of the bound: resource planning.

    Theorems 1 and 6 answer "what ratio do these robots achieve?"; a
    deployer asks the inverse questions: how many robots buy a target
    ratio, how many faults a fleet can absorb, which ratio a budget
    affords.  All are monotone in the formula (more robots help, more
    faults and more rays hurt — property-tested in [test_bounds]), so
    integer search against {!Formulas.a_mray} answers them exactly. *)

val min_robots : m:int -> f:int -> lambda:float -> int option
(** Smallest [k] with [A(m, k, f) <= lambda], or [None] when even the
    ratio-1 fleet size [m (f+1)] does not satisfy it (i.e.
    [lambda < 1.]).  Requires [m >= 2], [f >= 0], [lambda > 0.]. *)

val max_faults : m:int -> k:int -> lambda:float -> int option
(** Largest [f] with [A(m, k, f) <= lambda]; [None] when even [f = 0]
    exceeds the budget.  Requires [m >= 2], [k >= 1]. *)

val achievable : m:int -> k:int -> f:int -> lambda:float -> bool
(** [A(m, k, f) <= lambda], with the regime conventions (ratio-one
    instances achieve everything [>= 1.]; unsolvable ones nothing). *)

val rho_for_lambda : lambda:float -> float
(** The largest [rho >= 1.] with [2 rho^rho/(rho-1)^(rho-1) + 1 <= lambda]
    (by bisection; [lambda >= 3.]).  The continuous frontier the integer
    searches discretise: a fleet achieves [lambda] iff
    [m (f+1) / k <= rho_for_lambda lambda] (or it is in the ratio-one
    regime).
    @raise Invalid_argument when [lambda < 3.]. *)

type plan = { k : int; f : int; ratio : float }

val cheapest_fleets : m:int -> lambda:float -> max_f:int -> plan list
(** For each [f] in [0 .. max_f], the smallest fleet achieving [lambda]
    on [m] rays with its actual ratio — the procurement table. *)
