module X = Search_numerics.Xfloat

let scale_invariant ~q ~k ~c =
  if c <= 0 then invalid_arg "Asymptotics.scale_invariant: need c > 0";
  X.approx_eq ~eps:1e-12 (Formulas.mu ~q ~k) (Formulas.mu ~q:(c * q) ~k:(c * k))

let strictly_decreasing_in_k ~q ~k =
  if not (q > k && k > 1) then
    invalid_arg "Asymptotics.strictly_decreasing_in_k: need q > k > 1";
  Formulas.mu ~q ~k < Formulas.mu ~q:(q - 1) ~k:(k - 1)

let epsilon' ~q ~k =
  if not (q > k && k > 1) then invalid_arg "Asymptotics.epsilon': need q > k > 1";
  (2. *. Formulas.mu ~q:(q - 1) ~k:(k - 1)) -. (2. *. Formulas.mu ~q ~k)

let limit_rho_to_one = 3.
let lambda_at_two = 9.
let lambda_of_rho rho = (2. *. Formulas.mu_rho rho) +. 1.

let monotone_on ~lo ~hi ~samples =
  if not (1. <= lo && lo < hi) then
    invalid_arg "Asymptotics.monotone_on: need 1 <= lo < hi";
  if samples < 2 then invalid_arg "Asymptotics.monotone_on: need samples >= 2";
  let step = (hi -. lo) /. float_of_int (samples - 1) in
  let rec check i prev =
    if i >= samples then true
    else
      let x = lo +. (float_of_int i *. step) in
      let v = lambda_of_rho x in
      if v > prev then check (i + 1) v else false
  in
  check 1 (lambda_of_rho lo)
