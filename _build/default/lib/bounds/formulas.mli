(** Closed-form competitive-ratio bounds from the paper.

    All exponentials are evaluated in log-domain ({!Search_numerics.Xfloat})
    so the formulas remain accurate for extreme parameters (large [k], [rho]
    close to 1 where [(rho-1)^(rho-1)] approaches the [0^0] boundary).

    Notation matches the paper: for an instance [(m, k, f)] in the searching
    regime, [q = m(f+1)], [s = q - k], [rho = q/k], and

    - [mu(q, k)  = (q^q / ((q-k)^(q-k) k^k))^(1/k)]   — half the travel overhead;
    - [lambda0   = 2 mu + 1]                           — Theorem 6 (eq. 9);
    - [A(k, f)   = lambda0] with [m = 2]               — Theorem 1 (eq. 1);
    - [C(eta)    = 2 eta^eta/(eta-1)^(eta-1) + 1]      — eq. (11). *)

val mu : q:int -> k:int -> float
(** [mu ~q ~k = (q^q / ((q-k)^(q-k) k^k))^(1/k)].  Requires [0 < k <= q];
    at [k = q] the [0^0] convention gives [mu q q = 1] (hence [lambda0 = 3]),
    the continuous boundary of the searching regime.
    @raise Invalid_argument outside [0 < k <= q]. *)

val mu_rho : float -> float
(** [mu_rho rho = rho^rho / (rho-1)^(rho-1)], the scale-invariant form:
    [mu ~q ~k = mu_rho (q/k)].  Requires [rho >= 1.] (continuity at 1 gives
    [mu_rho 1. = 1.]). *)

val lambda0 : q:int -> k:int -> float
(** [lambda0 ~q ~k = 2 *. mu ~q ~k +. 1.]. *)

val a_line : k:int -> f:int -> float
(** Theorem 1: the tight competitive ratio [A(k, f)] on the line, in the
    searching regime.  Returns [1.] in the ratio-one regime and [infinity]
    when unsolvable, so the function is total over valid parameters. *)

val a_mray : m:int -> k:int -> f:int -> float
(** Theorem 6: [A(m, k, f)]; same regime conventions as {!a_line}. *)

val of_params : Params.t -> float
(** Bound for an instance, dispatching on {!Params.regime}. *)

val c_eta : float -> float
(** Eq. (11): the fractional one-ray retrieval ratio [C(eta)] for
    [eta > 1.]; [C(1.) = 3.] by continuity.
    @raise Invalid_argument for [eta < 1.]. *)

val alpha_star : q:int -> k:int -> float
(** The optimal base of the exponential strategy (appendix):
    [alpha* = (q / (q - k))^(1/k)].  Requires [0 < k < q].

    Note: the paper's appendix writes the optimum as [(mf/(mf-k))^(1/k)]
    with an [f]-fold covering; the search problem needs an [(f+1)]-fold
    covering (the adversary silences [f] visitors), so the demand is
    [q = m(f+1)] — the appendix's [mf] is that [q].  With this reading the
    strategy's ratio equals [lambda0], matching Theorem 6. *)

val exponential_ratio : q:int -> k:int -> alpha:float -> float
(** Competitive ratio of the exponential strategy with base [alpha]:
    [1 + 2 alpha^q / (alpha^k - 1)] (appendix).  Requires [alpha > 1.].
    Minimised at [alpha_star], where it equals [lambda0 ~q ~k]. *)

val cow_path : float
(** The classic single-robot line bound: [a_mray ~m:2 ~k:1 ~f:0 = 9.]. *)

val single_robot_mray : m:int -> float
(** Baeza-Yates–Culberson–Rawlins: [1 + 2 m^m / (m-1)^(m-1)], i.e.
    [a_mray ~m ~k:1 ~f:0].  Requires [m >= 2]. *)
