module Params = Search_bounds.Params
module World = Search_sim.World
module Itinerary = Search_sim.Itinerary

(* A robot that never turns: monotone waypoints along one ray.  Doubling
   depths keep the leg count logarithmic in the horizon. *)
let straight_out ~world ~ray ~label =
  Itinerary.make ~label ~world (fun i ->
      World.point world ~ray ~dist:(2. ** float_of_int i))

let partition params =
  let { Params.m; k; f } = params in
  if k < m * (f + 1) then
    invalid_arg "Baseline.partition: need k >= m(f+1) for the ratio-1 regime";
  let world = World.rays m in
  Array.init k (fun r ->
      let ray = if r < m * (f + 1) then r mod m else 0 in
      straight_out ~world ~ray ~label:(Printf.sprintf "straight-%d" r))

let replicated_doubling ~k =
  if k < 1 then invalid_arg "Baseline.replicated_doubling: need k >= 1";
  Array.init k (fun _ -> Cyclic.doubling_cow ())

let replicated_mray ~m ~k =
  if k < 1 then invalid_arg "Baseline.replicated_mray: need k >= 1";
  Array.init k (fun _ -> Cyclic.single_robot ~m ())

let lone_rays_plus_sweeper ~m ~k =
  if not (1 <= k && k < m) then
    invalid_arg "Baseline.lone_rays_plus_sweeper: need 1 <= k < m";
  let world = World.rays m in
  let rest = m - k + 1 in
  (* The sweeper runs the optimal single-robot search over [rest] rays,
     relabelled onto rays k-1 .. m-1 of the real world. *)
  let sweeper_core = Cyclic.make ~m:rest ~k:1 () in
  let small = Mray_exponential.itinerary sweeper_core ~robot:0 in
  let sweeper =
    Itinerary.of_excursions ~label:"sweeper" ~world (fun p ->
        (* waypoints of the small plan alternate (excursion, origin);
           excursion p is waypoint 2p - 1 *)
        let wp = Itinerary.waypoint small ((2 * p) - 1) in
        (wp.World.ray + (k - 1), wp.World.dist))
  in
  Array.init k (fun r ->
      if r < k - 1 then
        straight_out ~world ~ray:r ~label:(Printf.sprintf "straight-%d" r)
      else sweeper)
