(** Baseline strategies for comparison tables.

    The trivial regimes of Section 1 and the natural-but-suboptimal
    strategies a practitioner would try first.  The benches report these
    next to the optimal exponential strategy. *)

val partition : Search_bounds.Params.t -> Search_sim.Itinerary.t array
(** The ratio-1 strategy for [k >= m(f+1)]: [f + 1] robots head straight
    out on each ray, never turning (surplus robots beyond [m (f+1)] follow
    ray 0); "by sending f + 1 of the robots to ∞ and f + 1 of the robots
    to −∞ we achieve a competitive ratio 1".
    @raise Invalid_argument when [k < m (f+1)]. *)

val replicated_doubling : k:int -> Search_sim.Itinerary.t array
(** All [k] robots run the {e same} doubling cow-path strategy.  Since
    identical robots visit every point simultaneously, the [(f+1)]-st
    visit happens at the first visit: this tolerates any [f < k] crash
    faults at competitive ratio 9 on the line — a useful foil showing that
    the lower bound's difficulty is not fault tolerance per se but the
    [m > 2] / time-efficiency trade-off ([A(k, f) < 9] whenever
    [rho < 2], which replication cannot reach). *)

val replicated_mray : m:int -> k:int -> Search_sim.Itinerary.t array
(** Same idea on [m] rays: [k] copies of the optimal single-robot m-ray
    strategy; ratio [1 + 2 m^m/(m-1)^(m-1)] for any [f < k]. *)

val lone_rays_plus_sweeper : m:int -> k:int -> Search_sim.Itinerary.t array
(** The Kao–Ma–Sipser–Yin distance-optimal shape quoted in Section 3:
    "all but one robot search on one ray each, while the last robot
    performs the search on all remaining rays".  Robots [0 .. k-2] head
    straight out on rays [0 .. k-2]; robot [k-1] runs the single-robot
    exponential search over rays [k-1 .. m-1].  Requires [1 <= k < m]
    (fault-free).  Good in total {e distance}, poor in {e time} — the
    contrast the paper draws when motivating the time version. *)
