module Interval1 = Search_numerics.Interval1

let visit_time turns ~i ~x =
  if x < 0. then invalid_arg "Orc_round.visit_time: need x >= 0";
  if x > Turning.get turns i then None
  else Some ((2. *. Turning.partial_sum turns (i - 1)) +. x)

let cover_threshold turns ~mu ~i =
  if mu <= 0. then invalid_arg "Orc_round.cover_threshold: need mu > 0";
  Turning.partial_sum turns (i - 1) /. mu

let fruitful turns ~mu ~i = cover_threshold turns ~mu ~i <= Turning.get turns i

let round_cover turns ~mu ~i =
  let t'' = cover_threshold turns ~mu ~i in
  let ti = Turning.get turns i in
  if t'' <= ti then Some (Interval1.closed t'' ti) else None

let cover_intervals turns ~mu ~up_to =
  let rec collect i acc =
    if i > up_to then List.rev acc
    else
      match round_cover turns ~mu ~i with
      | Some iv -> collect (i + 1) ((i, iv) :: acc)
      | None -> collect (i + 1) acc
  in
  collect 1 []

let cover_intervals_within turns ~mu ~within:(lo, hi) ?(max_rounds = 1_000_000)
    () =
  let rec collect i acc =
    if i > max_rounds then List.rev acc
    else
      let t'' = cover_threshold turns ~mu ~i in
      if t'' > hi then List.rev acc
      else
        let ti = Turning.get turns i in
        if t'' <= ti && ti >= lo then
          collect (i + 1) ((i, Interval1.closed t'' ti) :: acc)
        else collect (i + 1) acc
  in
  collect 1 []

let itinerary ?label ~world ~ray turns =
  Search_sim.Itinerary.of_excursions ?label ~world (fun i ->
      (ray, Turning.get turns i))
