module Params = Search_bounds.Params

let make ?alpha ~m ~k () =
  if not (1 <= k && k < m) then invalid_arg "Cyclic.make: need 1 <= k < m";
  Mray_exponential.make ?alpha (Params.make ~m ~k ~f:0)

let itineraries ?alpha ~m ~k () =
  Mray_exponential.itineraries (make ?alpha ~m ~k ())

let single_robot ?alpha ~m () =
  Mray_exponential.itinerary (make ?alpha ~m ~k:1 ()) ~robot:0

let doubling_cow () = single_robot ~m:2 ()
