(** The exponential upper-bound strategy on [m] rays (paper appendix).

    Robot [r] (1-based, [1 <= r <= k]) visits the rays in cyclic order;
    pass number [l] (an integer that may start negative) takes place on ray
    [i = ((l - 1) mod m) + 1] and turns at depth [alpha^(k l + m r)].
    Robot [r]'s pass on ray [i] with index [l] is {e assigned} the interval

    [( alpha^(k l + m (r - f - 1)),  alpha^(k l + m r) ]]

    and the union of assigned intervals covers every distance [>= alpha^e]
    (for any exponent [e] reachable by the configured [l_min]) exactly
    [f + 1] times per ray — the covering demand of the search problem.

    Note on the paper's appendix: it writes the assignment with width
    [m f] (an [f]-fold covering) and optimises [alpha^(m f) / (alpha^k - 1)];
    detecting the target against [f] silent robots needs [f + 1] visits, so
    the demand is [q = m (f + 1)] and the correct width is [m (f + 1)] —
    with that reading the optimal base is [alpha* = (q/(q-k))^(1/k)] and
    the achieved ratio is exactly [lambda0] of Theorem 6.  We implement the
    corrected assignment; the coverage tests verify the multiplicity. *)

type t

val make : ?alpha:float -> ?l_min:int -> Search_bounds.Params.t -> t
(** Builds the strategy for an instance in the searching regime
    ([f < k < m(f+1)]).  [alpha] defaults to the optimal
    [Formulas.alpha_star ~q ~k]; it must be [> 1.].  [l_min] is the first
    pass index, default [-(m * (f + 2))] — early enough that every
    distance [>= 1] already has its full [f + 1] assigned coverings (the
    paper starts at [j = -2] for the same purpose).
    @raise Invalid_argument outside the searching regime. *)

val params : t -> Search_bounds.Params.t
val alpha : t -> float

val ray_of_pass : t -> l:int -> int
(** 0-based ray index of pass [l]. *)

val depth_of_pass : t -> robot:int -> l:int -> float
(** Turn depth [alpha^(k l + m r)] of robot [r] (0-based robot index;
    internally [r + 1] in the paper's 1-based numbering). *)

val itinerary : t -> robot:int -> Search_sim.Itinerary.t
(** The robot's simulator plan: excursions in increasing pass order. *)

val itineraries : t -> Search_sim.Itinerary.t array
(** All [k] robots. *)

val assigned_intervals_on_ray :
  t -> robot:int -> ray:int -> within:float * float
  -> Search_numerics.Interval1.t list
(** The robot's assigned (left-open) intervals on a ray that intersect the
    window — the certificates fed to the coverage checker. *)

val predicted_ratio : t -> float
(** [1 + 2 alpha^q / (alpha^k - 1)], the appendix bound for this base. *)

val coverage_multiplicity_by_residue : t -> int array
(** Exact, horizon-free verification of the assignment's covering claim.

    In exponent space the assigned intervals have integer endpoints:
    robot [r] covers [(k l + m (r - f - 1), k l + m r]] on the ray of
    pass [l].  The multiplicity of an exponent is therefore constant on
    integer-open intervals and periodic with period [k m] (shifting the
    exponent by [k m] shifts [l] by [m], a bijection of passes on the
    same ray).  The array (length [k m]) gives the multiplicity of each
    residue class on its ray, counted purely with integer arithmetic over
    the idealised strategy (all [l] in [Z]); the appendix's covering
    claim — corrected to the [(f+1)]-fold demand — is exactly the
    statement that every entry equals [f + 1], which
    {!coverage_theorem_holds} checks. *)

val coverage_theorem_holds : t -> bool
(** [Array.for_all (( = ) (f + 1)) (coverage_multiplicity_by_residue t)]:
    the strategy's assignment covers {e every} distance exactly
    [(f+1)]-fold on every ray — no finite horizon involved. *)
