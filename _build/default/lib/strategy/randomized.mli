(** Randomized single-robot line search (Kao–Reif–Tate, cited as [21]).

    Against an oblivious adversary, randomisation beats the deterministic
    9: the geometric strategy with turning points [beta^(i + u)] — [u]
    uniform in [[0, 1)], first direction a fair coin — achieves expected
    competitive ratio

    [r(beta) = 1 + (1 + beta) / ln beta],

    minimised at the root [beta_star] of [beta ln beta = beta + 1]
    ([beta_star ~ 3.59112]), where the ratio is [1 + beta_star ~ 4.59112]
    — optimal for randomized strategies.  The paper cites this work in its
    related-work discussion; we include it as the randomized counterpart
    of the deterministic machinery (and a consumer of the
    {!Search_numerics.Prng} substrate). *)

val ratio_formula : beta:float -> float
(** [1 + (1 + beta) / ln beta].  Requires [beta > 1.]. *)

val optimal_beta : unit -> float
(** The root of [beta ln beta = beta + 1] in (1, 10), by Brent. *)

val optimal_ratio : unit -> float
(** [1 + optimal_beta ()], about 4.59112. *)

val turning : beta:float -> u:float -> Turning.t
(** The offset geometric sequence [t_i = beta^(i + u)].  Requires
    [beta > 1.] and [0. <= u < 1.]. *)

val detection_time :
  beta:float -> u:float -> positive_first:bool -> x:float -> float
(** Time for the single robot to reach the (signed) coordinate [x <> 0.]:
    motion-level walk of the zigzag with the given randomness. *)

val expected_ratio_at :
  beta:float -> x:float -> samples:int -> prng:Search_numerics.Prng.t
  -> float
(** Monte-Carlo estimate of [E (detection_time / |x|)] over the offset
    [u] and the initial direction, for a target at signed coordinate [x].
    Converges to {!ratio_formula} [~beta] for large [|x|]. *)

val expected_ratio_exact :
  beta:float -> x:float -> grid:int -> float
(** Deterministic quadrature over [u] (midpoint rule with [grid] cells,
    averaging the two directions) — the flake-free variant used by the
    tests. *)
