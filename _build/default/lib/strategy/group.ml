module Params = Search_bounds.Params

type t = {
  params : Params.t;
  itineraries : Search_sim.Itinerary.t array;
  predicted_ratio : float;
}

let optimal ?alpha params =
  match Params.regime params with
  | Params.Unsolvable ->
      invalid_arg "Group.optimal: all robots may be faulty (f = k)"
  | Params.Ratio_one ->
      { params; itineraries = Baseline.partition params; predicted_ratio = 1. }
  | Params.Searching ->
      let strat = Mray_exponential.make ?alpha params in
      {
        params;
        itineraries = Mray_exponential.itineraries strat;
        predicted_ratio = Mray_exponential.predicted_ratio strat;
      }

let line_zigzags ?labels turns =
  Array.mapi
    (fun r t ->
      let label =
        match labels with
        | Some ls when r < Array.length ls -> ls.(r)
        | Some _ | None -> Printf.sprintf "zigzag-%d" r
      in
      Line_zigzag.itinerary ~label t)
    turns

let trajectories t = Array.map Search_sim.Trajectory.compile t.itineraries
