module Interval1 = Search_numerics.Interval1

(* Motion-level computation: walk the legs, record the first visit of +x
   and of -x, stop once both are known.  Leg i goes from the previous
   turning point (opposite side) to [sign_i t_i]; the visit of a copy of x
   on leg i happens when passing distance x on the destination side, or
   when passing -x ... both sides can be crossed within one leg (a leg
   crosses the origin).  We track positions explicitly. *)
let pair_visit_time ?(max_rounds = 100_000) turns ~x =
  if x <= 0. then invalid_arg "Line_zigzag.pair_visit_time: need x > 0";
  let rec walk i pos time seen_pos seen_neg =
    if i > max_rounds then None
    else
      let sign = if i mod 2 = 1 then 1. else -1. in
      let dest = sign *. Turning.get turns i in
      let lo = Float.min pos dest and hi = Float.max pos dest in
      let hit target =
        if target >= lo && target <= hi then
          Some (time +. Float.abs (target -. pos))
        else None
      in
      let seen_pos =
        match seen_pos with Some _ -> seen_pos | None -> hit x
      in
      let seen_neg =
        match seen_neg with Some _ -> seen_neg | None -> hit (-.x)
      in
      match (seen_pos, seen_neg) with
      | Some a, Some b -> Some (Float.max a b)
      | _ ->
          walk (i + 1) dest (time +. Float.abs (dest -. pos)) seen_pos seen_neg
  in
  walk 1 0. 0. None None

let pair_visit_time_formula turns ~x ~i =
  (2. *. Turning.partial_sum turns i) +. x

let cover_threshold turns ~mu ~i =
  if mu <= 0. then invalid_arg "Line_zigzag.cover_threshold: need mu > 0";
  let prev = if i = 1 then 0. else Turning.get turns (i - 1) in
  Float.max (Turning.partial_sum turns i /. mu) prev

let fruitful turns ~mu ~i = cover_threshold turns ~mu ~i <= Turning.get turns i

let cover_intervals turns ~mu ~up_to =
  let rec collect i acc =
    if i > up_to then List.rev acc
    else
      let t'' = cover_threshold turns ~mu ~i in
      let ti = Turning.get turns i in
      if t'' <= ti then collect (i + 1) ((i, Interval1.closed t'' ti) :: acc)
      else collect (i + 1) acc
  in
  collect 1 []

let lambda_covers ?max_rounds turns ~lambda ~x =
  if x < 1. then invalid_arg "Line_zigzag.lambda_covers: need x >= 1";
  match pair_visit_time ?max_rounds turns ~x with
  | None -> false
  | Some t -> t <= lambda *. x

let itinerary ?label turns =
  Search_sim.Itinerary.of_line_turns ?label (fun i -> Turning.get turns i)
