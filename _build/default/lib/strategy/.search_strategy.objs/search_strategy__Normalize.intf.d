lib/strategy/normalize.mli: Turning
