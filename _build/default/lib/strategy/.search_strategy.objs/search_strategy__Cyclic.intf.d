lib/strategy/cyclic.mli: Mray_exponential Search_sim
