lib/strategy/group.ml: Array Baseline Line_zigzag Mray_exponential Printf Search_bounds Search_sim
