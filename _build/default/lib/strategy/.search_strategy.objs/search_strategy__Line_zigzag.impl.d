lib/strategy/line_zigzag.ml: Float List Search_numerics Search_sim Turning
