lib/strategy/normalize.ml: Printf Search_numerics Turning
