lib/strategy/group.mli: Search_bounds Search_sim Turning
