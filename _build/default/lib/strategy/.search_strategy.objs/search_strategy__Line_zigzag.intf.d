lib/strategy/line_zigzag.mli: Search_numerics Search_sim Turning
