lib/strategy/turning.mli:
