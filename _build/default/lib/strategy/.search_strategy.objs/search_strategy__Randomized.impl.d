lib/strategy/randomized.ml: Float Search_numerics Turning
