lib/strategy/baseline.mli: Search_bounds Search_sim
