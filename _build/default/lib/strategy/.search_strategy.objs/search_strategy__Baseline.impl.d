lib/strategy/baseline.ml: Array Cyclic Mray_exponential Printf Search_bounds Search_sim
