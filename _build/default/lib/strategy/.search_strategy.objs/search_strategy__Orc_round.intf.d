lib/strategy/orc_round.mli: Search_numerics Search_sim Turning
