lib/strategy/cyclic.ml: Mray_exponential Search_bounds
