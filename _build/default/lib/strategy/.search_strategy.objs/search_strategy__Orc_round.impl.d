lib/strategy/orc_round.ml: List Search_numerics Search_sim Turning
