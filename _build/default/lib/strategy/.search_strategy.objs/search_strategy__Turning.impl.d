lib/strategy/turning.ml: Float Printf Search_numerics
