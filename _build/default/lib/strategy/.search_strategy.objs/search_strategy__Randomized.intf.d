lib/strategy/randomized.mli: Search_numerics Turning
