lib/strategy/mray_exponential.mli: Search_bounds Search_numerics Search_sim
