lib/strategy/mray_exponential.ml: Array List Printf Search_bounds Search_numerics Search_sim
