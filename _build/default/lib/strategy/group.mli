(** Whole-group strategy construction and dispatch.

    The single entry point the core library uses: given an instance
    [(m, k, f)], produce the [k] itineraries of the (asymptotically
    optimal) strategy appropriate for its regime. *)

type t = {
  params : Search_bounds.Params.t;
  itineraries : Search_sim.Itinerary.t array;  (** length [k] *)
  predicted_ratio : float;
      (** the ratio this group is designed to achieve ([infinity] when the
          instance is unsolvable and the array is empty) *)
}

val optimal : ?alpha:float -> Search_bounds.Params.t -> t
(** Regime dispatch: {!Baseline.partition} when [k >= m(f+1)] (ratio 1),
    the {!Mray_exponential} strategy in the searching regime (ratio
    [lambda0], or the appendix bound for a non-default [alpha]).
    @raise Invalid_argument for an unsolvable instance ([f = k]). *)

val line_zigzags :
  ?labels:string array -> Turning.t array -> Search_sim.Itinerary.t array
(** A hand-rolled group of line zigzag strategies (for experiments with
    custom strategies). *)

val trajectories : t -> Search_sim.Trajectory.t array
(** Compile every itinerary. *)
