module Lazy_seq = Search_numerics.Lazy_seq

type t = { seq : float Lazy_seq.t; sums : float Lazy_seq.t }

let wrap seq = { seq; sums = Lazy_seq.partial_sums seq }

let of_fun f = wrap (Lazy_seq.of_fun f)
let of_list_then prefix tail = wrap (Lazy_seq.of_list_then prefix tail)

let geometric ?(scale = 1.) ~alpha () =
  if alpha <= 0. then invalid_arg "Turning.geometric: need alpha > 0";
  if scale <= 0. then invalid_arg "Turning.geometric: need scale > 0";
  of_fun (fun i -> scale *. (alpha ** float_of_int i))

let constant_then_geometric ~first ~alpha =
  if first <= 0. then invalid_arg "Turning.constant_then_geometric: first <= 0";
  if alpha <= 0. then invalid_arg "Turning.constant_then_geometric: alpha <= 0";
  of_fun (fun i -> first *. (alpha ** float_of_int (i - 1)))

let get t i =
  let v = Lazy_seq.get t.seq i in
  if v < 0. || Float.is_nan v then
    invalid_arg (Printf.sprintf "Turning.get: t_%d = %g is invalid" i v);
  v

let partial_sum t i =
  if i < 0 then invalid_arg "Turning.partial_sum: negative index"
  else if i = 0 then 0.
  else Lazy_seq.get t.sums i

let nondecreasing_prefix t ~n =
  let rec check i prev =
    if i > n then true
    else
      let v = get t i in
      if v >= prev then check (i + 1) v else false
  in
  check 1 0.

let scale t c =
  if c <= 0. then invalid_arg "Turning.scale: need c > 0";
  of_fun (fun i -> c *. get t i)

let map_indices t g = of_fun (fun i -> get t (g i))
