(** Round-based semantics on a single ray — the ORC setting (Section 3.1).

    A {e round} is the period between two consecutive visits of the origin;
    after standardisation each round turns exactly once, at depth [t_i].
    The robot reaches depth [x <= t_i] in round [i] at time
    [2 (t1 + ... + t_{i-1}) + x], so round [i] λ-covers exactly
    [[t''_i, t_i]] with [t''_i = (t1 + ... + t_{i-1}) /. mu],
    [mu = (lambda - 1) / 2].  Unlike the line setting, one robot may cover
    the same point in several rounds, and each covering counts (the ORC
    rule: coverings are distinct when separated by a visit of 0). *)

val visit_time : Turning.t -> i:int -> x:float -> float option
(** Time of reaching depth [x] (outbound) in round [i]; [None] when
    [x > t_i].  Requires [x >= 0.]. *)

val cover_threshold : Turning.t -> mu:float -> i:int -> float
(** [t''_i = (t1 + ... + t_{i-1}) /. mu] (note: sum up to [i - 1], unlike
    the line setting). *)

val fruitful : Turning.t -> mu:float -> i:int -> bool

val round_cover :
  Turning.t -> mu:float -> i:int -> Search_numerics.Interval1.t option
(** The interval [[t''_i, t_i]] λ-covered in round [i], when fruitful. *)

val cover_intervals :
  Turning.t -> mu:float -> up_to:int -> (int * Search_numerics.Interval1.t) list
(** Fruitful rounds' intervals with their round indices, [i <= up_to]. *)

val cover_intervals_within :
  Turning.t -> mu:float -> within:float * float -> ?max_rounds:int -> unit
  -> (int * Search_numerics.Interval1.t) list
(** All fruitful intervals intersecting the window, stopping at the first
    round whose threshold [t''_i] passes the window's right end (the
    thresholds are monotone increasing, so no later round can contribute).
    [max_rounds] (default 1_000_000) guards against degenerate sequences. *)

val itinerary :
  ?label:string -> world:Search_sim.World.t -> ray:int -> Turning.t
  -> Search_sim.Itinerary.t
(** Simulator plan performing the rounds on a fixed ray of [world]. *)
