(** Cyclic parallel strategies on [m] rays (fault-free case).

    "A cyclic strategy is a strategy in which the advancements in the
    search on the rays is happening in cyclic order, and at each step each
    robot is assigned a farther distance to explore on a ray than it
    previously explored on other rays" (Section 3, after Bernstein,
    Finkelstein, and Zilberstein, IJCAI'03).  The fault-free instance of
    the {!Mray_exponential} strategy is exactly such a strategy, and at the
    optimal base it attains [A(m, k, 0)] — the value [11] could only prove
    optimal {e within} the class of cyclic strategies, and that Theorem 6
    shows optimal among all strategies.  This module exposes that instance
    directly, plus the classic [k = 1] specialisations. *)

val make : ?alpha:float -> m:int -> k:int -> unit -> Mray_exponential.t
(** The cyclic strategy of [k] fault-free robots on [m] rays; requires
    [1 <= k < m].  [alpha] defaults to the optimal
    [(m/(m-k))^(1/k)]. *)

val itineraries : ?alpha:float -> m:int -> k:int -> unit -> Search_sim.Itinerary.t array

val single_robot : ?alpha:float -> m:int -> unit -> Search_sim.Itinerary.t
(** The classic single-robot m-ray search ([k = 1]), with default base
    [alpha* = m/(m-1)]; for [m = 2] this is the doubling strategy with
    competitive ratio 9. *)

val doubling_cow : unit -> Search_sim.Itinerary.t
(** [single_robot ~m:2 ()]: go 1 right, 2 left, 4 right, ... — the cow
    path strategy from the introduction. *)
