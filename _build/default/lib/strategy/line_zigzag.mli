(** Single-robot zigzag semantics on the line (Section 2).

    A turning sequence [T = (t1, t2, t3, ...)] sends the robot till [+t1],
    till [-t2], till [+t3], and so on.  For the ±-covering relaxation the
    relevant quantity is when the robot has visited {e both} [x] and [-x]:
    for normalised (nondecreasing) sequences with [t_{i-1} < x <= t_i] this
    is exactly [2 (t1 + ... + t_i) + x] — the robot completes leg [i], then
    travels back through the origin to the opposite copy.

    [pair_visit_time] below computes the quantity {e directly from the
    motion} (no normalisation assumption); the property tests confirm it
    coincides with the closed formula on nondecreasing sequences, which is
    the identity the paper's proof rests on. *)

val pair_visit_time :
  ?max_rounds:int -> Turning.t -> x:float -> float option
(** Earliest time by which both [+x] and [-x] (for [x > 0.]) have been
    visited; [None] if this does not happen within [max_rounds] turning
    points (default 100_000). *)

val pair_visit_time_formula : Turning.t -> x:float -> i:int -> float
(** The paper's closed form [2 (t1 + ... + t_i) +. x] for the cover index
    [i] (the index with [t_{i-1} < x <= t_i] on normalised sequences). *)

val cover_threshold : Turning.t -> mu:float -> i:int -> float
(** Eq. (3): [t''_i = max ((t1 + ... + t_i) /. mu) t_{i-1}] — the smallest
    [x] that turn [i] still λ-covers, where [mu = (lambda - 1) / 2]. *)

val fruitful : Turning.t -> mu:float -> i:int -> bool
(** Whether [t''_i <= t_i] — turn [i] λ-covers a nonempty interval. *)

val cover_intervals :
  Turning.t -> mu:float -> up_to:int -> (int * Search_numerics.Interval1.t) list
(** The λ-cover [Cov_mu(T)]: the intervals [[t''_i, t_i]] of the fruitful
    indices [i <= up_to], tagged with their turn index. *)

val lambda_covers : ?max_rounds:int -> Turning.t -> lambda:float -> x:float -> bool
(** Whether the robot λ-covers [x >= 1.]: both copies visited within
    [lambda *. x] (motion-level definition). *)

val itinerary : ?label:string -> Turning.t -> Search_sim.Itinerary.t
(** The corresponding simulator itinerary (positive direction first). *)
