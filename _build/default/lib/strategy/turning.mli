(** Turning-point sequences.

    A single robot's strategy, in both settings of the paper, is an
    infinite sequence of turning points [t_1, t_2, t_3, ...] over [R >= 0]:
    on the line it alternates directions ("sent till +t1, till -t2, till
    +t3, ..."); in the ORC setting [t_i] is the depth of round [i].  The
    proofs normalise to nondecreasing sequences; constructors here accept
    arbitrary nonnegative sequences so the normalisation steps
    ({!Normalize}) can be exercised on un-normalised inputs. *)

type t

val of_fun : (int -> float) -> t
(** [of_fun f] — [f i] is [t_i] (1-based), memoised; must be pure and
    nonnegative (checked on access). *)

val of_list_then : float list -> (int -> float) -> t
(** Explicit prefix, then a tail rule. *)

val geometric : ?scale:float -> alpha:float -> unit -> t
(** [t_i = scale *. alpha^i]; [scale] defaults to 1.  Requires
    [alpha > 0.] and [scale > 0.]. *)

val constant_then_geometric : first:float -> alpha:float -> t
(** [t_1 = first], then geometric growth from it: [t_i = first *. alpha^(i-1)]. *)

val get : t -> int -> float
(** [get s i] = [t_i].
    @raise Invalid_argument on [i < 1] or a negative produced value. *)

val partial_sum : t -> int -> float
(** [partial_sum s i = t_1 +. ... +. t_i] (compensated); [0.] for [i = 0]. *)

val nondecreasing_prefix : t -> n:int -> bool
(** Whether [t_1 <= t_2 <= ... <= t_n]. *)

val scale : t -> float -> t
(** [scale s c] multiplies every turning point by [c > 0.] — the rescaling
    step used in Case 2 of the Section 3.1 induction. *)

val map_indices : t -> (int -> int) -> t
(** [map_indices s g] is the subsequence [t_{g 1}, t_{g 2}, ...]; [g] must
    be strictly increasing (not checked).  Used to skip turning points. *)
