type profile_point = { dist : float; ray : int; ratio : float }

let sup_ratio = Adversary.worst_case

let profile trajectories ~f ?(ratio_cap = Adversary.default_ratio_cap) ~n
    ~samples () =
  if samples < 2 then invalid_arg "Competitive.profile: need samples >= 2";
  if n <= 1. then invalid_arg "Competitive.profile: need n > 1";
  let world = Trajectory.world trajectories.(0) in
  let m = World.arity world in
  let time_horizon = ratio_cap *. n in
  let log_n = log n in
  let points = ref [] in
  for i = samples - 1 downto 0 do
    let dist = exp (log_n *. float_of_int i /. float_of_int (samples - 1)) in
    for ray = m - 1 downto 0 do
      let target = World.point world ~ray ~dist in
      let ratio = Engine.detection_ratio trajectories ~f ~target ~time_horizon in
      points := { dist; ray; ratio } :: !points
    done
  done;
  !points

let horizon_convergence ~make_trajectories ~f ?ratio_cap ~ns () =
  List.map
    (fun n ->
      let trajectories = make_trajectories () in
      let outcome = Adversary.worst_case trajectories ~f ?ratio_cap ~n () in
      (n, outcome.Adversary.ratio))
    ns
