(** Fault models and fault assignments.

    The paper's primary model is {e crash type} ([14]): a faulty robot
    moves exactly as instructed but never reports the target.  The
    {e Byzantine type} ([13]) additionally allows false reports.  An
    {e assignment} fixes which robots are faulty; the adversary of the
    lower-bound proofs picks the assignment after seeing the strategy
    ("choose the first f robots arriving at x to be faulty"). *)

type kind =
  | Crash  (** silent at the target; otherwise follows the strategy *)
  | Byzantine  (** may stay silent and may falsely claim a target *)

type assignment = { kind : kind; faulty : bool array }
(** [faulty.(r)] tells whether robot [r] (0-based) is faulty. *)

val make : kind -> faulty:bool array -> assignment

val none : kind -> robots:int -> assignment
(** No faulty robots. *)

val count_faulty : assignment -> int

val worst_for_visits : kind -> first_visits:float option array -> f:int -> assignment
(** The proof's adversarial choice: make faulty the [f] robots with the
    earliest first visits to the target ([None] = never visits, which the
    adversary never wastes a fault on unless all visitors are already
    faulty).  Ties broken by robot index. *)

val pp : Format.formatter -> assignment -> unit
