(** Exact worst-case analysis by piecewise-affine decomposition.

    {!Adversary} brackets breakpoints with a relative [eps]; this module
    removes the approximation.  For a fixed ray, a robot's first-visit
    time of depth [x] is piecewise affine with slope 1 (every new depth
    is first reached on an outbound leg), with breakpoints at the leg
    endpoints.  The crash detection time is the [(f+1)]-st pointwise
    order statistic of the robots' first-visit functions — again
    piecewise affine, with extra breakpoints where two robots' functions
    cross.  On each affine piece [T(x) = a + b x] the ratio [T(x)/x] is
    monotone, so the supremum over a piece is attained (or approached) at
    an endpoint and can be evaluated {e exactly}.

    The benches use this to report suprema free of discretisation — e.g.
    the doubling cow's exact supremum over [(1, N]] is
    [9 - 2^(1 - 2 j_max)] for the largest odd-turn index fitting in [N],
    which the tests assert to the last bit. *)

type piece = {
  x_lo : float;  (** left end, exclusive *)
  x_hi : float;  (** right end, inclusive *)
  a : float;
  b : float;  (** value at [x] in the piece: [a +. b *. x] *)
}

val first_visit_pieces :
  Trajectory.t -> ray:int -> x_max:float -> time_horizon:float -> piece list
(** The robot's first-visit time on [ray] as consecutive affine pieces
    over [(0, reach]], where [reach <= x_max] is the largest depth the
    robot attains on the ray within the horizon.  Pieces are increasing
    in [x] and have slope 1. *)

val order_statistic :
  piece list array -> rank:int -> x_max:float -> piece list
(** Pointwise [rank]-th smallest (0-based) of the given piecewise-affine
    functions over [(0, x_max]]; where fewer than [rank + 1] functions
    are defined the statistic is undefined and the region is omitted.
    Crossing points become piece boundaries. *)

type outcome = {
  sup : float;  (** exact supremum of detection/distance over [[1, n]] *)
  witness_dist : float;  (** where it is attained or approached *)
  witness_ray : int;
  attained : bool;
      (** false when the supremum is a one-sided limit at an excluded
          left endpoint (the adversary places the target just past it) *)
}

val worst_case :
  Trajectory.t array -> f:int -> ?ratio_cap:float -> n:float -> unit -> outcome
(** Exact supremum of the crash detection ratio over targets with
    distances in [[1, n]] on every ray; [sup = infinity] when some
    stretch cannot be detected within [ratio_cap *. n] time (default
    cap 1024). *)
