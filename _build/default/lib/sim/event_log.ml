type entry = { time : float; text : string }

let narrate_crash ?(min_turn_depth = 0.) trajectories ~assignment ~target
    ~horizon =
  let detection =
    Engine.detection_time_fixed trajectories ~assignment ~target ~horizon
  in
  let cutoff = match detection with Some t -> t | None -> horizon in
  let entries = ref [] in
  let push time text = entries := { time; text } :: !entries in
  Array.iteri
    (fun r tr ->
      let name = Trajectory.label tr in
      let faulty = assignment.Fault.faulty.(r) in
      (* turns *)
      let rec turns i =
        let l = Trajectory.leg tr i in
        if l.Trajectory.t_start <= cutoff then begin
          let t_end =
            l.Trajectory.t_start
            +. Float.abs (l.Trajectory.d_to -. l.Trajectory.d_from)
          in
          if t_end <= cutoff && l.Trajectory.d_to >= min_turn_depth
             && l.Trajectory.d_to > 0. then
            push t_end
              (Format.asprintf "%s turns at ray %d @@ %g" name l.Trajectory.ray
                 l.Trajectory.d_to);
          turns (i + 1)
        end
      in
      turns 1;
      (* visits *)
      List.iter
        (fun t ->
          if t <= cutoff then
            push t
              (Format.asprintf "%s passes the target at %a%s" name
                 World.pp_point target
                 (if faulty then " (faulty: stays silent)" else " and reports it")))
        (Trajectory.visits tr ~target ~horizon:cutoff))
    trajectories;
  (match detection with
  | Some t ->
      push t
        (Format.asprintf "target at %a confirmed (time %.4g, ratio %.4g)"
           World.pp_point target t (t /. target.World.dist))
  | None ->
      push horizon
        (Format.asprintf "horizon %g reached, target at %a not yet confirmed"
           horizon World.pp_point target));
  List.stable_sort (fun a b -> Float.compare a.time b.time) (List.rev !entries)

let pp_entry ppf e = Format.fprintf ppf "[t=%8.3f] %s" e.time e.text

let print entries =
  List.iter (fun e -> Format.printf "%a@." pp_entry e) entries
