(** The adversary: worst-case target placement.

    For a fixed group of trajectories, the worst-case competitive ratio
    over targets in [[1, N]] on each ray is a supremum of
    [detection_time(x) / x].  Between consecutive turning points the
    detection time is affine in [x] with slope [±1] (the last needed
    visitor is on a single leg), so [ratio(x)] is monotone there and the
    supremum is attained arbitrarily close to the breakpoints — the leg
    endpoints of the robots.  The scan therefore evaluates each breakpoint
    depth [d] together with [d (1 ± eps)], which brackets the one-sided
    limits; this is exactly the adversary of the paper's proofs ("the
    adversary will place the target there"), discretised to precision
    [eps]. *)

type outcome = {
  ratio : float;  (** the supremum found ([infinity] if some target escapes) *)
  witness : World.point;  (** a target attaining (approaching) it *)
  detection_time : float;  (** detection time at the witness *)
  candidates_scanned : int;
}

val default_eps : float
(** Relative bracketing offset around breakpoints: [1e-7]. *)

val default_ratio_cap : float
(** Time-horizon multiplier: a target at distance [x] undetected by time
    [ratio_cap *. x] is reported as escaping ([ratio = infinity]).
    Default [256.] — far above every bound in the paper's range. *)

val candidate_targets :
  Trajectory.t array -> ?eps:float -> n:float -> time_horizon:float -> unit
  -> World.point list
(** All breakpoint-bracketing targets with distances in [[1, n]]:
    the distances [1.], [n], and [d], [d (1-eps)], [d (1+eps)] for every
    leg-endpoint depth [d] of every robot reached within [time_horizon]. *)

val worst_case :
  Trajectory.t array -> f:int -> ?eps:float -> ?ratio_cap:float -> n:float
  -> unit -> outcome
(** Supremum of the crash-fault detection ratio over {!candidate_targets}.
    Requires a non-empty trajectory array and [n >= 1.]. *)
