module Lazy_seq = Search_numerics.Lazy_seq

type t = {
  label : string;
  world : World.t;
  waypoints : World.point Lazy_seq.t;
}

let make ?(label = "robot") ~world wp =
  let check i =
    let p = wp i in
    (* re-validate through the world's constructor *)
    World.point world ~ray:p.World.ray ~dist:p.World.dist
  in
  { label; world; waypoints = Lazy_seq.of_fun check }

let of_excursions ?label ~world exc =
  (* Interleave explicit origin returns so that same-ray consecutive rounds
     still pass through 0, as the ORC setting requires. *)
  let wp i =
    if i mod 2 = 0 then World.origin
    else
      let ray, dist = exc ((i + 1) / 2) in
      World.point world ~ray ~dist
  in
  make ?label ~world wp

let of_line_turns ?label turns =
  let wp i =
    let d = turns i in
    if d < 0. then invalid_arg "Itinerary.of_line_turns: negative turn";
    (* odd indices head right (ray 0), even head left (ray 1) *)
    World.point World.line ~ray:((i + 1) mod 2) ~dist:d
  in
  make ?label ~world:World.line wp

let world t = t.world
let label t = t.label
let waypoint t i = Lazy_seq.get t.waypoints i
