(** Human-readable traces of a search run, for the examples.

    Produces a chronological narration of a crash-fault scenario: robot
    turns, target visits (flagging faulty visitors staying silent), and the
    detection moment. *)

type entry = {
  time : float;
  text : string;
}

val narrate_crash :
  ?min_turn_depth:float -> Trajectory.t array -> assignment:Fault.assignment
  -> target:World.point -> horizon:float -> entry list
(** Events up to (and including) detection — or up to the horizon when the
    target is never detected.  Turn events of legs after detection are
    omitted, as are turns at depth below [min_turn_depth] (default 0: show
    all) — exponential strategies begin with microscopic warm-up turns
    that only clutter a narration. *)

val pp_entry : Format.formatter -> entry -> unit
(** Renders as ["[t=12.5] robot-2 turns at ray 0 @ 8"]. *)

val print : entry list -> unit
