lib/sim/fault.ml: Array Float Format Int List String
