lib/sim/byzantine_sim.ml: Array Engine Fault Float Format List Printf Trajectory World
