lib/sim/svg_render.mli: Fault Trajectory World
