lib/sim/trajectory.ml: Float Itinerary List Printf Search_numerics World
