lib/sim/itinerary.ml: Search_numerics World
