lib/sim/exact_adversary.mli: Trajectory
