lib/sim/itinerary.mli: World
