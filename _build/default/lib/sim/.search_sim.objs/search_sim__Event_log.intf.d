lib/sim/event_log.mli: Fault Format Trajectory World
