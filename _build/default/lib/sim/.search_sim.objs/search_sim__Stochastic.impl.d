lib/sim/stochastic.ml: Engine Float List World
