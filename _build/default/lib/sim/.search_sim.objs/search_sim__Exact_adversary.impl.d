lib/sim/exact_adversary.ml: Array Float Fun List Trajectory World
