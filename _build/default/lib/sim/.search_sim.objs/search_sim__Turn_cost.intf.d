lib/sim/turn_cost.mli: Trajectory World
