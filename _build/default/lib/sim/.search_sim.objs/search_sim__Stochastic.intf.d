lib/sim/stochastic.mli: Trajectory World
