lib/sim/engine.mli: Fault Trajectory World
