lib/sim/competitive.ml: Adversary Array Engine List Trajectory World
