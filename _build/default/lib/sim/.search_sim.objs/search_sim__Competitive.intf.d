lib/sim/competitive.mli: Adversary Trajectory
