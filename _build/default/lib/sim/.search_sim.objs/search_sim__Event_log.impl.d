lib/sim/event_log.ml: Array Engine Fault Float Format List Trajectory World
