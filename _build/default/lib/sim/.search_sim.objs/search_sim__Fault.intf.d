lib/sim/fault.mli: Format
