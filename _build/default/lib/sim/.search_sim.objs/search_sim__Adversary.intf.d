lib/sim/adversary.mli: Trajectory World
