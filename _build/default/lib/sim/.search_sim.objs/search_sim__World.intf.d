lib/sim/world.mli: Format
