lib/sim/adversary.ml: Array Engine List Search_numerics Trajectory World
