lib/sim/work_schedule.ml: Adversary Array Float List Printf Search_numerics World
