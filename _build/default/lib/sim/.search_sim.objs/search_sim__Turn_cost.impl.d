lib/sim/turn_cost.ml: Array Float List Search_numerics Trajectory World
