lib/sim/engine.ml: Array Fault Float Fun List Trajectory World
