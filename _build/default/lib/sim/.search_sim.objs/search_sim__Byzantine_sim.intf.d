lib/sim/byzantine_sim.mli: Fault Trajectory World
