lib/sim/svg_render.ml: Array Buffer Engine Fault Filename Float Fun List Printf String Sys Trajectory World
