lib/sim/trajectory.mli: Itinerary World
