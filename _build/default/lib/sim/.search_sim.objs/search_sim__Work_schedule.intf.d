lib/sim/work_schedule.mli: Trajectory World
