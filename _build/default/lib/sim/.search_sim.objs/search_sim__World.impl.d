lib/sim/world.ml: Float Format Printf
