(** Robot itineraries: infinite plans of waypoints.

    A robot's strategy, for simulation purposes, is the infinite sequence of
    waypoints it heads to, starting from the origin at time 0 and moving at
    unit speed along the star metric (through the origin when changing
    rays).  Both motion disciplines of the paper fit this model:

    - the {e zigzag} line strategies of Section 2 are waypoints alternating
      between ray 0 and ray 1 (no explicit origin stops: crossing happens
      inside a leg);
    - the {e round} strategies of Section 3 (ORC setting, m-ray cyclic and
      exponential strategies) are waypoints on varying rays, with origin
      returns implied by each ray change. *)

type t

val make :
  ?label:string -> world:World.t -> (int -> World.point) -> t
(** [make ~world wp] — [wp i] is the i-th waypoint (1-based); it must
    belong to [world].  The function is memoised; it must be pure.
    [label] names the robot in traces (default ["robot"]). *)

val of_excursions :
  ?label:string -> world:World.t -> (int -> int * float) -> t
(** [of_excursions ~world exc] builds the round-based plan where the i-th
    excursion [(ray, depth) = exc i] goes out to [depth] on [ray] and back;
    equivalent to [make] with the same waypoints (origin returns are implied
    by the star metric whenever consecutive excursions change ray, and made
    explicit here even on the same ray, matching the ORC rule that repeat
    coverings only count after a return to 0). *)

val of_line_turns : ?label:string -> (int -> float) -> t
(** Zigzag on the line from a turning-point sequence [t]: waypoints
    [+t 1, -t 2, +t 3, ...] (positive direction first, as the proofs
    normalise). *)

val world : t -> World.t
val label : t -> string

val waypoint : t -> int -> World.point
(** The i-th waypoint (1-based). *)
