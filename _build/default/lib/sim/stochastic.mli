(** Stochastic targets: the Bellman–Beck origin of the problem.

    The introduction quotes Bellman's 1963 formulation: the searcher
    "knows in advance the probability that the second man is at any given
    point of the road", and minimises the {e expected} distance
    travelled.  Beck and Newman [8] proved that without knowledge of the
    distribution one cannot guarantee expected travel below 9 times the
    expected distance — the same constant the worst-case theory yields at
    [rho = 2].

    This module evaluates strategies against finite target distributions:
    expected detection time, the Beck quotient [E T / E |d|], and
    per-distribution comparisons (a distribution-aware strategy can beat
    9 on a {e known} distribution, while the doubling strategy stays
    within 9 + o(1) on every distribution supported on [[1, N]]). *)

type distribution = private {
  support : (World.point * float) list;  (** probabilities sum to 1 *)
}

val make : (World.point * float) list -> distribution
(** Validates: nonempty, weights positive, summing to 1 within 1e-9
    (then renormalised exactly). *)

val uniform_line : cells:int -> lo:float -> hi:float -> distribution
(** The symmetric uniform distribution on [[-hi,-lo] ∪ [lo,hi]],
    discretised to [cells] equal-probability midpoints per side.
    Requires [1 <= lo < hi], [cells >= 1]. *)

val geometric_line : ratio:float -> terms:int -> lo:float -> distribution
(** Symmetric heavy-tail surrogate: distances [lo * ratio^j],
    [j = 0 .. terms-1], with probabilities proportional to [ratio^-j],
    split evenly between the two sides. *)

val point_mass : World.point -> distribution

val expected_distance : distribution -> float
(** [E |d|]. *)

val expected_detection_time :
  Trajectory.t array -> f:int -> distribution -> horizon:float -> float
(** [E T] under worst-case fault assignment per target; [infinity] when
    some support point is undetectable within the horizon. *)

val beck_quotient :
  Trajectory.t array -> f:int -> distribution -> horizon:float -> float
(** [E T /. E |d|] — Beck's figure of merit. *)

val best_sided_sweep : distribution -> float
(** A distribution-aware lower benchmark for one fault-free robot: the
    better of "sweep right first, then left" and the reverse, evaluated
    exactly on the support.  On concentrated distributions this beats the
    doubling strategy's quotient, illustrating what knowing the
    distribution buys (Bellman's original question). *)
