(** Searching with turn cost (Demaine–Fekete–Gal, cited as [15]).

    A physical robot pays for reversals: decelerating, rotating,
    re-accelerating.  The turn-cost model charges a constant [c] per
    reversal on top of unit-speed travel, which changes the optimal
    strategy's shape — frequent short zigzags become expensive, so the
    optimal geometric base grows with [c].  This module evaluates the
    charged cost of the standard strategies so the benches can plot the
    ratio-vs-[c] ablation and the base crossover.

    A {e reversal} is a leg boundary where the robot changes direction on
    a single ray (a turning-point tip).  Passing through the origin onto
    a different ray is not charged: on the line the motion is straight,
    and on a star the junction cost is a modelling choice we keep at
    zero (set [charge_origin] to charge it too). *)

val reversals_before :
  ?charge_origin:bool -> Trajectory.t -> time:float -> int
(** Number of charged direction changes strictly before [time]. *)

val charged_visit :
  ?charge_origin:bool -> Trajectory.t -> turn_cost:float
  -> target:World.point -> horizon:float -> float option
(** Earliest charged cost at which the robot reaches [target]:
    [visit_time + turn_cost * reversals_before visit_time], minimised
    over visits within the (uncharged) horizon. *)

val detection_cost :
  ?charge_origin:bool -> Trajectory.t array -> f:int -> turn_cost:float
  -> target:World.point -> horizon:float -> float option
(** Worst case over crash assignments: the [(f+1)]-st smallest charged
    visit cost. *)

val worst_ratio :
  ?charge_origin:bool -> ?eps:float -> ?ratio_cap:float
  -> Trajectory.t array -> f:int -> turn_cost:float -> n:float -> unit
  -> float
(** Supremum over targets in [[1, n]] of [detection_cost /. |x|]
    (breakpoint scan as in {!Adversary}). *)
