(** The search space: [m] rays emanating from a common origin.

    The real line of Sections 1–2 is the special case [m = 2], with ray 0
    as the positive half-axis and ray 1 as the negative one.  A robot moves
    at unit speed; moving between distinct rays passes through the origin,
    so the travel distance between [(i, d)] and [(j, d')] is [|d - d'|]
    when [i = j] and [d + d'] otherwise — the metric of a star graph, which
    is exactly the cost model of the hybrid-algorithm and contract-algorithm
    interpretations in Section 3. *)

type t
(** A world with a fixed number of rays. *)

val rays : int -> t
(** [rays m] — requires [m >= 1] ([m = 1] is the degenerate single ray of
    the ORC relaxation). *)

val line : t
(** [rays 2]. *)

val arity : t -> int

type point = { ray : int; dist : float }
(** A location: ray index in [[0, arity-1]] and distance [>= 0] from the
    origin.  The origin is [(r, 0.)] for every [r]; all such points are
    identified by {!equal_point}. *)

val point : t -> ray:int -> dist:float -> point
(** Validated constructor.
    @raise Invalid_argument on a bad ray index or negative distance. *)

val origin : point
(** The origin, canonically on ray 0. *)

val is_origin : point -> bool
val equal_point : point -> point -> bool
(** Structural equality, except all origin representations coincide. *)

val travel_distance : point -> point -> float
(** Star-metric distance (= travel time at unit speed). *)

val line_coordinate : point -> float
(** Signed coordinate for line worlds: [+dist] on ray 0, [-dist] on ray 1.
    @raise Invalid_argument for a ray index [> 1]. *)

val of_line_coordinate : float -> point
(** Inverse of {!line_coordinate}. *)

val pp_point : Format.formatter -> point -> unit
