type style = { width : int; height : int; margin : int }

let default_style = { width = 640; height = 480; margin = 32 }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b";
     "#17becf"; "#7f7f7f" |]

(* Sample a trajectory's signed line coordinate at its leg boundaries up
   to [time_max]: the polyline through those points is exact (motion is
   affine between boundaries). *)
let polyline_points tr ~time_max =
  let pts = ref [ (0., 0.) ] in
  let rec walk i =
    let l = Trajectory.leg tr i in
    let t_end =
      l.Trajectory.t_start +. Float.abs (l.Trajectory.d_to -. l.Trajectory.d_from)
    in
    let sign = if l.Trajectory.ray = 0 then 1. else -1. in
    if l.Trajectory.t_start > time_max then ()
    else begin
      let t_clip = Float.min t_end time_max in
      let d_at_clip =
        if t_end <= time_max then l.Trajectory.d_to
        else
          let progressed = t_clip -. l.Trajectory.t_start in
          let dir = if l.Trajectory.d_to >= l.Trajectory.d_from then 1. else -1. in
          l.Trajectory.d_from +. (dir *. progressed)
      in
      pts := (t_clip, sign *. d_at_clip) :: !pts;
      if t_end < time_max then walk (i + 1)
    end
  in
  walk 1;
  List.rev !pts

let space_time ?(style = default_style) ?target ?fault ?time_max trajectories =
  let n = Array.length trajectories in
  if n = 0 then invalid_arg "Svg_render.space_time: no robots";
  if n > 8 then invalid_arg "Svg_render.space_time: at most 8 robots";
  Array.iter
    (fun tr ->
      if World.arity (Trajectory.world tr) <> 2 then
        invalid_arg "Svg_render.space_time: line worlds only")
    trajectories;
  (match fault with
  | Some a when Array.length a.Fault.faulty <> n ->
      invalid_arg "Svg_render.space_time: fault assignment arity"
  | _ -> ());
  let time_max =
    match time_max with
    | Some t -> t
    | None ->
        (* show about 8 legs of the slowest robot *)
        Array.fold_left
          (fun acc tr ->
            let l = Trajectory.leg tr 8 in
            Float.max acc
              (l.Trajectory.t_start
              +. Float.abs (l.Trajectory.d_to -. l.Trajectory.d_from)))
          1. trajectories
  in
  let lines = Array.map (fun tr -> polyline_points tr ~time_max) trajectories in
  let x_extent =
    let m = ref 1. in
    Array.iter
      (fun pts -> List.iter (fun (_, x) -> m := Float.max !m (Float.abs x)) pts)
      lines;
    (match target with
    | Some p -> m := Float.max !m p.World.dist
    | None -> ());
    !m *. 1.05
  in
  let w = float_of_int style.width and h = float_of_int style.height in
  let mg = float_of_int style.margin in
  let sx x = ((x /. x_extent) +. 1.) /. 2. *. (w -. (2. *. mg)) +. mg in
  let sy t = (t /. time_max *. (h -. (2. *. mg))) +. mg in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n"
    style.width style.height style.width style.height;
  out "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n";
  (* axes: origin vertical, time arrow *)
  out
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#cccccc\" \
     stroke-dasharray=\"4 4\"/>\n"
    (sx 0.) (sy 0.) (sx 0.) (sy time_max);
  out
    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#666666\">position \
     0</text>\n"
    (sx 0. +. 4.) (mg -. 8.);
  out
    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#666666\">time \
     ↓ (to %.3g)</text>\n"
    (mg /. 3.) (h -. (mg /. 3.)) time_max;
  (* the target line and visits *)
  (match target with
  | Some p ->
      let x = World.line_coordinate p in
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"#444444\" stroke-width=\"1.5\"/>\n"
        (sx x) (sy 0.) (sx x) (sy time_max);
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"#444444\">target \
         %.3g</text>\n"
        (sx x +. 4.) (sy time_max -. 4.) x
  | None -> ());
  (* polylines *)
  Array.iteri
    (fun r pts ->
      let color = palette.(r mod Array.length palette) in
      let coords =
        pts
        |> List.map (fun (t, x) -> Printf.sprintf "%.1f,%.1f" (sx x) (sy t))
        |> String.concat " "
      in
      out
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
         stroke-width=\"1.5\" opacity=\"0.9\"/>\n"
        coords color;
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" fill=\"%s\">%s%s</text>\n"
        (w -. mg +. 4.)
        (mg +. (14. *. float_of_int r))
        color
        (Trajectory.label trajectories.(r))
        (match fault with
        | Some a when a.Fault.faulty.(r) -> " (faulty)"
        | _ -> ""))
    lines;
  (* visits and detection *)
  (match target with
  | Some p ->
      let x = World.line_coordinate p in
      Array.iteri
        (fun r tr ->
          let color = palette.(r mod Array.length palette) in
          List.iter
            (fun t ->
              out
                "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n"
                (sx x) (sy t) color)
            (Trajectory.visits tr ~target:p ~horizon:time_max))
        trajectories;
      (match fault with
      | Some assignment -> (
          match
            Engine.detection_time_fixed trajectories ~assignment ~target:p
              ~horizon:time_max
          with
          | Some t ->
              out
                "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"7\" fill=\"none\" \
                 stroke=\"#000000\" stroke-width=\"2\"/>\n"
                (sx x) (sy t)
          | None -> ())
      | None -> ())
  | None -> ());
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ~path svg =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc svg)
