(** Detection-time computation.

    Under crash faults, the searchers can be certain of the target's
    location exactly when a {e non-faulty} robot has visited it; since any
    [f] robots may be faulty and the adversary assigns faults after the
    fact, certainty against the worst case requires [f + 1] distinct robots
    to have visited the target (Section 2: "the point x has to be visited
    by at least f + 1 robots in time").  This module computes both views:
    detection under a {e fixed} assignment, and the worst case over all
    assignments, and the property tests check they agree. *)

val first_visits :
  Trajectory.t array -> target:World.point -> horizon:float -> float option array
(** Per-robot earliest visit time within the horizon. *)

val detection_time_fixed :
  Trajectory.t array -> assignment:Fault.assignment -> target:World.point
  -> horizon:float -> float option
(** Earliest visit by a robot that is honest under [assignment] (for crash
    kind; for Byzantine kind this is the same quantity — see
    {!Byzantine_sim} for announcement-level modelling). *)

val detection_time_worst :
  Trajectory.t array -> f:int -> target:World.point -> horizon:float
  -> float option
(** Worst case over assignments with [f] faults: the time of the
    [(f+1)]-st distinct robot visit, or [None] if fewer than [f + 1] robots
    visit within the horizon.  Equals
    [detection_time_fixed ~assignment:(worst assignment)]. *)

val detection_ratio :
  Trajectory.t array -> f:int -> target:World.point -> time_horizon:float
  -> float
(** [detection_time_worst /. dist]; [infinity] when undetected within
    [time_horizon].  Requires [target.dist >= 1.] (the problem's
    normalisation: targets are at distance at least 1). *)
