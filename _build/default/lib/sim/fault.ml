type kind = Crash | Byzantine
type assignment = { kind : kind; faulty : bool array }

let make kind ~faulty = { kind; faulty }
let none kind ~robots = { kind; faulty = Array.make robots false }

let count_faulty a =
  Array.fold_left (fun n b -> if b then n + 1 else n) 0 a.faulty

let worst_for_visits kind ~first_visits ~f =
  let n = Array.length first_visits in
  if f > n then invalid_arg "Fault.worst_for_visits: f > number of robots";
  let order =
    List.init n (fun r -> r)
    |> List.sort (fun r1 r2 ->
           match (first_visits.(r1), first_visits.(r2)) with
           | Some t1, Some t2 ->
               let c = Float.compare t1 t2 in
               if c <> 0 then c else Int.compare r1 r2
           | Some _, None -> -1
           | None, Some _ -> 1
           | None, None -> Int.compare r1 r2)
  in
  let faulty = Array.make n false in
  List.iteri (fun i r -> if i < f then faulty.(r) <- true) order;
  { kind; faulty }

let pp ppf a =
  let kind = match a.kind with Crash -> "crash" | Byzantine -> "byzantine" in
  let marks =
    Array.to_list a.faulty
    |> List.map (fun b -> if b then "x" else ".")
    |> String.concat ""
  in
  Format.fprintf ppf "%s[%s]" kind marks
