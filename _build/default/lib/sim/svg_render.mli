(** SVG space–time diagrams of line strategies.

    The classic picture of a line-search strategy is its space–time
    diagram: signed position on the horizontal axis, time flowing
    downward.  Zigzags are polylines, the target is a vertical line,
    visits are dots, detection is a circle.  This renders such diagrams
    as standalone SVG — the repository's figures are generated, not
    drawn.  Line worlds only (two rays); the m-ray generalisation has no
    canonical planar embedding. *)

type style = {
  width : int;  (** pixel width, default 640 *)
  height : int;  (** pixel height, default 480 *)
  margin : int;  (** default 32 *)
}

val default_style : style

val space_time :
  ?style:style -> ?target:World.point -> ?fault:Fault.assignment
  -> ?time_max:float -> Trajectory.t array -> string
(** The diagram for up to 8 robots on the line.  [time_max] defaults to
    a window showing the first ~8 legs of the slowest robot.  When
    [target] is given, its vertical line, every robot's visits, and —
    when [fault] is given — the detection moment (first honest visit)
    are marked.  @raise Invalid_argument for non-line worlds or empty
    arrays. *)

val write : path:string -> string -> unit
(** Write an SVG document to a file (creates the parent directory's leaf
    level as {!Search_numerics.Csv_out.write} does). *)
