(** Assigned intervals: the exact-coverage normalisation of the proofs.

    Both proofs turn a [demand]-fold λ-covering into a system of
    {e assigned} half-open intervals [(t', t]] — truncations of the cover
    intervals — such that every point of [(1, a]] is covered {e exactly}
    [demand] times, the turning points of each robot coincide with the
    right ends of its intervals, and unneeded turning points are removed
    from the robot's strategy (shrinking its load).  Exactness forces the
    intervals, sorted by left endpoint, to begin precisely at the current
    [demand]-fold frontier [a(P)] — the property the potential-function
    step analysis rests on.

    This module constructs such a system {e greedily}: it sweeps the
    frontier rightward, and at each step starts, at the frontier, the
    candidate interval with the earliest right end (earliest-deadline-
    first) among those whose robot may legally begin one there:

    - ORC setting: robot [r] may start an interval at [a] when its load
      (sum of its used turning points) satisfies [L(r) <= mu a] — this is
      constraint (14), i.e. the round's threshold [t'' = L/mu] has been
      reached; any unused turn [t > a] may serve as the right end.
    - Line setting: constraint (4) includes the new turn in the sum, so a
      turn [t] qualifies when [a < t <= mu a - L(r)] (eq. 5).

    The greedy can fail ([Stuck]) even when some assignment exists; for
    the strategies exercised here (normalised / geometric families) it
    succeeds whenever the sweep coverage check does, which the tests
    verify.  A [Stuck] outcome is therefore reported as {e inconclusive}
    by the certificate, never as a refutation. *)

type setting = Line_symmetric | Orc_setting

type interval = {
  robot : int;  (** 0-based owner *)
  left : float;  (** [t'] — equals the frontier when it was started *)
  turn : float;  (** [t] — the right end = the robot's turning point *)
}

type outcome =
  | Complete of interval list
      (** frontier pushed past the target; intervals in assignment order *)
  | Stuck of { frontier : float; assigned : interval list }
      (** no robot could legally start an interval at the frontier *)

val build :
  setting -> mu:float -> demand:int -> turns:Search_strategy.Turning.t array
  -> up_to:float -> ?max_steps:int -> unit -> outcome
(** Sweep from frontier 1 until it exceeds [up_to] (or [max_steps]
    assignments, default 1_000_000, or the greedy gets stuck).  Robots'
    turns are consumed in order; turns [<=] the frontier that cannot serve
    as right ends are skipped (removed from the robot's strategy, per the
    proofs).  Requires [mu > 0.], [demand >= 1], at least one robot. *)

val loads : interval list -> robots:int -> float array
(** Final per-robot loads (sums of used turning points). *)

val frontier_multiset : demand:int -> interval list -> float list
(** The covering multiset [A(P)] after the whole list: sorted ascending,
    [a_demand <= ... <= a_1], starting from [demand] copies of 1. *)

val pp_interval : Format.formatter -> interval -> unit
