type result = { turns : float list; horizon : float; steps : int }

let line_single ~lambda =
  if lambda <= 1. then invalid_arg "Frontier.line_single: need lambda > 1";
  let mu = (lambda -. 1.) /. 2. in
  if mu >= 4. then
    invalid_arg "Frontier.line_single: lambda >= 9, coverage is unbounded";
  (* t_1 = mu (the largest first turn whose interval [t_1/mu, t_1] still
     reaches down to 1); then t_i = mu t_{i-1} - sum_{<i} while growing *)
  let rec grow acc sum prev =
    let t = (mu *. prev) -. sum in
    if t > prev then grow (t :: acc) (sum +. t) t else List.rev acc
  in
  let turns = grow [ mu ] mu mu in
  let horizon = List.fold_left Float.max 1. turns in
  { turns; horizon; steps = List.length turns }

let line_single_horizon ~lambda = (line_single ~lambda).horizon

let multi ~lambda ~k ~demand ?(max_steps = 100_000) () =
  if lambda <= 1. then invalid_arg "Frontier.multi: need lambda > 1";
  if k < 1 || demand < 1 then invalid_arg "Frontier.multi: need k, demand >= 1";
  let mu = (lambda -. 1.) /. 2. in
  let bound = Search_bounds.Formulas.lambda0 ~q:(k + demand) ~k in
  if lambda >= bound then
    invalid_arg "Frontier.multi: lambda at or above the instance's bound";
  let loads = Array.make k 0. in
  let insert x ms =
    let rec ins = function
      | [] -> [ x ]
      | y :: r -> if x <= y then x :: y :: r else y :: ins r
    in
    ins ms
  in
  let rec loop multiset acc steps =
    let a = match multiset with x :: _ -> x | [] -> 1. in
    (* robot with the largest budget mu a - L_r *)
    let best = ref 0 in
    for r = 1 to k - 1 do
      if loads.(r) < loads.(!best) then best := r
    done;
    let t = (mu *. a) -. loads.(!best) in
    if t <= a || steps >= max_steps then
      { turns = List.rev acc; horizon = a; steps }
    else begin
      loads.(!best) <- loads.(!best) +. t;
      let multiset =
        match multiset with _ :: rest -> insert t rest | [] -> [ t ]
      in
      loop multiset (t :: acc) (steps + 1)
    end
  in
  loop (List.init demand (fun _ -> 1.)) [] 0

let horizon_curve ~lambdas =
  List.map
    (fun lambda ->
      let reach = log (line_single_horizon ~lambda) in
      let cap =
        Certificate.log_horizon_bound Assigned.Line_symmetric ~k:1 ~demand:1
          ~lambda ()
      in
      (lambda, reach, cap))
    lambdas

let characteristic_discriminant ~lambda =
  let mu = (lambda -. 1.) /. 2. in
  (mu *. mu) -. (4. *. mu)
