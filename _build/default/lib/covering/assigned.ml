module Turning = Search_strategy.Turning

type setting = Line_symmetric | Orc_setting

type interval = { robot : int; left : float; turn : float }

type outcome =
  | Complete of interval list
  | Stuck of { frontier : float; assigned : interval list }

(* Relative slack on the legality constraints: the optimal strategies make
   them hold with equality, and we must not let rounding turn a tight
   assignment into a spurious Stuck. *)
let slack = 1e-9

let insert_sorted x xs =
  let rec go = function
    | [] -> [ x ]
    | y :: rest -> if x <= y then x :: y :: rest else y :: go rest
  in
  go xs

let build setting ~mu ~demand ~turns ~up_to ?(max_steps = 1_000_000) () =
  if mu <= 0. then invalid_arg "Assigned.build: need mu > 0";
  if demand < 1 then invalid_arg "Assigned.build: need demand >= 1";
  let k = Array.length turns in
  if k = 0 then invalid_arg "Assigned.build: no robots";
  let next_idx = Array.make k 1 in
  let load = Array.make k 0. in
  (* First unused turn strictly beyond the frontier; smaller turns can
     never serve as right ends again (the frontier only grows), so they
     are permanently skipped — "we can actually skip the corresponding
     turning point in the robot's strategy". *)
  let next_turn_beyond r a =
    let rec skip () =
      let t = Turning.get turns.(r) next_idx.(r) in
      if t <= a then begin
        next_idx.(r) <- next_idx.(r) + 1;
        skip ()
      end
      else t
    in
    skip ()
  in
  let candidate r a =
    let give = slack *. Float.max 1. (mu *. a) in
    match setting with
    | Orc_setting ->
        (* constraint (14): the robot's threshold L/mu must have reached
           the frontier before a new round can cover from there *)
        if load.(r) <= (mu *. a) +. give then Some (next_turn_beyond r a)
        else None
    | Line_symmetric ->
        (* constraint (5): t <= mu a - (sum of used turns) *)
        let t = next_turn_beyond r a in
        if load.(r) +. t <= (mu *. a) +. give then Some t else None
  in
  let rec loop multiset assigned steps =
    match multiset with
    | [] -> assert false
    | a :: rest ->
        if a >= up_to then Complete (List.rev assigned)
        else if steps >= max_steps then
          Stuck { frontier = a; assigned = List.rev assigned }
        else begin
          let best = ref None in
          for r = 0 to k - 1 do
            match candidate r a with
            | Some t -> (
                match !best with
                | Some (_, tb) when tb <= t -> ()
                | Some _ | None -> best := Some (r, t))
            | None -> ()
          done;
          match !best with
          | None -> Stuck { frontier = a; assigned = List.rev assigned }
          | Some (r, t) ->
              load.(r) <- load.(r) +. t;
              next_idx.(r) <- next_idx.(r) + 1;
              let multiset = insert_sorted t rest in
              loop multiset ({ robot = r; left = a; turn = t } :: assigned)
                (steps + 1)
        end
  in
  loop (List.init demand (fun _ -> 1.)) [] 0

let loads intervals ~robots =
  let l = Array.make robots 0. in
  List.iter (fun iv -> l.(iv.robot) <- l.(iv.robot) +. iv.turn) intervals;
  l

let frontier_multiset ~demand intervals =
  List.fold_left
    (fun ms iv ->
      match ms with
      | [] -> assert false
      | _ :: rest -> insert_sorted iv.turn rest)
    (List.init demand (fun _ -> 1.))
    intervals

let pp_interval ppf { robot; left; turn } =
  Format.fprintf ppf "r%d:(%g, %g]" robot left turn
