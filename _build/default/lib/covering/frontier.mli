(** Optimal finite-horizon coverage below the bound.

    Theorem 3 forbids λ-covering all of [R >= 1] below the bound, but its
    quantitative form — inequality (12)'s ε–N trade-off — allows finite
    prefixes [[1, N(lambda)]], with [N(lambda) -> infinity] as [lambda]
    approaches the bound.  This module constructs the {e best} such
    finite covering for a single robot on the line and measures how far
    it reaches, the empirical lower half of the sandwich whose upper half
    is {!Certificate.log_horizon_bound}.

    Construction (one robot, [s = 1], [mu = (lambda-1)/2 < 4]): choose
    each turning point {e greedily maximal},

    [t_i = mu t_{i-1} - (t_1 + ... + t_{i-1})],

    the largest value keeping the cover contiguous (constraint (5) with
    the new interval starting at the previous turn).  Greedy is optimal
    here: the next budget is [(mu - 1) t_i - sum_{<i}], strictly
    increasing in [t_i] (as [mu > 1]), so taking the maximum now
    dominates every alternative both immediately and in all future
    steps.  The recursion is linear with characteristic polynomial
    [z^2 - mu z + mu]; below [mu = 4] its roots are complex and the
    sequence turns over and dies in finitely many steps — the same
    [mu = 4] (i.e. [lambda = 9]) boundary the potential argument yields. *)

type result = {
  turns : float list;
      (** the greedy-maximal turning points; [t_1 = mu], the largest
          first turn whose cover interval still reaches down to 1 *)
  horizon : float;  (** the last coverable point, [= last turn] *)
  steps : int;
}

val line_single : lambda:float -> result
(** The optimal single-robot finite covering at [lambda < 9.]; for
    [lambda >= 9.] the recursion grows forever, and the function raises.
    @raise Invalid_argument when [lambda >= 9.] or [lambda <= 1.]. *)

val line_single_horizon : lambda:float -> float
(** Just the reach. *)

val multi : lambda:float -> k:int -> demand:int -> ?max_steps:int -> unit -> result
(** The multi-robot generalisation (line setting): free choice of turn
    values, greedy-maximal at every step — at frontier [a], the robot
    with the largest remaining budget [mu a - L_r] takes an interval
    ending there (constraint (5) with equality).  Exact and provably
    optimal for [k = 1, demand = 1] (it then equals {!line_single});
    for larger instances the greedy is a strong heuristic lower bound on
    the optimal reach, still capped by
    {!Certificate.log_horizon_bound}.  Requires [lambda] strictly below
    the instance's bound (otherwise the loop would not terminate; it is
    also guarded by [max_steps], default 100_000, returning the reach so
    far).  [turns] in the result are the assigned right ends in
    assignment order. *)

val horizon_curve : lambdas:float list -> (float * float * float) list
(** For each λ: [(lambda, ln horizon, ln theoretical_bound)] — the
    empirical reach against {!Certificate.log_horizon_bound}'s cap; both
    diverge as [lambda -> 9.], the constructed one always below. *)

val characteristic_discriminant : lambda:float -> float
(** [mu^2 - 4 mu] for [mu = (lambda-1)/2]: negative exactly below the
    bound (oscillatory death), zero at [lambda = 9.]. *)
