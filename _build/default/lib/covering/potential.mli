(** The potential functions of the proofs (eqs. (7) and (15)), evaluated
    along a prefix of assigned intervals.

    Line setting (eq. 7, demand [s]):
    [f(P) = (prod_r L_r^s) / (prod_{y in A(P)} y)^k], bounded by
    [mu^(k s)] (eq. 8).

    ORC setting (eq. 15, demand [q]):
    [f(P) = (prod_r L_r^(q-k) b_r^k) / (prod_{y in A(P)} y)^k] where
    [b_r] is the left end of robot [r]'s first interval {e not} in the
    prefix; bounded by [C^(q k) mu^((q-k) k)] whenever consecutive left
    ends of each robot stay within a factor [C] (Case 1 of the proof —
    the trace reports the observed [C]).

    Lemma 5 guarantees that every step multiplies [f] by at least
    [delta = (k+s)^(k+s) / (s^s k^k mu^k)] (with [s = q - k] in the ORC
    case); [delta > 1] exactly when [mu] is below the paper's bound, and
    then boundedness caps the number of steps — the contradiction.  All
    quantities are kept in log-domain. *)

type step = {
  index : int;  (** 1-based position in the assignment order *)
  interval : Assigned.interval;
  frontier : float;  (** [a(P)] before this interval was added *)
  log_potential : float option;
      (** [ln f(P)] after this step; [None] while undefined (some robot
          still has zero load, or — ORC — no next interval) *)
  step_ratio : float option;
      (** [f(P+)/f(P)] across this step, when both sides are defined *)
}

type trace = {
  steps : step list;
  delta : float;  (** Lemma 5's guaranteed per-step growth factor *)
  log_ceiling : float;
      (** [ln] of the boundedness ceiling ((8), or Case 1 with the
          observed [C]) *)
  observed_c : float option;
      (** ORC: max over robots and steps of (next left end / frontier) *)
  max_log_potential : float;  (** [neg_infinity] if never defined *)
  exceeded : bool;  (** did the potential provably exceed its ceiling *)
}

val analyze :
  Assigned.setting -> k:int -> demand:int -> mu:float
  -> Assigned.interval list -> trace
(** Requires [k >= 1], [demand > k] for ORC and [demand >= 1] for the line
    setting ([demand] plays the role of [s] there), [mu > 0.]. *)

val delta : Assigned.setting -> k:int -> demand:int -> mu:float -> float
(** Just the growth factor: Lemma 5 with [s = demand] (line) or
    [s = demand - k] (ORC). *)
