module Sweep = Search_numerics.Sweep
module Orc_round = Search_strategy.Orc_round
module Mray = Search_strategy.Mray_exponential
module Turning = Search_strategy.Turning
module Params = Search_bounds.Params

let mu_of_lambda lambda =
  if lambda <= 1. then invalid_arg "Orc: need lambda > 1";
  (lambda -. 1.) /. 2.

let cover_intervals_within turns ~lambda ~within =
  let mu = mu_of_lambda lambda in
  Orc_round.cover_intervals_within turns ~mu ~within ()

let group_intervals turns_array ~lambda ~within =
  Array.to_list turns_array
  |> List.concat_map (fun turns ->
         cover_intervals_within turns ~lambda ~within |> List.map snd)

let check turns_array ~demand ~lambda ~n =
  if n < 1. then invalid_arg "Orc.check: need n >= 1";
  let ivs = group_intervals turns_array ~lambda ~within:(1., n) in
  Sweep.check ~demand ~within:(1., n) ivs

let max_covered turns_array ~demand ~lambda ~n =
  match check turns_array ~demand ~lambda ~n with
  | Sweep.Covered -> n
  | Sweep.Gap { from_; _ } -> Float.max 1. from_

let of_mray strat ~robot =
  let p = Mray.params strat in
  let k = p.Params.k in
  if robot < 0 || robot >= k then invalid_arg "Orc.of_mray: robot out of range";
  (* pass index l starts at the strategy's l_min; depths are increasing in l *)
  let itin = Mray.itinerary strat ~robot in
  Turning.of_fun (fun i ->
      let wp = Search_sim.Itinerary.waypoint itin ((2 * i) - 1) in
      wp.Search_sim.World.dist)

let of_mray_group strat =
  let p = Mray.params strat in
  Array.init p.Params.k (fun robot -> of_mray strat ~robot)
