(** The Case-2 machinery of the Section 3.1 induction.

    The ORC potential's boundedness (Case 1) needs consecutive starting
    points of each robot's assigned intervals to stay within a constant
    factor [C].  When a robot {e jumps} — [t'_{i+1} / t'_i >= C] — the
    proof switches to Case 2: constraint (14) keeps all of that robot's
    earlier intervals below [mu t'_i], so on the window
    [[mu t'_i, C t'_i]] the jumping robot covers at most once, and the
    remaining [k - 1] robots must produce a [(q-1)]-fold λ-covering of it;
    rescaling the window to [[1, C/mu]] yields the [(k-1, q-1)] instance
    the induction hypothesis applies to, with the gap
    [eps' = 2 mu(q-1, k-1) - 2 mu(q, k)] ({!Search_bounds.Asymptotics.epsilon'}).

    This module makes the case split executable: detect jumps, extract
    the reduced sub-instance, and verify the reduced coverage with the
    sweep. *)

type jump = {
  robot : int;
  from_left : float;  (** [t'_i] *)
  to_left : float;  (** [t'_{i+1}], with [to_left /. from_left >= c] *)
}

val jumps : Assigned.interval list -> c:float -> jump list
(** All consecutive-interval jumps of ratio at least [c], in assignment
    order.  Requires [c > 1.]. *)

val observed_c : Assigned.interval list -> float
(** The largest consecutive-left-end ratio over all robots — the smallest
    [C] under which the run is pure Case 1 (1. when no robot has two
    intervals). *)

type case =
  | Case1 of { c : float }
      (** no jump: every robot's left ends stay within factor [c] *)
  | Case2 of {
      jump : jump;
      window : float * float;  (** [[mu * from_left, c * from_left]] *)
      rescale : float;  (** divide by this to map the window to [[1, _]] *)
      reduced_k : int;
      reduced_demand : int;
    }

val classify :
  Assigned.interval list -> k:int -> demand:int -> mu:float -> c:float -> case
(** The proof's case split for a completed assignment. *)

val verify_reduction :
  turns:Search_strategy.Turning.t array -> jump:jump -> mu:float
  -> demand:int -> Search_numerics.Sweep.verdict
(** Check Case 2's consequence directly: do the other [k - 1] robots
    [(demand-1)]-fold λ-cover the window [[mu *. from_left, to_left]] in
    the ORC setting?  (Uses the jump's [to_left] as the window end — the
    concrete [C t'_i] of this run.)  For a strategy that genuinely
    λ-covers, this must hold; its rescaled form is the [(k-1, q-1)]
    instance of the induction. *)

val epsilon' : q:int -> k:int -> float
(** Re-export of {!Search_bounds.Asymptotics.epsilon'}: the induction
    gap. *)
