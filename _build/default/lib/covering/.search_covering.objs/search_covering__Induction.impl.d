lib/covering/induction.ml: Array Assigned Float Hashtbl List Search_bounds Search_numerics Search_strategy
