lib/covering/frontier.mli:
