lib/covering/frontier.ml: Array Assigned Certificate Float List Search_bounds
