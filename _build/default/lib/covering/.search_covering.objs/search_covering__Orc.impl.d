lib/covering/orc.ml: Array Float List Search_bounds Search_numerics Search_sim Search_strategy
