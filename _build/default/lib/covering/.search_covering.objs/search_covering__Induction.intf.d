lib/covering/induction.mli: Assigned Search_numerics Search_strategy
