lib/covering/potential.ml: Array Assigned Float List Option Search_bounds
