lib/covering/certificate.mli: Assigned Format Potential Search_strategy
