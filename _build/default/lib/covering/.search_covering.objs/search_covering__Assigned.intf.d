lib/covering/assigned.mli: Format Search_strategy
