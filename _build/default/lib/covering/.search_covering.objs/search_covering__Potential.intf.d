lib/covering/potential.mli: Assigned
