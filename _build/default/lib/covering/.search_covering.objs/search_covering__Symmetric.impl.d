lib/covering/symmetric.ml: Array Float List Search_numerics Search_strategy
