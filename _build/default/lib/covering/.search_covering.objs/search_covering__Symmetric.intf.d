lib/covering/symmetric.mli: Search_numerics Search_strategy
