lib/covering/assigned.ml: Array Float Format List Search_strategy
