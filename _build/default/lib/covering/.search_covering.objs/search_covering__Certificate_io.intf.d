lib/covering/certificate_io.mli: Assigned Certificate Search_numerics Search_strategy
