lib/covering/orc.mli: Search_numerics Search_strategy
