lib/covering/fractional.mli: Search_numerics Search_strategy
