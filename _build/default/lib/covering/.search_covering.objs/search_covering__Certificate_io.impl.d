lib/covering/certificate_io.ml: Array Assigned Certificate Float Format List Option Potential Printf Result Search_numerics
