lib/covering/certificate.ml: Array Assigned Float Format List Orc Potential Printf Search_numerics Symmetric
