lib/covering/fractional.ml: Array Float List Search_bounds Search_numerics Search_strategy
