(** Machine-readable certificates: export, parse, re-check.

    A certificate verdict is only as good as one's ability to re-derive
    it.  This module serialises a {!Certificate} run — the covering
    parameters and the verdict, including the gap witness or the
    potential trace summary — to JSON, parses it back, and {e re-checks}
    a parsed certificate against a strategy by re-running the covering
    machinery and comparing outcomes.  The CLI's [certify --json] /
    [recheck] pair round-trips through this format. *)

type kind =
  | Refuted_gap of { at : float; multiplicity : int }
  | Refuted_potential of {
      steps : int;
      max_log_potential : float;
      log_ceiling : float;
    }
  | Not_refuted of { delta : float }
  | Inconclusive of string

type parsed = {
  setting : Assigned.setting;
  k : int;
  demand : int;
  lambda : float;
  n : float;
  kind : kind;
}

val export :
  setting:Assigned.setting -> k:int -> demand:int -> lambda:float -> n:float
  -> Certificate.verdict -> Search_numerics.Json.t
(** Serialise a verdict with its run parameters. *)

val export_string :
  ?pretty:bool -> setting:Assigned.setting -> k:int -> demand:int
  -> lambda:float -> n:float -> Certificate.verdict -> string

val parse : Search_numerics.Json.t -> (parsed, string) result
val parse_string : string -> (parsed, string) result

val recheck :
  parsed -> turns:Search_strategy.Turning.t array -> (unit, string) result
(** Re-run the certificate for the recorded parameters against [turns]
    and confirm the recorded verdict: same kind, gap witness within
    relative [1e-6], potential summary within absolute [1e-6].  [Error]
    explains the first discrepancy.  Also validates that [turns] has the
    recorded [k]. *)

(** {1 Assignment proof objects}

    A complete assigned-interval system is a {e standalone} proof object:
    its validity (exact coverage starting from 1, the setting's load
    constraints) and the consequences the proofs draw from it (per-step
    potential growth at least Lemma 5's [delta], the ceiling) can all be
    re-derived from the raw intervals, with no strategy or trust in the
    producer required. *)

type assignment_doc = {
  a_setting : Assigned.setting;
  a_k : int;
  a_demand : int;
  a_mu : float;
  intervals : Assigned.interval list;
}

val export_assignment : assignment_doc -> Search_numerics.Json.t
val parse_assignment : Search_numerics.Json.t -> (assignment_doc, string) result

val check_assignment : assignment_doc -> (unit, string) result
(** Independent verification, interval by interval:
    - every interval starts at the current demand-fold frontier
      (exactness; relative tolerance 1e-6) and ends strictly beyond it;
    - the owner obeys the setting's constraint ((14) for ORC, (5) for the
      line) at that moment;
    - every defined potential step ratio is at least
      [Potential.delta - 1e-6], and the potential never exceeds its
      ceiling — the numerical confirmation of Lemma 5 and eq. (8) on this
      object. *)
