module Lemma = Search_bounds.Lemma

type step = {
  index : int;
  interval : Assigned.interval;
  frontier : float;
  log_potential : float option;
  step_ratio : float option;
}

type trace = {
  steps : step list;
  delta : float;
  log_ceiling : float;
  observed_c : float option;
  max_log_potential : float;
  exceeded : bool;
}

let delta setting ~k ~demand ~mu =
  let s =
    match setting with
    | Assigned.Line_symmetric -> demand
    | Assigned.Orc_setting -> demand - k
  in
  if s < 1 then invalid_arg "Potential.delta: effective s must be >= 1";
  Lemma.delta ~s ~k ~mu

(* ln f(P) for the line setting: s * sum ln L_r - k * sum ln y.  Defined
   once every robot has positive load. *)
let line_log_potential ~s ~k loads multiset =
  let all_positive = Array.for_all (fun l -> l > 0.) loads in
  if not all_positive then None
  else
    let sum_ln_loads = Array.fold_left (fun acc l -> acc +. log l) 0. loads in
    let sum_ln_y = List.fold_left (fun acc y -> acc +. log y) 0. multiset in
    Some ((float_of_int s *. sum_ln_loads) -. (float_of_int k *. sum_ln_y))

(* ln f(P) for the ORC setting; [next_left r] is b_r, None when robot r has
   no further interval. *)
let orc_log_potential ~q ~k loads multiset ~next_left =
  let all_defined =
    Array.for_all (fun l -> l > 0.) loads
    && Array.for_all Option.is_some next_left
  in
  if not all_defined then None
  else
    let acc = ref 0. in
    Array.iteri
      (fun r l ->
        let b = Option.get next_left.(r) in
        acc :=
          !acc
          +. (float_of_int (q - k) *. log l)
          +. (float_of_int k *. log b))
      loads;
    let sum_ln_y = List.fold_left (fun a y -> a +. log y) 0. multiset in
    Some (!acc -. (float_of_int k *. sum_ln_y))

let analyze setting ~k ~demand ~mu intervals =
  if k < 1 then invalid_arg "Potential.analyze: need k >= 1";
  if mu <= 0. then invalid_arg "Potential.analyze: need mu > 0";
  let d = delta setting ~k ~demand ~mu in
  let n = List.length intervals in
  let arr = Array.of_list intervals in
  (* Per-robot positions of intervals, for the ORC lookahead b_r. *)
  let positions = Array.make k [] in
  Array.iteri
    (fun i (iv : Assigned.interval) ->
      positions.(iv.robot) <- (i, iv.left) :: positions.(iv.robot))
    arr;
  Array.iteri (fun r ps -> positions.(r) <- List.rev ps) positions;
  (* b_r after prefix of length len: first left of r at position >= len. *)
  let next_left_after len r =
    List.find_opt (fun (i, _) -> i >= len) positions.(r) |> Option.map snd
  in
  let loads = Array.make k 0. in
  let observed_c = ref None in
  let steps = ref [] in
  let prev_log = ref None in
  let max_log = ref neg_infinity in
  let multiset = ref (List.init demand (fun _ -> 1.)) in
  Array.iteri
    (fun i (iv : Assigned.interval) ->
      let frontier = match !multiset with a :: _ -> a | [] -> 1. in
      loads.(iv.robot) <- loads.(iv.robot) +. iv.turn;
      (multiset :=
         match !multiset with
         | _ :: rest ->
             let rec ins x = function
               | [] -> [ x ]
               | y :: r -> if x <= y then x :: y :: r else y :: ins x r
             in
             ins iv.turn rest
         | [] -> assert false);
      let len = i + 1 in
      let log_potential =
        match setting with
        | Assigned.Line_symmetric ->
            line_log_potential ~s:demand ~k loads !multiset
        | Assigned.Orc_setting ->
            let next_left = Array.init k (next_left_after len) in
            (* track the Case-1 constant: next left end / current frontier *)
            let a_now = match !multiset with a :: _ -> a | [] -> 1. in
            Array.iter
              (function
                | Some b when a_now > 0. ->
                    let c = b /. a_now in
                    observed_c :=
                      Some
                        (match !observed_c with
                        | None -> c
                        | Some c0 -> Float.max c0 c)
                | Some _ | None -> ())
              next_left;
            orc_log_potential ~q:demand ~k loads !multiset ~next_left
      in
      let step_ratio =
        match (!prev_log, log_potential) with
        | Some p, Some c -> Some (exp (c -. p))
        | _ -> None
      in
      (match log_potential with
      | Some lp ->
          prev_log := Some lp;
          if lp > !max_log then max_log := lp
      | None -> ());
      steps :=
        { index = len; interval = iv; frontier; log_potential; step_ratio }
        :: !steps)
    arr;
  ignore n;
  let log_ceiling =
    match setting with
    | Assigned.Line_symmetric -> float_of_int (k * demand) *. log mu
    | Assigned.Orc_setting ->
        let c = match !observed_c with Some c -> c | None -> 1. in
        (float_of_int (demand * k) *. log c)
        +. (float_of_int ((demand - k) * k) *. log mu)
  in
  {
    steps = List.rev !steps;
    delta = d;
    log_ceiling;
    observed_c = !observed_c;
    max_log_potential = !max_log;
    exceeded = !max_log > log_ceiling;
  }
