module Rational = Search_numerics.Rational
module Formulas = Search_bounds.Formulas
module Orc_round = Search_strategy.Orc_round

type weighted = { weight : float; turns : Search_strategy.Turning.t }
type verdict = Covered | Gap of { at : float; weight : float }

let check fleet ~eta ~lambda ~n =
  if eta < 1. then invalid_arg "Fractional.check: need eta >= 1";
  if lambda <= 1. then invalid_arg "Fractional.check: need lambda > 1";
  if n < 1. then invalid_arg "Fractional.check: need n >= 1";
  List.iter
    (fun w ->
      if w.weight <= 0. then invalid_arg "Fractional.check: weights must be > 0")
    fleet;
  let mu = (lambda -. 1.) /. 2. in
  (* weighted intervals: (weight, interval), multi-covering per round *)
  let weighted_intervals =
    List.concat_map
      (fun { weight; turns } ->
        Orc_round.cover_intervals_within turns ~mu ~within:(1., n) ()
        |> List.map (fun (_, iv) -> (weight, iv)))
      fleet
  in
  (* weighted sweep: evaluate total weight at piece midpoints *)
  let cuts =
    List.concat_map
      (fun (_, (iv : Search_numerics.Interval1.t)) ->
        [ iv.Search_numerics.Interval1.lo; iv.Search_numerics.Interval1.hi ])
      weighted_intervals
    |> List.filter (fun x -> x > 1. && x < n)
    |> List.sort_uniq Float.compare
  in
  let points = (1. :: cuts) @ [ n ] in
  let weight_at x =
    List.fold_left
      (fun acc (w, iv) ->
        if Search_numerics.Interval1.mem x iv then acc +. w else acc)
      0. weighted_intervals
  in
  let tolerance = 1e-12 *. eta in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        let mid = 0.5 *. (a +. b) in
        let w = weight_at mid in
        if w +. tolerance < eta then Gap { at = mid; weight = w }
        else scan rest
    | [ _ ] | [] -> Covered
  in
  scan points

let upper_approximations ~eta ~count =
  if eta <= 1. then invalid_arg "Fractional.upper_approximations: need eta > 1";
  Rational.approximations_above ~target:eta ~count
  |> List.map (fun r ->
         let q = Rational.num r and k = Rational.den r in
         (r, Formulas.lambda0 ~q ~k))

let lower_bound_eps ~eta ~eps =
  if not (eta -. eps > 1.) then
    invalid_arg "Fractional.lower_bound_eps: need eta - eps > 1";
  (2. *. Formulas.mu_rho (eta -. eps)) +. 1. -. eps

let c_eta = Formulas.c_eta

let split { weight; turns } ~parts =
  if parts < 1 then invalid_arg "Fractional.split: need parts >= 1";
  List.init parts (fun _ -> { weight = weight /. float_of_int parts; turns })

let uniform_fleet ~k turns =
  if Array.length turns <> k then
    invalid_arg "Fractional.uniform_fleet: arity mismatch";
  Array.to_list turns
  |> List.map (fun t -> { weight = 1. /. float_of_int k; turns = t })
