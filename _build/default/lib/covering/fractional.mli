(** Fractional one-ray retrieval with returns (Section 3, eq. (11)).

    Finitely many weighted robots move on one ray; a point at distance
    [x >= 1] must be λ-covered (in the with-returns, per-round sense) by
    robots of total weight at least [eta], where weights are measured in
    units of the whole fleet's weight.  The [q]-fold integer covering with
    [k] robots is the instance where every robot has weight [1/k] and
    [eta = q/k]; the tight ratio is
    [C(eta) = 2 eta^eta/(eta-1)^(eta-1) + 1].

    The appendix reduces both directions to Theorem 6 through rational
    approximations [q_i / k_i -> eta]; this module implements that
    reduction executably. *)

type weighted = { weight : float; turns : Search_strategy.Turning.t }

type verdict =
  | Covered
  | Gap of { at : float; weight : float }
      (** a point whose timely covering weight falls short of [eta] *)

val check : weighted list -> eta:float -> lambda:float -> n:float -> verdict
(** Weighted ORC coverage check over [[1, n]]: at every point, the total
    weight of robots λ-covering it (per round, ORC rules) must reach
    [eta].  Weights must be positive. *)

val upper_approximations :
  eta:float -> count:int -> (Search_numerics.Rational.t * float) list
(** The appendix's "≤" direction: rationals [q_i/k_i >= eta] converging
    down to [eta], paired with the integer bound [lambda0 ~q:q_i ~k:k_i]
    = the ratio achieved by splitting weights into [k_i] equal robots.
    The floats converge (from above) to [C(eta)].  Requires [eta > 1.]. *)

val lower_bound_eps : eta:float -> eps:float -> float
(** The appendix's "≥" direction at granularity [eps]:
    [2 (eta-eps)^(eta-eps) / (eta-eps-1)^(eta-eps-1) + 1 - eps], valid
    for [eta -. eps > 1.]; converges to [C(eta)] as [eps -> 0]. *)

val c_eta : float -> float
(** Re-export of {!Search_bounds.Formulas.c_eta}: the limit value. *)

val split : weighted -> parts:int -> weighted list
(** The reduction step: replace one weighted robot by [parts] identical
    robots of weight [weight /. parts] running the same turns ("just split
    the weight between k_i robots in equal parts").  Coverage weights are
    unchanged — checked by the property tests. *)

val uniform_fleet :
  k:int -> Search_strategy.Turning.t array -> weighted list
(** [k] robots of weight [1/k] each — the embedding of the integer problem
    into the fractional one.  Requires [Array.length turns = k]. *)
