module Adversary = Search_sim.Adversary
module Sweep = Search_numerics.Sweep

type report = {
  solution : Solve.solution;
  simulated_ratio : float;
  witness : Search_sim.World.point;
  simulation_ok : bool;
  covering_ok : bool option;
  gap_to_bound : float;
}

let verify ?(tolerance = 1e-6) solution =
  let problem = solution.Solve.problem in
  let params = problem.Problem.params in
  let f = params.Search_bounds.Params.f in
  let n = problem.Problem.horizon in
  let trajectories = Solve.trajectories solution in
  let outcome = Adversary.worst_case trajectories ~f ~n () in
  let designed = solution.Solve.designed_ratio in
  let slack = tolerance *. Float.max 1. designed in
  let simulated_ratio = outcome.Adversary.ratio in
  let covering_ok =
    match Solve.orc_turns solution with
    | None -> None
    | Some turns ->
        let q = Search_bounds.Params.q params in
        let verdict =
          Search_covering.Orc.check turns ~demand:q
            ~lambda:(designed +. slack) ~n
        in
        Some (match verdict with Sweep.Covered -> true | Sweep.Gap _ -> false)
  in
  {
    solution;
    simulated_ratio;
    witness = outcome.Adversary.witness;
    simulation_ok = simulated_ratio <= designed +. slack;
    covering_ok;
    gap_to_bound = designed -. solution.Solve.bound;
  }

let all_ok r =
  r.simulation_ok && (match r.covering_ok with None -> true | Some b -> b)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>problem: %a@,bound: %.6f  designed: %.6f  simulated: %.6f@,\
     worst target: %a@,simulation: %s  covering: %s@]"
    Problem.pp r.solution.Solve.problem r.solution.Solve.bound
    r.solution.Solve.designed_ratio r.simulated_ratio
    Search_sim.World.pp_point r.witness
    (if r.simulation_ok then "ok" else "VIOLATED")
    (match r.covering_ok with
    | None -> "n/a"
    | Some true -> "ok"
    | Some false -> "VIOLATED")
