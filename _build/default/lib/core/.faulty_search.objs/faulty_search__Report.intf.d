lib/core/report.mli: Format Problem Search_bounds Search_covering
