lib/core/solve.mli: Problem Search_sim Search_strategy
