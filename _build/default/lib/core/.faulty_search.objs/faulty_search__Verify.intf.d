lib/core/verify.mli: Format Search_sim Solve
