lib/core/problem.ml: Float Format Search_bounds
