lib/core/report.ml: Buffer Format Printf Problem Search_bounds Search_covering Search_sim Solve Verify
