lib/core/problem.mli: Format Search_bounds
