lib/core/verify.ml: Float Format Problem Search_bounds Search_covering Search_numerics Search_sim Solve
