lib/core/solve.ml: Format Option Problem Search_bounds Search_covering Search_strategy
