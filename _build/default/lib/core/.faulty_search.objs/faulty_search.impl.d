lib/core/faulty_search.ml: Problem Report Search_bounds Search_covering Search_numerics Search_sim Search_strategy Solve Verify
