(** End-to-end verification of a solution.

    Three independent checks, each grounded in a different part of the
    paper, that a synthesized strategy actually delivers its bound:

    - {e simulation}: the adversary scans worst-case targets over
      [[1, horizon]] and the measured sup-ratio must not exceed the
      designed ratio (up to discretisation tolerance);
    - {e covering}: in the searching regime, the ORC projection must
      [q]-fold λ-cover [[1, horizon]] at the designed ratio — the
      relaxation the lower-bound proof pivots on;
    - {e tightness}: the designed ratio must be within tolerance of the
      closed-form optimum (for the default [alpha]). *)

type report = {
  solution : Solve.solution;
  simulated_ratio : float;
  witness : Search_sim.World.point;  (** target attaining the sup *)
  simulation_ok : bool;  (** simulated <= designed (+ tolerance) *)
  covering_ok : bool option;
      (** ORC coverage verdict; [None] outside the searching regime *)
  gap_to_bound : float;  (** designed ratio - closed-form bound, >= 0 *)
}

val verify : ?tolerance:float -> Solve.solution -> report
(** [tolerance] is relative, default [1e-6]. *)

val all_ok : report -> bool

val pp : Format.formatter -> report -> unit
