module Params = Search_bounds.Params

type fault_kind = Crash | Byzantine

type t = { params : Params.t; fault_kind : fault_kind; horizon : float }

let make ?(fault_kind = Crash) ?(horizon = 1e4) ~m ~k ~f () =
  if horizon < 1. || Float.is_nan horizon then
    invalid_arg "Problem.make: need horizon >= 1";
  { params = Params.make ~m ~k ~f; fault_kind; horizon }

let line ?fault_kind ?horizon ~k ~f () = make ?fault_kind ?horizon ~m:2 ~k ~f ()

let regime t = Params.regime t.params

let bound t = Search_bounds.Formulas.of_params t.params

let pp ppf t =
  let kind = match t.fault_kind with Crash -> "crash" | Byzantine -> "byzantine" in
  Format.fprintf ppf "%a %s faults, horizon %g" Params.pp t.params kind
    t.horizon
