test/test_bounds.ml: Alcotest Float List Printf QCheck2 QCheck_alcotest Search_bounds
