test/test_core.ml: Alcotest Array Faulty_search Float List Option Printf QCheck2 QCheck_alcotest String
