test/test_sim.ml: Alcotest Array Filename Float Format List Option Printf QCheck2 QCheck_alcotest Search_bounds Search_sim Search_strategy String Sys
