test/test_extensions.ml: Alcotest Array Filename Float Int64 List Printf QCheck2 QCheck_alcotest Search_bounds Search_covering Search_numerics Search_sim Search_strategy Sys
