test/test_covering.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest Search_bounds Search_covering Search_numerics Search_strategy
