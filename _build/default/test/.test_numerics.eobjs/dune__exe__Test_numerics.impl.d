test/test_numerics.ml: Alcotest Float Format List QCheck2 QCheck_alcotest Search_numerics String
