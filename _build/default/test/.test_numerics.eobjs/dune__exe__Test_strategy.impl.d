test/test_strategy.ml: Alcotest Array Float List Printf QCheck2 QCheck_alcotest Search_bounds Search_numerics Search_sim Search_strategy
