(* Byzantine robots: silence and lies.

   Czyzowitz et al. (ISAAC'16) let faulty robots do worse than stay
   silent: they "may claim [to have] found the target when, in fact,
   [they have] not found it".  The paper's contribution here is the
   transfer B(k, f) >= A(k, f): every crash adversary is a Byzantine
   adversary, so the new crash lower bound lifts B(3,1) from 3.93 to
   (8/3) 4^(1/3) + 1 ~ 5.2331.

   This example plays out a concrete Byzantine episode under the
   conservative confirmation rule (a location counts as found once f+1
   distinct robots have announced it there):

     1. a faulty robot falsely claims the target early and nearby;
     2. the claim never gathers f+1 = 2 announcers: no false alarm;
     3. the true target is confirmed once two robots have reached it —
        exactly the crash-model detection time, demonstrating the
        transfer on a live run. *)

module FS = Faulty_search

let () =
  let problem = FS.Problem.line ~fault_kind:FS.Problem.Byzantine ~k:3 ~f:1 () in
  Format.printf "instance: %a@." FS.Problem.pp problem;
  Format.printf "crash-transfer lower bound: B(3,1) >= %.6f (was 3.93)@.@."
    (FS.Problem.bound problem);

  let solution = FS.Solve.solve problem in
  let trajectories = FS.Solve.trajectories solution in
  let target = FS.World.point FS.World.line ~ray:1 ~dist:25. in
  (* long enough for a third robot to reach the target: the confirmation
     rule needs f+1 = 2 announcers, and the faulty visitor stays silent *)
  let horizon = 16. *. 25. in

  (* adversary: robot 1 is Byzantine *)
  let assignment = FS.Fault.make FS.Fault.Byzantine ~faulty:[| false; true; false |] in

  (* the liar fabricates a claim at whatever spot it occupies at t = 3 *)
  let lie_spot = FS.Trajectory.position trajectories.(1) 3.0 in
  let lie = { FS.Byzantine_sim.robot = 1; place = lie_spot; at_time = 3.0 } in
  Format.printf "robot-1 falsely announces the target at %a (t = 3)@.@."
    FS.World.pp_point lie_spot;

  let result =
    FS.Byzantine_sim.run trajectories ~assignment ~lies:[ lie ] ~target ~horizon
  in
  (match result.FS.Byzantine_sim.false_confirmation with
  | None -> Format.printf "no false confirmation: the lie dies alone@."
  | Some (p, t) ->
      Format.printf "SAFETY VIOLATION: %a confirmed at %g@." FS.World.pp_point p t);
  (match result.FS.Byzantine_sim.confirmed_at with
  | Some t ->
      Format.printf "true target confirmed at t = %.3f (ratio %.4f)@." t (t /. 25.)
  | None -> Format.printf "target not confirmed within the horizon@.");

  (* the transfer direction, numerically: the conservative Byzantine rule
     can only be slower than crash detection (B >= A) *)
  let byz = FS.Byzantine_sim.worst_case_detection trajectories ~f:1 ~target ~horizon in
  let crash = FS.Engine.detection_time_worst trajectories ~f:1 ~target ~horizon in
  Format.printf
    "@.worst-case detection: byzantine rule %s (needs 2f+1 = 3 visitors), \
     crash %s (needs f+1 = 2) — Byzantine is harder, hence B(k,f) >= A(k,f)@."
    (match byz with Some t -> Printf.sprintf "%.3f" t | None -> "-")
    (match crash with Some t -> Printf.sprintf "%.3f" t | None -> "-");

  (* and a short annotated timeline *)
  Format.printf "@.timeline:@.";
  List.iter
    (fun ev ->
      match ev with
      | FS.Byzantine_sim.Visit { robot; time } ->
          Format.printf "  [t=%7.3f] robot-%d reaches the target@." time robot
      | FS.Byzantine_sim.Announcement { robot; place; at_time } ->
          Format.printf "  [t=%7.3f] robot-%d announces target at %a@." at_time
            robot FS.World.pp_point place
      | FS.Byzantine_sim.Confirmed { place; time } ->
          Format.printf "  [t=%7.3f] CONFIRMED at %a@." time FS.World.pp_point
            place)
    result.FS.Byzantine_sim.events
