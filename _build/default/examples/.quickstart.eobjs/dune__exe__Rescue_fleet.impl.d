examples/rescue_fleet.ml: Array Faulty_search Format
