examples/quickstart.mli:
