examples/quickstart.ml: Faulty_search Format
