examples/rescue_fleet.mli:
