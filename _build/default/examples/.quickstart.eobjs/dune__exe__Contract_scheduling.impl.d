examples/contract_scheduling.ml: Array Faulty_search Format
