examples/cow_path.mli:
