examples/parallel_rays.mli:
