examples/byzantine_claims.ml: Array Faulty_search Format List Printf
