examples/parallel_rays.ml: Faulty_search Format List Option
