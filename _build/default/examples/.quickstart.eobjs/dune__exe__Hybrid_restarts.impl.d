examples/hybrid_restarts.ml: Faulty_search Format List
