examples/hybrid_restarts.mli:
