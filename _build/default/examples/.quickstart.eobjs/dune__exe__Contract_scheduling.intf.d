examples/contract_scheduling.mli:
