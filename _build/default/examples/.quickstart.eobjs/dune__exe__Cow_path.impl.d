examples/cow_path.ml: Faulty_search Format List
