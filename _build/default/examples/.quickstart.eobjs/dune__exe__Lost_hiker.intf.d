examples/lost_hiker.mli:
