examples/byzantine_claims.mli:
