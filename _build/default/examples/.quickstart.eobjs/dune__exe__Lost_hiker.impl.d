examples/lost_hiker.ml: Faulty_search Float Format List
