(* The classic cow path: one robot (the cow), a fence line, a hidden gate.

   "The cow goes 1 to the left, then back and 2 to the right, then back
   and 4 to the left etc." — competitive ratio 9, and the paper's general
   theorem contains the classic matching lower bound as the special case
   rho = 2 (k = 1, f = 0, m = 2).

   This example traces the doubling search against a concrete gate
   position and then shows the worst case. *)

module FS = Faulty_search

let () =
  let cow = FS.Cyclic.doubling_cow () in
  let trajectory = FS.Trajectory.compile cow in

  (* a concrete gate at coordinate -13.7 (ray 1, distance 13.7) *)
  let gate = FS.World.point FS.World.line ~ray:1 ~dist:13.7 in
  let assignment = FS.Fault.none FS.Fault.Crash ~robots:1 in
  Format.printf "--- searching for a gate at %a ---@." FS.World.pp_point gate;
  let entries =
    FS.Event_log.narrate_crash [| trajectory |] ~assignment ~target:gate
      ~horizon:1e4
  in
  FS.Event_log.print entries;

  (* worst case over all gate positions in [1, 10^4] *)
  let outcome = FS.Adversary.worst_case [| trajectory |] ~f:0 ~n:1e4 () in
  Format.printf "@.worst-case ratio on [1, 10^4]: %.4f (theory: 9, the@."
    outcome.FS.Adversary.ratio;
  Format.printf "supremum is approached just past the turning points; the@.";
  Format.printf "worst gate found is %a)@." FS.World.pp_point
    outcome.FS.Adversary.witness;

  (* a space-time diagram of the search, as SVG *)
  let fv = FS.Engine.first_visits [| trajectory |] ~target:gate ~horizon:1e4 in
  let assignment2 = FS.Fault.worst_for_visits FS.Fault.Crash ~first_visits:fv ~f:0 in
  let svg =
    FS.Svg_render.space_time ~target:gate ~fault:assignment2 ~time_max:60.
      [| trajectory |]
  in
  FS.Svg_render.write ~path:"results/cow_path.svg" svg;
  Format.printf "@.space-time diagram written to results/cow_path.svg@.";

  (* the ratio profile shows the sawtooth between turning points *)
  Format.printf "@.ratio profile (distance, ratio) on ray 0:@.";
  let profile =
    FS.Competitive.profile [| trajectory |] ~f:0 ~n:100. ~samples:12 ()
  in
  List.iter
    (fun p ->
      if p.FS.Competitive.ray = 0 then
        Format.printf "  x = %8.3f   ratio = %.4f@." p.FS.Competitive.dist
          p.FS.Competitive.ratio)
    profile
