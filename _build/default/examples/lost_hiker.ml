(* A lost hiker with a trail map: the stochastic (Bellman) version.

   Bellman's 1963 formulation — the origin of the whole line-search
   literature — gives the searcher a probability distribution over the
   target's location and asks for minimal *expected* travel.  Beck and
   Newman later showed that without the distribution one cannot beat 9
   times the expected distance; with it, one often can.

   Scenario: a hiker is lost on a trail. Rangers believe the hiker is
   most likely within a few kilometres of the trailhead (geometric-ish
   decay), slightly more likely to have headed north.  One ranger
   searches at unit speed.

   We compare, on this *known* distribution:
     - the worst-case-optimal doubling search (distribution-free);
     - the optimal *randomized* search (also distribution-free);
     - a distribution-aware plan (sweep the likely side first). *)

module FS = Faulty_search

let () =
  (* hand-built distribution: north (ray 0) heavier than south *)
  let spot ray dist w = (FS.World.point FS.World.line ~ray ~dist, w) in
  let dist =
    FS.Stochastic.make
      [
        spot 0 1. 0.18; spot 0 2. 0.15; spot 0 4. 0.12; spot 0 8. 0.09;
        spot 0 16. 0.06; spot 1 1. 0.12; spot 1 2. 0.10; spot 1 4. 0.08;
        spot 1 8. 0.06; spot 1 16. 0.04;
      ]
  in
  Format.printf "expected distance to the hiker: %.3f km@.@."
    (FS.Stochastic.expected_distance dist);

  (* distribution-free: the doubling search *)
  let cow = [| FS.Trajectory.compile (FS.Cyclic.doubling_cow ()) |] in
  let q_doubling = FS.Stochastic.beck_quotient cow ~f:0 dist ~horizon:1e4 in
  Format.printf "doubling search (worst-case optimal, ratio 9):@.";
  Format.printf "  expected time / expected distance = %.4f@.@." q_doubling;

  (* distribution-free randomized *)
  let beta = FS.Randomized.optimal_beta () in
  Format.printf "randomized search (KRT, expected ratio %.4f on EVERY target):@."
    (FS.Randomized.optimal_ratio ());
  (* evaluate E over both the distribution and the randomness *)
  let expected_random =
    List.fold_left
      (fun acc (p, w) ->
        let x = FS.World.line_coordinate p in
        acc
        +. w
           *. FS.Randomized.expected_ratio_exact ~beta ~x ~grid:400
           *. Float.abs x)
      0. dist.FS.Stochastic.support
  in
  Format.printf "  expected time / expected distance = %.4f@.@."
    (expected_random /. FS.Stochastic.expected_distance dist);

  (* distribution-aware: sweep the heavy side first *)
  let q_sided = FS.Stochastic.best_sided_sweep dist in
  Format.printf "sided sweep (needs the map): %.4f@.@." q_sided;

  Format.printf
    "the map wins: the sided sweep beats both distribution-free plans.@.";
  Format.printf
    "note how the doubling search also lands well under its worst-case 9@.";
  Format.printf
    "here — this hiker distribution happens to sit near its turn points —@.";
  Format.printf
    "while the randomized guarantee %.4f holds uniformly for EVERY target,@."
    (FS.Randomized.optimal_ratio ());
  Format.printf
    "which is the distinction Beck-Newman's 9 is about: no deterministic@.";
  Format.printf "plan is this good on all distributions at once.@."
