(* Hybrid algorithms (Kao-Ma-Sipser-Yin): m candidate algorithms, k memory
   areas, and a faulty twist.

   "There is a problem Q and m basic algorithms for solving Q.  For some
   k <= m, we have a computer with k disjoint memory areas ... In the
   worst case, only one basic algorithm can solve Q in finite time."
   Running basic algorithm i for x steps = advancing to distance x on ray
   i; switching costs the progress already made plus the new advance
   (the star metric).

   The faulty generalisation is natural here too: suppose up to f of the
   memory areas are flaky — a computation that finishes inside a flaky
   area is silently lost.  Then a result must be reproduced in f + 1
   areas before it can be trusted, and the optimal slowdown is exactly
   A(m, k, f) of Theorem 6.

   Below: m = 3 solvers, k = 2 memory areas, f = 0 vs f = 1. *)

module FS = Faulty_search

let run ~m ~k ~f =
  let problem = FS.Problem.make ~m ~k ~f ~horizon:1e4 () in
  match FS.Params.regime problem.FS.Problem.params with
  | FS.Params.Unsolvable -> Format.printf "(m=%d k=%d f=%d): unsolvable@." m k f
  | FS.Params.Ratio_one ->
      Format.printf "(m=%d k=%d f=%d): slowdown 1 (enough areas)@." m k f
  | FS.Params.Searching ->
      let solution = FS.Solve.solve problem in
      let measured =
        (FS.Adversary.worst_case (FS.Solve.trajectories solution) ~f ~n:1e4 ())
          .FS.Adversary.ratio
      in
      Format.printf
        "(m=%d k=%d f=%d): optimal slowdown %.5f, measured %.5f@." m k f
        (FS.Problem.bound problem) measured

let () =
  Format.printf "hybrid-algorithm slowdowns (time vs the best solver):@.";
  run ~m:3 ~k:2 ~f:0;
  run ~m:3 ~k:2 ~f:1;
  run ~m:3 ~k:1 ~f:0;
  (* the classic single-area case: 1 + 2 m^m/(m-1)^(m-1) *)
  Format.printf "@.single memory area, m solvers (classic):@.";
  List.iter
    (fun m ->
      Format.printf "  m = %d: %.5f@." m (FS.Formulas.single_robot_mray ~m))
    [ 2; 3; 4; 5; 6 ];
  (* how the slowdown decays as areas are added, m = 6 *)
  Format.printf "@.m = 6 solvers, k areas (f = 0):@.";
  List.iter
    (fun k ->
      let v = FS.Formulas.a_mray ~m:6 ~k ~f:0 in
      Format.printf "  k = %d: %.5f@." k v)
    [ 1; 2; 3; 4; 5; 6 ]
