(* Rescue fleet: the paper's line problem dressed as the scenario that
   motivates it.

   A person is lost somewhere along a shoreline; a fleet of k rescue
   drones is dispatched from the pier.  Each drone flies at the same
   speed; up to f of them have a defective camera and will overfly the
   person without noticing (crash fault) — and nobody knows which drones
   are defective.  The search coordinator must plan flight paths so that,
   wherever the person is, a *working* drone finds them quickly.

   We compare three plans for k = 4 drones with f = 1 defective:
     1. naive: all four drones fly the same doubling pattern
        (fault-tolerant, ratio 9);
     2. split pairs: two drones sweep east, two west, never turning
        (only works if both directions get f+1 = 2 drones — here it does,
        but k = 4 = 2(f+1) is exactly the threshold: ratio 1!);
     3. the paper-optimal staggered exponential plan for k = 5, f = 2,
        where the threshold is not met and cleverness pays. *)

module FS = Faulty_search

let measure ~f trajectories ~n =
  (FS.Adversary.worst_case trajectories ~f ~n ()).FS.Adversary.ratio

let () =
  let n = 1e4 in

  (* plan 1: four identical doubling drones, one defective *)
  let naive = Array.map FS.Trajectory.compile (FS.Baseline.replicated_doubling ~k:4) in
  Format.printf "plan 1 (4 identical doubling drones, f=1): ratio %.4f@."
    (measure ~f:1 naive ~n);

  (* plan 2: k = 4 = 2(f+1) -> the partition plan achieves ratio 1 *)
  let params = FS.Params.line ~k:4 ~f:1 in
  Format.printf "regime for (k=4, f=1): %a@." FS.Params.pp_regime
    (FS.Params.regime params);
  let split = Array.map FS.Trajectory.compile (FS.Baseline.partition params) in
  Format.printf "plan 2 (2 east + 2 west, f=1): ratio %.4f@."
    (measure ~f:1 split ~n);

  (* plan 3: five drones, two defective: 2(f+1) = 6 > 5, must search *)
  let problem = FS.Problem.line ~k:5 ~f:2 ~horizon:n () in
  let solution = FS.Solve.solve problem in
  let optimal = FS.Solve.trajectories solution in
  Format.printf
    "plan 3 (5 drones, f=2, staggered exponential): ratio %.4f (theory %.4f)@."
    (measure ~f:2 optimal ~n)
    (FS.Problem.bound problem);

  (* the naive plan for (5,2) would still be ratio 9 — show the gain *)
  let naive5 =
    Array.map FS.Trajectory.compile (FS.Baseline.replicated_doubling ~k:5)
  in
  Format.printf "   vs 5 identical doubling drones: ratio %.4f@."
    (measure ~f:2 naive5 ~n);

  (* trace a short rescue with the optimal plan: person 42 km east,
     adversary picks the two defective drones as the first two visitors *)
  let person = FS.World.point FS.World.line ~ray:0 ~dist:42. in
  let first_visits =
    FS.Engine.first_visits optimal ~target:person ~horizon:(9. *. 42.)
  in
  let assignment = FS.Fault.worst_for_visits FS.Fault.Crash ~first_visits ~f:2 in
  Format.printf "@.--- rescue trace (person at %a, defective: %a) ---@."
    FS.World.pp_point person FS.Fault.pp assignment;
  FS.Event_log.print
    (FS.Event_log.narrate_crash ~min_turn_depth:1. optimal ~assignment
       ~target:person ~horizon:(9. *. 42.));

  (* the space-time picture of the staggered fleet *)
  let svg =
    FS.Svg_render.space_time ~target:person ~fault:assignment
      ~time_max:(4. *. 42.) optimal
  in
  FS.Svg_render.write ~path:"results/rescue_fleet.svg" svg;
  Format.printf "@.space-time diagram written to results/rescue_fleet.svg@."
