(* Contract algorithms as ray search (Bernstein-Finkelstein-Zilberstein).

   A *contract algorithm* must be told its deadline in advance; run it for
   time t and interrupt it earlier, and you get nothing.  To build an
   *interruptible* solver for m problems out of contract algorithms, a
   processor runs contracts of increasing lengths, cycling through the
   problems; when interrupted at time T and asked about problem i, it
   returns the longest completed contract for i.

   Interpreting each problem as a ray (progress = distance) makes the
   schedule a ray-search strategy: the acceleration ratio of the schedule
   is exactly the competitive ratio of the search.  Theorem 6 (f = 0)
   therefore gives the optimal acceleration ratio for k processors and m
   problems — resolving the question [11] answered only for cyclic
   schedules.

   Below: m = 4 problems on k = 2 processors. *)

module FS = Faulty_search

let () =
  let m = 4 and k = 2 in
  let problem = FS.Problem.make ~m ~k ~f:0 ~horizon:1e4 () in
  Format.printf "m = %d problems, k = %d processors@." m k;
  Format.printf "optimal acceleration ratio (Theorem 6, f=0): %.6f@."
    (FS.Problem.bound problem);

  let solution = FS.Solve.solve problem in
  let trajectories = FS.Solve.trajectories solution in

  (* print the first contracts each processor schedules *)
  Format.printf "@.first contracts per processor (problem, length):@.";
  Array.iteri
    (fun r itin ->
      Format.printf "  processor %d:" r;
      (* excursions are odd waypoints; show those with length in [0.1, 100] *)
      let shown = ref 0 in
      let i = ref 1 in
      while !shown < 6 && !i < 200 do
        let wp = FS.Itinerary.waypoint itin ((2 * !i) - 1) in
        if wp.FS.World.dist >= 0.1 && wp.FS.World.dist <= 100. then begin
          Format.printf " (P%d, %.3f)" wp.FS.World.ray wp.FS.World.dist;
          incr shown
        end;
        incr i
      done;
      Format.printf "@.")
    solution.FS.Solve.group.FS.Group.itineraries;

  (* measured acceleration ratio *)
  let outcome = FS.Adversary.worst_case trajectories ~f:0 ~n:1e4 () in
  Format.printf "@.measured acceleration ratio on [1, 10^4]: %.6f@."
    outcome.FS.Adversary.ratio;

  (* compare against the naive round-robin of doubling contracts *)
  let naive = FS.Baseline.replicated_mray ~m ~k in
  let naive_ratio =
    (FS.Adversary.worst_case
       (Array.map FS.Trajectory.compile naive)
       ~f:0 ~n:1e4 ())
      .FS.Adversary.ratio
  in
  Format.printf
    "naive (each processor independently sweeps all problems): %.6f@."
    naive_ratio;
  Format.printf "speedup factor from coordination: %.3f@."
    (naive_ratio /. outcome.FS.Adversary.ratio)
