(* Parallel search on m rays: the thirty-year question.

   "When specialized to the case f = 0, this resolves the question on
   parallel search on m rays, posed by three groups of scientists some
   15 to 30 years ago: by Baeza-Yates, Culberson, and Rawlins; by Kao,
   Ma, Sipser, and Yin; and by Bernstein, Finkelstein, and Zilberstein."

   What was known before the paper:
     - the optimal *single* robot ratio (1 + 2 m^m/(m-1)^(m-1)),
     - the optimal *distance* (total work) version (Kao et al.),
     - the optimal ratio among *cyclic* strategies (Bernstein et al.).
   What was open: is the cyclic strategies' value optimal among ALL
   strategies?  Theorem 6 (f = 0) says yes:

       A(m, k, 0) = 2 rho^rho/(rho-1)^(rho-1) + 1,   rho = m/k.

   This example walks the m = 5, k = 3 instance end to end: the value,
   the strategy that attains it, and the lower-bound certificate showing
   nothing better exists. *)

module FS = Faulty_search

let () =
  let m = 5 and k = 3 in
  let problem = FS.Problem.make ~m ~k ~f:0 ~horizon:400. () in
  let bound = FS.Problem.bound problem in
  Format.printf "m = %d rays, k = %d robots, no faults@." m k;
  Format.printf "Theorem 6: A(%d, %d, 0) = %.6f  (rho = %g)@.@." m k bound
    (float_of_int m /. float_of_int k);

  (* the upper bound: the cyclic exponential strategy attains it *)
  let solution = FS.Solve.solve problem in
  let trajectories = FS.Solve.trajectories solution in
  let exact = FS.Exact_adversary.worst_case trajectories ~f:0 ~n:400. () in
  Format.printf "cyclic exponential strategy, exact worst case on [1, 400]:@.";
  Format.printf "  %.6f at %a (one-sided limit: %b)@.@."
    exact.FS.Exact_adversary.sup FS.World.pp_point
    (FS.World.point (FS.World.rays m) ~ray:exact.FS.Exact_adversary.witness_ray
       ~dist:exact.FS.Exact_adversary.witness_dist)
    (not exact.FS.Exact_adversary.attained);

  (* the lower bound: claims below the value are refuted *)
  let turns = Option.get (FS.Solve.orc_turns solution) in
  List.iter
    (fun fraction ->
      let lambda = fraction *. bound in
      let verdict =
        FS.Certificate.check_orc ~turns ~demand:m ~lambda ~n:400. ()
      in
      Format.printf "claim %.4f (%.0f%% of the value): %a@." lambda
        (100. *. fraction) FS.Certificate.pp_verdict verdict)
    [ 0.90; 0.99; 1.001 ];

  (* what the pre-2018 state of the art could and could not say *)
  Format.printf "@.context:@.";
  Format.printf "  single robot (classic):        %.6f@."
    (FS.Formulas.single_robot_mray ~m);
  Format.printf "  %d robots, cyclic (BFZ 2003):   %.6f (optimal among cyclic)@."
    k bound;
  Format.printf "  %d robots, ALL strategies:      %.6f (Theorem 6, this paper)@."
    k bound;
  Format.printf
    "@.the last line is the news: no exotic non-cyclic schedule can do \
     better.@."
