(* Quickstart: the whole public API in one page.

   Three robots search the real line for a target hidden at unknown
   distance >= 1; one of them is faulty (crash type: it silently ignores
   the target).  The paper's Theorem 1 says the best possible competitive
   ratio is A(3,1) = (8/3) 4^(1/3) + 1 ~ 5.233; we synthesize the optimal
   strategy, simulate it against the worst-case adversary, and check the
   covering relaxation that the matching lower bound rests on. *)

module FS = Faulty_search

let () =
  let problem = FS.Problem.line ~k:3 ~f:1 ~horizon:1000. () in
  Format.printf "problem: %a@." FS.Problem.pp problem;
  Format.printf "tight competitive ratio (Theorem 1): %.6f@."
    (FS.Problem.bound problem);

  (* synthesize the optimal strategy and verify it end-to-end *)
  let solution = FS.Solve.solve problem in
  let report = FS.Verify.verify solution in
  Format.printf "%a@." FS.Verify.pp report;
  assert (FS.Verify.all_ok report);

  (* the lower bound, executably: below the tight ratio, coverage of
     [1, N] already fails *)
  let lambda_low = FS.Problem.bound problem -. 0.05 in
  (match FS.Solve.orc_turns solution with
  | Some turns ->
      let verdict =
        FS.Certificate.check_line ~turns ~f:1 ~lambda:lambda_low ~n:1000. ()
      in
      Format.printf "at lambda = %.4f: %a@." lambda_low
        FS.Certificate.pp_verdict verdict
  | None -> ());

  Format.printf "quickstart: all checks passed@."
