module X = Search_numerics.Xfloat

let mu ~q ~k =
  if k <= 0 || k > q then Search_numerics.Search_error.invalid ~where:"Formulas.mu" "need 0 < k <= q";
  let fq = float_of_int q and fk = float_of_int k in
  let fs = float_of_int (q - k) in
  (* ((q^q) / (s^s k^k))^(1/k), in log-domain; X.log_pow handles s = 0. *)
  exp ((X.log_pow fq fq -. X.log_pow fs fs -. X.log_pow fk fk) /. fk)

let mu_rho rho =
  if rho < 1. then Search_numerics.Search_error.invalid ~where:"Formulas.mu_rho" "need rho >= 1";
  exp (X.log_pow rho rho -. X.log_pow (rho -. 1.) (rho -. 1.))

let lambda0 ~q ~k = (2. *. mu ~q ~k) +. 1.

let a_mray ~m ~k ~f =
  let p = Params.make ~m ~k ~f in
  match Params.regime p with
  | Params.Unsolvable -> infinity
  | Params.Ratio_one -> 1.
  | Params.Searching -> lambda0 ~q:(Params.q p) ~k

let a_line ~k ~f = a_mray ~m:2 ~k ~f

let of_params p =
  let { Params.m; k; f } = p in
  a_mray ~m ~k ~f

let c_eta eta =
  if eta < 1. then Search_numerics.Search_error.invalid ~where:"Formulas.c_eta" "need eta >= 1";
  (2. *. mu_rho eta) +. 1.

let alpha_star ~q ~k =
  if k <= 0 || k >= q then Search_numerics.Search_error.invalid ~where:"Formulas.alpha_star" "need 0 < k < q";
  (float_of_int q /. float_of_int (q - k)) ** (1. /. float_of_int k)

let exponential_ratio ~q ~k ~alpha =
  if alpha <= 1. then Search_numerics.Search_error.invalid ~where:"Formulas.exponential_ratio" "need alpha > 1";
  let aq = alpha ** float_of_int q and ak = alpha ** float_of_int k in
  1. +. (2. *. aq /. (ak -. 1.))

let cow_path = a_mray ~m:2 ~k:1 ~f:0

let single_robot_mray ~m =
  if m < 2 then Search_numerics.Search_error.invalid ~where:"Formulas.single_robot_mray" "need m >= 2";
  a_mray ~m ~k:1 ~f:0
