(** Lower bounds for Byzantine-type faulty robots.

    A Byzantine robot (Czyzowitz et al., ISAAC'16) may stay silent like a
    crash-faulty robot {e or} falsely claim to have found the target.  Every
    crash-type adversary is a special case of a Byzantine adversary, so

    [B(k, f) >= A(k, f)],

    which is how the paper improves the known Byzantine bounds, e.g.
    [B(3,1) >= 3.93] (ISAAC'16) is raised to
    [B(3,1) >= (8/3) 4^(1/3) + 1 ~= 5.23]. *)

val lower_bound : k:int -> f:int -> float
(** The crash-transfer lower bound [A(k, f)] on the line, valid for
    [B(k, f)].  Regime conventions as {!Formulas.a_line}. *)

val lower_bound_mray : m:int -> k:int -> f:int -> float
(** Same transfer on [m] rays: [B(m, k, f) >= A(m, k, f)]. *)

val b31_exact : float
(** The closed form [(8/3) * 4^(1/3) + 1] quoted in the introduction for
    [B(3, 1)]; equals [lower_bound ~k:3 ~f:1]. *)

type prior = { k : int; f : int; isaac16_bound : float option }
(** A previously published Byzantine lower bound, for comparison tables. *)

val isaac16_priors : prior list
(** The bounds from the ISAAC'16 paper that Section 1 compares against
    (the paper quotes B(3,1) >= 3.93 explicitly; further entries use the
    crash-free trivial bounds as conservative stand-ins and are marked by
    [isaac16_bound = None] when no published figure is quoted). *)

val improvement : prior -> float option
(** [lower_bound] minus the prior bound — how much the paper's transfer
    improves the state of the art ([None] when the prior is unknown). *)
