let achievable ~m ~k ~f ~lambda =
  match Params.make ~m ~k ~f with
  | exception Search_numerics.Search_error.Error
      (Search_numerics.Search_error.Regime_violation _) ->
      false
  | p -> (
      match Params.regime p with
      | Params.Unsolvable -> false
      | Params.Ratio_one -> lambda >= 1.
      | Params.Searching -> Formulas.a_mray ~m ~k ~f <= lambda)

let min_robots ~m ~f ~lambda =
  if m < 2 then Search_numerics.Search_error.invalid ~where:"Planning.min_robots" "need m >= 2";
  if f < 0 then Search_numerics.Search_error.invalid ~where:"Planning.min_robots" "need f >= 0";
  if lambda <= 0. then Search_numerics.Search_error.invalid ~where:"Planning.min_robots" "need lambda > 0";
  (* k = m(f+1) always achieves ratio 1; scan down from it.  A(m,k,f) is
     monotone decreasing in k, so the first k that works from below is
     the answer; linear scan is fine (k <= m(f+1)). *)
  let top = m * (f + 1) in
  if lambda < 1. then None
  else
    let rec down best k =
      if k < f + 1 then best
      else if achievable ~m ~k ~f ~lambda then down (Some k) (k - 1)
      else best
    in
    down None top

let max_faults ~m ~k ~lambda =
  if m < 2 then Search_numerics.Search_error.invalid ~where:"Planning.max_faults" "need m >= 2";
  if k < 1 then Search_numerics.Search_error.invalid ~where:"Planning.max_faults" "need k >= 1";
  (* A is monotone increasing in f; scan up while achievable *)
  let rec up best f =
    if f > k then best
    else if achievable ~m ~k ~f ~lambda then up (Some f) (f + 1)
    else best
  in
  up None 0

let rho_for_lambda ~lambda =
  if lambda < 3. then Search_numerics.Search_error.invalid ~where:"Planning.rho_for_lambda" "need lambda >= 3";
  if Float.equal lambda 3. then 1.
  else
    (* lambda(rho) is strictly increasing; bracket and bisect *)
    let target rho = (2. *. Formulas.mu_rho rho) +. 1. -. lambda in
    let rec grow hi = if target hi < 0. then grow (2. *. hi) else hi in
    let hi = grow 2. in
    Search_numerics.Root.brent ~f:target 1. hi

type plan = { k : int; f : int; ratio : float }

let cheapest_fleets ~m ~lambda ~max_f =
  List.filter_map
    (fun f ->
      match min_robots ~m ~f ~lambda with
      | Some k -> Some { k; f; ratio = Formulas.a_mray ~m ~k ~f }
      | None -> None)
    (List.init (max_f + 1) Fun.id)
