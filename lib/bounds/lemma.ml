module X = Search_numerics.Xfloat

let poly ~s ~k ~mu_star x =
  (x ** float_of_int s) *. ((mu_star -. x) ** float_of_int k)

let argmax ~s ~k ~mu_star =
  if s < 1 || k < 1 then Search_numerics.Search_error.invalid ~where:"Lemma.argmax" "need s, k >= 1";
  if mu_star <= 0. then Search_numerics.Search_error.invalid ~where:"Lemma.argmax" "need mu_star > 0";
  float_of_int s *. mu_star /. float_of_int (k + s)

let ratio ~s ~k ~mu_star ~x =
  if not (0. < x && x < mu_star) then
    Search_numerics.Search_error.invalid ~where:"Lemma.ratio" "need 0 < x < mu_star";
  let fs = float_of_int s and fk = float_of_int k in
  exp
    (X.log_pow mu_star fs -. X.log_pow x fs -. X.log_pow (mu_star -. x) fk)

let ratio_lower_bound ~s ~k ~mu_star =
  let fs = float_of_int s and fk = float_of_int k in
  let fks = float_of_int (k + s) in
  exp
    (X.log_pow fks fks -. X.log_pow fs fs -. X.log_pow fk fk
   -. X.log_pow mu_star fk)

let delta ~s ~k ~mu = ratio_lower_bound ~s ~k ~mu_star:mu
