(** Problem parameters and their classification.

    An instance of the paper's search problem is a triple [(m, k, f)]:
    [m] rays emanating from the origin (the real line is [m = 2]), [k]
    unit-speed robots starting at the origin, [f] of them faulty of crash
    type.  The derived quantities and the trivial/meaningful classification
    follow Section 1 and the remarks after Theorems 1 and 6. *)

type t = private { m : int; k : int; f : int }

val make : m:int -> k:int -> f:int -> t
(** Validates [m >= 2], [k >= 1], [0 <= f <= k].
    @raise Search_numerics.Search_error.Error
      ([Regime_violation]) otherwise. *)

val line : k:int -> f:int -> t
(** The line instance: [make ~m:2 ~k ~f]. *)

val q : t -> int
(** [q = m * (f + 1)]: the covering demand of the ORC relaxation — each
    distance must be covered by [f + 1] robots on each of the [m] rays. *)

val s : t -> int
(** [s = q - k]: the per-pair demand of the line proof
    ([s = 2(f+1) - k] when [m = 2]).  May be non-positive (trivial case). *)

val rho : t -> float
(** [rho = q / k], the single parameter the tight bound depends on. *)

type regime =
  | Unsolvable
      (** [f = k]: all robots may be faulty; no strategy can confirm the
          target ("s > k, i.e. f + 1 > k, means that k = f"). *)
  | Ratio_one
      (** [k >= m(f+1)]: sending [f+1] robots along each ray gives
          competitive ratio 1. *)
  | Searching
      (** [f < k < m(f+1)]: the meaningful regime of Theorems 1 and 6, with
          competitive ratio [lambda0 = 2 rho^rho/(rho-1)^(rho-1) + 1]. *)

val regime : t -> regime

val pp : Format.formatter -> t -> unit
val pp_regime : Format.formatter -> regime -> unit
