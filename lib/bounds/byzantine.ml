let lower_bound ~k ~f = Formulas.a_line ~k ~f
let lower_bound_mray ~m ~k ~f = Formulas.a_mray ~m ~k ~f
let b31_exact = (8. /. 3. *. (4. ** (1. /. 3.))) +. 1.

type prior = { k : int; f : int; isaac16_bound : float option }

let isaac16_priors =
  [
    { k = 3; f = 1; isaac16_bound = Some 3.93 };
    (* No further numeric lower bounds are quoted in the paper; keep the
       comparison honest by marking them unknown.  Only searching-regime
       instances are listed — the transfer is vacuous when k >= 2(f+1). *)
    { k = 5; f = 2; isaac16_bound = None };
    { k = 7; f = 3; isaac16_bound = None };
  ]

let improvement p =
  Option.map (fun b -> lower_bound ~k:p.k ~f:p.f -. b) p.isaac16_bound
