module E = Search_numerics.Search_error

type t = { m : int; k : int; f : int }

let make ~m ~k ~f =
  let reject what = E.raise_ (E.Regime_violation { m; k; f; what }) in
  if m < 2 then reject (Printf.sprintf "m = %d, need m >= 2" m);
  if k < 1 then reject (Printf.sprintf "k = %d, need k >= 1" k);
  if f < 0 || f > k then
    reject (Printf.sprintf "f = %d, need 0 <= f <= k = %d" f k);
  { m; k; f }

let line ~k ~f = make ~m:2 ~k ~f
let q t = t.m * (t.f + 1)
let s t = q t - t.k
let rho t = float_of_int (q t) /. float_of_int t.k

type regime = Unsolvable | Ratio_one | Searching

let regime t =
  if Int.equal t.f t.k then Unsolvable
  else if t.k >= q t then Ratio_one
  else Searching

let pp ppf t = Format.fprintf ppf "(m=%d, k=%d, f=%d)" t.m t.k t.f

let pp_regime ppf = function
  | Unsolvable -> Format.pp_print_string ppf "unsolvable"
  | Ratio_one -> Format.pp_print_string ppf "ratio-one"
  | Searching -> Format.pp_print_string ppf "searching"
