module E = Search_numerics.Search_error
module Prng = Search_numerics.Prng
module Runtime = Search_serve.Runtime

(* A simulated Unix-domain-socket layer over {!Sim}: integer fds,
   per-direction byte streams delivered as delayed chunk timers.  Writes
   are fragmented into arbitrary byte chunks (this is what the frame
   decoder must survive); without faults, deliveries on an edge are
   clamped monotone so the stream stays in order.  With faults enabled,
   a connection's split-PRNG plan may jitter chunk delays past each
   other (reordering deliveries at distinct virtual times — detected by
   a per-edge sequence check and surfaced as a reset, since a stream
   socket can never hand reordered bytes to its reader), drop a chunk
   (which resets the connection, like a peer crash mid-stream), or crash
   the connection outright at a scheduled instant.  Readers therefore
   always observe an exact prefix of what was written, then possibly an
   error — never corrupted bytes. *)

type counters = {
  mutable chunks : int;
  mutable reorders : int;
  mutable drops : int;
  mutable crashes : int;
  mutable partial_writes : int;
}

type ep = {
  mutable peer : int;  (** peer endpoint fd; [-1] for none *)
  mutable front : string list;  (** delivered, unread chunks (head first) *)
  mutable back : string list;  (** ... continued, reversed *)
  mutable eof : bool;  (** peer closed its write side (after in-flight data) *)
  mutable broken : bool;  (** transport reset: reads and writes fail now *)
  mutable opened : bool;
  mutable waiters : (unit -> unit) list;  (** parked readers / selects *)
  mutable last_arrival : float;  (** latest scheduled delivery into this ep *)
  mutable out_prng : Prng.t;  (** fragmentation / fault stream for writes *)
  mutable out_seq : int;  (** chunks sent out of this ep, for order checks *)
  mutable expect_seq : int;  (** next chunk sequence this ep may receive *)
}

type listener = {
  mutable backlog_q : int list;  (** accepted-but-unclaimed endpoint fds *)
  mutable l_open : bool;
  mutable l_waiters : (unit -> unit) list;
}

type node = Listener of listener | Endpoint of ep

type t = {
  sim : Sim.t;
  mutable prng : Prng.t;
  faults : bool;
  nodes : (int, node) Hashtbl.t;
  mutable bound : (string * int) list;  (** socket files: path -> listener fd *)
  mutable next_fd : int;
  stats : counters;
}

let create ~sim ~prng ~faults =
  {
    sim;
    prng;
    faults;
    nodes = Hashtbl.create 64;
    bound = [];
    next_fd = 3;
    stats =
      { chunks = 0; reorders = 0; drops = 0; crashes = 0; partial_writes = 0 };
  }

let counters t = t.stats

let draw t f =
  let v, prng = f t.prng in
  t.prng <- prng;
  v

let draw_ep e f =
  let v, prng = f e.out_prng in
  e.out_prng <- prng;
  v

let node t fd = Hashtbl.find_opt t.nodes fd

let find_bound t path =
  List.find_opt (fun (p, _) -> String.equal p path) t.bound

let drop_bound t path =
  t.bound <- List.filter (fun (p, _) -> not (String.equal p path)) t.bound

let nonempty = function [] -> false | _ :: _ -> true

let wake_ep t e =
  let ws = e.waiters in
  e.waiters <- [];
  List.iter (Sim.schedule t.sim) ws

let wake_listener t l =
  let ws = l.l_waiters in
  l.l_waiters <- [];
  List.iter (Sim.schedule t.sim) ws

(* Reset both halves of a connection: undelivered data is lost, both
   sides see a transport error on the next read or write. *)
let break_conn t e =
  let sides =
    e :: (match node t e.peer with Some (Endpoint p) -> [ p ] | _ -> [])
  in
  List.iter
    (fun s ->
      if s.opened && not s.broken then begin
        s.broken <- true;
        s.front <- [];
        s.back <- [];
        wake_ep t s
      end)
    sides

(* -- chunk queue --------------------------------------------------- *)

let pop_chunk e =
  match e.front with
  | c :: rest ->
      e.front <- rest;
      Some c
  | [] -> (
      match List.rev e.back with
      | [] -> None
      | c :: rest ->
          e.back <- [];
          e.front <- rest;
          Some c)

let push_front e c = e.front <- c :: e.front
let push_chunk e c = e.back <- c :: e.back

(* -- delivery ------------------------------------------------------ *)

(* Deliver one chunk at its scheduled instant, enforcing stream order:
   a real stream socket can never surface reordered bytes, so an
   inversion that materialises (a jittered chunk overtaken by its
   successors) is surfaced as a reset — the reader sees an exact prefix
   of what was written, then an error, never corrupted bytes. *)
let arrive t dst seq chunk () =
  if dst.opened && not dst.broken then
    if Int.equal seq dst.expect_seq then begin
      dst.expect_seq <- seq + 1;
      push_chunk dst chunk;
      wake_ep t dst
    end
    else begin
      t.stats.reorders <- t.stats.reorders + 1;
      break_conn t dst
    end

(* Schedule delivery of [data] (one write's accepted bytes) from [src]
   into its peer, fragmented into arbitrary chunks.  Fault draws come
   from the writer's per-edge split stream, so a connection's fault plan
   is independent of everything else in the run.

   The write's base delay is drawn from a coarse grid (100–500 µs in
   100 µs steps) and all its chunks normally land in a single timer at
   that instant: independent edges then collide at grid points, several
   frames complete inside one server cycle, and admission control
   actually fires (chunks still arrive as separate reads, so decoder
   fragmentation is exercised regardless).  A continuously-delayed
   network would interleave one frame per server wake-up forever —
   virtual compute costs no time — and the overload paths would go
   untested. *)
let deliver t src data =
  match node t src.peer with
  | Some (Endpoint dst) when dst.opened ->
      let len = String.length data in
      let base =
        0.0001 *. float_of_int (1 + draw_ep src (Prng.int ~bound:5))
      in
      let arrival =
        let a = Sim.now t.sim +. base in
        if a > dst.last_arrival then a else dst.last_arrival +. 1e-9
      in
      let pos = ref 0 in
      let continue = ref true in
      let batch = ref [] in
      while !continue && !pos < len do
        let rem = len - !pos in
        let cut =
          if rem <= 1 then rem
          else 1 + draw_ep src (Prng.int ~bound:(Int.min rem 97))
        in
        let chunk = String.sub data !pos cut in
        pos := !pos + cut;
        t.stats.chunks <- t.stats.chunks + 1;
        let seq = src.out_seq in
        src.out_seq <- seq + 1;
        let dropped = t.faults && draw_ep src Prng.float < 0.01 in
        let jitter =
          if t.faults && draw_ep src Prng.float < 0.05 then
            draw_ep src (Prng.float_range ~lo:0.0000001 ~hi:0.002)
          else 0.
        in
        if dropped then begin
          t.stats.drops <- t.stats.drops + 1;
          (* lost bytes on a stream are unrecoverable: model the drop as
             a connection reset at what would have been delivery time *)
          continue := false;
          Sim.at t.sim ~delay:(arrival -. Sim.now t.sim) (fun () ->
              break_conn t src)
        end
        else if jitter > 0. then begin
          (* this chunk sails past the rest of the write: its own timer,
             unclamped, may land after its successors — the sequence
             check in [arrive] then resets the connection *)
          let late = Sim.now t.sim +. base +. jitter in
          dst.last_arrival <-
            (if late > dst.last_arrival then late else dst.last_arrival);
          Sim.at t.sim ~delay:(late -. Sim.now t.sim)
            (arrive t dst seq chunk)
        end
        else batch := (seq, chunk) :: !batch
      done;
      (match !batch with
      | [] -> ()
      | chunks ->
          let chunks = List.rev chunks in
          dst.last_arrival <-
            (if arrival > dst.last_arrival then arrival else dst.last_arrival);
          Sim.at t.sim ~delay:(arrival -. Sim.now t.sim) (fun () ->
              List.iter (fun (seq, chunk) -> arrive t dst seq chunk ()) chunks))
  | _ -> ()

(* -- connection establishment -------------------------------------- *)

let fresh_fd t =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  fd

let make_ep ~prng peer =
  {
    peer;
    front = [];
    back = [];
    eof = false;
    broken = false;
    opened = true;
    waiters = [];
    last_arrival = 0.;
    out_prng = prng;
    out_seq = 0;
    expect_seq = 0;
  }

let sim_connect t ~path =
  let refused what =
    E.raise_ (E.Io_failure { path; what = "connect: " ^ what })
  in
  match find_bound t path with
  | None -> refused "no such socket"
  | Some (_, lfd) -> (
      match node t lfd with
      | Some (Listener l) when l.l_open ->
          let cfd = fresh_fd t in
          let sfd = fresh_fd t in
          let p1 = draw t Prng.split in
          let p2 = draw t Prng.split in
          let client_ep = make_ep ~prng:p1 sfd in
          let server_ep = make_ep ~prng:p2 cfd in
          Hashtbl.replace t.nodes cfd (Endpoint client_ep);
          Hashtbl.replace t.nodes sfd (Endpoint server_ep);
          (* the connection's crash plan: with faults on, some
             connections suffer a scheduled peer-crash *)
          (if t.faults && draw t Prng.float < 0.15 then
             let when_ = draw t (Prng.float_range ~lo:0.001 ~hi:0.2) in
             Sim.at t.sim ~delay:when_ (fun () ->
                 if client_ep.opened && not client_ep.broken then begin
                   t.stats.crashes <- t.stats.crashes + 1;
                   break_conn t client_ep
                 end));
          l.backlog_q <- l.backlog_q @ [ sfd ];
          wake_listener t l;
          cfd
      | _ -> refused "connection refused")

(* -- ops ----------------------------------------------------------- *)

let readable t fd =
  match node t fd with
  | Some (Listener l) -> (not l.l_open) || nonempty l.backlog_q
  | Some (Endpoint e) ->
      (not e.opened) || e.broken || e.eof || nonempty e.front
      || nonempty e.back
  | None -> true

let sim_listen t ~path =
  (* a stale socket file (listener long closed) is replaced, mirroring
     the unix implementation's unlink-before-bind *)
  (match find_bound t path with
  | Some (_, lfd) -> (
      match node t lfd with
      | Some (Listener l) when l.l_open ->
          E.raise_
            (E.Io_failure { path; what = "bind: address already in use" })
      | _ -> drop_bound t path)
  | None -> ());
  let lfd = fresh_fd t in
  Hashtbl.replace t.nodes lfd
    (Listener { backlog_q = []; l_open = true; l_waiters = [] });
  t.bound <- (path, lfd) :: t.bound;
  lfd

let sim_accept t fd =
  match node t fd with
  | Some (Listener l) when l.l_open -> (
      match l.backlog_q with
      | [] -> `Again
      | sfd :: rest ->
          l.backlog_q <- rest;
          `Conn sfd)
  | Some (Listener _) -> `Err "accept on closed listener"
  | Some (Endpoint _) | None -> `Err "accept on non-listener"

let sim_read t fd buf ~off ~len =
  match node t fd with
  | Some (Endpoint e) when e.opened ->
      if e.broken then `Err "connection reset by peer"
      else begin
        match pop_chunk e with
        | Some c ->
            let n = Int.min len (String.length c) in
            Bytes.blit_string c 0 buf off n;
            if n < String.length c then
              push_front e (String.sub c n (String.length c - n));
            `Data n
        | None -> if e.eof then `Eof else `Again
      end
  | Some (Endpoint _) -> `Err "read on closed fd"
  | Some (Listener _) | None -> `Err "read on non-endpoint"

let sim_write t fd s ~off ~len =
  match node t fd with
  | Some (Endpoint e) when e.opened ->
      if e.broken then `Err "connection reset by peer"
      else if
        match node t e.peer with
        | Some (Endpoint p) -> not p.opened
        | Some (Listener _) | None -> true
      then `Err "broken pipe"
      else begin
        let n =
          if len > 1 && draw_ep e Prng.float < 0.15 then begin
            t.stats.partial_writes <- t.stats.partial_writes + 1;
            1 + draw_ep e (Prng.int ~bound:(len - 1))
          end
          else len
        in
        deliver t e (String.sub s off n);
        `Wrote n
      end
  | Some (Endpoint _) -> `Err "write on closed fd"
  | Some (Listener _) | None -> `Err "write on non-endpoint"

let sim_select t ~read ~write ~timeout =
  let ready () =
    (* endpoints never block on write in the simulation (buffers are
       unbounded), so every watched write fd is always ready *)
    (List.filter (readable t) read, write)
  in
  let r, w = ready () in
  if nonempty r || nonempty w || timeout <= 0. then (r, w)
  else begin
    Sim.suspend t.sim (fun resume ->
        let woken = ref false in
        let once () =
          if not !woken then begin
            woken := true;
            Sim.schedule t.sim resume
          end
        in
        List.iter
          (fun fd ->
            match node t fd with
            | Some (Listener l) -> l.l_waiters <- once :: l.l_waiters
            | Some (Endpoint e) -> e.waiters <- once :: e.waiters
            | None -> ())
          read;
        Sim.at t.sim ~delay:timeout once);
    ready ()
  end

let sim_close t fd =
  match node t fd with
  | Some (Listener l) ->
      if l.l_open then begin
        l.l_open <- false;
        (* pending never-accepted connections are reset; the socket file
           itself survives until [unlink], as on a real system *)
        List.iter
          (fun sfd ->
            match node t sfd with
            | Some (Endpoint e) -> break_conn t e
            | Some (Listener _) | None -> ())
          l.backlog_q;
        l.backlog_q <- [];
        wake_listener t l
      end
  | Some (Endpoint e) ->
      if e.opened then begin
        e.opened <- false;
        e.front <- [];
        e.back <- [];
        wake_ep t e;
        (* a clean FIN: the peer sees EOF after any in-flight data *)
        match node t e.peer with
        | Some (Endpoint p) when p.opened && not p.broken ->
            let arrival =
              let a = Sim.now t.sim +. 0.0001 in
              if a > p.last_arrival then a else p.last_arrival +. 1e-9
            in
            p.last_arrival <- arrival;
            Sim.at t.sim ~delay:(arrival -. Sim.now t.sim) (fun () ->
                if p.opened && not p.broken then begin
                  p.eof <- true;
                  wake_ep t p
                end)
        | Some (Endpoint _) | Some (Listener _) | None -> ()
      end
  | None -> ()

let sim_unlink t path = drop_bound t path

let rec sim_read_blocking t fd buf ~off ~len =
  match sim_read t fd buf ~off ~len with
  | `Again ->
      Sim.suspend t.sim (fun resume ->
          match node t fd with
          | Some (Endpoint e) -> e.waiters <- resume :: e.waiters
          | Some (Listener l) -> l.l_waiters <- resume :: l.l_waiters
          | None -> Sim.schedule t.sim resume);
      sim_read_blocking t fd buf ~off ~len
  | (`Data _ | `Eof | `Err _) as r -> r

let sim_write_blocking t fd s ~off ~len =
  match sim_write t fd s ~off ~len with
  | `Again -> `Err "simulated write cannot block"
  | (`Wrote _ | `Err _) as r -> r

let ops t =
  {
    Runtime.equal_fd = Int.equal;
    listen = (fun ~path -> sim_listen t ~path);
    accept = (fun fd -> sim_accept t fd);
    read = (fun fd buf ~off ~len -> sim_read t fd buf ~off ~len);
    write = (fun fd s ~off ~len -> sim_write t fd s ~off ~len);
    select = (fun ~read ~write ~timeout -> sim_select t ~read ~write ~timeout);
    close = (fun fd -> sim_close t fd);
    unlink = (fun path -> sim_unlink t path);
    guard_sigpipe = (fun () -> fun () -> ());
    connect = (fun ~path -> sim_connect t ~path);
    read_blocking =
      (fun fd buf ~off ~len -> sim_read_blocking t fd buf ~off ~len);
    write_blocking = (fun fd s ~off ~len -> sim_write_blocking t fd s ~off ~len);
  }

let runtime t = Runtime.T (ops t)

let socket_bound t path = Option.is_some (find_bound t path)

let open_fds t =
  Hashtbl.fold
    (fun fd n acc ->
      match n with
      | Listener l -> if l.l_open then fd :: acc else acc
      | Endpoint e -> if e.opened then fd :: acc else acc)
    t.nodes []
  |> List.sort Int.compare
