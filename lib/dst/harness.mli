(** Whole-system deterministic simulation: the real daemon
    ({!Search_serve.Server}), real blocking clients
    ({!Search_serve.Client}), and the fault plan all run inside one
    single-seeded {!Sim} instance over the {!Net} fake network.

    A {!scenario} is a complete description of a run — seed, fleet
    shape, workload mix, fault switch, injected bug — and {!run} is a
    pure function of it: two runs of the same scenario produce
    byte-identical traces, and the seed alone replays an interleaving.

    Invariant oracles checked on every run:
    + every request reaches exactly one terminal outcome (a response,
      a bounded overload give-up, or a connection-level error) — never
      silence;
    + every computed response is byte-identical to a fresh reference
      evaluation of the same request (the Protocol determinism
      contract; [Stats]/[Overloaded] are observational and exempt);
    + shutdown always unbinds the socket path, closes every simulated
      fd, and terminates the server loop;
    + no fiber crashes, and the simulation reaches quiescence. *)

type scenario = {
  seed : int;
  clients : int;
  requests : int;  (** per client *)
  faults : bool;
  jobs : int;
  queue_cap : int;
  batch_cap : int;
  cache_cap : int;
  light : bool;  (** restrict the mix to cheap ops (fuzz-sized scenarios) *)
  inject : string option;  (** intentional server bug, to validate the oracles *)
}

val scenario :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?faults:bool ->
  ?jobs:int ->
  ?queue_cap:int ->
  ?batch_cap:int ->
  ?cache_cap:int ->
  ?light:bool ->
  ?inject:string ->
  unit ->
  scenario
(** Defaults: [seed 0], [clients 8], [requests 6], [faults false],
    [jobs 1], [queue_cap 8], [batch_cap 8], [cache_cap 64],
    [light false], no injection.
    @raise Search_numerics.Search_error.Error on non-positive sizes. *)

val scenario_to_json : scenario -> Search_numerics.Json.t
val scenario_of_json : Search_numerics.Json.t -> (scenario, string) result

val injections : string list
(** Known values for [inject] (currently ["drop-shed-response"]: the
    event loop silently swallows [Overloaded] response bytes, so shed
    clients hang — caught by the terminal-outcome oracle). *)

type outcome = {
  scenario : scenario;
  violations : string list;  (** empty iff every oracle held *)
  trace : string;
      (** virtual-time-stamped event log in execution order; the
          determinism witness — byte-identical across reruns *)
  digest : string;  (** over terminal response bytes, stats excluded *)
  served : int;
  overloaded_gaveup : int;
  conn_errors : int;
}

val run : scenario -> outcome

val failing : outcome -> bool

val search : scenario -> seeds:int -> [ `Clean of int | `Found of outcome * int ]
(** Run seeds [seed, seed+1, ...] until one fails or [seeds] runs stay
    clean.  [`Found (o, n)] reports the failing outcome and how many
    seeds were tried. *)

val shrink : ?budget:int -> outcome -> outcome
(** Greedy structural shrinking of a failing outcome: halve/decrement
    clients and requests, disable faults, lighten the mix, drop to one
    job — keeping any reduction that still fails, within [budget]
    (default 40) re-runs.  The result is still failing and replayable
    by its scenario alone. *)

val corpus_write : dir:string -> outcome -> string
(** Persist a replayable corpus entry [dst-<digest>.json] recording the
    scenario plus whether a violation is expected; returns the path. *)

val replay_file : string -> (outcome, string) result
(** Re-run a corpus entry and check the outcome class still matches its
    recorded [expect_violation]; [Error] describes a parse failure or a
    behaviour change. *)

val invariant_case : Search_check.Case.t -> string list
(** A fuzz-sized whole-system scenario derived from the case's
    [turn_seed] (2 clients x 2 light requests, faults on), run twice:
    reports oracle violations plus any trace divergence between the two
    runs (nondeterminism). *)

val register_invariant : unit -> unit
(** Register {!invariant_case} as ["dst.whole_system"] in the
    {!Search_check.Invariant} catalogue (idempotent by name). *)
