module E = Search_numerics.Search_error
module Json = Search_numerics.Json
module Prng = Search_numerics.Prng
module Pool = Search_exec.Pool
module Supervise = Search_exec.Supervise
module P = Search_serve.Protocol
module Server = Search_serve.Server
module Client = Search_serve.Client
module Dispatch = Search_serve.Dispatch
module Runtime = Search_serve.Runtime

let socket_path = "/sim/faulty-search.sock"

(* ------------------------------------------------------------------ *)
(* scenarios                                                           *)

type scenario = {
  seed : int;
  clients : int;
  requests : int;  (** per client *)
  faults : bool;
  jobs : int;
  queue_cap : int;
  batch_cap : int;
  cache_cap : int;
  light : bool;  (** restrict the mix to cheap ops (fuzz-sized scenarios) *)
  inject : string option;  (** intentional server bug, to validate the oracles *)
}

let scenario ?(seed = 0) ?(clients = 8) ?(requests = 6) ?(faults = false)
    ?(jobs = 1) ?(queue_cap = 8) ?(batch_cap = 8) ?(cache_cap = 64)
    ?(light = false) ?inject () =
  if clients < 1 then E.invalid ~where:"Dst.scenario" "need clients >= 1";
  if requests < 1 then E.invalid ~where:"Dst.scenario" "need requests >= 1";
  if jobs < 1 then E.invalid ~where:"Dst.scenario" "need jobs >= 1";
  if queue_cap < 1 then E.invalid ~where:"Dst.scenario" "need queue_cap >= 1";
  if batch_cap < 1 then E.invalid ~where:"Dst.scenario" "need batch_cap >= 1";
  if cache_cap < 1 then E.invalid ~where:"Dst.scenario" "need cache_cap >= 1";
  { seed; clients; requests; faults; jobs; queue_cap; batch_cap; cache_cap;
    light; inject }

let scenario_to_json sc =
  Json.Assoc
    [
      ("kind", Json.String "dst-scenario");
      ("version", Json.Number 1.);
      ("seed", Json.Number (float_of_int sc.seed));
      ("clients", Json.Number (float_of_int sc.clients));
      ("requests", Json.Number (float_of_int sc.requests));
      ("faults", Json.Bool sc.faults);
      ("jobs", Json.Number (float_of_int sc.jobs));
      ("queue_cap", Json.Number (float_of_int sc.queue_cap));
      ("batch_cap", Json.Number (float_of_int sc.batch_cap));
      ("cache_cap", Json.Number (float_of_int sc.cache_cap));
      ("light", Json.Bool sc.light);
      ( "inject",
        match sc.inject with None -> Json.Null | Some s -> Json.String s );
    ]

let scenario_of_json j =
  let int_field name fallback =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> v
    | None -> fallback
  in
  let bool_field name fallback =
    match Option.bind (Json.member name j) Json.to_bool with
    | Some v -> v
    | None -> fallback
  in
  match Option.bind (Json.member "kind" j) Json.to_string_value with
  | Some "dst-scenario" ->
      let inject =
        Option.bind (Json.member "inject" j) Json.to_string_value
      in
      Ok
        {
          seed = int_field "seed" 0;
          clients = int_field "clients" 2;
          requests = int_field "requests" 2;
          faults = bool_field "faults" false;
          jobs = int_field "jobs" 1;
          queue_cap = int_field "queue_cap" 8;
          batch_cap = int_field "batch_cap" 8;
          cache_cap = int_field "cache_cap" 64;
          light = bool_field "light" false;
          inject;
        }
  | Some k -> Error (Printf.sprintf "not a dst-scenario (kind = %S)" k)
  | None -> Error "missing \"kind\" field"

(* ------------------------------------------------------------------ *)
(* workload: the serve_load mix (bench/serve_load.ml), or a cheap
   subset for fuzz-sized scenarios *)

let gen_request ~light prng =
  let roll, prng = Prng.int ~bound:100 prng in
  let roll = if light && roll >= 50 && roll < 95 then 100 - roll else roll in
  if roll < 50 then begin
    let mi, prng = Prng.int ~bound:2 prng in
    let ki, prng = Prng.int ~bound:4 prng in
    let fi, prng = Prng.int ~bound:3 prng in
    let k = 1 + ki in
    let f = if fi > k then k else fi in
    (P.Bound { m = 2 + mi; k; f }, prng)
  end
  else if light then begin
    (* rolls folded into [50, 95): simulate with a small sample count *)
    let b, prng = Prng.float_range ~lo:2.0 ~hi:5.0 prng in
    let xi, prng = Prng.int ~bound:900 prng in
    let s, prng = Prng.int ~bound:1000000 prng in
    if roll >= 95 then (P.Stats, prng)
    else
      ( P.Simulate
          { beta = b; x = float_of_int (100 + xi); samples = 8; seed = s },
        prng )
  end
  else if roll < 70 then begin
    let l, prng = Prng.float_range ~lo:4.0 ~hi:6.0 prng in
    (P.Certify { m = 2; k = 3; f = 1; n = 200.; lambda = l }, prng)
  end
  else if roll < 85 then begin
    let b, prng = Prng.float_range ~lo:2.0 ~hi:5.0 prng in
    let xi, prng = Prng.int ~bound:900 prng in
    let s, prng = Prng.int ~bound:1000000 prng in
    ( P.Simulate
        { beta = b; x = float_of_int (100 + xi); samples = 64; seed = s },
      prng )
  end
  else if roll < 95 then
    (P.Sweep { m = 2; k = 3; f = 1; n = 100.; samples = 5 }, prng)
  else (P.Stats, prng)

let request_tag = function
  | P.Bound _ -> "bound"
  | P.Certify _ -> "certify"
  | P.Sweep _ -> "sweep"
  | P.Simulate _ -> "simulate"
  | P.Stats -> "stats"

let response_tag = function
  | P.Bound_ok _ -> "bound_ok"
  | P.Certify_ok _ -> "certify_ok"
  | P.Sweep_ok _ -> "sweep_ok"
  | P.Simulate_ok _ -> "simulate_ok"
  | P.Stats_ok _ -> "stats_ok"
  | P.Overloaded _ -> "overloaded"
  | P.Failed _ -> "failed"

(* ------------------------------------------------------------------ *)
(* fault injection: deliberately broken runtimes used to validate that
   the oracles actually catch whole-system bugs *)

let nonempty = function [] -> false | _ :: _ -> true

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.equal (String.sub hay i nn) needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let injections = [ "drop-shed-response" ]

let wrap_inject inject runtime =
  match inject with
  | None -> runtime
  | Some "drop-shed-response" -> (
      match runtime with
      | Runtime.T ops ->
          (* the bug: the event loop's write path silently swallows any
             buffer that carries an [Overloaded] response — the client
             that was shed waits forever.  Client-side (blocking) writes
             are untouched. *)
          Runtime.T
            {
              ops with
              Runtime.write =
                (fun fd s ~off ~len ->
                  if contains_sub (String.sub s off len) "\"overloaded\"" then
                    `Wrote len
                  else ops.Runtime.write fd s ~off ~len);
            })
  | Some other -> E.invalid ~where:"Dst.Harness" ("unknown injection: " ^ other)

(* ------------------------------------------------------------------ *)
(* outcomes                                                            *)

type outcome = {
  scenario : scenario;
  violations : string list;
  trace : string;
  digest : string;  (** over terminal response bytes, stats excluded *)
  served : int;
  overloaded_gaveup : int;
  conn_errors : int;
}

type slot = Pending | Served of string | Overload_gaveup | Conn_error

(* Virtual-time horizon: every healthy request resolves in well under a
   virtual second (delays are sub-millisecond and compute costs zero
   virtual time), so a request still pending at the client deadline is
   genuinely stuck, not slow. *)
let client_deadline = 30.0
let sim_deadline = 120.0

let run sc =
  Pool.with_pool ~jobs:sc.jobs @@ fun pool ->
  let root = Prng.make ~seed:sc.seed in
  let sched_prng, rest = Prng.split root in
  let net_prng, work_prng = Prng.split rest in
  let sim = Sim.create ~prng:sched_prng in
  let net = Net.create ~sim ~prng:net_prng ~faults:sc.faults in
  let runtime = wrap_inject sc.inject (Net.runtime net) in
  let vclock () = Sim.now sim in
  let dispatch =
    Dispatch.create ~pool ~cache_capacity:sc.cache_cap
      ~spec:{ Supervise.default with clock = vclock }
      ()
  in
  let trace = Buffer.create 4096 in
  let tr fmt =
    Printf.ksprintf
      (fun line -> Buffer.add_string trace
          (Printf.sprintf "[%.6f] %s\n" (Sim.now sim) line))
      fmt
  in
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf
      (fun line ->
        violations := line :: !violations;
        tr "VIOLATION %s" line)
      fmt
  in
  let config =
    Server.config ~queue_cap:sc.queue_cap ~batch_cap:sc.batch_cap
      ~socket_path
      ~log:(fun msg -> tr "server: %s" msg)
      ()
  in
  let stop = Atomic.make false in
  let server_done = ref false in
  Sim.spawn sim ~name:"server" (fun () ->
      Fun.protect
        ~finally:(fun () -> server_done := true)
        (fun () -> Server.run ~runtime config ~dispatch ~stop));
  (* per-request bookkeeping, indexed [client][request] *)
  let slots = Array.make_matrix sc.clients sc.requests Pending in
  let reqs =
    Array.make_matrix sc.clients sc.requests P.Stats
  in
  let done_clients = ref 0 in
  let conn_errors = ref 0 in
  let id_of ~client ~idx = (client * 100000) + idx in
  let client_prngs =
    let prng = ref work_prng in
    Array.init sc.clients (fun _ ->
        let mine, rest = Prng.split !prng in
        prng := rest;
        mine)
  in
  let spawn_client i =
    Sim.spawn sim ~name:(Printf.sprintf "client-%d" i) @@ fun () ->
    let prng = ref client_prngs.(i) in
    let draw f =
      let v, p = f !prng in
      prng := p;
      v
    in
    let conn = ref None in
    let close_conn () =
      match !conn with
      | Some c ->
          conn := None;
          Client.close c
      | None -> ()
    in
    let connect_retry () =
      let rec go attempts =
        match Client.connect ~runtime ~socket_path () with
        | c ->
            conn := Some c;
            true
        | exception E.Error _ ->
            if attempts >= 50 then false
            else begin
              Sim.sleep sim 0.002;
              go (attempts + 1)
            end
      in
      match !conn with Some _ -> true | None -> go 0
    in
    Fun.protect ~finally:(fun () ->
        close_conn ();
        incr done_clients)
    @@ fun () ->
    for idx = 0 to sc.requests - 1 do
      reqs.(i).(idx) <- draw (gen_request ~light:sc.light)
    done;
    (* pipelined rounds: burst every unresolved request onto the
       connection, then collect responses; shed requests retry next
       round with backoff.  The burst is what makes admission control
       fire — compute costs zero virtual time, so closed-loop clients
       could never overload the queue. *)
    let max_rounds = 9 in
    let todo () =
      let acc = ref [] in
      for idx = sc.requests - 1 downto 0 do
        match slots.(i).(idx) with
        | Pending -> acc := idx :: !acc
        | Served _ | Overload_gaveup | Conn_error -> ()
      done;
      !acc
    in
    (* why the last attempt at each request failed, deciding its
       terminal outcome when retry rounds run out *)
    let last_fail = Array.make sc.requests `Shed in
    let finalize idxs =
      List.iter
        (fun idx ->
          match slots.(i).(idx) with
          | Pending -> (
              match last_fail.(idx) with
              | `Shed -> slots.(i).(idx) <- Overload_gaveup
              | `Conn ->
                  incr conn_errors;
                  slots.(i).(idx) <- Conn_error)
          | Served _ | Overload_gaveup | Conn_error -> ())
        idxs
    in
    let round = ref 0 in
    let continue = ref true in
    while !continue && nonempty (todo ()) do
      let idxs = todo () in
      if !round >= max_rounds then begin
        finalize idxs;
        continue := false
      end
      else if not (connect_retry ()) then begin
        tr "client %d: cannot connect, %d requests abandoned" i
          (List.length idxs);
        List.iter (fun idx -> last_fail.(idx) <- `Conn) idxs;
        finalize idxs;
        continue := false
      end
      else begin
        let c = Option.get !conn in
        (match
           List.iter
             (fun idx ->
               tr "client %d: sent id %d %s"
                 i
                 (id_of ~client:i ~idx)
                 (request_tag reqs.(i).(idx));
               Client.send c ~id:(id_of ~client:i ~idx) reqs.(i).(idx))
             idxs;
           List.iter
             (fun _ ->
               let rid, resp = Client.recv c in
               tr "client %d: recv id %d %s" i rid (response_tag resp);
               let idx = rid - id_of ~client:i ~idx:0 in
               if idx < 0 || idx >= sc.requests
                  || not (Int.equal rid (id_of ~client:i ~idx))
               then violate "client %d: response for foreign id %d" i rid
               else
                 match slots.(i).(idx) with
                 | Pending -> (
                     match resp with
                     | P.Overloaded _ -> last_fail.(idx) <- `Shed
                     | P.Stats_ok _ -> slots.(i).(idx) <- Served "<stats>"
                     | P.Bound_ok _ | P.Certify_ok _ | P.Sweep_ok _
                     | P.Simulate_ok _ | P.Failed _ ->
                         slots.(i).(idx) <-
                           Served (P.encode_response ~id:rid resp))
                 | Served _ | Overload_gaveup | Conn_error ->
                     violate "client %d: second response for id %d" i rid)
             idxs
         with
        | () -> ()
        | exception E.Error err ->
            tr "client %d: connection error: %s" i (E.to_string err);
            (* unanswered requests are retried on a fresh connection
               next round: they are pure, so a re-send after a lost
               response is indistinguishable from a slow first try *)
            List.iter
              (fun idx ->
                match slots.(i).(idx) with
                | Pending -> last_fail.(idx) <- `Conn
                | Served _ | Overload_gaveup | Conn_error -> ())
              idxs;
            close_conn ());
        if nonempty (todo ()) then
          Sim.sleep sim (0.002 *. float_of_int (!round + 1));
        incr round
      end
    done
  in
  for i = 0 to sc.clients - 1 do
    spawn_client i
  done;
  (* supervisor: wait for the clients (bounded by the virtual deadline),
     flag stuck requests, then stop the daemon *)
  Sim.spawn sim ~name:"supervisor" (fun () ->
      while !done_clients < sc.clients && Sim.now sim < client_deadline do
        Sim.sleep sim 0.01
      done;
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun idx s ->
              match s with
              | Pending ->
                  violate
                    "client %d: request id %d (%s) has no terminal outcome"
                    i
                    (id_of ~client:i ~idx)
                    (request_tag reqs.(i).(idx))
              | Served _ | Overload_gaveup | Conn_error -> ())
            row)
        slots;
      tr "supervisor: stop";
      Atomic.set stop true);
  (match Sim.run sim ~deadline:sim_deadline with
  | `Quiescent -> ()
  | `Deadline ->
      violate "simulation hit the %.0fs virtual deadline (stuck fiber)"
        sim_deadline);
  (* whole-system shutdown oracles *)
  List.iter
    (fun (name, e) ->
      violate "fiber %s crashed: %s" name (Printexc.to_string e))
    (Sim.crashes sim);
  if not !server_done then violate "server still running after shutdown";
  if Net.socket_bound net socket_path then
    violate "socket file still bound after shutdown";
  (match Net.open_fds net with
  | [] -> ()
  | fds -> violate "%d simulated fds leaked after shutdown" (List.length fds));
  (* response oracle: every computed response byte-identical to a fresh
     reference evaluation of the same request (stats and overloaded are
     observational and exempt; see the Protocol determinism contract) *)
  let reference = Dispatch.create ~pool ~cache_capacity:sc.cache_cap () in
  let served = ref 0 and gaveup = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun idx s ->
          match s with
          | Served "<stats>" -> incr served
          | Served bytes -> (
              incr served;
              let id = id_of ~client:i ~idx in
              match Dispatch.handle_batch reference [ ((), id, reqs.(i).(idx)) ] with
              | [ ((), rid, resp) ] ->
                  let expect = P.encode_response ~id:rid resp in
                  if not (String.equal bytes expect) then
                    violate
                      "client %d: response for id %d differs from reference \
                       (got %d bytes, want %d)"
                      i id (String.length bytes) (String.length expect)
              | _ -> violate "reference dispatch returned a non-singleton")
          | Overload_gaveup -> incr gaveup
          | Conn_error | Pending -> ())
        row)
    slots;
  let digest =
    let buf = Buffer.create 1024 in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun idx s ->
            match s with
            | Served bytes ->
                Buffer.add_string buf (Printf.sprintf "%d.%d:" i idx);
                Buffer.add_string buf bytes
            | Overload_gaveup ->
                Buffer.add_string buf (Printf.sprintf "%d.%d:overload" i idx)
            | Conn_error ->
                Buffer.add_string buf (Printf.sprintf "%d.%d:conn-error" i idx)
            | Pending ->
                Buffer.add_string buf (Printf.sprintf "%d.%d:pending" i idx))
          row)
      slots;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let c = Net.counters net in
  tr "net: chunks=%d reorders=%d drops=%d crashes=%d partial_writes=%d"
    c.Net.chunks c.Net.reorders c.Net.drops c.Net.crashes c.Net.partial_writes;
  tr "digest: %s" digest;
  {
    scenario = sc;
    violations = List.rev !violations;
    trace = Buffer.contents trace;
    digest;
    served = !served;
    overloaded_gaveup = !gaveup;
    conn_errors = !conn_errors;
  }

(* ------------------------------------------------------------------ *)
(* schedule search and shrinking                                       *)

let failing o = match o.violations with [] -> false | _ :: _ -> true

let search sc ~seeds =
  let rec go s =
    if s >= seeds then `Clean seeds
    else
      let o = run { sc with seed = sc.seed + s } in
      if failing o then `Found (o, s + 1) else go (s + 1)
  in
  go 0

(* Greedy structural shrinking: try each reduction, keep any that still
   fails, restart from the top; give up after [budget] runs.  The seed
   is part of the scenario, so the minimized repro replays exactly. *)
let shrink ?(budget = 40) o0 =
  let candidates sc =
    let halve n = n / 2 in
    List.filter_map
      (fun c -> c)
      [
        (if sc.clients > 1 then Some { sc with clients = halve sc.clients }
         else None);
        (if sc.clients > 1 then Some { sc with clients = sc.clients - 1 }
         else None);
        (if sc.requests > 1 then Some { sc with requests = halve sc.requests }
         else None);
        (if sc.requests > 1 then Some { sc with requests = sc.requests - 1 }
         else None);
        (if sc.faults then Some { sc with faults = false } else None);
        (if not sc.light then Some { sc with light = true } else None);
        (if sc.jobs > 1 then Some { sc with jobs = 1 } else None);
      ]
  in
  let evals = ref 0 in
  let rec fix best =
    let rec try_cands = function
      | [] -> best
      | sc :: rest ->
          if !evals >= budget then best
          else begin
            incr evals;
            let o = run sc in
            if failing o then fix o else try_cands rest
          end
    in
    try_cands (candidates best.scenario)
  in
  fix o0

(* ------------------------------------------------------------------ *)
(* replayable corpus entries                                           *)

let entry_to_json o =
  match scenario_to_json o.scenario with
  | Json.Assoc fields ->
      Json.Assoc
        (fields
        @ [
            ("expect_violation", Json.Bool (failing o));
            ( "note",
              Json.String
                (match o.violations with [] -> "" | v :: _ -> v) );
          ])
  | other -> other

let corpus_write ~dir o =
  let json = entry_to_json o in
  let body = Json.to_string ~pretty:true json ^ "\n" in
  let name =
    Printf.sprintf "dst-%s.json"
      (String.sub (Digest.to_hex (Digest.string body)) 0 12)
  in
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  path

let replay_file path =
  let ic = open_in_bin path in
  let body =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string body with
  | Error msg -> Error (Printf.sprintf "%s: bad JSON: %s" path msg)
  | Ok json -> (
      match scenario_of_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok sc ->
          let expect =
            match
              Option.bind (Json.member "expect_violation" json) Json.to_bool
            with
            | Some b -> b
            | None -> true
          in
          let o = run sc in
          if Bool.equal (failing o) expect then Ok o
          else
            Error
              (Printf.sprintf
                 "%s: outcome changed: expected %s, run %s (first: %s)" path
                 (if expect then "violations" else "a clean run")
                 (if failing o then "violated" else "was clean")
                 (match o.violations with [] -> "none" | v :: _ -> v)))

(* ------------------------------------------------------------------ *)
(* the fuzz-catalogue extension                                        *)

let invariant_case (case : Search_check.Case.t) =
  let sc =
    scenario ~seed:case.Search_check.Case.turn_seed ~clients:2 ~requests:2
      ~faults:true ~jobs:1 ~queue_cap:2 ~batch_cap:4 ~cache_cap:8 ~light:true
      ()
  in
  let o1 = run sc in
  let o2 = run sc in
  let det =
    if String.equal o1.trace o2.trace then []
    else [ "same scenario, two runs, different traces (nondeterminism)" ]
  in
  o1.violations @ det

let register_invariant () =
  Search_check.Invariant.register ~name:"dst.whole_system" invariant_case
