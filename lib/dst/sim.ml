module Prng = Search_numerics.Prng

(* A single-threaded discrete-event scheduler in the FoundationDB style:
   fibers are effect-handled computations, the virtual clock advances
   only when every runnable fiber has parked, and the only randomness is
   one seeded PRNG choosing among same-instant runnables.  Everything
   observable in a run is a pure function of the seed. *)

type timer = { at : float; tseq : int; fire : unit -> unit }

type t = {
  mutable now : float;
  mutable prng : Prng.t;
  mutable ready : (unit -> unit) list;  (** runnable bag, order immaterial *)
  mutable ready_n : int;
  mutable heap : timer array;  (** binary min-heap by [(at, tseq)] *)
  mutable heap_n : int;
  mutable seq : int;
  mutable crashes : (string * exn) list;
  mutable live : int;  (** spawned fibers that have not finished *)
}

let dummy_timer = { at = 0.; tseq = 0; fire = ignore }

let create ~prng =
  {
    now = 0.;
    prng;
    ready = [];
    ready_n = 0;
    heap = Array.make 64 dummy_timer;
    heap_n = 0;
    seq = 0;
    crashes = [];
    live = 0;
  }

let now t = t.now
let crashes t = List.rev t.crashes

(* -- timer heap ---------------------------------------------------- *)

let timer_lt a b =
  match Float.compare a.at b.at with
  | 0 -> Int.compare a.tseq b.tseq < 0
  | c -> c < 0

let heap_push t tm =
  if t.heap_n = Array.length t.heap then begin
    let bigger = Array.make (2 * t.heap_n) dummy_timer in
    Array.blit t.heap 0 bigger 0 t.heap_n;
    t.heap <- bigger
  end;
  let i = ref t.heap_n in
  t.heap_n <- t.heap_n + 1;
  t.heap.(!i) <- tm;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if timer_lt t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let heap_pop t =
  if t.heap_n = 0 then None
  else begin
    let top = t.heap.(0) in
    t.heap_n <- t.heap_n - 1;
    t.heap.(0) <- t.heap.(t.heap_n);
    t.heap.(t.heap_n) <- dummy_timer;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.heap_n && timer_lt t.heap.(l) t.heap.(!smallest) then
        smallest := l;
      if r < t.heap_n && timer_lt t.heap.(r) t.heap.(!smallest) then
        smallest := r;
      if not (Int.equal !smallest !i) then begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end

(* -- scheduling ---------------------------------------------------- *)

let schedule t thunk =
  t.ready <- thunk :: t.ready;
  t.ready_n <- t.ready_n + 1

let at t ~delay fire =
  let delay = if delay > 0. then delay else 0. in
  t.seq <- t.seq + 1;
  heap_push t { at = t.now +. delay; tseq = t.seq; fire }

(* Remove and return the [i]-th element of the ready bag. *)
let take_nth t i =
  let rec go j acc = function
    | [] -> assert false
    | x :: rest ->
        if Int.equal j i then begin
          t.ready <- List.rev_append acc rest;
          t.ready_n <- t.ready_n - 1;
          x
        end
        else go (j + 1) (x :: acc) rest
  in
  go 0 [] t.ready

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend _t register = Effect.perform (Suspend register)

let sleep t d =
  Effect.perform (Suspend (fun resume -> at t ~delay:d (fun () -> schedule t resume)))

let yield t = Effect.perform (Suspend (fun resume -> schedule t resume))

let spawn t ~name f =
  t.live <- t.live + 1;
  let body () =
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc = (fun () -> t.live <- t.live - 1);
        exnc =
          (fun e ->
            t.live <- t.live - 1;
            t.crashes <- (name, e) :: t.crashes);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) Effect.Deep.continuation) ->
                    register (fun () -> Effect.Deep.continue k ()))
            | _ -> None);
      }
  in
  schedule t body

(* One scheduler step: run a random runnable, else advance the clock to
   the earliest timer(s).  Every timer due at that same instant is
   released into the ready bag together, so ties are randomly
   interleaved exactly like any other same-instant runnables. *)
let step t ~deadline =
  if t.ready_n > 0 then begin
    let thunk =
      if Int.equal t.ready_n 1 then take_nth t 0
      else begin
        let i, prng = Prng.int ~bound:t.ready_n t.prng in
        t.prng <- prng;
        take_nth t i
      end
    in
    thunk ();
    `Progress
  end
  else
    match heap_pop t with
    | None -> `Quiescent
    | Some tm ->
        if tm.at > deadline then begin
          (* put it back; the caller sees a deadline overrun *)
          heap_push t tm;
          `Deadline
        end
        else begin
          t.now <- (if tm.at > t.now then tm.at else t.now);
          schedule t tm.fire;
          let continue = ref true in
          while !continue do
            match heap_pop t with
            | Some tm' when Float.equal tm'.at tm.at -> schedule t tm'.fire
            | Some tm' ->
                heap_push t tm';
                continue := false
            | None -> continue := false
          done;
          `Progress
        end

let run t ~deadline =
  let rec go () =
    match step t ~deadline with
    | `Progress -> go ()
    | `Quiescent -> `Quiescent
    | `Deadline -> `Deadline
  in
  go ()

let live t = t.live
