(** Deterministic discrete-event scheduler: virtual time, seeded
    interleavings, effect-based fibers.

    The simulation owns a virtual clock that starts at [0.] and advances
    only when every runnable fiber has parked (on a {!sleep} timer or a
    {!suspend} registration).  Runnable fibers are kept in a bag and the
    next one to execute is drawn uniformly with the scheduler PRNG —
    that draw is the {e only} source of randomness, so a whole run is a
    pure function of the seed, and re-running a seed replays the exact
    interleaving (a failing seed is a repro).

    Event ordering rule: timers fire in [(time, creation order)] order;
    all timers due at the same instant are released together and mix
    randomly with any other runnables of that instant.  Fiber wake-ups
    always pass through the ready bag — nothing runs nested inside
    another fiber's step. *)

type t

val create : prng:Search_numerics.Prng.t -> t

val now : t -> float
(** Virtual seconds since the start of the run. *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Add a fiber.  An exception escaping [f] is recorded under [name] in
    {!crashes} and does not stop the simulation. *)

val sleep : t -> float -> unit
(** Park the calling fiber for that much virtual time.  Must be called
    from inside a fiber. *)

val yield : t -> unit
(** Reschedule the calling fiber, letting same-instant peers interleave. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** [suspend t register] parks the calling fiber and hands its resume
    thunk to [register].  The resume thunk must be called at most once,
    and only from scheduler context (a timer body or another fiber) —
    typically via {!schedule} or {!at}. *)

val schedule : t -> (unit -> unit) -> unit
(** Add a thunk to the ready bag (runs at the current instant, in random
    order with its peers). *)

val at : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] virtual seconds from now (clamped to [>= 0]). *)

val run : t -> deadline:float -> [ `Quiescent | `Deadline ]
(** Drive the simulation until no fiber is runnable and no timer is
    pending ([`Quiescent]), or until the next timer lies beyond
    [deadline] ([`Deadline] — somebody is stuck sleeping forever). *)

val crashes : t -> (string * exn) list
(** Fibers that died to an exception, in spawn-crash order. *)

val live : t -> int
(** Spawned fibers that have not yet returned or crashed. *)
