(** The fake network: simulated Unix-domain sockets over {!Sim}.

    Implements the full {!Search_serve.Runtime} contract with integer
    fds, so the real {!Search_serve.Server} loop and
    {!Search_serve.Client} run against it unchanged.  Every write is
    fragmented into arbitrary byte chunks, each delivered by its own
    virtual-time timer; partial writes happen spontaneously.  What the
    network may do to a stream:

    - {b always}: delay chunks (50–500 µs per chunk), fragment at any
      byte boundary, accept only a prefix of a write;
    - {b never} (faults off): reorder, lose, or duplicate bytes —
      deliveries on an edge are clamped monotone like a real stream
      socket;
    - {b with [faults = true]}: jitter a chunk past its successors
      (reordering deliveries at distinct virtual times; an inversion
      that materialises is detected by a per-edge sequence check and
      surfaced as a connection reset, because a stream socket can never
      hand reordered bytes to its reader), drop a chunk (also a reset
      at delivery time — lost bytes on a stream are unrecoverable), or
      crash a connection at a scheduled instant drawn from the
      connection's split-PRNG plan.  Readers always observe an exact
      prefix of what was written, then possibly an error — never
      corrupted bytes.

    All randomness comes from the [prng] handed to {!create} and from
    per-connection split streams derived from it — independent of the
    scheduler PRNG, so the same fault plan replays under any schedule
    seed. *)

type t

type counters = {
  mutable chunks : int;  (** delivery timers scheduled *)
  mutable reorders : int;  (** inversions that materialised (resets) *)
  mutable drops : int;  (** chunks dropped (connection resets) *)
  mutable crashes : int;  (** scheduled peer-crashes that fired *)
  mutable partial_writes : int;  (** writes that accepted only a prefix *)
}

val create : sim:Sim.t -> prng:Search_numerics.Prng.t -> faults:bool -> t

val ops : t -> int Search_serve.Runtime.ops
val runtime : t -> Search_serve.Runtime.t

val socket_bound : t -> string -> bool
(** Is a socket file currently bound at this path?  (Survives listener
    close until [unlink], as on a real filesystem.) *)

val open_fds : t -> int list
(** Every endpoint or listener not yet closed, ascending — the fd-leak
    oracle: after a clean shutdown with all clients closed this must be
    empty. *)

val counters : t -> counters
(** Fault/traffic counters for the whole run (mutated in place). *)
