(** Deterministic case and strategy generators.

    Case [i] of a run is drawn from leaf [i] of the
    {!Search_exec.Shard.prngs} split tree, so the case stream depends
    only on [(seed, count)] — never on evaluation order or job count —
    and any single case can be regenerated in isolation.  The auxiliary
    randomness (turning-sequence noise) is keyed purely on the case's
    [turn_seed], making every derived object a function of the case
    record alone. *)

val case : id:int -> Search_numerics.Prng.t -> Case.t
(** One random searching-regime case from a dedicated generator.  The
    generator keeps [k <= 6] so the invariants can enumerate all
    [C(k, f)] fault assignments exhaustively. *)

val cases : seed:int -> count:int -> Case.t list
(** [count] cases with ids [0 .. count-1], case [i] drawn from leaf [i]
    of the split tree rooted at [seed]. *)

val alpha : Case.t -> float
(** The exponential-strategy base the case prescribes:
    [alpha_star *. alpha_scale]. *)

val turning : Case.t -> robot:int -> Search_strategy.Turning.t
(** A random-but-valid turning sequence for one robot: a geometric ramp
    at the case's base with multiplicative noise in [[0.8, 1.25]], drawn
    purely from [(turn_seed, robot, index)] — deterministic, memoisable,
    and possibly non-monotone (intentionally: the normalisation
    invariants need un-normalised inputs). *)

val turning_group : Case.t -> Search_strategy.Turning.t array
(** One sequence per robot, staggered in scale across the group. *)
