(** The invariant catalogue: executable cross-checks between independent
    implementations of the same quantity.

    Every invariant is {e one-sided (sound)}: it only flags
    contradictions that are bugs under any reading of the paper —
    disagreement between two derivations of the same number, a
    refutation whose recount does not reproduce its own witness, a
    parallel run that differs from the sequential one.  None of them
    asserts completeness claims (e.g. "λ just below the bound must be
    refuted on this horizon"), which are false at finite horizons.

    The catalogue (ids as reported in violations):

    - [prng.smoke] — bounded draws in range, unit floats in [0, 1),
      split streams pairwise distinct from the parent's.
    - [engine.fixed_vs_worst] — {!Search_sim.Engine.detection_time_worst}
      equals the max of [detection_time_fixed] over every C(k, f) fault
      assignment (exhaustive; for oversized hand-written cases, sampled
      plus the adversarial assignment).
    - [engine.monotone_in_f] — worst-case detection time is
      nondecreasing in the fault budget.
    - [byzantine.conservative_rule] — announcement-level simulation with
      valid lie schedules confirms exactly at the crash-model worst case
      with [2 f] tolerated faults, and never confirms a false place.
    - [sim.ratio_within_design] — the adversary's empirical ratio over
      the window stays within the strategy's designed ratio (and >= 1).
    - [strategy.coverage_theorem] — the exponential strategy's integer
      residue count certifies (f+1)-fold coverage; its predicted ratio
      matches the closed-form appendix formula and dominates [lambda0].
    - [covering.cert_consistency] — a [Refuted_gap] recounts to the same
      under-coverage by pointwise {!Search_numerics.Sweep.multiplicity_at};
      a [Not_refuted] window re-verifies, as does its half sub-window.
    - [covering.profile_vs_pointwise] — the sweep's piecewise coverage
      profile partitions the window and agrees with pointwise counting
      at every piece midpoint; [min_multiplicity] agrees with the
      profile minimum.
    - [normalize.monotone_coverage] — dropping unfruitful turns never
      loses λ-coverage; normalised turns are a subsequence of the
      original; the line variant is nondecreasing.
    - [stochastic.oracles] — a point mass reproduces the worst-case
      detection time exactly; the Beck quotient lies between the
      pointwise detection-ratio extremes of the support.
    - [exec.jobs_invariance] — a sharded stochastic map over the case is
      bit-identical at pool sizes 1 and 3.
    - [analysis.self_clean] — the {!Search_analysis} lint pass over the
      repository's own sources reports no findings beyond the checked-in
      [lint.allow] entries.  Evaluated once per process (the verdict is
      case-independent); vacuously satisfied when the source tree is not
      reachable from the working directory. *)

type violation = { invariant : string; detail : string }

val names : unit -> string list
(** Catalogue ids in evaluation order, then registered extension ids
    sorted by name. *)

val register : name:string -> (Case.t -> string list) -> unit
(** Add (or replace, keyed by [name]) an extension invariant.  Layers
    that sit {e above} this library in the dependency graph — e.g. the
    deterministic whole-system simulator, which links the server — hook
    into the fuzz catalogue here at startup instead of being referenced
    directly (which would be a dependency cycle).  Extensions receive
    the raw case (no [ctx]) and run after the built-in catalogue, in
    name order. *)

val register_escape_invariant : unit -> unit
(** Register [analysis.escape_self_clean] through {!register}: the
    {!Search_analysis} escape family ([--escape] — exception flow,
    release discipline, sim hygiene) over the repository's own build
    artefacts reports nothing beyond the checked-in [lint.allow]
    entries.  Like [analysis.self_clean] the verdict is computed once
    per process; it is vacuously satisfied when the source tree — or
    the [.cmt] build tree next to it — is not reachable from the
    working directory. *)

val check_case : Case.t -> violation list
(** Run the whole catalogue (plus registered extensions) on one case.
    Deterministic: the violation list (contents and order) is a pure
    function of the case and the registered extension set.  An
    invariant that raises an unexpected exception is itself reported as
    a violation; an invalid case yields a single [case.valid]
    violation. *)

val pp_violation : Format.formatter -> violation -> unit
