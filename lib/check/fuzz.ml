module Json = Search_numerics.Json
module E = Search_numerics.Search_error
module Pool = Search_exec.Pool
module Supervise = Search_exec.Supervise
module Chaos = Search_resilience.Chaos
module Retry = Search_resilience.Retry
module Journal = Search_resilience.Journal

type failure = {
  original : Case.t;
  shrunk : Case.t;
  violations : Invariant.violation list;
}

type outcome = { seed : int; cases : int; failures : failure list }

(* Checkpoint codec for one case's violation list. *)
let violations_to_json vs =
  Json.List
    (List.map
       (fun (v : Invariant.violation) ->
         Json.Assoc
           [
             ("invariant", Json.String v.invariant);
             ("detail", Json.String v.detail);
           ])
       vs)

let violations_of_json j =
  match j with
  | Json.List items ->
      let decode item =
        match
          ( Option.bind (Json.member "invariant" item) Json.to_string_value,
            Option.bind (Json.member "detail" item) Json.to_string_value )
        with
        | Some invariant, Some detail ->
            Some { Invariant.invariant; detail }
        | _ -> None
      in
      let decoded = List.filter_map decode items in
      if Int.equal (List.length decoded) (List.length items) then Ok decoded
      else Error "Fuzz: malformed violation entry"
  | _ -> Error "Fuzz: expected a violation list"

let run ?jobs ?(chaos = Chaos.disabled) ?(retry = Retry.none) ?journal_dir
    ~seed ~cases () =
  let generated = Gen.cases ~seed ~count:cases in
  let persist =
    Option.map
      (fun dir ->
        let config =
          Json.Assoc
            [
              ("run", Json.String "fuzz");
              ("seed", Json.Number (float_of_int seed));
              ("cases", Json.Number (float_of_int cases));
              ( "invariants",
                Json.List
                  (List.map (fun n -> Json.String n) (Invariant.names ())) );
            ]
        in
        {
          Supervise.journal = Journal.open_ ~dir ~config;
          encode = violations_to_json;
          decode = violations_of_json;
        })
      journal_dir
  in
  let spec = { Supervise.default with chaos; retry } in
  let checked =
    Pool.with_pool ?jobs @@ fun pool ->
    Supervise.map pool ~spec ?persist
      ~task:(fun _ c -> Printf.sprintf "fuzz/case-%d" c.Case.id)
      ~f:(fun _meter c -> Invariant.check_case c)
      generated
    |> List.map2 (fun c r -> (c, r)) generated
  in
  Option.iter (fun p -> Journal.finish p.Supervise.journal) persist;
  (* Shrinking is sequential: failures are rare, and the greedy descent
     re-runs the catalogue many times over ever-smaller cases. *)
  let failures =
    List.filter_map
      (fun (original, result) ->
        match result with
        | Ok [] -> None
        | Ok (_ :: _) ->
            let still_fails c = Invariant.check_case c <> [] in
            let shrunk = Shrink.minimize ~still_fails original in
            Some
              { original; shrunk; violations = Invariant.check_case shrunk }
        | Error err ->
            (* a case the supervisor could not complete is itself a
               finding; it is not shrunk (the invariants did not fail —
               the runtime did) *)
            Some
              {
                original;
                shrunk = original;
                violations =
                  [
                    {
                      Invariant.invariant = "runtime.supervised";
                      detail = E.to_string err;
                    };
                  ];
              })
      checked
  in
  { seed; cases; failures }

let report o =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "fuzz: seed=%d cases=%d invariants=%d\n" o.seed o.cases
    (List.length (Invariant.names ()));
  List.iter
    (fun fl ->
      pf "\nFAILURE: case %d (shrunk from id %d):\n" fl.shrunk.Case.id
        fl.original.Case.id;
      pf "%s\n" (Json.to_string ~pretty:true (Case.to_json fl.shrunk));
      List.iter
        (fun v -> pf "  %s\n" (Format.asprintf "%a" Invariant.pp_violation v))
        fl.violations)
    o.failures;
  (match o.failures with
  | [] -> pf "result: OK (0 invariant violations)\n"
  | fs -> pf "\nresult: FAIL (%d failing case(s))\n" (List.length fs));
  Buffer.contents buf

let save_failures ~dir o =
  List.map
    (fun fl -> Corpus.save ~dir fl.shrunk ~violations:fl.violations)
    o.failures
