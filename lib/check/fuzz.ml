module Json = Search_numerics.Json
module Pool = Search_exec.Pool
module Par = Search_exec.Par

type failure = {
  original : Case.t;
  shrunk : Case.t;
  violations : Invariant.violation list;
}

type outcome = { seed : int; cases : int; failures : failure list }

let run ?jobs ~seed ~cases () =
  let generated = Gen.cases ~seed ~count:cases in
  let checked =
    Pool.with_pool ?jobs @@ fun pool ->
    Par.parallel_map pool generated ~f:(fun c -> (c, Invariant.check_case c))
  in
  (* Shrinking is sequential: failures are rare, and the greedy descent
     re-runs the catalogue many times over ever-smaller cases. *)
  let failures =
    List.filter_map
      (fun (original, violations) ->
        if violations = [] then None
        else
          let still_fails c = Invariant.check_case c <> [] in
          let shrunk = Shrink.minimize ~still_fails original in
          Some { original; shrunk; violations = Invariant.check_case shrunk })
      checked
  in
  { seed; cases; failures }

let report o =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "fuzz: seed=%d cases=%d invariants=%d\n" o.seed o.cases
    (List.length Invariant.names);
  List.iter
    (fun fl ->
      pf "\nFAILURE: case %d (shrunk from id %d):\n" fl.shrunk.Case.id
        fl.original.Case.id;
      pf "%s\n" (Json.to_string ~pretty:true (Case.to_json fl.shrunk));
      List.iter
        (fun v -> pf "  %s\n" (Format.asprintf "%a" Invariant.pp_violation v))
        fl.violations)
    o.failures;
  (match o.failures with
  | [] -> pf "result: OK (0 invariant violations)\n"
  | fs -> pf "\nresult: FAIL (%d failing case(s))\n" (List.length fs));
  Buffer.contents buf

let save_failures ~dir o =
  List.map
    (fun fl -> Corpus.save ~dir fl.shrunk ~violations:fl.violations)
    o.failures
