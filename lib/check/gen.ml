module Prng = Search_numerics.Prng
module P = Search_bounds.Params
module F = Search_bounds.Formulas
module Turning = Search_strategy.Turning

let case ~id g =
  let f, g = Prng.int ~bound:3 g in
  let m, g = Prng.int ~bound:3 g in
  let m = m + 2 in
  (* searching regime: k in [f+1, m(f+1) - 1], capped so the invariants
     can enumerate every fault assignment *)
  let lo = f + 1 in
  let hi = (m * (f + 1)) - 1 in
  let k, g = Prng.int ~bound:(hi - lo + 1) g in
  let k = Stdlib.min (lo + k) 6 in
  let horizon, g = Prng.float_range ~lo:10. ~hi:120. g in
  let pick, g = Prng.int ~bound:10 g in
  let alpha_scale, g =
    if pick < 3 then (1., g) else Prng.float_range ~lo:1. ~hi:1.6 g
  in
  let lambda_frac, g = Prng.float g in
  let n_targets, g = Prng.int ~bound:4 g in
  let rec draw_targets n acc g =
    if n = 0 then (List.rev acc, g)
    else
      let ray, g = Prng.int ~bound:m g in
      let edge, g = Prng.int ~bound:8 g in
      let dist, g =
        if edge = 0 then (1., g)
        else if edge = 1 then (horizon, g)
        else Prng.float_range ~lo:1. ~hi:horizon g
      in
      draw_targets (n - 1) ((ray, dist) :: acc) g
  in
  let targets, g = draw_targets (n_targets + 1) [] g in
  (* 30 bits: nonnegative, and exactly representable as a JSON float *)
  let raw, _ = Prng.next_int64 g in
  let turn_seed = Int64.to_int (Int64.logand raw 0x3FFFFFFFL) in
  {
    Case.id;
    m;
    k;
    f;
    horizon;
    alpha_scale;
    lambda_frac;
    targets;
    turn_seed;
  }

let cases ~seed ~count =
  Search_exec.Shard.prngs ~root:(Prng.make ~seed) ~n:count
  |> Array.to_list
  |> List.mapi (fun i g -> case ~id:i g)

let alpha (c : Case.t) =
  let p = Case.params c in
  F.alpha_star ~q:(P.q p) ~k:c.k *. c.alpha_scale

(* Pure in (seed, robot, index) so Turning.of_fun may memoise it. *)
let noise ~turn_seed ~robot i =
  let seed = turn_seed + (robot * 0x1000003) + (i * 0x5DEECE6) in
  fst (Prng.float_range ~lo:0.8 ~hi:1.25 (Prng.make ~seed))

let turning (c : Case.t) ~robot =
  let a = alpha c in
  let scale = a ** (float_of_int robot /. float_of_int c.k) in
  Turning.of_fun (fun i ->
      scale *. (a ** float_of_int i) *. noise ~turn_seed:c.turn_seed ~robot i)

let turning_group (c : Case.t) =
  Array.init c.k (fun robot -> turning c ~robot)
