module Json = Search_numerics.Json

let entry_json case ~violations =
  Json.Assoc
    [
      ("case", Case.to_json case);
      ( "violations",
        Json.List
          (List.map
             (fun (v : Invariant.violation) ->
               Json.Assoc
                 [
                   ("invariant", Json.String v.invariant);
                   ("detail", Json.String v.detail);
                 ])
             violations) );
    ]

(* Writes are serialised by a PID-stamped lock file (stale ones from
   killed runs are broken, not waited on) and land via temp + rename, so
   a reader or a concurrent fuzz process never observes a torn entry.
   [files] only lists [*.json], which hides the lock and temp files. *)
let save ~dir case ~violations =
  let contents =
    Json.to_string ~pretty:true (entry_json case ~violations) ^ "\n"
  in
  let name =
    Printf.sprintf "case-%s.json"
      (String.sub (Digest.to_hex (Digest.string contents)) 0 12)
  in
  let path = Filename.concat dir name in
  Search_resilience.Lockfile.with_lock
    ~path:(Filename.concat dir ".corpus.lock")
  @@ fun () ->
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ] "corpus"
      ".tmp"
  in
  match
    output_string oc contents;
    close_out oc
  with
  | () ->
      Sys.rename tmp path;
      path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load_file path =
  Result.bind (read_file path) @@ fun contents ->
  Result.bind (Json.of_string contents) @@ fun json ->
  let case_json = Option.value (Json.member "case" json) ~default:json in
  Case.of_json case_json

let replay_file path =
  Result.bind (load_file path) @@ fun case ->
  match Invariant.check_case case with
  | [] -> Ok ()
  | violations ->
      Error
        (Format.asprintf "%d violation(s):@ %a" (List.length violations)
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Invariant.pp_violation)
           violations)

let files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".json")
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
