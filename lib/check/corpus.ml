module Json = Search_numerics.Json

let entry_json case ~violations =
  Json.Assoc
    [
      ("case", Case.to_json case);
      ( "violations",
        Json.List
          (List.map
             (fun (v : Invariant.violation) ->
               Json.Assoc
                 [
                   ("invariant", Json.String v.invariant);
                   ("detail", Json.String v.detail);
                 ])
             violations) );
    ]

let save ~dir case ~violations =
  let contents =
    Json.to_string ~pretty:true (entry_json case ~violations) ^ "\n"
  in
  let name =
    Printf.sprintf "case-%s.json"
      (String.sub (Digest.to_hex (Digest.string contents)) 0 12)
  in
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  path

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))

let load_file path =
  Result.bind (read_file path) @@ fun contents ->
  Result.bind (Json.of_string contents) @@ fun json ->
  let case_json = Option.value (Json.member "case" json) ~default:json in
  Case.of_json case_json

let replay_file path =
  Result.bind (load_file path) @@ fun case ->
  match Invariant.check_case case with
  | [] -> Ok ()
  | violations ->
      Error
        (Format.asprintf "%d violation(s):@ %a" (List.length violations)
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Invariant.pp_violation)
           violations)

let files ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".json")
      |> List.sort String.compare
      |> List.map (Filename.concat dir)
