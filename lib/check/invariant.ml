module Prng = Search_numerics.Prng
module Sweep = Search_numerics.Sweep
module P = Search_bounds.Params
module F = Search_bounds.Formulas
module World = Search_sim.World
module Engine = Search_sim.Engine
module Fault = Search_sim.Fault
module Trajectory = Search_sim.Trajectory
module Byz = Search_sim.Byzantine_sim
module Stochastic = Search_sim.Stochastic
module Adversary = Search_sim.Adversary
module Group = Search_strategy.Group
module Turning = Search_strategy.Turning
module Normalize = Search_strategy.Normalize
module Mray = Search_strategy.Mray_exponential
module Symmetric = Search_covering.Symmetric
module Orc = Search_covering.Orc
module Certificate = Search_covering.Certificate
module Pool = Search_exec.Pool
module Shard = Search_exec.Shard
module Supervise = Search_exec.Supervise
module Chaos = Search_resilience.Chaos
module Retry = Search_resilience.Retry
module E = Search_numerics.Search_error

type violation = { invariant : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s" v.invariant v.detail

(* Everything the invariants share, derived once per case. *)
type ctx = {
  case : Case.t;
  params : P.t;
  predicted_ratio : float;  (** of the optimal group at the case's base *)
  trajectories : Trajectory.t array;
  targets : World.point list;
  turns : Turning.t array;  (** the random turning group under test *)
  lambda : float;
  time_horizon : float;  (** generous horizon for detection queries *)
  cover_n : float;  (** coverage / certificate window *)
}

let make_ctx (case : Case.t) =
  let params = Case.params case in
  let group = Group.optimal ~alpha:(Gen.alpha case) params in
  let world = World.rays case.m in
  let bound = F.of_params params in
  {
    case;
    params;
    predicted_ratio = group.Group.predicted_ratio;
    trajectories = Group.trajectories group;
    targets =
      List.map (fun (ray, dist) -> World.point world ~ray ~dist) case.targets;
    turns = Gen.turning_group case;
    lambda = Float.max 1.01 (bound *. (0.6 +. (0.8 *. case.lambda_frac)));
    time_horizon = 4. *. bound *. case.horizon;
    cover_n = Float.min case.horizon 60.;
  }

let failf fmt = Format.kasprintf (fun s -> [ s ]) fmt
let to_inf = function None -> infinity | Some t -> t

let rel_close a b tol =
  Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* prng.smoke                                                          *)

let inv_prng ctx =
  let g = Prng.make ~seed:ctx.case.Case.turn_seed in
  let x, g' = Prng.float g in
  let range_probs =
    (if x >= 0. && x < 1. then [] else failf "float %.17g outside [0, 1)" x)
    @
    let i, _ = Prng.int ~bound:7 g' in
    if i >= 0 && i < 7 then [] else failf "int ~bound:7 drew %d" i
  in
  let draw g n =
    let rec go g n acc =
      if n = 0 then List.rev acc
      else
        let v, g = Prng.next_int64 g in
        go g (n - 1) (v :: acc)
    in
    go g n []
  in
  let left, right = Prng.split g in
  let xs = draw g 4 @ draw left 4 @ draw right 4 in
  let distinct = List.length (List.sort_uniq Int64.compare xs) in
  range_probs
  @
  if distinct = 12 then []
  else failf "parent/left/right streams collide: %d distinct of 12" distinct

(* ------------------------------------------------------------------ *)
(* engine.fixed_vs_worst                                               *)

(* All bool arrays of length [k] with exactly [f] set. *)
let assignments ~k ~f =
  let acc = ref [] in
  let arr = Array.make k false in
  let rec go idx remaining =
    if remaining = 0 then acc := Array.copy arr :: !acc
    else if idx < k && k - idx >= remaining then begin
      arr.(idx) <- true;
      go (idx + 1) (remaining - 1);
      arr.(idx) <- false;
      go (idx + 1) remaining
    end
  in
  go 0 f;
  List.rev !acc

let random_assignment ~k ~f g =
  let arr = Array.make k false in
  let rec place placed g =
    if Int.equal placed f then g
    else
      let r, g = Prng.int ~bound:k g in
      if arr.(r) then place placed g
      else begin
        arr.(r) <- true;
        place (placed + 1) g
      end
  in
  let g = place 0 g in
  (arr, g)

let inv_fixed_vs_worst ctx =
  let k = ctx.case.Case.k and f = ctx.case.Case.f in
  let all = assignments ~k ~f in
  (* exhaustive when feasible — always true for generated cases (k <= 6);
     the sampled fallback keeps hand-written corpus cases tractable *)
  let exhaustive = List.length all <= 1024 in
  let fixed_at target faulty =
    to_inf
      (Engine.detection_time_fixed ctx.trajectories
         ~assignment:(Fault.make Fault.Crash ~faulty)
         ~target ~horizon:ctx.time_horizon)
  in
  List.concat_map
    (fun target ->
      let worst =
        to_inf
          (Engine.detection_time_worst ctx.trajectories ~f ~target
             ~horizon:ctx.time_horizon)
      in
      if exhaustive then begin
        let fixed_max =
          List.fold_left
            (fun acc faulty -> Float.max acc (fixed_at target faulty))
            neg_infinity all
        in
        if Float.equal fixed_max worst then []
        else
          failf
            "target %a: worst %.17g <> max over all %d assignments %.17g"
            World.pp_point target worst (List.length all) fixed_max
      end
      else begin
        let sampled, _ =
          let rec go n g acc =
            if n = 0 then (acc, g)
            else
              let a, g = random_assignment ~k ~f g in
              go (n - 1) g (a :: acc)
          in
          go 200 (Prng.make ~seed:ctx.case.Case.turn_seed) []
        in
        let over =
          List.filter
            (fun faulty -> fixed_at target faulty > worst)
            sampled
        in
        let first_visits =
          Engine.first_visits ctx.trajectories ~target ~horizon:ctx.time_horizon
        in
        let adversarial =
          (Fault.worst_for_visits Fault.Crash ~first_visits ~f).Fault.faulty
        in
        (if over = [] then []
         else
           failf "target %a: %d sampled assignments exceed the worst case"
             World.pp_point target (List.length over))
        @
        let at_adv = fixed_at target adversarial in
        if Float.equal at_adv worst then []
        else
          failf "target %a: adversarial assignment gives %.17g, worst %.17g"
            World.pp_point target at_adv worst
      end)
    ctx.targets

(* ------------------------------------------------------------------ *)
(* engine.monotone_in_f                                                *)

let inv_monotone_in_f ctx =
  List.concat_map
    (fun target ->
      let time f' =
        to_inf
          (Engine.detection_time_worst ctx.trajectories ~f:f' ~target
             ~horizon:ctx.time_horizon)
      in
      let rec walk f' prev probs =
        if f' > ctx.case.Case.f then probs
        else
          let t = time f' in
          walk (f' + 1) t
            (probs
            @
            if t >= prev then []
            else
              failf "target %a: detection %.17g at f=%d < %.17g at f=%d"
                World.pp_point target t f' prev (f' - 1))
      in
      walk 1 (time 0) [])
    ctx.targets

(* ------------------------------------------------------------------ *)
(* byzantine.conservative_rule                                         *)

let inv_byzantine ctx =
  let f = ctx.case.Case.f in
  List.concat_map
    (fun target ->
      let byz =
        to_inf
          (Byz.worst_case_detection ctx.trajectories ~f ~target
             ~horizon:ctx.time_horizon)
      in
      let crash_2f =
        to_inf
          (Engine.detection_time_worst ctx.trajectories ~f:(2 * f) ~target
             ~horizon:ctx.time_horizon)
      in
      (if Float.equal byz crash_2f then []
       else
         failf "target %a: Byzantine worst %.17g <> crash worst with 2f %.17g"
           World.pp_point target byz crash_2f)
      @
      (* announcement level, with a valid lie schedule: faulty robots
         claim the origin at time 0 and (where possible) their actual
         mid-run position — never the true target, so the conservative
         rule must confirm exactly at the crash-2f time and never
         confirm a false place *)
      let first_visits =
        Engine.first_visits ctx.trajectories ~target ~horizon:ctx.time_horizon
      in
      let assignment = Fault.worst_for_visits Fault.Byzantine ~first_visits ~f in
      let lies =
        List.concat
          (List.mapi
             (fun r is_faulty ->
               if not is_faulty then []
               else
                 let l1 = { Byz.robot = r; place = World.origin; at_time = 0. } in
                 let t2 = 0.75 *. target.World.dist in
                 let p2 = Trajectory.position ctx.trajectories.(r) t2 in
                 if World.equal_point p2 target then [ l1 ]
                 else [ l1; { Byz.robot = r; place = p2; at_time = t2 } ])
             (Array.to_list assignment.Fault.faulty))
      in
      let res =
        Byz.run ctx.trajectories ~assignment ~lies ~target
          ~horizon:ctx.time_horizon
      in
      (match res.Byz.false_confirmation with
      | None -> []
      | Some (p, t) ->
          failf "target %a: false confirmation at %a, time %.17g"
            World.pp_point target World.pp_point p t)
      @
      let confirmed = to_inf res.Byz.confirmed_at in
      if Float.equal confirmed byz then []
      else
        failf "target %a: confirmed_at %.17g <> worst-case %.17g"
          World.pp_point target confirmed byz)
    ctx.targets

(* ------------------------------------------------------------------ *)
(* sim.ratio_within_design                                             *)

let inv_ratio ctx =
  let n = Float.min ctx.cover_n 40. in
  (* a far-from-optimal base can design ratios well above the scanner's
     default escape cap of 256; the cap must dominate the design or every
     legitimately-slow detection reads as an escape *)
  let ratio_cap =
    Float.max Adversary.default_ratio_cap (2. *. ctx.predicted_ratio)
  in
  let outcome =
    Adversary.worst_case ctx.trajectories ~f:ctx.case.Case.f ~ratio_cap ~n ()
  in
  (if outcome.Adversary.ratio >= 1. -. 1e-9 then []
   else failf "adversary ratio %.17g below 1" outcome.Adversary.ratio)
  @
  if outcome.Adversary.ratio <= ctx.predicted_ratio *. (1. +. 1e-6) then []
  else
    failf "adversary ratio %.17g exceeds the designed ratio %.17g (witness %a)"
      outcome.Adversary.ratio ctx.predicted_ratio World.pp_point
      outcome.Adversary.witness

(* ------------------------------------------------------------------ *)
(* strategy.coverage_theorem                                           *)

let inv_coverage_theorem ctx =
  let strat = Mray.make ~alpha:(Gen.alpha ctx.case) ctx.params in
  let q = P.q ctx.params and k = ctx.case.Case.k in
  (if Mray.coverage_theorem_holds strat then []
   else
     failf "assigned coverage multiplicity is not everywhere %d"
       (ctx.case.Case.f + 1))
  @
  let pr = Mray.predicted_ratio strat in
  let formula = F.exponential_ratio ~q ~k ~alpha:(Mray.alpha strat) in
  let l0 = F.lambda0 ~q ~k in
  (if rel_close pr formula 1e-9 then []
   else
     failf "strategy ratio %.17g <> closed-form appendix ratio %.17g" pr
       formula)
  @ (if pr >= l0 -. (1e-9 *. l0) then []
     else failf "strategy ratio %.17g below the lower bound %.17g" pr l0)
  @
  if (not (Float.equal ctx.case.Case.alpha_scale 1.)) || rel_close pr l0 1e-6
  then []
  else failf "optimal-base ratio %.17g <> lambda0 %.17g" pr l0

(* ------------------------------------------------------------------ *)
(* covering.cert_consistency                                           *)

let orc_intervals ctx ~n =
  Array.to_list ctx.turns
  |> List.concat_map (fun t ->
         List.map snd
           (Orc.cover_intervals_within t ~lambda:ctx.lambda ~within:(1., n)))

let line_intervals ctx ~n =
  Array.to_list ctx.turns
  |> List.concat_map (fun t ->
         List.map snd
           (Symmetric.cover_intervals_within t ~lambda:ctx.lambda
              ~within:(1., n) ()))

let cert_consistency name verdict ~intervals ~recheck ~demand ~n =
  match (verdict : Certificate.verdict) with
  | Certificate.Refuted_gap { at; multiplicity; demand = d } ->
      (if Int.equal d demand then []
       else failf "%s: verdict demand %d <> instance demand %d" name d demand)
      @ (if multiplicity < d then []
         else
           failf "%s: refutation multiplicity %d >= demand %d" name
             multiplicity d)
      @ (if at >= 1. && at <= n then []
         else failf "%s: witness %.17g outside [1, %g]" name at n)
      @
      let recount = Sweep.multiplicity_at at (intervals ()) in
      if Int.equal recount multiplicity then []
      else
        failf "%s: pointwise recount %d <> sweep multiplicity %d at %.17g"
          name recount multiplicity at
  | Certificate.Not_refuted { n = n'; _ } ->
      (match recheck ~n:n' with
      | Sweep.Covered -> []
      | Sweep.Gap { at; multiplicity; _ } ->
          failf "%s: verdict covers [1, %g] but recheck finds %d-fold point %.17g"
            name n' multiplicity at)
      @
      (* a sub-window of a covered window is covered *)
      let half = 1. +. ((n' -. 1.) /. 2.) in
      if half <= 1. then []
      else (
        match recheck ~n:half with
        | Sweep.Covered -> []
        | Sweep.Gap { at; _ } ->
            failf "%s: covered window [1, %g] has uncovered sub-window point %.17g"
              name n' at)
  | Certificate.Refuted_potential _ | Certificate.Inconclusive _ -> []

let inv_cert ctx =
  let q = P.q ctx.params and s = P.s ctx.params in
  let n = ctx.cover_n in
  let orc =
    cert_consistency "orc"
      (Certificate.check_orc ~turns:ctx.turns ~demand:q ~lambda:ctx.lambda ~n ())
      ~intervals:(fun () -> orc_intervals ctx ~n)
      ~recheck:(fun ~n -> Orc.check ctx.turns ~demand:q ~lambda:ctx.lambda ~n)
      ~demand:q ~n
  in
  let line =
    if ctx.case.Case.m = 2 && s >= 1 && s <= ctx.case.Case.k then
      cert_consistency "line"
        (Certificate.check_line ~turns:ctx.turns ~f:ctx.case.Case.f
           ~lambda:ctx.lambda ~n ())
        ~intervals:(fun () -> line_intervals ctx ~n)
        ~recheck:(fun ~n ->
          Symmetric.check ctx.turns ~demand:s ~lambda:ctx.lambda ~n)
        ~demand:s ~n
    else []
  in
  orc @ line

(* ------------------------------------------------------------------ *)
(* covering.profile_vs_pointwise                                       *)

let inv_profile ctx =
  let n = ctx.cover_n in
  let ivs = orc_intervals ctx ~n in
  let profile = Sweep.coverage_profile ~within:(1., n) ivs in
  let rec walk prev probs = function
    | [] ->
        if Float.equal prev n then probs
        else probs @ failf "profile stops at %.17g, not %g" prev n
    | (a, b, mult) :: rest ->
        let probs =
          probs
          @ (if Float.equal a prev then []
             else failf "profile pieces not contiguous: %.17g then %.17g" prev a)
          @ (if a < b then [] else failf "degenerate piece [%.17g, %.17g]" a b)
          @
          let mid = 0.5 *. (a +. b) in
          let recount = Sweep.multiplicity_at mid ivs in
          if Int.equal recount mult then []
          else
            failf "interior multiplicity %d at %.17g <> profile's %d" recount
              mid mult
        in
        walk b probs rest
  in
  (if profile = [] then failf "empty coverage profile over [1, %g]" n else [])
  @ walk 1. [] profile
  @
  let min_profile =
    List.fold_left (fun acc (_, _, m) -> Stdlib.min acc m) max_int profile
  in
  let min_sweep = Sweep.min_multiplicity ~within:(1., n) ivs in
  if profile <> [] && not (Int.equal min_sweep min_profile) then
    failf "min_multiplicity %d <> profile minimum %d" min_sweep min_profile
  else []

(* ------------------------------------------------------------------ *)
(* normalize.monotone_coverage                                         *)

let inv_normalize ctx =
  let t0 = ctx.turns.(0) in
  let mu = (ctx.lambda -. 1.) /. 2. in
  let n = Float.min ctx.cover_n 30. in
  let orc_part =
    match Normalize.fruitful_only_orc ~mu t0 with
    | exception E.Error (E.Non_convergence _) -> []
    | norm -> (
        try
          let before = Orc.max_covered [| t0 |] ~demand:1 ~lambda:ctx.lambda ~n in
          let after =
            Orc.max_covered [| norm |] ~demand:1 ~lambda:ctx.lambda ~n
          in
          (if after >= before -. 1e-9 then []
           else
             failf "normalisation lost coverage: %.17g before, %.17g after"
               before after)
          @
          (* kept turns are a subsequence of the original sequence *)
          let originals = Hashtbl.create 512 in
          for i = 1 to 512 do
            Hashtbl.replace originals (Turning.get t0 i) ()
          done;
          let rec subseq i probs =
            if i > 6 then probs
            else
              let v = Turning.get norm i in
              subseq (i + 1)
                (probs
                @
                if (not (Float.is_finite v)) || Hashtbl.mem originals v then []
                else
                  failf "normalised turn %d = %.17g is not an original turn" i v)
          in
          subseq 1 []
        with E.Error (E.Non_convergence _) -> [])
  in
  let line_part =
    match Normalize.fruitful_only_line ~mu t0 with
    | exception E.Error (E.Non_convergence _) -> []
    | nl -> (
        try
          if Turning.nondecreasing_prefix nl ~n:8 then []
          else failf "line normalisation is not nondecreasing"
        with E.Error (E.Non_convergence _) -> [])
  in
  orc_part @ line_part

(* ------------------------------------------------------------------ *)
(* stochastic.oracles                                                  *)

let inv_stochastic ctx =
  let f = ctx.case.Case.f in
  let h = ctx.time_horizon in
  let worst target =
    to_inf (Engine.detection_time_worst ctx.trajectories ~f ~target ~horizon:h)
  in
  let first = List.hd ctx.targets in
  let pm_probs =
    let e_pm =
      Stochastic.expected_detection_time ctx.trajectories ~f
        (Stochastic.point_mass first) ~horizon:h
    in
    let w = worst first in
    if Float.equal e_pm w then []
    else
      failf "point-mass expectation %.17g <> worst-case detection %.17g" e_pm w
  in
  let weight = 1. /. float_of_int (List.length ctx.targets) in
  let d = Stochastic.make (List.map (fun p -> (p, weight)) ctx.targets) in
  let ratios = List.map (fun p -> worst p /. p.World.dist) ctx.targets in
  let mx = List.fold_left Float.max neg_infinity ratios in
  let mn = List.fold_left Float.min infinity ratios in
  let bq = Stochastic.beck_quotient ctx.trajectories ~f d ~horizon:h in
  pm_probs
  @ (if bq <= (mx *. (1. +. 1e-9)) +. 1e-9 then []
     else failf "Beck quotient %.17g above max pointwise ratio %.17g" bq mx)
  @
  if (not (Float.is_finite bq)) || bq >= (mn *. (1. -. 1e-9)) -. 1e-9 then []
  else failf "Beck quotient %.17g below min pointwise ratio %.17g" bq mn

(* ------------------------------------------------------------------ *)
(* exec.jobs_invariance                                                *)

let inv_exec ctx =
  let items = List.init 8 Fun.id in
  let world = World.rays ctx.case.Case.m in
  let compute jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    Shard.sharded_map pool
      ~root:(Prng.make ~seed:ctx.case.Case.turn_seed)
      items
      ~f:(fun ~prng i ->
        let dist, prng =
          Prng.float_range ~lo:1. ~hi:(Float.max 2. ctx.case.Case.horizon) prng
        in
        let ray, _ = Prng.int ~bound:ctx.case.Case.m prng in
        let target = World.point world ~ray ~dist in
        let t =
          to_inf
            (Engine.detection_time_worst ctx.trajectories ~f:ctx.case.Case.f
               ~target ~horizon:ctx.time_horizon)
        in
        (t /. dist) +. float_of_int i)
  in
  let bits = List.map Int64.bits_of_float in
  if List.equal Int64.equal (bits (compute 1)) (bits (compute 3)) then []
  else failf "sharded map differs between pool sizes 1 and 3"

(* ------------------------------------------------------------------ *)
(* chaos.determinism                                                   *)

(* The chaos plan must be a pure function of (seed, task key): same key,
   same plan, at any time and in any domain; distinct attempts below the
   fault count raise, the first attempt at the fault count succeeds. *)
let inv_chaos_determinism ctx =
  let seed = ctx.case.Case.turn_seed in
  let chaos = Chaos.make ~seed () in
  let tasks =
    List.init 6 (fun i -> Printf.sprintf "chaos-probe/%d-%d" ctx.case.Case.id i)
  in
  List.concat_map
    (fun task ->
      let p1 = Chaos.plan chaos ~task in
      let p2 = Chaos.plan chaos ~task in
      if not (Chaos.plan_equal p1 p2) then
        failf "plan for %s not deterministic" task
      else if p1.Chaos.faults > Chaos.max_faults chaos then
        failf "plan for %s exceeds max_faults" task
      else
        let outcome attempt =
          match Chaos.run chaos ~task ~attempt (fun () -> `Ran) with
          | `Ran -> `Ran
          | exception E.Error (E.Injected_fault _) -> `Faulted
          | exception e ->
              `Other (Printexc.to_string e)
        in
        let bad_fault =
          List.exists
            (fun a ->
              match outcome a with `Faulted -> false | _ -> true)
            (List.init p1.Chaos.faults Fun.id)
        in
        if bad_fault then
          failf "%s: attempts below the fault count must fault" task
        else
          match outcome p1.Chaos.faults with
          | `Ran -> []
          | `Faulted -> failf "%s: attempt %d still faulted" task p1.Chaos.faults
          | `Other e -> failf "%s: unexpected %s" task e)
    tasks

(* ------------------------------------------------------------------ *)
(* chaos.supervisor_recovers                                           *)

(* Dogfood the supervised runtime: under fault injection, a retry policy
   with more attempts than [Chaos.max_faults] must reproduce the
   fault-free results exactly, at any pool size. *)
let inv_chaos_supervisor ctx =
  let seed = ctx.case.Case.turn_seed in
  let chaos = Chaos.make ~seed () in
  let items = List.init 6 Fun.id in
  let pure i =
    Int64.bits_of_float (float_of_int (i + ctx.case.Case.k) *. ctx.lambda)
  in
  let f _meter i = pure i in
  let task i _ = Printf.sprintf "chaos-sup/%d-%d" ctx.case.Case.id i in
  let supervised jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    Supervise.map pool
      ~spec:
        {
          Supervise.default with
          chaos;
          retry = Retry.immediate ~attempts:(Chaos.max_faults chaos + 1);
        }
      ~task ~f items
  in
  let plain = List.map (fun i -> Ok (pure i)) items in
  let eq =
    List.equal (fun a b ->
        match (a, b) with
        | Ok x, Ok y -> Int64.equal x y
        | Error _, _ | _, Error _ -> false)
  in
  if not (eq (supervised 1) plain) then
    failf "supervised map under chaos differs from plain map at jobs=1"
  else if not (eq (supervised 3) plain) then
    failf "supervised map under chaos differs from plain map at jobs=3"
  else []

(* ------------------------------------------------------------------ *)
(* analysis.self_clean                                                 *)

(* The lint verdict is a property of the source tree, not of the case,
   so it is computed once per process (the findings are deterministic,
   so every case reports the same list).  When the sources are not
   reachable from the working directory — an installed binary, a
   sandboxed runner — the invariant is vacuously satisfied. *)
let lint_repo_root () =
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lint.allow")
    && Sys.file_exists (Filename.concat dir "lib")
  in
  let rec up dir depth =
    if depth > 8 then None
    else if looks_like_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let lint_violations =
  lazy
    (match lint_repo_root () with
    | None -> []
    | Some root -> (
        match Search_analysis.Driver.load_allow ~root with
        | Error msg -> failf "lint.allow unreadable: %s" msg
        | Ok allow ->
            let out = Search_analysis.Driver.run ~jobs:1 ~allow ~root () in
            List.map
              (Format.asprintf "%a" Search_analysis.Finding.pp)
              out.Search_analysis.Driver.findings))

(* [Lazy.force] from concurrently checking domains can raise [RacyLazy];
   serialize the one-time computation. *)
let lint_force_mutex = Mutex.create ()

let inv_analysis _ctx =
  Mutex.protect lint_force_mutex (fun () -> Lazy.force lint_violations)

(* ------------------------------------------------------------------ *)

let catalogue : (string * (ctx -> string list)) list =
  [
    ("prng.smoke", inv_prng);
    ("engine.fixed_vs_worst", inv_fixed_vs_worst);
    ("engine.monotone_in_f", inv_monotone_in_f);
    ("byzantine.conservative_rule", inv_byzantine);
    ("sim.ratio_within_design", inv_ratio);
    ("strategy.coverage_theorem", inv_coverage_theorem);
    ("covering.cert_consistency", inv_cert);
    ("covering.profile_vs_pointwise", inv_profile);
    ("normalize.monotone_coverage", inv_normalize);
    ("stochastic.oracles", inv_stochastic);
    ("exec.jobs_invariance", inv_exec);
    ("chaos.determinism", inv_chaos_determinism);
    ("chaos.supervisor_recovers", inv_chaos_supervisor);
    ("analysis.self_clean", inv_analysis);
  ]

(* Extension registry: layers above [search_check] in the dependency
   graph (the deterministic simulator pulls in [search_serve], which
   pulls in [faulty_search], which links this library — a cycle if the
   catalogue referenced them directly) register whole-system invariants
   here at startup.  Extensions take the raw case rather than a [ctx]
   and are evaluated after the catalogue, sorted by name, so the
   violation list stays a pure function of (case, registered set). *)
let extensions : (string * (Case.t -> string list)) list Atomic.t =
  Atomic.make []

let register ~name run =
  let rec swap () =
    let cur = Atomic.get extensions in
    let without = List.filter (fun (n, _) -> not (String.equal n name)) cur in
    if not (Atomic.compare_and_set extensions cur ((name, run) :: without))
    then swap ()
  in
  swap ()

(* analysis.escape_self_clean: the escape family ([--escape]) over the
   repository's own artefacts, in the same once-per-process shape as
   [analysis.self_clean].  It additionally needs the [.cmt] files dune
   emitted: with no build tree next to the sources the driver analyses
   zero units and the verdict is vacuously clean.  Registered through
   the extension registry at startup rather than hard-wired into the
   catalogue, so library users who never link a build tree do not pay
   for the cmt pass. *)
let escape_lint_violations =
  lazy
    (match lint_repo_root () with
    | None -> []
    | Some root -> (
        match Search_analysis.Driver.load_allow ~root with
        | Error msg -> failf "lint.allow unreadable: %s" msg
        | Ok allow ->
            let out =
              Search_analysis.Driver.run ~jobs:1 ~rules:[] ~escape:true ~allow
                ~root ()
            in
            List.map
              (Format.asprintf "%a" Search_analysis.Finding.pp)
              out.Search_analysis.Driver.findings))

let inv_escape (_ : Case.t) =
  Mutex.protect lint_force_mutex (fun () -> Lazy.force escape_lint_violations)

let register_escape_invariant () =
  register ~name:"analysis.escape_self_clean" inv_escape

let sorted_extensions () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Atomic.get extensions)

let names () =
  List.map fst catalogue @ List.map fst (sorted_extensions ())

let run_entry ~invariant details_or_exn =
  match details_or_exn () with
  | details -> List.map (fun detail -> { invariant; detail }) details
  | exception e ->
      [
        {
          invariant;
          detail = Printf.sprintf "raised %s" (Printexc.to_string e);
        };
      ]

let check_case case =
  match Case.validate case with
  | Error msg -> [ { invariant = "case.valid"; detail = msg } ]
  | Ok () -> (
      match make_ctx case with
      | exception e ->
          [
            {
              invariant = "case.context";
              detail =
                Printf.sprintf "building the context raised %s"
                  (Printexc.to_string e);
            };
          ]
      | ctx ->
          List.concat_map
            (fun (invariant, run) ->
              run_entry ~invariant (fun () -> run ctx))
            catalogue
          @ List.concat_map
              (fun (invariant, run) ->
                run_entry ~invariant (fun () -> run case))
              (sorted_extensions ()))
