(** The fuzzing driver: generate, check, shrink, report.

    One run is a pure function of [(seed, cases)].  Cases are checked
    across a domain pool with the PR's deterministic-parallelism
    contract (order-preserving map, per-case split-tree generators), so
    the outcome — and the rendered report, which deliberately contains
    no timing or job-count information — is byte-identical at every
    [jobs] value. *)

type failure = {
  original : Case.t;  (** as generated *)
  shrunk : Case.t;  (** after greedy minimisation *)
  violations : Invariant.violation list;  (** of the shrunk case *)
}

type outcome = { seed : int; cases : int; failures : failure list }

val run :
  ?jobs:int ->
  ?chaos:Search_resilience.Chaos.t ->
  ?retry:Search_resilience.Retry.policy ->
  ?journal_dir:string ->
  seed:int ->
  cases:int ->
  unit ->
  outcome
(** Generate [cases] cases from [seed], run the invariant catalogue on
    each (sharded over [jobs] domains, default [Pool.default_jobs ()]),
    and shrink every failing case.

    The campaign runs under the supervised runtime: [chaos] injects
    deterministic faults per case (a retry policy with more attempts than
    [Chaos.max_faults] reproduces the fault-free outcome exactly);
    [journal_dir] checkpoints each completed case so a killed campaign
    resumes instead of restarting (the journal is deleted when the run
    completes).  A case the supervisor cannot complete surfaces as a
    failure with the pseudo-invariant ["runtime.supervised"] and is not
    shrunk. *)

val report : outcome -> string
(** Deterministic human-readable summary: header, one block per failure
    (shrunk case JSON plus its violations), final verdict line. *)

val save_failures : dir:string -> outcome -> string list
(** Write every failure's shrunk case to the corpus directory; returns
    the paths. *)
