module Json = Search_numerics.Json
module P = Search_bounds.Params

type t = {
  id : int;
  m : int;
  k : int;
  f : int;
  horizon : float;
  alpha_scale : float;
  lambda_frac : float;
  targets : (int * float) list;
  turn_seed : int;
}

let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.id < 0 then fail "id %d < 0" t.id
  else if t.m < 2 then fail "m %d < 2" t.m
  else if t.f < 0 then fail "f %d < 0" t.f
  else if t.k <= t.f then fail "k %d <= f %d (not searching)" t.k t.f
  else if t.k >= t.m * (t.f + 1) then
    fail "k %d >= m(f+1) = %d (not searching)" t.k (t.m * (t.f + 1))
  else if not (Float.is_finite t.horizon) || t.horizon < 2. then
    fail "horizon %g outside [2, inf)" t.horizon
  else if not (Float.is_finite t.alpha_scale) || t.alpha_scale < 1.
          || t.alpha_scale > 2. then
    fail "alpha_scale %g outside [1, 2]" t.alpha_scale
  else if not (Float.is_finite t.lambda_frac) || t.lambda_frac < 0.
          || t.lambda_frac > 1. then
    fail "lambda_frac %g outside [0, 1]" t.lambda_frac
  else if t.targets = [] then fail "no targets"
  else if t.turn_seed < 0 || t.turn_seed > 0x20000000000000 (* 2^53 *) then
    fail "turn_seed %d outside [0, 2^53] (must survive a JSON float)"
      t.turn_seed
  else
    let rec check_targets i = function
      | [] -> Ok ()
      | (ray, dist) :: rest ->
          if ray < 0 || ray >= t.m then fail "target %d: ray %d" i ray
          else if not (Float.is_finite dist) || dist < 1.
                  || dist > t.horizon then
            fail "target %d: dist %g outside [1, %g]" i dist t.horizon
          else check_targets (i + 1) rest
    in
    check_targets 0 t.targets

let valid t = Result.is_ok (validate t)
let params t = P.make ~m:t.m ~k:t.k ~f:t.f
let equal (a : t) b =
  Int.equal a.id b.id && Int.equal a.m b.m && Int.equal a.k b.k
  && Int.equal a.f b.f
  && Float.equal a.horizon b.horizon
  && Float.equal a.alpha_scale b.alpha_scale
  && Float.equal a.lambda_frac b.lambda_frac
  && List.equal
       (fun (r1, d1) (r2, d2) -> Int.equal r1 r2 && Float.equal d1 d2)
       a.targets b.targets
  && Int.equal a.turn_seed b.turn_seed

let to_json t =
  Json.Assoc
    [
      ("id", Json.Number (float_of_int t.id));
      ("m", Json.Number (float_of_int t.m));
      ("k", Json.Number (float_of_int t.k));
      ("f", Json.Number (float_of_int t.f));
      ("horizon", Json.Number t.horizon);
      ("alpha_scale", Json.Number t.alpha_scale);
      ("lambda_frac", Json.Number t.lambda_frac);
      ( "targets",
        Json.List
          (List.map
             (fun (ray, dist) ->
               Json.Assoc
                 [
                   ("ray", Json.Number (float_of_int ray));
                   ("dist", Json.Number dist);
                 ])
             t.targets) );
      ("turn_seed", Json.Number (float_of_int t.turn_seed));
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let* id = field "id" Json.to_int in
  let* m = field "m" Json.to_int in
  let* k = field "k" Json.to_int in
  let* f = field "f" Json.to_int in
  let* horizon = field "horizon" Json.to_float in
  let* alpha_scale = field "alpha_scale" Json.to_float in
  let* lambda_frac = field "lambda_frac" Json.to_float in
  let* turn_seed = field "turn_seed" Json.to_int in
  let* raw_targets = field "targets" Json.to_list in
  let* targets =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match
          ( Option.bind (Json.member "ray" item) Json.to_int,
            Option.bind (Json.member "dist" item) Json.to_float )
        with
        | Some ray, Some dist -> Ok ((ray, dist) :: acc)
        | _ -> Error "ill-formed target entry")
      (Ok []) raw_targets
  in
  let t =
    {
      id;
      m;
      k;
      f;
      horizon;
      alpha_scale;
      lambda_frac;
      targets = List.rev targets;
      turn_seed;
    }
  in
  let* () = validate t in
  Ok t

let pp ppf t =
  Format.fprintf ppf
    "case %d: m=%d k=%d f=%d horizon=%g alpha_scale=%g lambda_frac=%g \
     targets=[%a] turn_seed=%d"
    t.id t.m t.k t.f t.horizon t.alpha_scale t.lambda_frac
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (ray, dist) -> Format.fprintf ppf "(%d, %g)" ray dist))
    t.targets t.turn_seed
