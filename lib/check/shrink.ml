(* Candidate order matters: each accepted candidate restarts the scan,
   so the aggressive reductions (dropping whole targets, halving the
   window) come before the cosmetic ones (rounding distances, zeroing
   knobs).  Every candidate is validated — reductions that leave the
   searching regime are silently dropped. *)

let round_dist d = Float.max 1. (Float.round d)

let candidates (c : Case.t) =
  let drop_target i =
    if List.length c.targets <= 1 then None
    else Some { c with targets = List.filteri (fun j _ -> not (Int.equal j i)) c.targets }
  in
  let dropped_targets =
    List.filter_map drop_target (List.init (List.length c.targets) Fun.id)
  in
  let halved =
    let horizon = Float.max 10. (c.horizon /. 2.) in
    {
      c with
      horizon;
      targets = List.map (fun (r, d) -> (r, Float.min d horizon)) c.targets;
    }
  in
  let structural =
    [
      { c with f = c.f - 1 };
      { c with k = c.k - 1 };
      { c with m = c.m - 1 };
      halved;
    ]
  in
  let cosmetic =
    [
      { c with targets = List.map (fun (r, d) -> (r, round_dist d)) c.targets };
      { c with targets = List.map (fun (_, d) -> (0, d)) c.targets };
      { c with alpha_scale = 1. };
      { c with lambda_frac = 0.5 };
      { c with turn_seed = 0 };
    ]
  in
  dropped_targets @ structural @ cosmetic
  |> List.filter (fun c' -> (not (Case.equal c' c)) && Case.valid c')

let minimize ~still_fails case =
  let budget = ref 500 in
  let try_candidate c' =
    if !budget <= 0 then None
    else begin
      decr budget;
      if still_fails c' then Some c' else None
    end
  in
  let rec descend c =
    match List.find_map try_candidate (candidates c) with
    | Some c' when !budget > 0 -> descend c'
    | Some c' -> c'
    | None -> c
  in
  descend case
