(** Serializable random test cases for the fuzzing harness.

    A case is a small, fully explicit description of one fuzzing
    scenario: a searching-regime instance [(m, k, f)], a target window,
    perturbation knobs for the strategies under test, and a seed for the
    auxiliary randomness (random turning sequences, sampled fault
    assignments).  Everything an invariant needs is derived
    deterministically from these fields, so a case replays bit-for-bit
    from its JSON form — the shrunk counterexamples under [test/corpus/]
    are exactly such files. *)

type t = {
  id : int;  (** position in the generation stream (0-based) *)
  m : int;  (** rays, [>= 2] *)
  k : int;  (** robots; the searching regime [f < k < m (f+1)] is enforced *)
  f : int;  (** crash faults, [0 <= f < k] *)
  horizon : float;
      (** targets and coverage windows live in [[1, horizon]]; [>= 2.] *)
  alpha_scale : float;
      (** the exponential strategy under test uses base
          [alpha_star *. alpha_scale]; [1.] is the optimum.  In [[1, 2]]. *)
  lambda_frac : float;
      (** in [[0, 1]]: positions the certificate's λ between [0.6] and
          [1.4] times the instance's bound, spanning both sides *)
  targets : (int * float) list;
      (** [(ray, dist)] placements, [dist] in [[1, horizon]]; nonempty *)
  turn_seed : int;  (** seed of the auxiliary randomness, [>= 0] *)
}

val validate : t -> (unit, string) result
(** Structural validity: ranges as documented above, searching regime,
    nonempty target list, every float finite. *)

val valid : t -> bool

val params : t -> Search_bounds.Params.t
(** The instance [(m, k, f)].  Requires {!valid}. *)

val equal : t -> t -> bool

val to_json : t -> Search_numerics.Json.t

val of_json : Search_numerics.Json.t -> (t, string) result
(** Inverse of {!to_json} (the JSON float printer round-trips exactly);
    also {!validate}s. *)

val pp : Format.formatter -> t -> unit
