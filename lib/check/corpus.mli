(** The counterexample corpus: shrunk failing cases, pinned as files.

    Every violation the fuzzer finds is shrunk and written as a JSON
    file; the files checked in under [test/corpus/] are replayed by the
    tier-1 suite and by [search_cli fuzz --replay], so a fixed bug stays
    fixed.  An entry records the case plus the violations observed when
    it was captured (for the human reader — replay re-derives its own
    verdict and expects {e zero} violations once the bug is fixed). *)

val save :
  dir:string -> Case.t -> violations:Invariant.violation list -> string
(** Write one corpus entry into [dir] (which must exist) and return its
    path.  The file name is derived from a content digest, so saving is
    idempotent and names are stable across runs. *)

val load_file : string -> (Case.t, string) result
(** Parse a corpus entry.  Accepts both the {!save} envelope
    ([{"case": ..., "violations": ...}]) and a bare {!Case.to_json}
    object, so entries can be written by hand. *)

val replay_file : string -> (unit, string) result
(** Load the entry and run the full invariant catalogue on its case;
    [Ok ()] exactly when no invariant is violated. *)

val files : dir:string -> string list
(** The [*.json] entries of a corpus directory, sorted by name; empty
    when the directory does not exist. *)
