(** Greedy counterexample minimisation.

    When a case violates an invariant, the harness tries structurally
    smaller variants — fewer targets, fewer robots, fewer faults, fewer
    rays, a shorter window, neutral knobs — and keeps any variant that
    still fails, repeating until no candidate fails or the attempt
    budget runs out.  The result is the case that gets written to the
    corpus: small enough to read, still failing, still replayable. *)

val candidates : Case.t -> Case.t list
(** Valid one-step reductions of the case, most aggressive first.  Every
    returned case satisfies {!Case.valid}; the list is empty when the
    case is already minimal. *)

val minimize : still_fails:(Case.t -> bool) -> Case.t -> Case.t
(** Greedy descent: repeatedly replace the case by its first failing
    candidate.  At most 500 [still_fails] evaluations; deterministic. *)
