(** The checked-in suppression list ([lint.allow] at the lint root).

    Suppressions are per-(rule, file) so that every deliberate
    exception to a rule is one reviewable line in one diffable file —
    no inline magic comments scattered through the tree.  Format, one
    entry per line:

    {v
    # comment (or trailing comment after an entry)
    <rule-id> <path/relative/to/root.ml>   # why this is deliberate
    v}

    A rule id of [*] suppresses every rule for that file. *)

type t

val empty : t

val parse : string -> (t, string) result
(** Parse file contents.  Errors name the offending line. *)

val load : string -> (t, string) result
(** [load path] reads and parses [path]; a missing file is an empty
    allowlist (so fresh checkouts lint strictly). *)

val permits : t -> rule:string -> file:string -> bool
(** Is [(rule, file)] suppressed? *)

val entries : t -> (string * string) list
(** All (rule, file) pairs, in file order — for diagnostics. *)

val entries_located : t -> (string * string * int) list
(** Like {!entries} with each entry's [lint.allow] line number — the
    stale-entry report points back at the line to delete. *)

val stale :
  t ->
  in_scope:(string -> bool) ->
  findings:Finding.t list ->
  (string * string * int) list
(** Entries whose rule satisfies [in_scope] yet matched no finding in
    [findings] (pre-suppression): [(rule, path, line)].  The single
    staleness definition shared by every entry family. *)
