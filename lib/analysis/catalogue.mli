(** The exhaustive rule catalogue: every rule id any analysis family
    can emit, in one place.  Backs the [--rules] listing and the
    stale-allowlist scoping; a test pins that every emitted rule name
    is catalogued. *)

type family =
  | Syntactic  (** parsetree rules, always on (filtered by [--rules]) *)
  | Deep  (** taint / lockset / lock-order, under [--deep] *)
  | Hotpath  (** allocation budgets / blocking, under [--hotpath] *)
  | Escape  (** exception flow / leaks / sim hygiene, under [--escape] *)
  | Internal  (** analysis-failure pseudo-rules (exit code 3) *)

type entry = { id : string; family : family; doc : string }

val all : entry list
(** Syntactic registry first (in {!Rules.all} order), then the typed
    families, then the internal pseudo-rules. *)

val find : string -> entry option
val ids_of : family -> string list

val family_to_string : family -> string

val family_flag : family -> string option
(** The CLI flag that switches the family on, when it is gated. *)
