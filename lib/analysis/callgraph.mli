(** Def/use extraction over the Typedtree and the global call graph.

    Entities are canonical dotted names rooted at the compilation unit
    ([Search_exec__Pool.async]); {!build} resolves references through
    both local [module X = ...] aliases and the library wrapper
    modules, so a call spelled [Pool.async] anywhere in the tree lands
    on the def's own name.  References below top-level granularity
    (locals, arguments) drop out by construction. *)

type reference = {
  target : string;
  rloc : Location.t;
  rheld : string list;  (** top-level mutexes held at the use site *)
}

type mutation = {
  cell : string;
  via : string;  (** the mutator applied, e.g. [":="] or ["Hashtbl.replace"] *)
  mloc : Location.t;
  mheld : string list;
}

type protect_event = {
  lock : string;
  ploc : Location.t;
  outer : string list;  (** locks already held when this one is taken *)
}

type cell_kind = Ref | Table | Container | Atomic

type cell = {
  cell_name : string;
  kind : cell_kind;
  cell_file : string;
  cell_loc : Location.t;
}

type alloc_kind =
  | Closure  (** a lambda evaluated inside the body (not a formal) *)
  | Partial  (** under-application: the result closure is built *)
  | Tuple
  | Record
  | Variant  (** non-constant constructor, including [::] *)
  | Array_lit
  | Lazy_block
  | Boxed_float of string  (** boxed return / polymorphic instantiation *)
  | Alloc_call of string  (** known-allocating stdlib call, no def in graph *)

type alloc = { akind : alloc_kind; aloc : Location.t }
(** One static allocation site.  Sites inside raiser argument subtrees
    ([raise]/[failwith]/[invalid_arg]/[Search_error.*]) are cold-path
    and never recorded; [let x = ref v in ...] with an immediate [v]
    used only via [!]/[:=]/[incr]/[decr] is compiled unboxed and not
    recorded either. *)

type hcall = { hname : string; hloc : Location.t; hcaught : string list }
(** A call site: an ident in function position after [@@]/[|>]
    flattening.  The interprocedural hot-path traversals follow these,
    not plain {!reference}s — referencing a value does not execute it.
    [hcaught] lists the exception constructors with an unguarded
    handler lexically in scope at the call site (["*"] = catch-all);
    the exception-flow pass subtracts them from the callee's may-raise
    set. *)

type raise_site = { exn : string; xloc : Location.t; xcaught : string list }
(** One static raise: a [raise]/[raise_notrace]/[failwith]/
    [invalid_arg]/[assert]/[Search_error] helper application or
    [Printexc.raise_with_backtrace].  [exn] is the canonical
    constructor name when it is syntactically evident (a literal
    construct argument, or implied by the raiser) and ["*"] otherwise;
    [xcaught] is the handler context as for {!hcall}. *)

type def = {
  name : string;
  display : string;  (** human form, wrapper mangling stripped *)
  file : string;
  dloc : Location.t;
  refs : reference list;
  mutations : mutation list;
  protects : protect_event list;
  allocs : alloc list;
  hcalls : hcall list;
  raises : raise_site list;
  pool_entry : bool;  (** carries [[@pool_entry]] *)
  hot : bool;  (** carries [[@hot]]: an allocation-budget root *)
  event_loop : bool;  (** carries [[@event_loop]]: a blocking-rule root *)
  nonblocking : bool;  (** carries [[@nonblocking]]: audited barrier *)
  releases : bool;
      (** carries [[@releases]]: audited to release what it acquires on
          every path, including raising ones *)
  real_io : bool;
      (** carries [[@real_io]]: audited barrier the sim-hygiene
          traversal does not look through *)
}

type summary = {
  unit_name : string;
  unit_file : string option;
  defs : def list;
  cells : cell list;
  mutexes : (string * Location.t) list;
  aliases : (string * string) list;
}

val summarize : Cmt_loader.unit_info -> summary
(** Pure per-unit extraction; safe to run in parallel over units. *)

type t = {
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (** sorted canonical names *)
  cells : (string, cell) Hashtbl.t;
  mutex_locs : (string, Location.t) Hashtbl.t;
  entries : (string, unit) Hashtbl.t;
}

val build : summary list -> t
(** Merge summaries and resolve every reference, mutation, lock and
    held-set name through the global alias table (longest prefix first,
    iterated).  First unit wins on duplicate names. *)

val display_name : string -> string
(** [display_name "Search_exec__Pool.async" = "Pool.async"]. *)

val alloc_kind_to_string : alloc_kind -> string
(** Human description, e.g. ["closure allocation"]. *)

val strip_stdlib : string -> string
(** Drop one leading ["Stdlib."], if present. *)

val find_def : t -> string -> def option
val find_cell : t -> string -> cell option
val is_entry : t -> string -> bool
(** Whether [name] submits work to the pool: an [[@pool_entry]] def or
    [Domain.spawn] itself. *)

val mutex_defined : t -> string -> bool
