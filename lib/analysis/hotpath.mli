(** Hot-path performance rules over the call graph: allocation budgets
    for [[@hot]] roots ([hotpath-alloc]) and blocking-call detection
    from [[@event_loop]] roots ([hotpath-blocking]), with witness call
    chains.  See the implementation header for the exact contracts. *)

val blocking_names : string list
(** Display names of the primitives the liveness rule considers
    blocking ([Unix.sleepf], [Mutex.lock], [Pool.await], ...). *)

val findings : budget:Budget.t -> Callgraph.t -> Finding.t list
(** Both rule families, roots in sorted def order; byte-identical at
    any job count. *)

val stale_budget : budget:Budget.t -> Callgraph.t -> (string * int) list
(** [lint.budget] entries naming no current [[@hot]] root:
    [(name, line)]. *)
