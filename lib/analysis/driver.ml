module Table = Search_numerics.Table
module Json = Search_numerics.Json
module Pool = Search_exec.Pool
module Par = Search_exec.Par

type outcome = {
  findings : Finding.t list;
  suppressed : int;
  files : int;
}

let default_dirs = [ "bench"; "bin"; "lib"; "test" ]

let load_allow ~root = Allow.load (Filename.concat root "lint.allow")

let validate_rules = function
  | None -> ()
  | Some ids ->
      List.iter
        (fun id ->
          match Rules.find id with
          | Some _ -> ()
          | None ->
              invalid_arg
                (Printf.sprintf "Driver.run: unknown rule %S (known: %s)" id
                   (String.concat ", "
                      (List.map (fun r -> r.Rules.id) Rules.all))))
        ids

let check_source ?rules ~has_mli src =
  let ctx = { Rules.rel_path = src.Source.rel_path; has_mli } in
  Rules.run ?only:rules ctx src

let lint_string ?rules ?(has_mli = true) ~path contents =
  validate_rules rules;
  match Source.parse_string ~rel_path:path contents with
  | Error finding -> [ finding ]
  | Ok src -> List.sort_uniq Finding.compare (check_source ?rules ~has_mli src)

let run ?jobs ?rules ?(dirs = default_dirs) ?(allow = Allow.empty) ~root () =
  validate_rules rules;
  let paths = Source.discover ~root ~dirs in
  let mli_present =
    List.filter (fun p -> Filename.check_suffix p ".mli") paths
  in
  let check rel_path =
    let has_mli =
      Filename.check_suffix rel_path ".ml"
      && List.mem (rel_path ^ "i") mli_present
      || Filename.check_suffix rel_path ".mli"
    in
    match Source.parse_file ~root rel_path with
    | Error finding -> [ finding ]
    | Ok src -> check_source ?rules ~has_mli src
  in
  let per_file =
    Pool.with_pool ?jobs @@ fun pool -> Par.parallel_map pool paths ~f:check
  in
  let all = List.sort_uniq Finding.compare (List.concat per_file) in
  let kept, dropped =
    List.partition
      (fun f ->
        not (Allow.permits allow ~rule:f.Finding.rule ~file:f.Finding.file))
      all
  in
  { findings = kept; suppressed = List.length dropped; files = List.length paths }

let summary o =
  let errors, warnings =
    List.partition (fun f -> f.Finding.severity = Finding.Error) o.findings
  in
  Printf.sprintf
    "%d finding%s (%d error%s, %d warning%s) in %d files; %d suppressed by \
     lint.allow"
    (List.length o.findings)
    (if List.length o.findings = 1 then "" else "s")
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s")
    o.files o.suppressed

let render_text o =
  let buf = Buffer.create 1024 in
  (match o.findings with
  | [] -> ()
  | findings ->
      let tbl =
        Table.create
          ~title:"lint findings"
          [
            ("location", Table.Left); ("rule", Table.Left);
            ("severity", Table.Left); ("message", Table.Left);
          ]
      in
      List.iter
        (fun f ->
          Table.add_row tbl
            [
              Printf.sprintf "%s:%d:%d" f.Finding.file f.Finding.line
                f.Finding.col;
              f.Finding.rule;
              Finding.severity_to_string f.Finding.severity;
              (match f.Finding.suggestion with
              | None -> f.Finding.message
              | Some s -> f.Finding.message ^ " -- " ^ s);
            ])
        findings;
      Buffer.add_string buf (Table.render tbl));
  Buffer.add_string buf (summary o);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_json o =
  Json.to_string ~pretty:true
    (Json.Assoc
       [
         ("files", Json.Number (float_of_int o.files));
         ("suppressed", Json.Number (float_of_int o.suppressed));
         ("findings", Json.List (List.map Finding.to_json o.findings));
       ])
  ^ "\n"
