module Table = Search_numerics.Table
module Json = Search_numerics.Json
module Pool = Search_exec.Pool
module Par = Search_exec.Par

type outcome = {
  findings : Finding.t list;
  suppressed : int;
  files : int;
  units : int;
  stale : (string * string * int) list;
  budget_stale : (string * int) list;
}

(* Stale-allowlist scoping is catalogue-driven: a gated family's
   entries are out of scope when the owning pass did not run, and an
   entry naming a rule the catalogue does not know is always in scope
   (and thus reported stale).  [cmt-load] belongs to every cmt-backed
   family (any of them loads artefacts). *)
let rule_in_scope ~deep ~hotpath ~escape rule =
  match Catalogue.find rule with
  | Some { Catalogue.family = Catalogue.Deep; _ } -> deep
  | Some { Catalogue.family = Catalogue.Hotpath; _ } -> hotpath
  | Some { Catalogue.family = Catalogue.Escape; _ } -> escape
  | Some { Catalogue.family = Catalogue.Internal; _ }
    when String.equal rule "cmt-load" ->
      deep || hotpath || escape
  | _ -> true

(* Findings that mean the analysis itself could not do its job; the
   exit-code contract reports them as internal (3), not as lint
   verdicts (1). *)
let internal_rule_ids = Catalogue.ids_of Catalogue.Internal

let default_dirs = [ "bench"; "bin"; "lib"; "test" ]

let load_allow ~root = Allow.load (Filename.concat root "lint.allow")
let load_budget ~root = Budget.load (Filename.concat root "lint.budget")

let validate_rules = function
  | None -> ()
  | Some ids ->
      List.iter
        (fun id ->
          match Rules.find id with
          | Some _ -> ()
          | None ->
              invalid_arg
                (Printf.sprintf "Driver.run: unknown rule %S (known: %s)" id
                   (String.concat ", "
                      (List.map (fun r -> r.Rules.id) Rules.all))))
        ids

let check_source ?rules ~has_mli src =
  let ctx = { Rules.rel_path = src.Source.rel_path; has_mli } in
  Rules.run ?only:rules ctx src

let lint_string ?rules ?(has_mli = true) ~path contents =
  validate_rules rules;
  match Source.parse_string ~rel_path:path contents with
  | Error finding -> [ finding ]
  | Ok src -> List.sort_uniq Finding.compare (check_source ?rules ~has_mli src)

let run ?jobs ?rules ?(deep = false) ?(hotpath = false) ?(escape = false)
    ?(dirs = default_dirs) ?(allow = Allow.empty) ?(budget = Budget.empty)
    ~root () =
  validate_rules rules;
  let paths = Source.discover ~root ~dirs in
  let mli_present =
    List.filter (fun p -> Filename.check_suffix p ".mli") paths
  in
  let check rel_path =
    let has_mli =
      Filename.check_suffix rel_path ".ml"
      && List.mem (rel_path ^ "i") mli_present
      || Filename.check_suffix rel_path ".mli"
    in
    match Source.parse_file ~root rel_path with
    | Error finding -> [ finding ]
    | Ok src -> check_source ?rules ~has_mli src
  in
  let per_file, cmt_findings, units, budget_stale =
    Pool.with_pool ?jobs @@ fun pool ->
    let per_file = Par.parallel_map pool paths ~f:check in
    if deep || hotpath || escape then
      let audited file = Allow.permits allow ~rule:"deep-nondet" ~file in
      let dfs, units, budget_stale =
        Deep.collect ~pool ~deep ~hotpath ~escape ~audited ~budget ~dirs ~root
      in
      (per_file, dfs, units, budget_stale)
    else (per_file, [], 0, [])
  in
  let all =
    List.sort_uniq Finding.compare (cmt_findings @ List.concat per_file)
  in
  let kept, dropped =
    List.partition
      (fun f ->
        not (Allow.permits allow ~rule:f.Finding.rule ~file:f.Finding.file))
      all
  in
  let stale =
    Allow.stale allow
      ~in_scope:(rule_in_scope ~deep ~hotpath ~escape)
      ~findings:all
  in
  {
    findings = kept;
    suppressed = List.length dropped;
    files = List.length paths;
    units;
    stale;
    budget_stale;
  }

let exit_code ?(strict = false) o =
  if
    List.exists
      (fun f -> List.mem f.Finding.rule internal_rule_ids)
      o.findings
  then 3
  else if o.findings <> [] then 1
  else if strict && (o.stale <> [] || o.budget_stale <> []) then 1
  else 0

let summary o =
  let errors, warnings =
    List.partition (fun f -> f.Finding.severity = Finding.Error) o.findings
  in
  Printf.sprintf
    "%d finding%s (%d error%s, %d warning%s) in %d files%s; %d suppressed \
     by lint.allow%s"
    (List.length o.findings)
    (if List.length o.findings = 1 then "" else "s")
    (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s")
    o.files
    (if o.units > 0 then Printf.sprintf " + %d compiled units" o.units else "")
    o.suppressed
    ((match List.length o.stale with
     | 0 -> ""
     | n ->
         Printf.sprintf "; %d stale allow entr%s" n
           (if n = 1 then "y" else "ies"))
    ^
    match List.length o.budget_stale with
    | 0 -> ""
    | n ->
        Printf.sprintf "; %d stale budget entr%s" n
          (if n = 1 then "y" else "ies"))

let render_text o =
  let buf = Buffer.create 1024 in
  (match o.findings with
  | [] -> ()
  | findings ->
      let tbl =
        Table.create
          ~title:"lint findings"
          [
            ("location", Table.Left); ("rule", Table.Left);
            ("severity", Table.Left); ("message", Table.Left);
          ]
      in
      List.iter
        (fun f ->
          Table.add_row tbl
            [
              Printf.sprintf "%s:%d:%d" f.Finding.file f.Finding.line
                f.Finding.col;
              f.Finding.rule;
              Finding.severity_to_string f.Finding.severity;
              (match f.Finding.suggestion with
              | None -> f.Finding.message
              | Some s -> f.Finding.message ^ " -- " ^ s);
            ])
        findings;
      Buffer.add_string buf (Table.render tbl));
  List.iter
    (fun (rule, path, line) ->
      Buffer.add_string buf
        (Printf.sprintf
           "stale allow entry (lint.allow:%d): '%s %s' matches no finding\n"
           line rule path))
    o.stale;
  List.iter
    (fun (name, line) ->
      Buffer.add_string buf
        (Printf.sprintf
           "stale budget entry (lint.budget:%d): '%s' matches no [@hot] root\n"
           line name))
    o.budget_stale;
  Buffer.add_string buf (summary o);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_json o =
  Json.to_string ~pretty:true
    (Json.Assoc
       [
         ("files", Json.Number (float_of_int o.files));
         ("units", Json.Number (float_of_int o.units));
         ("suppressed", Json.Number (float_of_int o.suppressed));
         ("findings", Json.List (List.map Finding.to_json o.findings));
         ( "stale",
           Json.List
             (List.map
                (fun (rule, path, line) ->
                  Json.Assoc
                    [
                      ("rule", Json.String rule);
                      ("path", Json.String path);
                      ("line", Json.Number (float_of_int line));
                    ])
                o.stale) );
         ( "budget_stale",
           Json.List
             (List.map
                (fun (name, line) ->
                  Json.Assoc
                    [
                      ("name", Json.String name);
                      ("line", Json.Number (float_of_int line));
                    ])
                o.budget_stale) );
       ])
  ^ "\n"

(* GitHub Actions workflow-command annotations: one ::error/::warning
   line per finding so CI findings attach to the PR diff inline.  The
   data segment uses {!Finding.github_escape}. *)
let github_escape = Finding.github_escape

let render_github o =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      let kind =
        match f.Finding.severity with
        | Finding.Error -> "error"
        | Finding.Warning -> "warning"
      in
      Buffer.add_string buf
        (Printf.sprintf "::%s file=%s,line=%d,col=%d::%s\n" kind
           f.Finding.file f.Finding.line f.Finding.col
           (github_escape
              (Printf.sprintf "[%s] %s%s" f.Finding.rule f.Finding.message
                 (match f.Finding.suggestion with
                 | None -> ""
                 | Some s -> " -- " ^ s)))))
    o.findings;
  List.iter
    (fun (rule, path, line) ->
      Buffer.add_string buf
        (Printf.sprintf "::warning file=lint.allow,line=%d::%s\n" line
           (github_escape
              (Printf.sprintf "stale allow entry '%s %s' matches no finding"
                 rule path))))
    o.stale;
  List.iter
    (fun (name, line) ->
      Buffer.add_string buf
        (Printf.sprintf "::warning file=lint.budget,line=%d::%s\n" line
           (github_escape
              (Printf.sprintf
                 "stale budget entry '%s' matches no [@hot] root" name))))
    o.budget_stale;
  Buffer.add_string buf (summary o);
  Buffer.add_char buf '\n';
  Buffer.contents buf
