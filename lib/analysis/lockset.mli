(** Static race and lock-order analysis over the {!Callgraph}.

    [deep-race]: a top-level mutable cell ([ref], [Hashtbl.t],
    containers; [Atomic.t] is exempt) written anywhere and touched from
    a pooled def — one calling a [[@pool_entry]] function or
    [Domain.spawn], or reachable from such a def — with an empty
    effective lockset (locks held at the site ∪ mutexes held on every
    call path from a pooled root).  Also flags cells whose pooled
    accesses are all guarded but share no common mutex.

    [deep-lock-order]: cycles in the mutex acquisition-order graph,
    with edges from lexical [Mutex.protect] nesting and from calls made
    with a lock held into defs that may acquire another (self-loops
    included: OCaml's [Mutex.t] is not re-entrant). *)

val findings : Callgraph.t -> Finding.t list
(** The driver re-sorts and dedups. *)
