(** The rule registry.

    Every rule is a syntactic pass over one parsed source file; rules
    never see type information, so each one documents (in [doc] and in
    DESIGN.md) the approximation it makes.  Rules are derived from this
    repo's actual failure modes — each has a motivating bug from PR 1
    or PR 2 — and their union is the project's determinism and
    numeric-safety contract.

    Rule ids (stable, used in findings and [lint.allow]):
    - [poly-compare] — polymorphic [compare]/[=] hazards
    - [nondet] — ambient nondeterminism ([Random], wall clocks, [Hashtbl.hash])
    - [float-hygiene] — NaN literals, unguarded [float_of_string], [/. 0.]
    - [lock-discipline] — bare [Mutex.lock]/[unlock]
    - [unsafe-ops] — [Obj.magic], [unsafe_get]/[set], [%identity]
    - [output-discipline] — direct stdout/stderr printing inside [lib/]
    - [mli-coverage] — [lib/] modules without an interface file
    - [closed-variant-wildcard] — catch-all [_] in matches on closed
      domain variants
    - [global-mutable-state] — top-level refs/tables in [lib/]

    (The driver adds a tenth pseudo-rule, [parse], for files the
    compiler front end rejects.) *)

type ctx = {
  rel_path : string;  (** root-relative path of the file under scrutiny *)
  has_mli : bool;  (** does a sibling [.mli] exist? ([mli-coverage]) *)
}

type rule = {
  id : string;
  severity : Finding.severity;
  doc : string;  (** one-line description for [--rules] listings *)
  applies : string -> bool;  (** path scope, e.g. [lib/] only *)
  check : ctx -> Source.t -> Finding.t list;
}

val all : rule list
(** The registry, in reporting order. *)

val find : string -> rule option

val run : ?only:string list -> ctx -> Source.t -> Finding.t list
(** Run every registered rule (or just [only]) whose [applies] accepts
    the file.  Findings come back unsorted; the driver sorts. *)
