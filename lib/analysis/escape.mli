(** The escape analysis family over the call graph: exception flow
    ([escape-exn]), resource-release discipline ([escape-leak]) and
    simulation hygiene ([escape-realio]), each with witness chains.
    See the implementation header for the exact contracts. *)

val rule_ids : string list
(** The rule identifiers this family can emit. *)

val sanctioned_escapes : string list
(** Exception constructors allowed to escape a boundary:
    [Search_error.Error] plus the fail-fast precondition pair
    [Invalid_argument]/[Assert_failure] (folded into the taxonomy by
    [Search_error.classify] at supervision boundaries). *)

val realio_names : string list
(** Display names of the real-world primitives the sim-hygiene rule
    bans ([Unix] socket/clock/sleep family, [Thread.delay],
    [Sys.time]). *)

val findings :
  exports:(string * string list) list -> Callgraph.t -> Finding.t list
(** All three rule groups.  [exports] maps compilation-unit names to
    their [.mli]-exported dotted value names (from
    {!Cmt_loader.load_interface}); a [lib/] unit absent from the list
    is treated as fully public.  Byte-identical at any job count. *)
