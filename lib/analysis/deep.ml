(* The cmt-backed analysis families: load artefacts, extract per-unit
   summaries in parallel, build the global call graph, then run
   whichever passes were requested — {!Taint} + {!Lockset} under
   [~deep], {!Hotpath} under [~hotpath].  The graph is built once and
   shared.

   The same determinism contract as the syntactic pass: discovery is
   sorted, loads are serialised (compiler-libs unmarshalling), the
   parallel summary extraction is order-preserving and touches only
   immutable Typedtree fields, and the global passes fold over sorted
   names — so the findings are byte-identical at any pool size. *)

module Par = Search_exec.Par

let collect ~pool ~deep ~hotpath ~escape ~audited ~budget ~dirs ~root =
  let build_dir = Cmt_loader.build_dir ~root in
  let paths = Cmt_loader.discover ~build_dir ~dirs in
  let loaded = Par.parallel_map pool paths ~f:(Cmt_loader.load ~build_dir) in
  let load_findings =
    List.filter_map (function Error f -> Some f | Ok _ -> None) loaded
  in
  let units =
    Cmt_loader.dedup
      (List.filter_map (function Ok u -> Some u | Error _ -> None) loaded)
  in
  let summaries = Par.parallel_map pool units ~f:Callgraph.summarize in
  let graph = Callgraph.build summaries in
  let deep_findings =
    if deep then Taint.findings ~audited graph @ Lockset.findings graph
    else []
  in
  let hot_findings, budget_stale =
    if hotpath then
      (Hotpath.findings ~budget graph, Hotpath.stale_budget ~budget graph)
    else ([], [])
  in
  let escape_findings =
    if escape then
      let ipaths = Cmt_loader.discover_interfaces ~build_dir ~dirs in
      let exports =
        List.filter_map Fun.id
          (Par.parallel_map pool ipaths
             ~f:(Cmt_loader.load_interface ~build_dir))
      in
      Escape.findings ~exports graph
    else []
  in
  ( load_findings @ deep_findings @ hot_findings @ escape_findings,
    List.length units,
    budget_stale )
