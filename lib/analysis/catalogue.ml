(* The exhaustive rule catalogue across all four analysis families
   plus the driver's internal pseudo-rules.  Single source of truth
   for `--rules` listings and for stale-allowlist scoping: a rule id
   emitted anywhere but absent here is a bug (pinned by a test), and
   an allowlist entry naming an uncatalogued rule is stale by
   definition. *)

type family = Syntactic | Deep | Hotpath | Escape | Internal

type entry = { id : string; family : family; doc : string }

let family_to_string = function
  | Syntactic -> "syntactic"
  | Deep -> "deep"
  | Hotpath -> "hotpath"
  | Escape -> "escape"
  | Internal -> "internal"

(* How each non-syntactic family is switched on; the syntactic rules
   run always (filtered by --rules). *)
let family_flag = function
  | Syntactic -> None
  | Deep -> Some "--deep"
  | Hotpath -> Some "--hotpath"
  | Escape -> Some "--escape"
  | Internal -> None

let typed_entries =
  [
    {
      id = "deep-nondet";
      family = Deep;
      doc = "taint chain from a nondeterminism source reaches pool-submitted code";
    };
    {
      id = "deep-race";
      family = Deep;
      doc = "shared mutable cell written from pooled code without a consistent lock";
    };
    {
      id = "deep-lock-order";
      family = Deep;
      doc = "cycle in the lock acquisition order graph";
    };
    {
      id = "hotpath-alloc";
      family = Hotpath;
      doc = "allocation sites reachable from a [@hot] root exceed its lint.budget";
    };
    {
      id = "hotpath-blocking";
      family = Hotpath;
      doc = "blocking primitive reachable from an [@event_loop] root";
    };
    {
      id = "escape-exn";
      family = Escape;
      doc =
        "exception other than Search_error.Error (or the fail-fast \
         Invalid_argument/Assert_failure pair) escapes a public boundary";
    };
    {
      id = "escape-leak";
      family = Escape;
      doc =
        "acquisition site with no release on raising paths and no [@releases] audit";
    };
    {
      id = "escape-realio";
      family = Escape;
      doc = "real Unix socket/clock/sleep primitive reachable from the sim seam";
    };
    {
      id = "parse";
      family = Internal;
      doc = "source file the compiler front end rejects";
    };
    {
      id = "cmt-load";
      family = Internal;
      doc = "cmt artefact that cannot be loaded (rebuild and rerun)";
    };
  ]

let all =
  List.map
    (fun (r : Rules.rule) ->
      { id = r.Rules.id; family = Syntactic; doc = r.Rules.doc })
    Rules.all
  @ typed_entries

let find id = List.find_opt (fun e -> String.equal e.id id) all

let family_equal (a : family) b =
  match (a, b) with
  | Syntactic, Syntactic | Deep, Deep | Hotpath, Hotpath
  | Escape, Escape | Internal, Internal ->
      true
  | _ -> false

let ids_of family =
  List.filter_map
    (fun e -> if family_equal e.family family then Some e.id else None)
    all
