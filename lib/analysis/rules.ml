open Parsetree

type ctx = { rel_path : string; has_mli : bool }

type rule = {
  id : string;
  severity : Finding.severity;
  doc : string;
  applies : string -> bool;
  check : ctx -> Source.t -> Finding.t list;
}

(* ------------------------------------------------------------------ *)
(* shared helpers                                                      *)

let in_dir dir path = String.starts_with ~prefix:(dir ^ "/") path
let in_lib = in_dir "lib"
let not_in_test path = not (in_dir "test" path)
let everywhere _ = true

let flat lid = Longident.flatten lid
let lid_name lid = String.concat "." (flat lid)

(* Collect findings with a closure-captured accumulator; each rule
   builds one iterator over the file's AST. *)
let collect ctx rule_id severity f =
  let acc = ref [] in
  let emit ?suggestion ~loc message =
    acc :=
      Finding.v ~rule:rule_id ~severity ~file:ctx.rel_path ?suggestion ~loc
        message
      :: !acc
  in
  f emit;
  List.rev !acc

let iter_source (it : Ast_iterator.iterator) (src : Source.t) =
  match src.Source.ast with
  | Source.Impl st -> it.structure it st
  | Source.Intf sg -> it.signature it sg

(* An iterator that only overrides [expr]; the [super] call keeps the
   traversal going underneath. *)
let expr_iterator hook =
  let super = Ast_iterator.default_iterator in
  { super with expr = (fun self e -> hook super self e) }

(* ------------------------------------------------------------------ *)
(* poly-compare                                                        *)

(* Syntactically "safe" operands for structural (=): immediates and
   literals whose structural comparison is exactly what is meant. *)
let rec safe_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_string _) -> true
  | Pexp_construct ({ txt = Lident "::"; _ }, Some arg) -> (
      match arg.pexp_desc with
      | Pexp_tuple [ hd; tl ] -> safe_operand hd && safe_operand tl
      | _ -> false)
  | Pexp_construct ({ txt = Lident "Some"; _ }, Some arg) -> safe_operand arg
  | Pexp_construct (_, None) -> true (* (), [], true, None, Covered, ... *)
  | Pexp_variant (_, None) -> true
  | Pexp_tuple es -> List.for_all safe_operand es
  | Pexp_constraint (e, _) -> safe_operand e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flat txt with
      | [ ("List" | "Array" | "String" | "Bytes" | "Hashtbl" | "Queue");
          "length" ]
      | [ "List"; "compare_lengths" ]
      | [ "Char"; "code" ]
      | [ "Array"; "dim" ] ->
          true
      | _ -> false)
  | _ -> false

(* Operands that syntactically carry floats. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match flat txt with
      | [ ("infinity" | "nan" | "epsilon_float" | "max_float" | "min_float") ]
      | [ "Float";
          ( "nan" | "infinity" | "neg_infinity" | "pi" | "epsilon"
          | "max_float" | "min_float" ) ] ->
          true
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match flat txt with
      | [ ("~-." | "+." | "-." | "*." | "/." | "**") ]
      | [ ( "float_of_int" | "float_of_string" | "sqrt" | "exp" | "log"
          | "log10" | "log1p" | "expm1" | "ceil" | "floor" | "abs_float"
          | "mod_float" | "atan" | "atan2" | "sin" | "cos" | "tan" ) ]
      | "Float"
        :: [ ( "of_int" | "of_string" | "abs" | "min" | "max" | "add" | "sub"
             | "mul" | "div" | "rem" | "pow" | "sqrt" | "exp" | "log"
             | "succ" | "pred" | "round" | "trunc" ) ] ->
          true
      | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      true
  | Pexp_constraint (e, _) -> floatish e
  | _ -> false

(* Compound structural operands: records, tuples, non-trivial
   constructor applications — ordering or equality on these invokes
   the polymorphic runtime walk. *)
let compound_literal e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> not (safe_operand e)
  | _ -> false

let eq_op = function "=" | "<>" | "==" | "!=" -> true | _ -> false
let ord_op = function "<" | "<=" | ">" | ">=" -> true | _ -> false

(* [compare] / operators, bare or [Stdlib.]-qualified. *)
let op_base lid =
  match flat lid with
  | [ op ] | [ ("Stdlib" | "Pervasives"); op ] -> Some op
  | _ -> None

let toplevel_defines_compare st =
  List.exists
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.exists
            (fun vb ->
              let rec pat_is_compare p =
                match p.ppat_desc with
                | Ppat_var { txt = "compare"; _ } -> true
                | Ppat_constraint (p, _) -> pat_is_compare p
                | _ -> false
              in
              pat_is_compare vb.pvb_pat)
            bindings
      | _ -> false)
    st

let check_poly_compare ctx src =
  let local_compare =
    match src.Source.ast with
    | Source.Impl st -> toplevel_defines_compare st
    | Source.Intf _ -> false
  in
  collect ctx "poly-compare" Finding.Error @@ fun emit ->
  let check_compare_ident txt loc =
    match flat txt with
    | [ "compare" ] when not local_compare ->
        emit ~loc
          ~suggestion:
            "use Float.compare / Int.compare / String.compare or a derived \
             comparator"
          "polymorphic compare (structural, NaN-hostile)"
    | [ ("Stdlib" | "Pervasives"); "compare" ] ->
        emit ~loc
          ~suggestion:
            "use Float.compare / Int.compare / String.compare or a derived \
             comparator"
          "polymorphic Stdlib.compare (structural, NaN-hostile)"
    | _ -> ()
  in
  let check_apply op loc args =
    match args with
    | [ (_, a); (_, b) ] ->
        if eq_op op then begin
          let strict = in_lib ctx.rel_path in
          let hazard =
            if strict then not (safe_operand a || safe_operand b)
            else
              floatish a || floatish b || compound_literal a
              || compound_literal b
          in
          if hazard then
            emit ~loc
              ~suggestion:
                "use a typed equality (Float.equal, Int.equal, String.equal, \
                 List.equal ...) or pattern matching"
              (Printf.sprintf
                 "polymorphic (%s) on operands not syntactically immediate" op)
        end
        else if ord_op op && (compound_literal a || compound_literal b) then
          emit ~loc
            ~suggestion:"compare fields explicitly with typed comparators"
            (Printf.sprintf "polymorphic ordering (%s) on compound values" op)
        else if
          (op = "min" || op = "max") && (floatish a || floatish b)
        then
          emit ~loc
            ~suggestion:"use Float.min / Float.max (NaN-aware)"
            (Printf.sprintf
               "polymorphic %s on floats (NaN falls through (<=))" op)
    | _ -> ()
  in
  let hook (super : Ast_iterator.iterator) self e =
    match e.pexp_desc with
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as fn), args)
      -> (
        (match op_base txt with
        | Some op when eq_op op || ord_op op || op = "min" || op = "max" ->
            check_apply op loc args;
            (* the operator ident itself is handled here: recurse only
               into the arguments *)
            List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args
        | _ ->
            (* the function ident is visited by the recursion below *)
            self.Ast_iterator.expr self fn;
            List.iter (fun (_, a) -> self.Ast_iterator.expr self a) args))
    | Pexp_ident { txt; loc } -> (
        check_compare_ident txt loc;
        (* (=) passed as a first-class function: as dangerous as calling
           it, inside lib/ *)
        match op_base txt with
        | Some op when eq_op op && in_lib ctx.rel_path ->
            emit ~loc
              ~suggestion:"pass a typed equality instead"
              (Printf.sprintf "polymorphic (%s) used as a function value" op)
        | _ -> ())
    | _ -> super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* nondet                                                              *)

let check_nondet ctx src =
  collect ctx "nondet" Finding.Error @@ fun emit ->
  let hook (super : Ast_iterator.iterator) self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match flat txt with
        | "Random" :: _ ->
            emit ~loc
              ~suggestion:
                "draw from Search_numerics.Prng (splittable, replayable) \
                 instead"
              (Printf.sprintf "ambient PRNG %s breaks deterministic replay"
                 (lid_name txt))
        | [ "Sys"; "time" ]
        | [ "Unix"; ("gettimeofday" | "time" | "times") ] ->
            emit ~loc
              ~suggestion:
                "time only inside Search_exec.Metrics, which never feeds \
                 results"
              (Printf.sprintf "wall-clock read %s is nondeterministic"
                 (lid_name txt))
        | [ "Hashtbl"; ("hash" | "seeded_hash" | "randomize") ] ->
            emit ~loc
              ~suggestion:"hash with an explicit, versioned function"
              (Printf.sprintf "%s depends on runtime representation"
                 (lid_name txt))
        | _ -> ())
    | _ -> ());
    super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* float-hygiene                                                       *)

let check_float_hygiene ctx src =
  collect ctx "float-hygiene" Finding.Error @@ fun emit ->
  let hook (super : Ast_iterator.iterator) self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match flat txt with
        | [ "nan" ] | [ "Float"; "nan" ] ->
            emit ~loc
              ~suggestion:
                "model absence with option; NaN poisons comparisons and \
                 silently passes (<=) guards"
              "literal NaN constructed"
        | [ "float_of_string" ] | [ "Float"; "of_string" ] ->
            emit ~loc
              ~suggestion:
                "use float_of_string_opt and handle the failure explicitly"
              "unguarded float_of_string raises on bad input"
        | _ -> ())
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Lident "/."; loc }; _ },
          [ _; (_, { pexp_desc = Pexp_constant (Pconst_float (lit, None)); _ })
          ] ) -> (
        match float_of_string_opt lit with
        | Some z when Float.equal z 0. ->
            emit ~loc "division by the float literal 0. yields inf/NaN"
        | _ -> ())
    | _ -> ());
    super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* lock-discipline                                                     *)

let check_lock_discipline ctx src =
  collect ctx "lock-discipline" Finding.Error @@ fun emit ->
  let hook (super : Ast_iterator.iterator) self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match flat txt with
        | [ "Mutex"; ("lock" | "unlock") ] ->
            emit ~loc
              ~suggestion:
                "wrap the critical section in Mutex.protect (or Fun.protect \
                 ~finally) so exceptions cannot leave the mutex held"
              (Printf.sprintf "bare %s outside an unwind guard" (lid_name txt))
        | _ -> ())
    | _ -> ());
    super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* unsafe-ops                                                          *)

let check_unsafe_ops ctx src =
  collect ctx "unsafe-ops" Finding.Error @@ fun emit ->
  let prim_finding vd =
    if
      List.exists
        (fun p -> p = "%identity" || String.starts_with ~prefix:"%obj_" p)
        vd.pval_prim
    then
      emit ~loc:vd.pval_loc
        ~suggestion:"write the conversion honestly, or isolate and test it"
        (Printf.sprintf "external %S uses an unchecked primitive"
           vd.pval_name.Location.txt)
  in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> (
              match flat txt with
              | [ "Obj"; ("magic" | "repr" | "obj") ] ->
                  emit ~loc
                    ~suggestion:"restructure so the types are honest"
                    (Printf.sprintf "%s defeats the type system" (lid_name txt))
              | [ ("Array" | "String" | "Bytes" | "Float"); prim ]
                when String.starts_with ~prefix:"unsafe_" prim ->
                  emit ~loc
                    ~suggestion:
                      "use the bounds-checked accessor; prove the win with \
                       bench/ before ever reconsidering"
                    (Printf.sprintf "%s skips bounds checks" (lid_name txt))
              | _ -> ())
          | _ -> ());
          super.expr self e);
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_primitive vd -> prim_finding vd
          | _ -> ());
          super.structure_item self item);
      signature_item =
        (fun self item ->
          (match item.psig_desc with
          | Psig_value vd when vd.pval_prim <> [] -> prim_finding vd
          | _ -> ());
          super.signature_item self item);
    }
  in
  iter_source it src

(* ------------------------------------------------------------------ *)
(* output-discipline                                                   *)

let check_output_discipline ctx src =
  collect ctx "output-discipline" Finding.Error @@ fun emit ->
  let hook (super : Ast_iterator.iterator) self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match flat txt with
        | [ ( "print_string" | "print_endline" | "print_newline"
            | "print_char" | "print_int" | "print_float" | "print_bytes"
            | "prerr_string" | "prerr_endline" | "prerr_newline"
            | "prerr_char" | "stdout" | "stderr" ) ]
        | [ "Printf"; ("printf" | "eprintf") ]
        | [ "Format";
            ( "printf" | "eprintf" | "print_string" | "print_newline"
            | "print_flush" ) ] ->
            emit ~loc
              ~suggestion:
                "library code returns data; route output through Report / \
                 Table / Event_log / Metrics, or take a Format.formatter"
              (Printf.sprintf "direct console output via %s inside lib/"
                 (lid_name txt))
        | _ -> ())
    | _ -> ());
    super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* mli-coverage                                                        *)

let check_mli_coverage ctx src =
  match src.Source.ast with
  | Source.Intf _ -> []
  | Source.Impl _ ->
      if ctx.has_mli then []
      else
        [
          Finding.v ~rule:"mli-coverage" ~severity:Finding.Warning
            ~file:ctx.rel_path
            ~loc:(Location.in_file ctx.rel_path)
            ~suggestion:
              "add an interface: undocumented exports become load-bearing"
            "module has no .mli";
        ]

(* ------------------------------------------------------------------ *)
(* closed-variant-wildcard                                             *)

(* The repo's closed domain vocabularies: fault kinds, parameter
   regimes, sweep/certificate verdicts, induction cases.  A catch-all
   arm in a match over these swallows future constructors silently —
   exactly how a new fault model would bypass the adversary. *)
let closed_constructors =
  [
    "Crash"; "Byzantine"; "Unsolvable"; "Ratio_one"; "Searching"; "Covered";
    "Gap"; "Refuted_gap"; "Refuted_potential"; "Not_refuted"; "Inconclusive";
    "Case1"; "Case2";
  ]

let rec head_constructors p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> [ Longident.last txt ]
  | Ppat_or (a, b) -> head_constructors a @ head_constructors b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> head_constructors p
  | _ -> []

let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | _ -> false

let check_closed_variant ctx src =
  collect ctx "closed-variant-wildcard" Finding.Warning @@ fun emit ->
  let check_cases cases =
    if List.for_all (fun c -> c.pc_guard = None) cases then begin
      let closed =
        List.concat_map (fun c -> head_constructors c.pc_lhs) cases
        |> List.filter (fun c -> List.mem c closed_constructors)
      in
      match closed with
      | [] -> ()
      | witness :: _ ->
          List.iter
            (fun c ->
              if is_catch_all c.pc_lhs then
                emit ~loc:c.pc_lhs.ppat_loc
                  ~suggestion:"list the remaining constructors explicitly"
                  (Printf.sprintf
                     "catch-all arm in a match on the closed variant of %s: \
                      a new constructor would be silently swallowed"
                     witness))
            cases
    end
  in
  let hook (super : Ast_iterator.iterator) self e =
    (* [try ... with] arms are exempt: exception sets are open by design *)
    (match e.pexp_desc with
    | Pexp_match (_, cases) | Pexp_function cases -> check_cases cases
    | _ -> ());
    super.Ast_iterator.expr self e
  in
  iter_source (expr_iterator hook) src

(* ------------------------------------------------------------------ *)
(* global-mutable-state                                                *)

let check_global_mutable ctx src =
  match src.Source.ast with
  | Source.Intf _ -> []
  | Source.Impl st ->
      collect ctx "global-mutable-state" Finding.Warning @@ fun emit ->
      let mutable_ctor e =
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
            match flat txt with
            | [ "ref" ]
            | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Dynarray");
                "create" ]
            | [ "Array"; ("make" | "create_float" | "init") ]
            | [ "Atomic"; "make" ] ->
                Some (lid_name txt)
            | _ -> None)
        | _ -> None
      in
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, bindings) ->
              List.iter
                (fun vb ->
                  match mutable_ctor vb.pvb_expr with
                  | Some ctor ->
                      emit ~loc:vb.pvb_loc
                        ~suggestion:
                          "thread the state through a [create]d handle, or \
                           guard it like Metrics' write lock"
                        (Printf.sprintf
                           "top-level mutable state (%s) is shared by every \
                            domain"
                           ctor)
                  | None -> ())
                bindings
          | _ -> ())
        st

(* ------------------------------------------------------------------ *)
(* registry                                                            *)

let all =
  [
    {
      id = "poly-compare";
      severity = Finding.Error;
      doc =
        "polymorphic compare/equality on non-immediate values (floats, \
         float-carrying records)";
      applies = everywhere;
      check = check_poly_compare;
    };
    {
      id = "nondet";
      severity = Finding.Error;
      doc =
        "ambient nondeterminism: Random.*, wall clocks, representation \
         hashing";
      applies = everywhere;
      check = check_nondet;
    };
    {
      id = "float-hygiene";
      severity = Finding.Error;
      doc = "NaN literals, unguarded float_of_string, division by 0.";
      applies = not_in_test;
      check = check_float_hygiene;
    };
    {
      id = "lock-discipline";
      severity = Finding.Error;
      doc = "bare Mutex.lock/unlock outside Mutex.protect/Fun.protect";
      applies = everywhere;
      check = check_lock_discipline;
    };
    {
      id = "unsafe-ops";
      severity = Finding.Error;
      doc = "Obj.magic, unsafe_get/set, %identity externals";
      applies = everywhere;
      check = check_unsafe_ops;
    };
    {
      id = "output-discipline";
      severity = Finding.Error;
      doc = "direct stdout/stderr printing inside lib/";
      applies = in_lib;
      check = check_output_discipline;
    };
    {
      id = "mli-coverage";
      severity = Finding.Warning;
      doc = "every lib/ module ships an interface";
      applies = in_lib;
      check = check_mli_coverage;
    };
    {
      id = "closed-variant-wildcard";
      severity = Finding.Warning;
      doc = "catch-all _ arm in matches on closed domain variants";
      applies = in_lib;
      check = check_closed_variant;
    };
    {
      id = "global-mutable-state";
      severity = Finding.Warning;
      doc = "top-level refs/tables shared across domains";
      applies = in_lib;
      check = check_global_mutable;
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let run ?only ctx src =
  let selected =
    match only with
    | None -> all
    | Some ids -> List.filter (fun r -> List.mem r.id ids) all
  in
  List.concat_map
    (fun r -> if r.applies ctx.rel_path then r.check ctx src else [])
    selected
