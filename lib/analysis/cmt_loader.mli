(** Discovery and loading of the [.cmt] typed artefacts dune emits.

    The deep analyses ({!Taint}, {!Lockset}) need resolved names —
    which entity a spelling refers to after module aliases, [open]s and
    the library wrapper module — so they consume the Typedtree stored
    in [.cmt] files rather than re-parsing sources.  Locations inside
    still point at the original repo-relative source files, so findings
    carry the same [file:line] coordinates as the syntactic pass. *)

type unit_info = {
  cmt_path : string;  (** relative to the build dir *)
  modname : string;  (** compilation-unit name, e.g. ["Search_exec__Pool"] *)
  source : string option;
      (** repo-relative source recorded at compile time, when any *)
  structure : Typedtree.structure option;
      (** [None] for interfaces, packs and partial implementations *)
}

val build_dir : root:string -> string
(** [_build/default] under [root] when present (a checkout), otherwise
    [root] itself (already inside a build context, as under the
    [@lint] alias). *)

val discover : build_dir:string -> dirs:string list -> string list
(** All [.cmt] paths under [dirs], sorted; relative to [build_dir]. *)

val load : build_dir:string -> string -> (unit_info, Finding.t) result
(** Load one artefact.  Serialised internally (compiler-libs
    unmarshalling is not known to be domain-safe); failures become a
    [cmt-load] finding, which the driver classifies as internal. *)

val dedup : unit_info list -> unit_info list
(** Keep the first unit per compilation-unit name (input order). *)

val discover_interfaces : build_dir:string -> dirs:string list -> string list
(** All [.cmti] paths under [dirs], sorted; relative to [build_dir]. *)

val load_interface : build_dir:string -> string -> (string * string list) option
(** [(modname, exported dotted value names)] from one [.cmti]: the
    type-checked signature's [Sig_value] names, recursing into plain
    submodule signatures ([include module type of ...] is already
    expanded there).  Module aliases and abstract module types are
    skipped — the export set is an under-approximation, which only
    makes the exception-flow pass quieter.  [None] when the artefact
    cannot be loaded or is not an interface. *)
