(* The per-function allocation budget file (lint.budget).

   One line per [@hot] root: '<display-name> <count>', where the name
   is the human form of the def ("Adversary.compiled_scan") and the
   count is the number of statically reachable allocation sites the
   root is allowed.  Kernels carry 0; warm-path functions that allocate
   on cache growth carry an audited exact count with a justifying
   comment.  A root with no entry gets the strictest default: 0.

   Same file discipline as lint.allow: '#' comments, staleness is
   detected (an entry naming no current [@hot] root), and parse errors
   are reported with the offending line. *)

type entry = { bname : string; bcount : int; bline : int }
type t = { items : entry list }

let empty = { items = [] }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok { items = List.rev acc }
    | line :: rest -> (
        match split_words (strip_comment line) with
        | [] -> go (lineno + 1) acc rest
        | [ bname; count ] -> (
            match int_of_string_opt count with
            | Some bcount when bcount >= 0 ->
                go (lineno + 1) ({ bname; bcount; bline = lineno } :: acc) rest
            | Some _ ->
                Error
                  (Printf.sprintf
                     "lint.budget:%d: budget for %s must be >= 0" lineno bname)
            | None ->
                Error
                  (Printf.sprintf
                     "lint.budget:%d: expected an integer budget, got %S"
                     lineno count))
        | _ ->
            Error
              (Printf.sprintf
                 "lint.budget:%d: expected '<function> <count>' (plus \
                  optional # comment), got %S"
                 lineno (String.trim line)))
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents

let find t name =
  List.find_map
    (fun e -> if String.equal e.bname name then Some e.bcount else None)
    t.items

let entries_located t = List.map (fun e -> (e.bname, e.bcount, e.bline)) t.items

(* entries naming no live [@hot] root are stale, exactly like an
   allowlist entry matching no finding *)
let stale t ~roots =
  List.filter_map
    (fun e ->
      if List.exists (String.equal e.bname) roots then None
      else Some (e.bname, e.bline))
    t.items
