(* Static race and lock-order analysis over the {!Callgraph}.

   Pooled-ness.  A def that calls a pool entry ([@pool_entry] in
   lib/exec, or [Domain.spawn]) contains a closure that will run on
   another domain; the analysis conservatively treats the whole def —
   and everything it reaches through top-level calls — as potentially
   parallel.  The must-hold fixpoint then computes, per pooled def, the
   set of top-level mutexes held on *every* call path from a pooled
   root (intersection semantics, descending), so a helper only ever
   invoked under [Metrics.write_mutex] is not flagged for touching what
   that mutex guards.

   Races.  A top-level cell (ref / Hashtbl / container; [Atomic.t] is
   exempt, it is synchronised by construction) with at least one write
   anywhere is reported when a pooled def touches it with an empty
   effective lockset (locks held at the site ∪ must-hold of the def) —
   and also when every pooled access is guarded but by no *common*
   mutex, which serialises nothing.

   Deadlocks.  Acquisition-order edges h → l are collected from lexical
   nesting ([Mutex.protect l] while h is held) and from calls made with
   h held into defs that may acquire l (a may-acquire union fixpoint);
   any cycle — including the self-loop of re-entering a held mutex,
   which OCaml's non-reentrant [Mutex.t] turns into a deadlock — is a
   finding. *)

module SS = Set.Make (String)

let suggestion_race =
  "guard the access with Mutex.protect on one designated mutex, switch the \
   cell to Atomic, or audit the file under deep-race in lint.allow"

(* ------------------------------------------------------------------ *)
(* pooled defs and the must-hold fixpoint                              *)

type pooled = {
  must : (string, SS.t) Hashtbl.t;  (** pooled defs only *)
  root_entry : (string, string) Hashtbl.t;  (** root -> entry it calls *)
  caller : (string, string) Hashtbl.t;  (** first caller that pooled it *)
}

let compute_pooled (g : Callgraph.t) =
  let must = Hashtbl.create 64 in
  let root_entry = Hashtbl.create 16 in
  let caller = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Callgraph.find_def g name with
      | None -> ()
      | Some d -> (
          match
            List.find_opt
              (fun (r : Callgraph.reference) ->
                Callgraph.is_entry g r.Callgraph.target
                && not (String.equal r.Callgraph.target name))
              d.Callgraph.refs
          with
          | Some r ->
              Hashtbl.replace root_entry name
                (Callgraph.display_name
                   (Callgraph.strip_stdlib r.Callgraph.target));
              Hashtbl.replace must name SS.empty
          | None -> ()))
    g.Callgraph.def_order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        match (Hashtbl.find_opt must c, Callgraph.find_def g c) with
        | Some mc, Some d ->
            List.iter
              (fun (r : Callgraph.reference) ->
                let t = r.Callgraph.target in
                if Hashtbl.mem g.Callgraph.defs t && not (String.equal t c)
                then begin
                  let contrib = SS.union mc (SS.of_list r.Callgraph.rheld) in
                  match Hashtbl.find_opt must t with
                  | None ->
                      Hashtbl.replace must t contrib;
                      Hashtbl.replace caller t c;
                      changed := true
                  | Some cur ->
                      let inter = SS.inter cur contrib in
                      if not (SS.equal inter cur) then begin
                        Hashtbl.replace must t inter;
                        changed := true
                      end
                end)
              d.Callgraph.refs
        | _ -> ())
      g.Callgraph.def_order
  done;
  { must; root_entry; caller }

let job_chain (g : Callgraph.t) p name =
  let disp n =
    match Callgraph.find_def g n with
    | Some d -> d.Callgraph.display
    | None -> Callgraph.display_name n
  in
  let rec back n fuel acc =
    if fuel = 0 then "..." :: acc
    else
      match Hashtbl.find_opt p.caller n with
      | Some c -> back c (fuel - 1) (disp n :: acc)
      | None ->
          let root =
            match Hashtbl.find_opt p.root_entry n with
            | Some e -> Printf.sprintf "%s{%s}" (disp n) e
            | None -> disp n
          in
          root :: acc
  in
  String.concat " -> " (back name 12 [])

(* ------------------------------------------------------------------ *)
(* race detection                                                      *)

type access = {
  acc_def : string;
  acc_loc : Location.t;
  acc_file : string;
  acc_via : string option;  (** [Some mutator] for writes, [None] reads *)
  acc_eff : SS.t;  (** effective lockset: held at site ∪ must of def *)
}

let cell_accesses (g : Callgraph.t) p cell_name =
  List.concat_map
    (fun name ->
      match (Hashtbl.find_opt p.must name, Callgraph.find_def g name) with
      | Some m, Some d ->
          let writes =
            List.filter_map
              (fun (mu : Callgraph.mutation) ->
                if String.equal mu.Callgraph.cell cell_name then
                  Some
                    {
                      acc_def = name;
                      acc_loc = mu.Callgraph.mloc;
                      acc_file = d.Callgraph.file;
                      acc_via = Some mu.Callgraph.via;
                      acc_eff = SS.union m (SS.of_list mu.Callgraph.mheld);
                    }
                else None)
              d.Callgraph.mutations
          in
          let wlocs = List.map (fun a -> a.acc_loc) writes in
          let reads =
            List.filter_map
              (fun (r : Callgraph.reference) ->
                if
                  String.equal r.Callgraph.target cell_name
                  && not (List.mem r.Callgraph.rloc wlocs)
                then
                  Some
                    {
                      acc_def = name;
                      acc_loc = r.Callgraph.rloc;
                      acc_file = d.Callgraph.file;
                      acc_via = None;
                      acc_eff = SS.union m (SS.of_list r.Callgraph.rheld);
                    }
                else None)
              d.Callgraph.refs
          in
          writes @ reads
      | _ -> [])
    g.Callgraph.def_order

let written_anywhere (g : Callgraph.t) cell_name =
  List.exists
    (fun name ->
      match Callgraph.find_def g name with
      | Some d ->
          List.exists
            (fun (mu : Callgraph.mutation) ->
              String.equal mu.Callgraph.cell cell_name)
            d.Callgraph.mutations
      | None -> false)
    g.Callgraph.def_order

let race_findings (g : Callgraph.t) p =
  let cells =
    List.sort
      (fun (a : Callgraph.cell) b ->
        String.compare a.Callgraph.cell_name b.Callgraph.cell_name)
      (Hashtbl.fold (fun _ c acc -> c :: acc) g.Callgraph.cells [])
  in
  List.concat_map
    (fun (c : Callgraph.cell) ->
      if c.Callgraph.kind = Callgraph.Atomic then []
      else
        let name = c.Callgraph.cell_name in
        let accesses = cell_accesses g p name in
        if accesses = [] || not (written_anywhere g name) then []
        else
          let cell_where =
            Printf.sprintf "%s (defined %s:%d)"
              (Callgraph.display_name name)
              c.Callgraph.cell_file
              c.Callgraph.cell_loc.Location.loc_start.Lexing.pos_lnum
          in
          let unguarded =
            List.filter (fun a -> SS.is_empty a.acc_eff) accesses
          in
          if unguarded <> [] then
            (* one finding per (cell, def): the first unguarded site *)
            let seen = Hashtbl.create 8 in
            List.filter_map
              (fun a ->
                if Hashtbl.mem seen a.acc_def then None
                else begin
                  Hashtbl.add seen a.acc_def ();
                  let what =
                    match a.acc_via with
                    | Some via -> Printf.sprintf "write (%s)" via
                    | None -> "access"
                  in
                  Some
                    (Finding.v ~rule:"deep-race" ~severity:Finding.Error
                       ~file:a.acc_file ~loc:a.acc_loc
                       ~suggestion:suggestion_race
                       (Printf.sprintf
                          "possible data race on %s: unguarded %s on the \
                           pool (job chain: %s)"
                          cell_where what
                          (job_chain g p a.acc_def)))
                end)
              unguarded
          else
            let common =
              List.fold_left
                (fun acc a ->
                  match acc with
                  | None -> Some a.acc_eff
                  | Some s -> Some (SS.inter s a.acc_eff))
                None accesses
            in
            match (common, accesses) with
            | Some inter, a0 :: _ :: _ when SS.is_empty inter ->
                [
                  Finding.v ~rule:"deep-race" ~severity:Finding.Error
                    ~file:a0.acc_file ~loc:a0.acc_loc
                    ~suggestion:suggestion_race
                    (Printf.sprintf
                       "inconsistent guards on %s: pooled accesses hold \
                        {%s} with no mutex in common"
                       cell_where
                       (String.concat "} {"
                          (List.map
                             (fun a ->
                               String.concat ","
                                 (List.map Callgraph.display_name
                                    (SS.elements a.acc_eff)))
                             accesses)));
                ]
            | _ -> [])
    cells

(* ------------------------------------------------------------------ *)
(* lock-order cycles                                                   *)

type edge = { e_from : string; e_to : string; e_loc : Location.t; e_file : string }

let may_acquire (g : Callgraph.t) =
  let may = Hashtbl.create 64 in
  List.iter
    (fun name ->
      match Callgraph.find_def g name with
      | Some d ->
          Hashtbl.replace may name
            (SS.of_list
               (List.filter_map
                  (fun (pe : Callgraph.protect_event) ->
                    if Callgraph.mutex_defined g pe.Callgraph.lock then
                      Some pe.Callgraph.lock
                    else None)
                  d.Callgraph.protects))
      | None -> ())
    g.Callgraph.def_order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun name ->
        match Callgraph.find_def g name with
        | Some d ->
            let cur = Option.value (Hashtbl.find_opt may name) ~default:SS.empty in
            let next =
              List.fold_left
                (fun acc (r : Callgraph.reference) ->
                  match Hashtbl.find_opt may r.Callgraph.target with
                  | Some s -> SS.union acc s
                  | None -> acc)
                cur d.Callgraph.refs
            in
            if not (SS.equal next cur) then begin
              Hashtbl.replace may name next;
              changed := true
            end
        | None -> ())
      g.Callgraph.def_order
  done;
  may

let order_edges (g : Callgraph.t) may =
  let edges = Hashtbl.create 16 in
  let add e_from e_to e_loc e_file =
    if
      Callgraph.mutex_defined g e_from
      && Callgraph.mutex_defined g e_to
      && not (Hashtbl.mem edges (e_from, e_to))
    then Hashtbl.add edges (e_from, e_to) { e_from; e_to; e_loc; e_file }
  in
  List.iter
    (fun name ->
      match Callgraph.find_def g name with
      | Some d ->
          List.iter
            (fun (pe : Callgraph.protect_event) ->
              List.iter
                (fun h ->
                  add h pe.Callgraph.lock pe.Callgraph.ploc d.Callgraph.file)
                pe.Callgraph.outer)
            d.Callgraph.protects;
          List.iter
            (fun (r : Callgraph.reference) ->
              if r.Callgraph.rheld <> [] then
                match Hashtbl.find_opt may r.Callgraph.target with
                | Some acq ->
                    List.iter
                      (fun h ->
                        SS.iter
                          (fun m -> add h m r.Callgraph.rloc d.Callgraph.file)
                          acq)
                      r.Callgraph.rheld
                | None -> ())
            d.Callgraph.refs
      | None -> ())
    g.Callgraph.def_order;
  List.sort
    (fun a b ->
      match String.compare a.e_from b.e_from with
      | 0 -> String.compare a.e_to b.e_to
      | n -> n)
    (Hashtbl.fold (fun _ e acc -> e :: acc) edges [])

(* Report each elementary cycle once, keyed by its lexicographically
   smallest node: DFS from that node over nodes >= it. *)
let cycle_findings edges =
  let succs n =
    List.filter (fun e -> String.equal e.e_from n) edges
  in
  let nodes =
    List.sort_uniq String.compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) edges)
  in
  List.filter_map
    (fun start ->
      let rec dfs path visited n =
        List.find_map
          (fun e ->
            if String.equal e.e_to start then Some (List.rev (e :: path))
            else if
              String.compare e.e_to start < 0 || SS.mem e.e_to visited
            then None
            else dfs (e :: path) (SS.add e.e_to visited) e.e_to)
          (succs n)
      in
      match dfs [] SS.empty start with
      | None -> None
      | Some cycle ->
          let names =
            String.concat " -> "
              (List.map (fun e -> Callgraph.display_name e.e_from) cycle
              @ [ Callgraph.display_name start ])
          in
          let witnesses =
            String.concat "; "
              (List.map
                 (fun e ->
                   Printf.sprintf "%s taken at %s:%d while %s held"
                     (Callgraph.display_name e.e_to)
                     e.e_file e.e_loc.Location.loc_start.Lexing.pos_lnum
                     (Callgraph.display_name e.e_from))
                 cycle)
          in
          let e0 = List.hd cycle in
          Some
            (Finding.v ~rule:"deep-lock-order" ~severity:Finding.Error
               ~file:e0.e_file ~loc:e0.e_loc
               ~suggestion:
                 "impose one global acquisition order (acquire mutexes in \
                  a fixed, documented order) or merge the critical sections"
               (Printf.sprintf "mutex acquisition-order cycle: %s (%s)"
                  names witnesses)))
    nodes

let findings (g : Callgraph.t) =
  let p = compute_pooled g in
  let races = race_findings g p in
  let cycles = cycle_findings (order_edges g (may_acquire g)) in
  races @ cycles
