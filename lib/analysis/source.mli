(** Source discovery and parsing (compiler-libs front end).

    The linter parses with the compiler's own lexer and parser
    ([compiler-libs.common]) so it can never disagree with the build
    about what the code says; no type information is computed, so the
    rules in {!Rules} are syntactic approximations (documented per
    rule in DESIGN.md). *)

type ast =
  | Impl of Parsetree.structure  (** a [.ml] *)
  | Intf of Parsetree.signature  (** a [.mli] *)

type t = {
  rel_path : string;  (** ['/']-separated path relative to the root *)
  ast : ast;
}

val discover : root:string -> dirs:string list -> string list
(** All [.ml]/[.mli] files under [root/dir] for each [dir], as sorted
    root-relative paths.  Directories named [_build], [_opam] or
    starting with ['.'] are skipped.  A [dir] that does not exist
    contributes nothing (so the same invocation works on partial
    checkouts).  Deterministic: sorted with [String.compare]. *)

val parse_file : root:string -> string -> (t, Finding.t) result
(** Parse [root/rel_path]; a syntax error (or unreadable file) becomes
    a [parse] finding at the error location. *)

val parse_string : rel_path:string -> string -> (t, Finding.t) result
(** Same from in-memory contents — the test fixture entry point.
    [rel_path] decides implementation vs interface by extension. *)
