(* Discovery and loading of the .cmt artefacts dune emits (-bin-annot
   is on by default).  The deep passes work on the Typedtree because it
   is the only representation where names are *resolved*: a call written
   [Pool.async] in one module and [Search_exec.Pool.async] in another is
   the same [Path.t], module aliases are explicit [Tstr_module] items,
   and locations still point into the original source.  The Parsetree
   (which the syntactic pass uses) cannot support an interprocedural
   analysis: it sees spellings, not entities.

   Discovery order is sorted, like [Source.discover], so every later
   stage that folds over units does so in a deterministic order
   regardless of the worker-pool size. *)

type unit_info = {
  cmt_path : string;  (** relative to the build dir *)
  modname : string;  (** compilation-unit name, e.g. ["Search_exec__Pool"] *)
  source : string option;
      (** repo-relative source recorded at compile time, when any *)
  structure : Typedtree.structure option;
      (** [None] for interfaces, packs and partial implementations *)
}

(* Where the artefacts live.  Run from a checkout the cmts are under
   [_build/default]; run from inside the build tree (the [@lint] dune
   alias executes with the context root as cwd) they sit next to the
   copied sources. *)
let build_dir ~root =
  let candidate = Filename.concat root (Filename.concat "_build" "default") in
  if Sys.file_exists candidate && Sys.is_directory candidate then candidate
  else root

let is_cmt name = Filename.check_suffix name ".cmt"

let discover ~build_dir ~dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat build_dir rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false -> if is_cmt rel then acc := rel :: !acc
    | true ->
        (* unlike [Source.discover], dot-directories are NOT skipped:
           dune keeps objects under [.objs]/[.eobjs] *)
        Array.iter
          (fun entry -> walk (rel ^ "/" ^ entry))
          (let entries = Sys.readdir abs in
           Array.sort String.compare entries;
           entries)
  in
  List.iter
    (fun dir ->
      if Sys.file_exists (Filename.concat build_dir dir) then walk dir)
    dirs;
  List.sort String.compare !acc

(* [Cmt_format.read_cmt] funnels through compiler-libs unmarshalling
   helpers whose domain-safety nobody guarantees; loads are serialised
   under one mutex, exactly like [Source]'s parse.  The pure summary
   extraction downstream runs in parallel. *)
let read_mutex = Mutex.create ()

let load ~build_dir cmt_path =
  let abs = Filename.concat build_dir cmt_path in
  match Mutex.protect read_mutex (fun () -> Cmt_format.read_cmt abs) with
  | exception e ->
      Error
        (Finding.v ~rule:"cmt-load" ~severity:Finding.Error ~file:cmt_path
           ~loc:(Location.in_file cmt_path)
           ~suggestion:"rebuild with `dune build @all` and rerun"
           (Printf.sprintf "cannot load cmt artefact: %s"
              (Printexc.to_string e)))
  | cmt ->
      let structure =
        match cmt.Cmt_format.cmt_annots with
        | Cmt_format.Implementation st -> Some st
        | Cmt_format.Interface _ | Cmt_format.Packed _
        | Cmt_format.Partial_implementation _
        | Cmt_format.Partial_interface _ ->
            None
      in
      Ok
        {
          cmt_path;
          modname = cmt.Cmt_format.cmt_modname;
          source = cmt.Cmt_format.cmt_sourcefile;
          structure;
        }

(* ------------------------------------------------------------------ *)
(* interfaces                                                          *)

(* The exception-flow pass needs to know which defs are *public*: a
   unit's [.cmti] records the type-checked signature, and the dotted
   value names in it (recursing into plain submodule signatures) are
   exactly the exported surface.  Module aliases and abstract module
   types contribute nothing — an under-approximation of the export set,
   which only ever makes the pass quieter. *)

let is_cmti name = Filename.check_suffix name ".cmti"

let discover_interfaces ~build_dir ~dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat build_dir rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false -> if is_cmti rel then acc := rel :: !acc
    | true ->
        Array.iter
          (fun entry -> walk (rel ^ "/" ^ entry))
          (let entries = Sys.readdir abs in
           Array.sort String.compare entries;
           entries)
  in
  List.iter
    (fun dir ->
      if Sys.file_exists (Filename.concat build_dir dir) then walk dir)
    dirs;
  List.sort String.compare !acc

let rec exports_of_signature prefix (sg : Types.signature) =
  List.concat_map
    (function
      | Types.Sig_value (id, _, _) -> [ prefix ^ Ident.name id ]
      | Types.Sig_module (id, _, md, _, _) -> (
          match md.Types.md_type with
          | Types.Mty_signature sub ->
              exports_of_signature (prefix ^ Ident.name id ^ ".") sub
          | _ -> [])
      | _ -> [])
    sg

let load_interface ~build_dir cmti_path =
  let abs = Filename.concat build_dir cmti_path in
  match Mutex.protect read_mutex (fun () -> Cmt_format.read_cmt abs) with
  | exception _ -> None
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Interface tsig ->
          Some
            ( cmt.Cmt_format.cmt_modname,
              List.sort String.compare
                (exports_of_signature "" tsig.Typedtree.sig_type) )
      | _ -> None)

(* One unit per compilation-unit name: dune may leave both fresh and
   stale spellings around (e.g. a shared test [dune__exe] wrapper); the
   sorted first occurrence wins, deterministically. *)
let dedup units =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun u ->
      if Hashtbl.mem seen u.modname then false
      else begin
        Hashtbl.add seen u.modname ();
        true
      end)
    units
