(** The lint driver: discover, parse, check, filter, render.

    Determinism contract (same as the rest of the repo): the outcome —
    including the rendered bytes — is a pure function of the source
    tree, the rule selection and the allowlist.  File discovery is
    sorted, findings are totally ordered ({!Finding.compare}), and the
    parallel map preserves input order, so [--jobs 1] and [--jobs 8]
    emit identical reports. *)

type outcome = {
  findings : Finding.t list;  (** surviving findings, sorted *)
  suppressed : int;  (** findings removed by the allowlist *)
  files : int;  (** source files scanned *)
  units : int;  (** compiled units analysed by the deep pass (0 = off) *)
  stale : (string * string * int) list;
      (** allow entries (rule, path, lint.allow line) in scope for this
          run that matched no finding *)
  budget_stale : (string * int) list;
      (** [lint.budget] entries (name, line) naming no current [@hot]
          root (empty unless the hotpath pass ran) *)
}

val default_dirs : string list
(** [["bench"; "bin"; "lib"; "test"]] — the linted roots. *)

val load_allow : root:string -> (Allow.t, string) result
(** Read [root/lint.allow] (missing file = empty allowlist). *)

val load_budget : root:string -> (Budget.t, string) result
(** Read [root/lint.budget] (missing file = every [@hot] root budgets
    at zero). *)

val run :
  ?jobs:int ->
  ?rules:string list ->
  ?deep:bool ->
  ?hotpath:bool ->
  ?escape:bool ->
  ?dirs:string list ->
  ?allow:Allow.t ->
  ?budget:Budget.t ->
  root:string ->
  unit ->
  outcome
(** Lint every [.ml]/[.mli] under [root/dir] for [dir] in [dirs]
    (default {!default_dirs}).  [rules] restricts to the given rule
    ids ({!Rules.all} by default; unknown ids raise
    [Invalid_argument]).  [deep] (default false) additionally runs the
    typed interprocedural family ({!Taint} + {!Lockset}); [hotpath]
    (default false) the hot-path performance family ({!Hotpath},
    checked against [budget]); [escape] (default false) the escape
    family ({!Escape}: exception flow, release discipline, sim
    hygiene, with [.cmti] export sets deciding what is public).  Any
    of these flags loads the [.cmt] artefacts dune emitted for the
    tree; the call graph is built once and shared.  [jobs] sizes the
    {!Search_exec.Pool} used to fan files (and cmt units) out across
    domains. *)

val exit_code : ?strict:bool -> outcome -> int
(** The lint exit-code contract (same scheme as the CLI at large):
    0 clean / 1 verified finding / 3 internal — a [parse] or
    [cmt-load] finding means the tree itself could not be analysed.
    With [strict], stale allowlist and budget entries also exit 1.
    (2 — usage — is the argument parser's, not the driver's.) *)

val lint_string :
  ?rules:string list -> ?has_mli:bool -> path:string -> string -> Finding.t list
(** Lint in-memory contents as if read from [path] (root-relative, so
    path-scoped rules apply the same way); no allowlist.  [has_mli]
    (default [true]) feeds the [mli-coverage] rule.  The fixture entry
    point for [test/test_analysis.ml]. *)

val render_text : outcome -> string
(** Table of findings (via {!Search_numerics.Table}) plus a summary
    line. *)

val render_json : outcome -> string
(** [{"files": .., "units": .., "suppressed": .., "findings": [..],
    "stale": [..]}], pretty, trailing newline; findings round-trip
    through {!Finding.of_json}. *)

val render_github : outcome -> string
(** GitHub Actions workflow commands: one
    [::error file=..,line=..,col=..::[rule] message] annotation per
    finding (stale entries as [::warning] on [lint.allow]), then the
    summary line. *)
