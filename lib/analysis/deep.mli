(** Orchestration of the cmt-backed analysis families
    ({!Cmt_loader} → {!Callgraph} → {!Taint} + {!Lockset} under
    [~deep], {!Hotpath} under [~hotpath], {!Escape} under [~escape];
    the call graph is built once and shared). *)

val collect :
  pool:Search_exec.Pool.t ->
  deep:bool ->
  hotpath:bool ->
  escape:bool ->
  audited:(string -> bool) ->
  budget:Budget.t ->
  dirs:string list ->
  root:string ->
  (Finding.t list * int * (string * int) list)
(** Analyse every [.cmt] under the build dir for [root] restricted to
    [dirs]; [audited file] is the taint-barrier predicate (the
    [deep-nondet] allowlist), [budget] the hot-path allocation budget
    ([lint.budget]).  Returns unsorted findings — including [cmt-load]
    failures, which the exit-code contract treats as internal errors —
    the number of units analysed (0 means dune has not built the
    tree), and the stale [lint.budget] entries ([(name, line)]; empty
    when [hotpath] is off).  Byte-identical results at any pool
    size. *)
