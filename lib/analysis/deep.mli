(** Orchestration of the typed, interprocedural analysis family
    ({!Cmt_loader} → {!Callgraph} → {!Taint} + {!Lockset}). *)

val collect :
  pool:Search_exec.Pool.t ->
  audited:(string -> bool) ->
  dirs:string list ->
  root:string ->
  (Finding.t list * int)
(** Analyse every [.cmt] under the build dir for [root] restricted to
    [dirs]; [audited file] is the taint-barrier predicate (the
    [deep-nondet] allowlist).  Returns unsorted findings — including
    [cmt-load] failures, which the exit-code contract treats as
    internal errors — and the number of units analysed (0 means dune
    has not built the tree).  Byte-identical results at any pool
    size. *)
