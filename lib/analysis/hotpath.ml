(* The hot-path performance analysis family: allocation budgets for
   [@hot] roots and an event-loop liveness rule for [@event_loop]
   roots, both interprocedural over the {!Callgraph}.

   Allocation budgets.  A [@hot] def is the root of a kernel the
   raw-speed pass made allocation-free (the adversary's compiled scan,
   the turning-prefix walk, the flat first-visit probe).  The pass
   collects every def reachable from the root through call edges
   ({!Callgraph.hcall}, not plain references — referencing a value does
   not execute it), sums their statically classified allocation sites,
   and compares the total against the root's [lint.budget] entry
   (default 0).  Exceeding the budget yields a [hotpath-alloc] finding
   placed at the offending site, with the full call chain from the
   root as witness: [Turning.compiled_get -> Turning.ensure -> <array
   allocation at lib/strategy/turning.ml:90>].

   Event-loop liveness.  An [@event_loop] def owns a select loop whose
   latency contract dies the moment a blocking call sneaks into a
   handler.  The pass walks the same call edges from the root —
   stopping at [@nonblocking] barriers (audited: nonblocking-fd I/O
   handlers) and at calls that are themselves blocking primitives —
   and flags every reference to a blocking primitive in the reachable
   region as [hotpath-blocking], again with the call chain.  The
   root's own [Unix.select] is exempt: that wait *is* the loop.
   References (not just calls) are scanned so that capturing
   [Unix.sleepf] as a default argument is caught too — exactly the
   retry-backoff bug this rule exists to keep out.

   Determinism: roots are visited in sorted def order, the traversal
   is breadth-first over deterministically ordered call lists, so
   findings are byte-identical at any job count. *)

let blocking_names =
  [
    "Unix.sleep"; "Unix.sleepf"; "Thread.delay";
    "Unix.read"; "Unix.write"; "Unix.write_substring"; "Unix.single_write";
    "Unix.select"; "Unix.wait"; "Unix.waitpid"; "Unix.system";
    "Mutex.lock"; "Condition.wait"; "Pool.await";
  ]

let human name = Callgraph.display_name (Callgraph.strip_stdlib name)
let is_blocking name = List.mem (human name) blocking_names

(* Breadth-first reachability over call edges from [root], entering
   only defs admitted by [enter].  Returns the visited names in
   discovery order and the parent table for witness chains. *)
let reach g (root : Callgraph.def) ~enter =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace visited root.Callgraph.name ();
  let order = ref [ root.Callgraph.name ] in
  let frontier = ref [ root ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun (d : Callgraph.def) ->
        List.iter
          (fun (h : Callgraph.hcall) ->
            let t = h.Callgraph.hname in
            if not (Hashtbl.mem visited t) then
              match Callgraph.find_def g t with
              | Some td when enter td ->
                  Hashtbl.replace visited t ();
                  Hashtbl.replace parent t d.Callgraph.name;
                  order := t :: !order;
                  next := td :: !next
              | _ -> ())
          d.Callgraph.hcalls)
      !frontier;
    frontier := List.rev !next
  done;
  (List.rev !order, parent)

let chain_string parent ~root_name name =
  let rec go n acc fuel =
    if String.equal n root_name || fuel = 0 then n :: acc
    else
      match Hashtbl.find_opt parent n with
      | Some p -> go p (n :: acc) (fuel - 1)
      | None -> n :: acc
  in
  String.concat " -> " (List.map human (go name [] 64))

let hot_roots g =
  List.filter_map
    (fun n ->
      match Callgraph.find_def g n with
      | Some d when d.Callgraph.hot -> Some d
      | _ -> None)
    g.Callgraph.def_order

let loop_roots g =
  List.filter_map
    (fun n ->
      match Callgraph.find_def g n with
      | Some d when d.Callgraph.event_loop -> Some d
      | _ -> None)
    g.Callgraph.def_order

(* ------------------------------------------------------------------ *)
(* allocation budgets                                                  *)

let alloc_findings ~budget g =
  List.filter_map
    (fun (root : Callgraph.def) ->
      let order, parent = reach g root ~enter:(fun _ -> true) in
      let sites =
        List.concat_map
          (fun n ->
            match Callgraph.find_def g n with
            | Some d ->
                List.map (fun a -> (n, d, a)) d.Callgraph.allocs
            | None -> [])
          order
      in
      let count = List.length sites in
      let allowed =
        Option.value
          (Budget.find budget root.Callgraph.display)
          ~default:0
      in
      if count <= allowed then None
      else
        match sites with
        | [] -> None
        | (n, d, a) :: _ ->
            let line = a.Callgraph.aloc.Location.loc_start.Lexing.pos_lnum in
            Some
              (Finding.v ~rule:"hotpath-alloc" ~severity:Finding.Error
                 ~file:d.Callgraph.file ~loc:a.Callgraph.aloc
                 ~suggestion:
                   "remove the allocation from the hot path, or raise the \
                    root's lint.budget entry with a justifying comment"
                 (Printf.sprintf
                    "allocation budget exceeded for %s: %d reachable \
                     site%s, budget %d: %s -> <%s at %s:%d>"
                    root.Callgraph.display count
                    (if count = 1 then "" else "s")
                    allowed
                    (chain_string parent ~root_name:root.Callgraph.name n)
                    (Callgraph.alloc_kind_to_string a.Callgraph.akind)
                    d.Callgraph.file line)))
    (hot_roots g)

(* ------------------------------------------------------------------ *)
(* event-loop liveness                                                 *)

let blocking_findings g =
  List.concat_map
    (fun (root : Callgraph.def) ->
      let order, parent =
        reach g root ~enter:(fun (d : Callgraph.def) ->
            (not d.Callgraph.nonblocking)
            && not (is_blocking d.Callgraph.name))
      in
      List.concat_map
        (fun n ->
          match Callgraph.find_def g n with
          | None -> []
          | Some d ->
              let is_root = String.equal n root.Callgraph.name in
              List.filter_map
                (fun (r : Callgraph.reference) ->
                  let disp = human r.Callgraph.target in
                  if
                    List.mem disp blocking_names
                    && not (is_root && String.equal disp "Unix.select")
                  then
                    Some
                      (Finding.v ~rule:"hotpath-blocking"
                         ~severity:Finding.Error ~file:d.Callgraph.file
                         ~loc:r.Callgraph.rloc
                         ~suggestion:
                           "make the operation nonblocking, move it off the \
                            loop thread, or audit the handler with \
                            [@nonblocking] / a lint.allow entry"
                         (Printf.sprintf
                            "blocking call reaches the event loop: %s -> %s"
                            (chain_string parent
                               ~root_name:root.Callgraph.name n)
                            disp))
                  else None)
                d.Callgraph.refs)
        order)
    (loop_roots g)

let findings ~budget g =
  alloc_findings ~budget g @ blocking_findings g

let stale_budget ~budget g =
  Budget.stale budget
    ~roots:(List.map (fun (d : Callgraph.def) -> d.Callgraph.display) (hot_roots g))
