module Json = Search_numerics.Json

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  suggestion : string option;
}

let v ~rule ~severity ~file ?suggestion ~loc message =
  let pos = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
    suggestion;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

let to_json t =
  Json.Assoc
    ([
       ("rule", Json.String t.rule);
       ("severity", Json.String (severity_to_string t.severity));
       ("file", Json.String t.file);
       ("line", Json.Number (float_of_int t.line));
       ("col", Json.Number (float_of_int t.col));
       ("message", Json.String t.message);
     ]
    @
    match t.suggestion with
    | None -> []
    | Some s -> [ ("suggestion", Json.String s) ])

let of_json j =
  let str name =
    match Option.bind (Json.member name j) Json.to_string_value with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let ( let* ) = Result.bind in
  let* rule = str "rule" in
  let* sev = str "severity" in
  let* severity =
    match severity_of_string sev with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown severity %S" sev)
  in
  let* file = str "file" in
  let* line = int "line" in
  let* col = int "col" in
  let* message = str "message" in
  let suggestion = Option.bind (Json.member "suggestion" j) Json.to_string_value in
  Ok { rule; severity; file; line; col; message; suggestion }

let pp ppf t =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message

(* GitHub Actions workflow-command data escaping (the documented
   %-encoding).  One escaper for every renderer that emits ::error /
   ::warning lines, so a finding message with '%' or newlines cannot
   corrupt an annotation in one renderer and survive in another. *)
let github_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\r' -> Buffer.add_string buf "%0D"
      | '\n' -> Buffer.add_string buf "%0A"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let github_unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if i + 2 < n && s.[i] = '%' then (
        match String.sub s i 3 with
        | "%25" -> Buffer.add_char buf '%'; go (i + 3)
        | "%0D" -> Buffer.add_char buf '\r'; go (i + 3)
        | "%0A" -> Buffer.add_char buf '\n'; go (i + 3)
        | _ -> Buffer.add_char buf s.[i]; go (i + 1))
      else (
        Buffer.add_char buf s.[i];
        go (i + 1))
  in
  go 0;
  Buffer.contents buf
