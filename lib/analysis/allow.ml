type entry = { rule : string; path : string; line : int }
type t = { items : entry list }

let empty = { items = [] }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok { items = List.rev acc }
    | line :: rest -> (
        match split_words (strip_comment line) with
        | [] -> go (lineno + 1) acc rest
        | [ rule; path ] ->
            go (lineno + 1) ({ rule; path; line = lineno } :: acc) rest
        | _ ->
            Error
              (Printf.sprintf
                 "lint.allow:%d: expected '<rule-id> <path>' (plus optional \
                  # comment), got %S"
                 lineno (String.trim line)))
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents

let permits t ~rule ~file =
  List.exists
    (fun e -> (e.rule = "*" || String.equal e.rule rule) && String.equal e.path file)
    t.items

let entries t = List.map (fun e -> (e.rule, e.path)) t.items
let entries_located t = List.map (fun e -> (e.rule, e.path, e.line)) t.items

(* An entry is stale when its rule was in scope for this run (syntactic
   rules always; deep/hotpath families only when their pass ran) and it
   matched no finding, kept or suppressed.  One definition for every
   entry family so the three staleness reports cannot drift. *)
let stale t ~in_scope ~findings =
  List.filter
    (fun (rule, path, _line) ->
      in_scope rule
      && not
           (List.exists
              (fun f ->
                (String.equal rule "*" || String.equal rule f.Finding.rule)
                && String.equal path f.Finding.file)
              findings))
    (entries_located t)
