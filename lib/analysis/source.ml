type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

type t = { rel_path : string; ast : ast }

let skip_dir name =
  name = "_build" || name = "_opam"
  || (String.length name > 0 && name.[0] = '.')

let is_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let discover ~root ~dirs =
  let acc = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    match Sys.is_directory abs with
    | exception Sys_error _ -> ()
    | false -> if is_source rel then acc := rel :: !acc
    | true ->
        if not (skip_dir (Filename.basename rel)) then
          Array.iter
            (fun entry -> walk (rel ^ "/" ^ entry))
            (let entries = Sys.readdir abs in
             Array.sort String.compare entries;
             entries)
  in
  List.iter
    (fun dir -> if Sys.file_exists (Filename.concat root dir) then walk dir)
    dirs;
  List.sort String.compare !acc

(* The compiler's lexer and error machinery use global state
   (Location.input_name, the lexer's comment accumulator), so parsing
   is serialised under one mutex; rule walking — the pure Parsetree
   traversal — runs in parallel.  Files are small, the parse is a few
   hundred microseconds each: correctness over micro-parallelism. *)
let parse_mutex = Mutex.create ()

let parse_contents ~rel_path contents =
  Mutex.protect parse_mutex @@ fun () ->
  Location.input_name := rel_path;
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf rel_path;
  match
    if Filename.check_suffix rel_path ".mli" then
      Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  with
  | ast -> Ok { rel_path; ast }
  | exception exn ->
      let message, loc =
        match Location.error_of_exn exn with
        | Some (`Ok (report : Location.report)) ->
            ( Format.asprintf "@[%t@]" report.Location.main.Location.txt,
              report.Location.main.Location.loc )
        | _ -> (Printexc.to_string exn, Location.in_file rel_path)
      in
      Error
        (Finding.v ~rule:"parse" ~severity:Finding.Error ~file:rel_path ~loc
           (Printf.sprintf "syntax error: %s" (String.trim message)))

let parse_string ~rel_path contents = parse_contents ~rel_path contents

let parse_file ~root rel_path =
  let abs = Filename.concat root rel_path in
  match
    let ic = open_in_bin abs in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      Error
        (Finding.v ~rule:"parse" ~severity:Finding.Error ~file:rel_path
           ~loc:(Location.in_file rel_path)
           (Printf.sprintf "cannot read file: %s" msg))
  | contents -> parse_contents ~rel_path contents
