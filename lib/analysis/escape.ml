(* The escape analysis family: exception flow, resource-release
   discipline and simulation hygiene, all interprocedural over the
   {!Callgraph}.

   Exception flow ([escape-exn]).  Per def, the may-raise set is the
   least fixpoint of

     raises(d)  ∪  { e ∈ may_raise(callee) | e not caught at the call }

   where [raises d] are the def's own raise sites minus those with an
   unguarded handler lexically in scope, and call sites subtract the
   callee exceptions their own handler context catches (["*"] is a
   catch-all).  The lattice is the powerset of exception-constructor
   names — payload-insensitive, name-level.  A finding fires when a
   *boundary* def — one exported through a public [lib/] [.mli]
   surface, or carrying [[@pool_entry]]/[[@event_loop]] — may raise
   anything outside the sanctioned set: [Search_error.Error] (the one
   structured taxonomy callers are asked to handle) plus
   [Invalid_argument]/[Assert_failure] (the documented fail-fast
   precondition idiom; [Search_error.classify] folds both into the
   taxonomy at every supervision boundary).  The witness is the
   shortest call chain from the boundary to the raise site, rebuilt
   from the [Via] back-pointers the synchronized-round fixpoint leaves
   behind — same shape as the taint chains.

   Release discipline ([escape-leak]).  A def that references an
   acquisition primitive ([Unix.socket]/[openfile]/[accept],
   [open_in*]/[open_out*], [Mutex.lock], [Lockfile.acquire]) must
   either carry the audited [[@releases]] attribute or visibly release
   in the same def: a matching releaser *and* a [Fun.protect]/
   [Mutex.protect] wrapper, so the release runs on raising paths too.
   The dominance check is function-granular by design — the analysis
   does not prove the [~finally] closes that very fd, it enforces the
   *shape* ([with_]-wrapper or audited transfer) every acquisition in
   this tree is expected to take.  Scope: [lib/] and [bin/] (tests and
   benches may leak into process teardown).

   Simulation hygiene ([escape-realio]).  Everything reachable through
   call edges from [lib/dst] (the deterministic-simulation bottle) and
   [lib/serve] (the code that must stay portable across the [Runtime]
   ops seam) must not reference real Unix socket/clock/sleep
   primitives.  The traversal stops at [[@real_io]]-audited barriers —
   the production ops record constructors in [runtime.ml] — and flags
   every other reachable reference with the full call chain, exactly
   like the hot-path blocking rule.  References, not just calls, so a
   real primitive captured as a default argument is caught too.

   Determinism: defs are visited in sorted order, the fixpoint runs in
   synchronized rounds over sorted names, traversals are breadth-first
   over deterministically ordered call lists — findings are
   byte-identical at any job count. *)

module SM = Map.Make (String)

let human name = Callgraph.display_name (Callgraph.strip_stdlib name)

let rule_ids = [ "escape-exn"; "escape-leak"; "escape-realio" ]

(* ------------------------------------------------------------------ *)
(* exception flow                                                      *)

let sanctioned_escapes =
  [ "Search_error.Error"; "Invalid_argument"; "Assert_failure" ]

type origin =
  | Direct of Location.t  (** raise site in this def *)
  | Via of string * Location.t  (** callee propagating it, call site *)

let caught_by ctx e =
  List.exists
    (fun c ->
      let c = human c in
      String.equal c "*" || String.equal c e)
    ctx

(* def name -> exception display name -> first (shortest) origin *)
let compute_may (g : Callgraph.t) =
  let may : (string, origin SM.t) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun n ->
      match Callgraph.find_def g n with
      | None -> ()
      | Some d ->
          let m =
            List.fold_left
              (fun m (x : Callgraph.raise_site) ->
                let e = human x.Callgraph.exn in
                if caught_by x.Callgraph.xcaught e || SM.mem e m then m
                else SM.add e (Direct x.Callgraph.xloc) m)
              SM.empty d.Callgraph.raises
          in
          Hashtbl.replace may n m)
    g.Callgraph.def_order;
  let changed = ref true in
  while !changed do
    changed := false;
    (* synchronized rounds: read the previous round's state everywhere,
       apply the additions after the sweep — chains come out shortest
       and the visit order cannot influence the result *)
    let staged = ref [] in
    List.iter
      (fun n ->
        match Callgraph.find_def g n with
        | None -> ()
        | Some d ->
            let cur =
              Option.value (Hashtbl.find_opt may n) ~default:SM.empty
            in
            let add =
              List.fold_left
                (fun add (h : Callgraph.hcall) ->
                  match Hashtbl.find_opt may h.Callgraph.hname with
                  | None -> add
                  | Some cm ->
                      SM.fold
                        (fun e _ add ->
                          if
                            caught_by h.Callgraph.hcaught e
                            || SM.mem e cur || SM.mem e add
                          then add
                          else
                            SM.add e
                              (Via (h.Callgraph.hname, h.Callgraph.hloc))
                              add)
                        cm add)
                SM.empty d.Callgraph.hcalls
            in
            if not (SM.is_empty add) then staged := (n, add) :: !staged)
      g.Callgraph.def_order;
    List.iter
      (fun (n, add) ->
        changed := true;
        let cur = Option.value (Hashtbl.find_opt may n) ~default:SM.empty in
        Hashtbl.replace may n (SM.union (fun _ a _ -> Some a) cur add))
      !staged
  done;
  may

(* Follow the [Via] back-pointers from [n] down to the raise site.
   Returns the chain names (boundary first) and the raising def. *)
let chain_to_raise may n e =
  let rec go n acc fuel =
    if fuel = 0 then None
    else
      match Hashtbl.find_opt may n with
      | None -> None
      | Some m -> (
          match SM.find_opt e m with
          | None -> None
          | Some (Direct loc) -> Some (List.rev (n :: acc), n, loc)
          | Some (Via (callee, _)) -> go callee (n :: acc) (fuel - 1))
  in
  go n [] 64

let is_boundary ~exports (d : Callgraph.def) =
  if d.Callgraph.pool_entry then Some "[@pool_entry] root"
  else if d.Callgraph.event_loop then Some "[@event_loop] root"
  else if
    String.starts_with ~prefix:"lib/" d.Callgraph.file
    && not (String.ends_with ~suffix:".(init)" d.Callgraph.name)
  then
    let name = d.Callgraph.name in
    let public =
      match String.index_opt name '.' with
      | None -> false
      | Some i -> (
          let unit = String.sub name 0 i in
          let rest = String.sub name (i + 1) (String.length name - i - 1) in
          match Hashtbl.find_opt exports unit with
          | Some set -> List.mem rest set
          | None -> true (* no interface: the whole unit is exported *))
    in
    if public then Some "public" else None
  else None

let exn_findings ~exports may g =
  List.concat_map
    (fun n ->
      match Callgraph.find_def g n with
      | None -> []
      | Some d -> (
          match is_boundary ~exports d with
          | None -> []
          | Some ctx -> (
              match Hashtbl.find_opt may n with
              | None -> []
              | Some m ->
                  List.filter_map
                    (fun (e, _) ->
                      if List.mem e sanctioned_escapes then None
                      else
                        match chain_to_raise may n e with
                        | None -> None
                        | Some (names, raiser, xloc) ->
                            let rd = Callgraph.find_def g raiser in
                            let file =
                              match rd with
                              | Some rd -> rd.Callgraph.file
                              | None -> d.Callgraph.file
                            in
                            let line =
                              xloc.Location.loc_start.Lexing.pos_lnum
                            in
                            let shown =
                              if String.equal e "*" then
                                "a statically unknown exception"
                              else "exception " ^ e
                            in
                            Some
                              (Finding.v ~rule:"escape-exn"
                                 ~severity:Finding.Error ~file ~loc:xloc
                                 ~suggestion:
                                   "raise Search_error.Error \
                                    (Search_error.raise_ / invalid) instead, \
                                    handle it before the boundary, or audit \
                                    with a lint.allow entry"
                                 (Printf.sprintf
                                    "%s escapes %s %s: %s -> <raise %s at \
                                     %s:%d>"
                                    shown ctx d.Callgraph.display
                                    (String.concat " -> "
                                       (List.map human names))
                                    e file line)))
                    (SM.bindings m))))
    g.Callgraph.def_order

(* ------------------------------------------------------------------ *)
(* release discipline                                                  *)

let acquirers =
  [
    ("Unix.socket", `Fd); ("Unix.openfile", `Fd); ("Unix.accept", `Fd);
    ("Unix.pipe", `Fd); ("Unix.socketpair", `Fd);
    ("open_in", `Chan); ("open_in_bin", `Chan); ("open_in_gen", `Chan);
    ("open_out", `Chan); ("open_out_bin", `Chan); ("open_out_gen", `Chan);
    ("Mutex.lock", `Lock);
    ("Lockfile.acquire", `Lockfile);
  ]

let chan_closers =
  [ "close_in"; "close_in_noerr"; "close_out"; "close_out_noerr" ]

(* A descriptor wrapped by [in_channel_of_descr]/[out_channel_of_descr]
   is owned by the channel, so the channel closers release the fd too. *)
let releasers = function
  | `Fd -> "Unix.close" :: chan_closers
  | `Chan -> chan_closers
  | `Lock -> [ "Mutex.unlock" ]
  | `Lockfile -> [ "Lockfile.release" ]

let class_name = function
  | `Fd -> "file descriptor"
  | `Chan -> "channel"
  | `Lock -> "mutex"
  | `Lockfile -> "lockfile"

let protect_wrappers = [ "Fun.protect"; "Mutex.protect" ]

let leak_findings (g : Callgraph.t) =
  List.concat_map
    (fun n ->
      match Callgraph.find_def g n with
      | None -> []
      | Some d ->
          if
            not
              (String.starts_with ~prefix:"lib/" d.Callgraph.file
              || String.starts_with ~prefix:"bin/" d.Callgraph.file)
            || d.Callgraph.releases
          then []
          else
            let refs = List.map (fun (r : Callgraph.reference) -> r) d.Callgraph.refs in
            let has names =
              List.exists
                (fun (r : Callgraph.reference) ->
                  List.mem (human r.Callgraph.target) names)
                refs
            in
            let protected_ = has protect_wrappers in
            List.filter_map
              (fun (r : Callgraph.reference) ->
                match List.assoc_opt (human r.Callgraph.target) acquirers with
                | None -> None
                | Some cls ->
                    if protected_ && has (releasers cls) then None
                    else
                      Some
                        (Finding.v ~rule:"escape-leak" ~severity:Finding.Error
                           ~file:d.Callgraph.file ~loc:r.Callgraph.rloc
                           ~suggestion:
                             "release in Fun.protect ~finally (or a \
                              Mutex.protect body), or audit the wrapper \
                              with [@releases]"
                           (Printf.sprintf
                              "%s acquired by %s in %s is not released on \
                               raising paths: no %s under a protect wrapper \
                               and no [@releases] audit"
                              (class_name cls)
                              (human r.Callgraph.target)
                              d.Callgraph.display
                              (String.concat "/" (releasers cls)))))
              refs)
    g.Callgraph.def_order

(* ------------------------------------------------------------------ *)
(* simulation hygiene                                                  *)

let realio_names =
  [
    "Unix.socket"; "Unix.socketpair"; "Unix.connect"; "Unix.bind";
    "Unix.listen"; "Unix.accept"; "Unix.select"; "Unix.read"; "Unix.write";
    "Unix.write_substring"; "Unix.single_write"; "Unix.recv"; "Unix.send";
    "Unix.close"; "Unix.shutdown"; "Unix.setsockopt"; "Unix.set_nonblock";
    "Unix.sleep"; "Unix.sleepf"; "Thread.delay";
    "Unix.gettimeofday"; "Unix.time"; "Sys.time";
  ]

let sim_dirs = [ "lib/dst/"; "lib/serve/" ]

let sim_root (d : Callgraph.def) =
  List.exists (fun p -> String.starts_with ~prefix:p d.Callgraph.file) sim_dirs
  && not d.Callgraph.real_io

(* breadth-first over call edges, like the hot-path traversal *)
let reach g (root : Callgraph.def) ~enter =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.replace visited root.Callgraph.name ();
  let order = ref [ root.Callgraph.name ] in
  let frontier = ref [ root ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun (d : Callgraph.def) ->
        List.iter
          (fun (h : Callgraph.hcall) ->
            let t = h.Callgraph.hname in
            if not (Hashtbl.mem visited t) then
              match Callgraph.find_def g t with
              | Some td when enter td ->
                  Hashtbl.replace visited t ();
                  Hashtbl.replace parent t d.Callgraph.name;
                  order := t :: !order;
                  next := td :: !next
              | _ -> ())
          d.Callgraph.hcalls)
      !frontier;
    frontier := List.rev !next
  done;
  (List.rev !order, parent)

let chain_string parent ~root_name name =
  let rec go n acc fuel =
    if String.equal n root_name || fuel = 0 then n :: acc
    else
      match Hashtbl.find_opt parent n with
      | Some p -> go p (n :: acc) (fuel - 1)
      | None -> n :: acc
  in
  String.concat " -> " (List.map human (go name [] 64))

let realio_findings (g : Callgraph.t) =
  let roots =
    List.filter_map
      (fun n ->
        match Callgraph.find_def g n with
        | Some d when sim_root d -> Some d
        | _ -> None)
      g.Callgraph.def_order
  in
  (* a def only ever yields the same primitive findings whatever root
     reached it; report each (def, ref) once, from the first root in
     sorted order that reaches it *)
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.concat_map
    (fun (root : Callgraph.def) ->
      let order, parent =
        reach g root ~enter:(fun (d : Callgraph.def) ->
            not d.Callgraph.real_io)
      in
      List.concat_map
        (fun n ->
          match Callgraph.find_def g n with
          | None -> []
          | Some d ->
              if Hashtbl.mem reported n then []
              else begin
                Hashtbl.replace reported n ();
                List.filter_map
                  (fun (r : Callgraph.reference) ->
                    let disp = human r.Callgraph.target in
                    if List.mem disp realio_names then
                      Some
                        (Finding.v ~rule:"escape-realio"
                           ~severity:Finding.Error ~file:d.Callgraph.file
                           ~loc:r.Callgraph.rloc
                           ~suggestion:
                             "route the effect through the Runtime ops \
                              record / the simulated clock, or audit the \
                              barrier with [@real_io]"
                           (Printf.sprintf
                              "real I/O primitive reachable from the \
                               simulation seam: %s -> %s"
                              (chain_string parent
                                 ~root_name:root.Callgraph.name n)
                              disp))
                    else None)
                  d.Callgraph.refs
              end)
        order)
    roots

(* ------------------------------------------------------------------ *)

let findings ~exports (g : Callgraph.t) =
  let export_tbl = Hashtbl.create 64 in
  List.iter
    (fun (unit, names) ->
      if not (Hashtbl.mem export_tbl unit) then
        Hashtbl.add export_tbl unit names)
    exports;
  let may = compute_may g in
  exn_findings ~exports:export_tbl may g
  @ leak_findings g @ realio_findings g
