(** Interprocedural nondeterminism taint over the {!Callgraph}.

    A def is tainted when it reaches [Random.*], [Sys.time],
    [Unix.gettimeofday]/[time]/[times], [Hashtbl.hash]/[seeded_hash]/
    [randomize] or [Domain.self] through any chain of top-level calls.
    Every tainted def yields one [deep-nondet] finding carrying a
    shortest source→sink chain.

    [audited file] marks taint barriers (the audited-sink contract in
    lint.allow): defs in audited files are still reported — so the
    allowlist entry that suppresses them registers as used — but their
    callers stay clean. *)

val is_source : string -> bool
(** Whether a canonical name is a nondeterminism source. *)

val findings : audited:(string -> bool) -> Callgraph.t -> Finding.t list
(** Sorted by graph def order; the driver re-sorts and dedups. *)
