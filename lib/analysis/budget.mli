(** The allocation budget file ([lint.budget]) for [@hot] roots.

    Format: one ['<display-name> <count>'] line per audited root
    (['#'] comments allowed).  The count is the number of statically
    reachable allocation sites {!Hotpath} tolerates for that root;
    roots without an entry default to 0 — zero-allocation is the
    contract, nonzero budgets are the audited exception. *)

type entry = { bname : string; bcount : int; bline : int }
type t

val empty : t

val parse : string -> (t, string) result
(** Parse file contents; the error carries [lint.budget:<line>]. *)

val load : string -> (t, string) result
(** [Ok empty] when the file does not exist. *)

val find : t -> string -> int option
(** Budget for a root, by display name. *)

val entries_located : t -> (string * int * int) list
(** [(name, count, line)] for every entry, in file order. *)

val stale : t -> roots:string list -> (string * int) list
(** Entries naming no current [@hot] root: [(name, line)]. *)
