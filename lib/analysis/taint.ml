(* Interprocedural nondeterminism taint.

   Sources are the same clocks and PRNG entry points the syntactic
   [nondet] rule knows, but here a def is tainted when it *reaches* one
   through any chain of top-level calls — the pure-looking helper three
   calls away from [Random.int] gets reported too, with the full chain.

   Audited files (the [deep-nondet] entries in lint.allow: metrics,
   budget, lockfile) are taint *barriers*: their defs still produce
   findings — which the allowlist then suppresses, keeping the entries
   visibly in use — but taint does not propagate through them to their
   callers.  That is the audited-sink contract: a caller of
   [Metrics.record] is not nondeterministic because the metrics file
   timestamps itself.

   Propagation runs in synchronized rounds (breadth-first over the call
   graph), so each tainted def's recorded witness is a shortest chain
   and the result is independent of traversal order. *)

let source_names =
  [
    "Sys.time";
    "Unix.gettimeofday"; "Unix.time"; "Unix.times";
    "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.randomize";
    "Domain.self";
  ]

let is_source name =
  let n = Callgraph.strip_stdlib name in
  String.starts_with ~prefix:"Random." n || List.mem n source_names

type mark =
  | Direct of { src : string; dloc : Location.t }
  | Via of { callee : string; vloc : Location.t }

let findings ~audited (g : Callgraph.t) =
  let marks : (string, mark) Hashtbl.t = Hashtbl.create 64 in
  let def name = Callgraph.find_def g name in
  let audited_def name =
    match def name with
    | Some d -> audited d.Callgraph.file
    | None -> false
  in
  (* round 0: defs referencing a source directly *)
  List.iter
    (fun name ->
      match def name with
      | None -> ()
      | Some d -> (
          match
            List.find_opt
              (fun (r : Callgraph.reference) -> is_source r.target)
              d.Callgraph.refs
          with
          | Some r ->
              Hashtbl.replace marks name
                (Direct { src = r.Callgraph.target; dloc = r.Callgraph.rloc })
          | None -> ()))
    g.Callgraph.def_order;
  (* later rounds: defs referencing an already-tainted, non-audited def.
     Additions are collected against the previous round's marks, so the
     fixpoint is breadth-first and order-independent. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let additions =
      List.filter_map
        (fun name ->
          if Hashtbl.mem marks name then None
          else
            match def name with
            | None -> None
            | Some d ->
                List.find_map
                  (fun (r : Callgraph.reference) ->
                    if
                      Hashtbl.mem marks r.Callgraph.target
                      && not (audited_def r.Callgraph.target)
                    then
                      Some
                        ( name,
                          Via
                            {
                              callee = r.Callgraph.target;
                              vloc = r.Callgraph.rloc;
                            } )
                    else None)
                  d.Callgraph.refs)
        g.Callgraph.def_order
    in
    List.iter
      (fun (name, mark) ->
        changed := true;
        Hashtbl.replace marks name mark)
      additions
  done;
  let rec chain_of name fuel =
    let disp = Callgraph.display_name (Callgraph.strip_stdlib name) in
    if fuel = 0 then [ disp; "..." ]
    else
      match Hashtbl.find_opt marks name with
      | Some (Direct { src; _ }) ->
          [ disp; Callgraph.strip_stdlib src ]
      | Some (Via { callee; _ }) -> disp :: chain_of callee (fuel - 1)
      | None -> [ disp ]
  in
  List.filter_map
    (fun name ->
      match (Hashtbl.find_opt marks name, def name) with
      | Some mark, Some d ->
          let loc =
            match mark with
            | Direct { dloc; _ } -> dloc
            | Via { vloc; _ } -> vloc
          in
          Some
            (Finding.v ~rule:"deep-nondet" ~severity:Finding.Error
               ~file:d.Callgraph.file ~loc
               ~suggestion:
                 "thread an explicit Prng.t / clock through, or audit the \
                  file under deep-nondet in lint.allow"
               (Printf.sprintf "nondeterminism reaches %s: %s"
                  d.Callgraph.display
                  (String.concat " -> " (chain_of name 12))))
      | _ -> None)
    g.Callgraph.def_order
