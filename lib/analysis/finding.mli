(** One structured lint finding.

    Findings are the linter's only currency: rules produce them, the
    allowlist filters them, the renderers ({!Driver.render_text},
    {!Driver.render_json}) print them.  A finding is a plain record so
    that the JSON round-trip is exact and the sort order is total —
    both are load-bearing for the determinism contract (`--jobs 1` and
    `--jobs 4` must emit byte-identical reports). *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["poly-compare"] *)
  severity : severity;
  file : string;  (** path relative to the lint root, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler locations *)
  message : string;
  suggestion : string option;  (** how to fix, when the rule knows *)
}

val v :
  rule:string ->
  severity:severity ->
  file:string ->
  ?suggestion:string ->
  loc:Location.t ->
  string ->
  t
(** Build a finding at the start of [loc]. *)

val compare : t -> t -> int
(** Total order: file, line, col, rule, message.  Independent of
    discovery or scheduling order. *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val to_json : t -> Search_numerics.Json.t
val of_json : Search_numerics.Json.t -> (t, string) result
(** Exact inverses of each other. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [rule] message] on one line. *)

val github_escape : string -> string
(** The GitHub Actions workflow-command data encoding ([%] → [%25],
    [CR] → [%0D], [LF] → [%0A]) — the one escaper every [--format
    github] renderer goes through. *)

val github_unescape : string -> string
(** Exact inverse of {!github_escape} on its image. *)
