(* Per-unit def/use extraction over the Typedtree, and the global,
   alias-resolved call graph the deep passes run on.

   Names.  Every entity gets one canonical dotted name rooted at its
   compilation unit: the function [map] in [lib/exec/supervise.ml] is
   ["Search_exec__Supervise.map"].  References are canonicalised the
   same way — a use spelled [Pool.async] types as the path
   [Search_exec.Pool.async], and the wrapper unit's alias table
   (harvested from the [search_exec] cmt dune generates) rewrites it to
   ["Search_exec__Pool.async"], the def's own name.  Local [module X =
   ...] aliases are resolved through the unit's own top-level items.
   References that do not reach a top-level entity (function arguments,
   let-bound locals) canonicalise to [None] and drop out: the graph is
   deliberately at top-level-definition granularity.

   Context.  Each reference and mutation is recorded together with the
   list of top-level mutexes held at that program point — maintained by
   walking into the closure argument of [Mutex.protect m (fun () ->
   ...)] (the only locking idiom the lock-discipline rule admits) —
   which is exactly what the lockset pass needs. *)

type reference = { target : string; rloc : Location.t; rheld : string list }

type mutation = {
  cell : string;
  via : string;  (** the mutator applied, e.g. [":="] or ["Hashtbl.replace"] *)
  mloc : Location.t;
  mheld : string list;
}

type protect_event = {
  lock : string;
  ploc : Location.t;
  outer : string list;  (** locks already held when this one is taken *)
}

type cell_kind = Ref | Table | Container | Atomic

type cell = {
  cell_name : string;
  kind : cell_kind;
  cell_file : string;
  cell_loc : Location.t;
}

type def = {
  name : string;
  display : string;
  file : string;
  dloc : Location.t;
  refs : reference list;
  mutations : mutation list;
  protects : protect_event list;
  pool_entry : bool;
}

type summary = {
  unit_name : string;
  unit_file : string option;
  defs : def list;
  cells : cell list;
  mutexes : (string * Location.t) list;
  aliases : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* small helpers                                                       *)

let strip_stdlib name =
  match String.index_opt name '.' with
  | Some 6 when String.starts_with ~prefix:"Stdlib." name ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

(* "Search_exec__Pool.async" -> "Pool.async"; the unit-name mangling is
   a dune implementation detail humans should not have to read. *)
let display_name name =
  match String.index_opt name '.' with
  | None -> name
  | Some i ->
      let head = String.sub name 0 i in
      let rest = String.sub name i (String.length name - i) in
      let rec last_sep from acc =
        match String.index_from_opt head from '_' with
        | Some j when j + 1 < String.length head && head.[j + 1] = '_' ->
            last_sep (j + 2) (Some (j + 2))
        | Some j -> last_sep (j + 1) acc
        | None -> acc
      in
      let head =
        match last_sep 0 None with
        | Some j -> String.sub head j (String.length head - j)
        | None -> head
      in
      head ^ rest

(* Write-mutators on the tracked cell families, keyed by their
   Stdlib-stripped canonical name.  Reads need no table: any reference
   to a cell is recorded as a plain use by the generic walk. *)
let write_mutators =
  [
    ":="; "incr"; "decr";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace"; "Hashtbl.add_seq";
    "Hashtbl.replace_seq";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.take_opt";
    "Queue.clear"; "Queue.transfer"; "Queue.add_seq";
    "Stack.push"; "Stack.pop"; "Stack.pop_opt"; "Stack.clear"; "Stack.drain";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_subbytes"; "Buffer.add_buffer";
    "Buffer.add_channel"; "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
    "Array.set"; "Array.fill"; "Array.blit"; "Array.sort"; "Array.unsafe_set";
    "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
  ]

let cell_ctor = function
  | "ref" -> Some Ref
  | "Hashtbl.create" -> Some Table
  | "Atomic.make" -> Some Atomic
  | "Queue.create" | "Stack.create" | "Buffer.create" | "Dynarray.create"
  | "Array.make" | "Array.init" | "Array.create_float" ->
      Some Container
  | _ -> None

(* ------------------------------------------------------------------ *)
(* per-unit extraction                                                 *)

type acc = {
  mutable a_refs : reference list;
  mutable a_mutations : mutation list;
  mutable a_protects : protect_event list;
}

let empty_summary u =
  {
    unit_name = u.Cmt_loader.modname;
    unit_file = u.Cmt_loader.source;
    defs = [];
    cells = [];
    mutexes = [];
    aliases = [];
  }

let summarize (u : Cmt_loader.unit_info) =
  match u.Cmt_loader.structure with
  | None -> empty_summary u
  | Some st ->
      let unit_name = u.Cmt_loader.modname in
      let file = Option.value u.Cmt_loader.source ~default:u.Cmt_loader.cmt_path in
      (* top-level idents of this unit, by stamp: values and modules *)
      let locals : (Ident.t * string) list ref = ref [] in
      let bind id canonical = locals := (id, canonical) :: !locals in
      let lookup id =
        List.find_map
          (fun (i, c) -> if Ident.same i id then Some c else None)
          !locals
      in
      let rec canon = function
        | Path.Pident id ->
            if Ident.global id then Some (Ident.name id) else lookup id
        | Path.Pdot (p, s) -> Option.map (fun b -> b ^ "." ^ s) (canon p)
        | Path.Papply _ | Path.Pextra_ty _ -> None
      in
      let aliases = ref [] in
      let cells = ref [] in
      let mutexes = ref [] in
      let defs = ref [] in
      (* the synthetic def collecting top-level effects: [let () = ...]
         and [Tstr_eval] items — the natural roots of test binaries *)
      let init_acc = ref None in
      let init_name = unit_name ^ ".(init)" in
      let fresh_acc () = { a_refs = []; a_mutations = []; a_protects = [] } in
      let held = ref [] in
      let current = ref (fresh_acc ()) in
      (* expression walker: records references, write-mutations and
         Mutex.protect nesting into [current], in context [held] *)
      let super = Tast_iterator.default_iterator in
      let rec walk_expr self (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match canon p with
            | Some target ->
                !current.a_refs <-
                  { target; rloc = e.Typedtree.exp_loc; rheld = !held }
                  :: !current.a_refs
            | None -> ())
        | Typedtree.Texp_apply (fn, args) ->
            let args =
              List.filter_map (function _, Some a -> Some a | _ -> None) args
            in
            handle_app self fn args
        | Typedtree.Texp_setfield (tgt, _, _, v) ->
            (match tgt.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match canon p with
                | Some cell ->
                    !current.a_mutations <-
                      {
                        cell;
                        via = "<-";
                        mloc = e.Typedtree.exp_loc;
                        mheld = !held;
                      }
                      :: !current.a_mutations
                | None -> ())
            | _ -> ());
            self.Tast_iterator.expr self tgt;
            self.Tast_iterator.expr self v
        | _ -> super.Tast_iterator.expr self e
      and handle_app self fn args =
        match fn.Typedtree.exp_desc with
        (* [Mutex.protect m @@ fun () -> ...] puts the partial
           application [Mutex.protect m] in the function position of
           [@@]; flatten it so the full argument list is visible *)
        | Typedtree.Texp_apply (fn', args') ->
            let args' =
              List.filter_map
                (function _, Some a -> Some a | _ -> None)
                args'
            in
            handle_app self fn' (args' @ args)
        | _ -> (
        let fn_name =
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> canon p
          | _ -> None
        in
        match (Option.map strip_stdlib fn_name, args) with
        (* [f @@ x] and [x |> f] are applications of [f] to [x] *)
        | Some "@@", [ f; x ] -> handle_app self f [ x ]
        | Some "|>", [ x; f ] -> handle_app self f [ x ]
        | Some "Mutex.protect", [ m; body ] ->
            let lock =
              match m.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _) -> canon p
              | _ -> None
            in
            self.Tast_iterator.expr self m;
            (match lock with
            | Some lock ->
                !current.a_protects <-
                  { lock; ploc = m.Typedtree.exp_loc; outer = !held }
                  :: !current.a_protects;
                let saved = !held in
                held := lock :: saved;
                Fun.protect
                  ~finally:(fun () -> held := saved)
                  (fun () -> self.Tast_iterator.expr self body)
            | None -> self.Tast_iterator.expr self body)
        | fn_stripped, _ ->
            (match (fn_stripped, args) with
            | Some via, first :: _ when List.mem via write_mutators -> (
                match first.Typedtree.exp_desc with
                | Typedtree.Texp_ident (p, _, _) -> (
                    match canon p with
                    | Some cell ->
                        !current.a_mutations <-
                          {
                            cell;
                            via;
                            mloc = first.Typedtree.exp_loc;
                            mheld = !held;
                          }
                          :: !current.a_mutations
                    | None -> ())
                | _ -> ())
            | _ -> ());
            self.Tast_iterator.expr self fn;
            List.iter (self.Tast_iterator.expr self) args)
      in
      let it = { super with expr = walk_expr } in
      let finish_def ~prefix ~name ~dloc ~pool_entry acc =
        defs :=
          {
            name = prefix ^ "." ^ name;
            display = display_name (prefix ^ "." ^ name);
            file;
            dloc;
            refs = List.rev acc.a_refs;
            mutations = List.rev acc.a_mutations;
            protects = List.rev acc.a_protects;
            pool_entry;
          }
          :: !defs
      in
      let rec pat_vars (p : Typedtree.pattern) =
        match p.Typedtree.pat_desc with
        | Typedtree.Tpat_var (id, nm) -> [ (id, nm.Location.txt) ]
        | Typedtree.Tpat_alias (sub, id, nm) ->
            (id, nm.Location.txt) :: pat_vars sub
        | Typedtree.Tpat_tuple ps -> List.concat_map pat_vars ps
        | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
        | Typedtree.Tpat_record (fields, _) ->
            List.concat_map (fun (_, _, p) -> pat_vars p) fields
        | _ -> []
      in
      let has_pool_entry attrs =
        List.exists
          (fun (a : Parsetree.attribute) ->
            String.equal a.Parsetree.attr_name.Location.txt "pool_entry")
          attrs
      in
      let rec walk_items prefix items =
        List.iter (walk_item prefix) items
      and walk_item prefix (item : Typedtree.structure_item) =
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match pat_vars vb.Typedtree.vb_pat with
                | [] ->
                    (* [let () = ...]: top-level effects join [(init)] *)
                    let acc =
                      match !init_acc with
                      | Some a -> a
                      | None ->
                          let a = fresh_acc () in
                          init_acc := Some a;
                          a
                    in
                    current := acc;
                    it.Tast_iterator.expr it vb.Typedtree.vb_expr
                | (id0, name0) :: _ as vars ->
                    List.iter
                      (fun (id, nm) -> bind id (prefix ^ "." ^ nm))
                      vars;
                    (match cell_of_binding vb with
                    | Some `Mutex ->
                        mutexes :=
                          (prefix ^ "." ^ name0, vb.Typedtree.vb_loc)
                          :: !mutexes
                    | Some (`Cell kind) ->
                        cells :=
                          {
                            cell_name = prefix ^ "." ^ name0;
                            kind;
                            cell_file = file;
                            cell_loc = vb.Typedtree.vb_loc;
                          }
                          :: !cells
                    | None -> ());
                    ignore id0;
                    let acc = fresh_acc () in
                    current := acc;
                    it.Tast_iterator.expr it vb.Typedtree.vb_expr;
                    finish_def ~prefix ~name:name0 ~dloc:vb.Typedtree.vb_loc
                      ~pool_entry:(has_pool_entry vb.Typedtree.vb_attributes)
                      acc)
              vbs
        | Typedtree.Tstr_eval (e, _) ->
            let acc =
              match !init_acc with
              | Some a -> a
              | None ->
                  let a = fresh_acc () in
                  init_acc := Some a;
                  a
            in
            current := acc;
            it.Tast_iterator.expr it e
        | Typedtree.Tstr_module mb -> walk_module prefix mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
        | Typedtree.Tstr_include incl ->
            walk_module_expr prefix None incl.Typedtree.incl_mod
        | _ -> ()
      and walk_module prefix (mb : Typedtree.module_binding) =
        match mb.Typedtree.mb_id with
        | None -> ()
        | Some id -> walk_module_expr prefix (Some id) mb.Typedtree.mb_expr
      and walk_module_expr prefix id (me : Typedtree.module_expr) =
        match me.Typedtree.mod_desc with
        | Typedtree.Tmod_constraint (inner, _, _, _) ->
            walk_module_expr prefix id inner
        | Typedtree.Tmod_ident (p, _) -> (
            match (id, canon p) with
            | Some id, Some target ->
                bind id target;
                aliases := (prefix ^ "." ^ Ident.name id, target) :: !aliases
            | _ -> ())
        | Typedtree.Tmod_structure sub ->
            let sub_prefix =
              match id with
              | Some id ->
                  let sp = prefix ^ "." ^ Ident.name id in
                  bind id sp;
                  sp
              | None -> prefix
            in
            walk_items sub_prefix sub.Typedtree.str_items
        | _ -> ()
      and cell_of_binding (vb : Typedtree.value_binding) =
        match vb.Typedtree.vb_expr.Typedtree.exp_desc with
        | Typedtree.Texp_apply (fn, _) -> (
            match fn.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match Option.map strip_stdlib (canon p) with
                | Some "Mutex.create" -> Some `Mutex
                | Some ctor ->
                    Option.map (fun k -> `Cell k) (cell_ctor ctor)
                | None -> None)
            | _ -> None)
        | _ -> None
      in
      walk_items unit_name st.Typedtree.str_items;
      (match !init_acc with
      | Some acc ->
          defs :=
            {
              name = init_name;
              display = display_name init_name;
              file;
              dloc = Location.in_file file;
              refs = List.rev acc.a_refs;
              mutations = List.rev acc.a_mutations;
              protects = List.rev acc.a_protects;
              pool_entry = false;
            }
            :: !defs
      | None -> ());
      {
        unit_name;
        unit_file = u.Cmt_loader.source;
        defs = List.rev !defs;
        cells = List.rev !cells;
        mutexes = List.rev !mutexes;
        aliases = List.rev !aliases;
      }

(* ------------------------------------------------------------------ *)
(* the global graph                                                    *)

type t = {
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (** sorted canonical names *)
  cells : (string, cell) Hashtbl.t;
  mutex_locs : (string, Location.t) Hashtbl.t;
  entries : (string, unit) Hashtbl.t;
}

let builtin_entries = [ "Domain.spawn" ]

(* Rewrite the longest known alias prefix of a dotted name, repeatedly:
   [Faulty_search.Params.make] -> [Search_bounds.Params.make] ->
   [Search_bounds__Params.make]. *)
let resolve_with aliases name =
  (* candidate prefix lengths of [name]: the whole of it, then every
     dot position, longest first *)
  let prefix_lengths name =
    let rec dots n acc =
      match String.rindex_opt (String.sub name 0 n) '.' with
      | Some i when i > 0 -> dots i (i :: acc)
      | _ -> acc
    in
    String.length name :: List.rev (dots (String.length name) [])
  in
  let rec go name fuel =
    if fuel = 0 then name
    else
      let hit =
        List.find_map
          (fun n ->
            let p = String.sub name 0 n in
            match Hashtbl.find_opt aliases p with
            | Some target when not (String.equal target p) ->
                Some (target ^ String.sub name n (String.length name - n))
            | _ -> None)
          (prefix_lengths name)
      in
      match hit with None -> name | Some name' -> go name' (fuel - 1)
  in
  go name 16

let build summaries =
  let aliases = Hashtbl.create 256 in
  List.iter
    (fun (s : summary) ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem aliases k) then Hashtbl.add aliases k v)
        s.aliases)
    summaries;
  let resolve = resolve_with aliases in
  let defs = Hashtbl.create 1024 in
  let cells = Hashtbl.create 64 in
  let mutex_locs = Hashtbl.create 16 in
  let entries = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace entries e ()) builtin_entries;
  List.iter
    (fun (s : summary) ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem cells c.cell_name) then
            Hashtbl.add cells c.cell_name c)
        s.cells;
      List.iter
        (fun (m, loc) ->
          if not (Hashtbl.mem mutex_locs m) then Hashtbl.add mutex_locs m loc)
        s.mutexes;
      List.iter
        (fun d ->
          let d =
            {
              d with
              refs =
                List.map
                  (fun r -> { r with target = resolve r.target;
                              rheld = List.map resolve r.rheld })
                  d.refs;
              mutations =
                List.map
                  (fun m -> { m with cell = resolve m.cell;
                              mheld = List.map resolve m.mheld })
                  d.mutations;
              protects =
                List.map
                  (fun p -> { p with lock = resolve p.lock;
                              outer = List.map resolve p.outer })
                  d.protects;
            }
          in
          if not (Hashtbl.mem defs d.name) then Hashtbl.add defs d.name d;
          if d.pool_entry then Hashtbl.replace entries d.name ())
        s.defs)
    summaries;
  let def_order =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) defs [])
  in
  { defs; def_order; cells; mutex_locs; entries }

let find_def t name = Hashtbl.find_opt t.defs name
let is_entry t name = Hashtbl.mem t.entries name || Hashtbl.mem t.entries (strip_stdlib name)
let find_cell t name = Hashtbl.find_opt t.cells name
let mutex_defined t name = Hashtbl.mem t.mutex_locs name
