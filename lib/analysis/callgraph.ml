(* Per-unit def/use extraction over the Typedtree, and the global,
   alias-resolved call graph the deep passes run on.

   Names.  Every entity gets one canonical dotted name rooted at its
   compilation unit: the function [map] in [lib/exec/supervise.ml] is
   ["Search_exec__Supervise.map"].  References are canonicalised the
   same way — a use spelled [Pool.async] types as the path
   [Search_exec.Pool.async], and the wrapper unit's alias table
   (harvested from the [search_exec] cmt dune generates) rewrites it to
   ["Search_exec__Pool.async"], the def's own name.  Local [module X =
   ...] aliases are resolved through the unit's own top-level items.
   References that do not reach a top-level entity (function arguments,
   let-bound locals) canonicalise to [None] and drop out: the graph is
   deliberately at top-level-definition granularity.

   Context.  Each reference and mutation is recorded together with the
   list of top-level mutexes held at that program point — maintained by
   walking into the closure argument of [Mutex.protect m (fun () ->
   ...)] (the only locking idiom the lock-discipline rule admits) —
   which is exactly what the lockset pass needs. *)

type reference = { target : string; rloc : Location.t; rheld : string list }

type mutation = {
  cell : string;
  via : string;  (** the mutator applied, e.g. [":="] or ["Hashtbl.replace"] *)
  mloc : Location.t;
  mheld : string list;
}

type protect_event = {
  lock : string;
  ploc : Location.t;
  outer : string list;  (** locks already held when this one is taken *)
}

type cell_kind = Ref | Table | Container | Atomic

type cell = {
  cell_name : string;
  kind : cell_kind;
  cell_file : string;
  cell_loc : Location.t;
}

type alloc_kind =
  | Closure
  | Partial
  | Tuple
  | Record
  | Variant
  | Array_lit
  | Lazy_block
  | Boxed_float of string
  | Alloc_call of string

type alloc = { akind : alloc_kind; aloc : Location.t }
type hcall = { hname : string; hloc : Location.t; hcaught : string list }

type raise_site = { exn : string; xloc : Location.t; xcaught : string list }

type def = {
  name : string;
  display : string;
  file : string;
  dloc : Location.t;
  refs : reference list;
  mutations : mutation list;
  protects : protect_event list;
  allocs : alloc list;
  hcalls : hcall list;
  raises : raise_site list;
  pool_entry : bool;
  hot : bool;
  event_loop : bool;
  nonblocking : bool;
  releases : bool;
  real_io : bool;
}

type summary = {
  unit_name : string;
  unit_file : string option;
  defs : def list;
  cells : cell list;
  mutexes : (string * Location.t) list;
  aliases : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* small helpers                                                       *)

let strip_stdlib name =
  match String.index_opt name '.' with
  | Some 6 when String.starts_with ~prefix:"Stdlib." name ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

(* "Search_exec__Pool.async" -> "Pool.async"; the unit-name mangling is
   a dune implementation detail humans should not have to read. *)
let display_name name =
  match String.index_opt name '.' with
  | None -> name
  | Some i ->
      let head = String.sub name 0 i in
      let rest = String.sub name i (String.length name - i) in
      let rec last_sep from acc =
        match String.index_from_opt head from '_' with
        | Some j when j + 1 < String.length head && head.[j + 1] = '_' ->
            last_sep (j + 2) (Some (j + 2))
        | Some j -> last_sep (j + 1) acc
        | None -> acc
      in
      let head =
        match last_sep 0 None with
        | Some j -> String.sub head j (String.length head - j)
        | None -> head
      in
      head ^ rest

(* Write-mutators on the tracked cell families, keyed by their
   Stdlib-stripped canonical name.  Reads need no table: any reference
   to a cell is recorded as a plain use by the generic walk. *)
let write_mutators =
  [
    ":="; "incr"; "decr";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace"; "Hashtbl.add_seq";
    "Hashtbl.replace_seq";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.take_opt";
    "Queue.clear"; "Queue.transfer"; "Queue.add_seq";
    "Stack.push"; "Stack.pop"; "Stack.pop_opt"; "Stack.clear"; "Stack.drain";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_subbytes"; "Buffer.add_buffer";
    "Buffer.add_channel"; "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
    "Array.set"; "Array.fill"; "Array.blit"; "Array.sort"; "Array.unsafe_set";
    "Atomic.set"; "Atomic.exchange"; "Atomic.compare_and_set";
    "Atomic.fetch_and_add"; "Atomic.incr"; "Atomic.decr";
  ]

let cell_ctor = function
  | "ref" -> Some Ref
  | "Hashtbl.create" -> Some Table
  | "Atomic.make" -> Some Atomic
  | "Queue.create" | "Stack.create" | "Buffer.create" | "Dynarray.create"
  | "Array.make" | "Array.init" | "Array.create_float" ->
      Some Container
  | _ -> None

let alloc_kind_to_string = function
  | Closure -> "closure allocation"
  | Partial -> "partial application (closure allocation)"
  | Tuple -> "tuple allocation"
  | Record -> "record allocation"
  | Variant -> "variant allocation"
  | Array_lit -> "array literal allocation"
  | Lazy_block -> "lazy block allocation"
  | Boxed_float what -> what
  | Alloc_call fn -> Printf.sprintf "allocating call to %s" fn

(* Stdlib entry points with no def in the graph that are known to
   allocate on every call.  The in-tree half of the story needs no
   table: the hot traversal walks into those defs and sees their own
   allocation events. *)
let alloc_stdlib =
  [
    "ref"; "^"; "@";
    "string_of_int"; "string_of_float"; "float_of_string"; "int_of_string";
    "Array.make"; "Array.init"; "Array.create_float"; "Array.append";
    "Array.sub"; "Array.copy"; "Array.of_list"; "Array.to_list";
    "Array.concat"; "Array.map"; "Array.mapi"; "Array.map2"; "Array.split";
    "Array.combine"; "Array.to_seq"; "Array.to_seqi"; "Array.of_seq";
    "List.init"; "List.map"; "List.mapi"; "List.map2"; "List.rev";
    "List.rev_map"; "List.append"; "List.concat"; "List.flatten";
    "List.concat_map"; "List.filter"; "List.filteri"; "List.filter_map";
    "List.partition"; "List.split"; "List.combine"; "List.sort";
    "List.stable_sort"; "List.fast_sort"; "List.sort_uniq"; "List.cons";
    "List.of_seq"; "List.to_seq";
    "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.cat"; "String.map"; "String.mapi"; "String.split_on_char";
    "String.trim"; "String.uppercase_ascii"; "String.lowercase_ascii";
    "String.to_seq"; "String.of_seq";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.sub"; "Bytes.copy";
    "Bytes.of_string"; "Bytes.to_string"; "Bytes.extend"; "Bytes.cat";
    "Printf.sprintf"; "Printf.printf"; "Printf.eprintf"; "Printf.fprintf";
    "Format.asprintf"; "Format.sprintf"; "Format.fprintf"; "Format.printf";
    "Buffer.create"; "Buffer.contents"; "Buffer.to_bytes";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_buffer";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.add"; "Hashtbl.replace";
    "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.of_seq";
    "Queue.create"; "Queue.push"; "Queue.add"; "Queue.transfer";
    "Stack.create"; "Stack.push";
    "Option.some"; "Option.map"; "Option.bind"; "Option.to_list";
    "Option.to_result";
    "Result.ok"; "Result.error"; "Result.map"; "Result.bind";
    "Filename.concat"; "Filename.basename"; "Filename.dirname";
  ]

let is_alloc_stdlib n =
  List.mem n alloc_stdlib || String.starts_with ~prefix:"Seq." n

(* Raisers start cold paths: allocations (and calls) inside their
   argument subtrees are precondition/diagnostic work that runs at most
   once per raise, never per hot iteration, so the budget pass exempts
   them.  Matched by suffix so both [invalid_arg] and a canonicalised
   [Search_numerics__Search_error.invalid] hit. *)
let raiser_suffixes =
  [
    "raise"; "raise_notrace"; "failwith"; "invalid_arg";
    "Search_error.invalid"; "Search_error.raise_";
  ]

let is_raiser name =
  let n = strip_stdlib name in
  List.exists
    (fun r -> String.equal n r || String.ends_with ~suffix:("." ^ r) n)
    raiser_suffixes

(* ------------------------------------------------------------------ *)
(* per-unit extraction                                                 *)

type acc = {
  mutable a_refs : reference list;
  mutable a_mutations : mutation list;
  mutable a_protects : protect_event list;
  mutable a_allocs : alloc list;
  mutable a_hcalls : hcall list;
  mutable a_raises : raise_site list;
}

let empty_summary u =
  {
    unit_name = u.Cmt_loader.modname;
    unit_file = u.Cmt_loader.source;
    defs = [];
    cells = [];
    mutexes = [];
    aliases = [];
  }

let summarize (u : Cmt_loader.unit_info) =
  match u.Cmt_loader.structure with
  | None -> empty_summary u
  | Some st ->
      let unit_name = u.Cmt_loader.modname in
      let file = Option.value u.Cmt_loader.source ~default:u.Cmt_loader.cmt_path in
      (* top-level idents of this unit, by stamp: values and modules *)
      let locals : (Ident.t * string) list ref = ref [] in
      let bind id canonical = locals := (id, canonical) :: !locals in
      let lookup id =
        List.find_map
          (fun (i, c) -> if Ident.same i id then Some c else None)
          !locals
      in
      let rec canon = function
        | Path.Pident id ->
            if Ident.global id then Some (Ident.name id) else lookup id
        | Path.Pdot (p, s) -> Option.map (fun b -> b ^ "." ^ s) (canon p)
        | Path.Papply _ | Path.Pextra_ty _ -> None
      in
      let aliases = ref [] in
      let cells = ref [] in
      let mutexes = ref [] in
      let defs = ref [] in
      (* the synthetic def collecting top-level effects: [let () = ...]
         and [Tstr_eval] items — the natural roots of test binaries *)
      let init_acc = ref None in
      let init_name = unit_name ^ ".(init)" in
      let fresh_acc () =
        {
          a_refs = [];
          a_mutations = [];
          a_protects = [];
          a_allocs = [];
          a_hcalls = [];
          a_raises = [];
        }
      in
      let held = ref [] in
      (* exception constructor names with a handler lexically in scope
         at the current program point; ["*"] is a catch-all pattern *)
      let caught = ref [] in
      let current = ref (fresh_acc ()) in
      (* > 0 while walking the argument subtree of a raiser: cold-path
         allocations and calls are exempt from the hot-path budget *)
      let raise_depth = ref 0 in
      let record_alloc aloc akind =
        if !raise_depth = 0 then
          !current.a_allocs <- { akind; aloc } :: !current.a_allocs
      in
      let record_hcall hloc hname =
        if !raise_depth = 0 then
          !current.a_hcalls <-
            { hname; hloc; hcaught = !caught } :: !current.a_hcalls
      in
      let record_raise xloc exn =
        !current.a_raises <-
          { exn; xloc; xcaught = !caught } :: !current.a_raises
      in
      let with_caught names f =
        if names = [] then f ()
        else begin
          let saved = !caught in
          caught := names @ saved;
          Fun.protect ~finally:(fun () -> caught := saved) f
        end
      in
      let is_float_ty ty =
        match Types.get_desc ty with
        | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
        | _ -> false
      in
      let is_immediate_ty ty =
        match Types.get_desc ty with
        | Types.Tconstr (p, [], _) ->
            Path.same p Predef.path_int || Path.same p Predef.path_float
            || Path.same p Predef.path_bool
            || Path.same p Predef.path_char
        | _ -> false
      in
      (* the declared (generic) argument types of a function scheme, up
         to [n] arrows deep — Tvars in here are polymorphic formals *)
      let arrow_formals ty n =
        let rec go ty n acc =
          if n = 0 then List.rev acc
          else
            match Types.get_desc ty with
            | Types.Tarrow (_, targ, tret, _) -> go tret (n - 1) (targ :: acc)
            | _ -> List.rev acc
        in
        go ty n []
      in
      let rec contains_tvar ty =
        match Types.get_desc ty with
        | Types.Tvar _ -> true
        | Types.Tarrow (_, a, b, _) -> contains_tvar a || contains_tvar b
        | Types.Tconstr (_, args, _) -> List.exists contains_tvar args
        | Types.Ttuple ts -> List.exists contains_tvar ts
        | _ -> false
      in
      let is_arrow ty =
        match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false
      in
      (* does unifying [formal] (generic) with [actual] (instantiated)
         pin a polymorphic variable to float? *)
      let rec instantiates_float formal actual =
        match (Types.get_desc formal, Types.get_desc actual) with
        | Types.Tvar _, _ -> is_float_ty actual
        | Types.Tconstr (p, fargs, _), Types.Tconstr (q, aargs, _)
          when Path.same p q && List.length fargs = List.length aargs ->
            List.exists2 instantiates_float fargs aargs
        | Types.Ttuple fs, Types.Ttuple as_
          when List.length fs = List.length as_ ->
            List.exists2 instantiates_float fs as_
        | _ -> false
      in
      (* Exception-constructor identity.  Extension constructors carry
         their full path in the tag; [canon] resolves it like any other
         reference (local exceptions through the stamp table, foreign
         ones through the alias pass in [build]).  Predef and otherwise
         unresolvable constructors fall back to the bare name. *)
      let exn_ctor_name (cd : Types.constructor_description) =
        match cd.Types.cstr_tag with
        | Types.Cstr_extension (path, _) -> (
            match canon path with Some n -> n | None -> cd.Types.cstr_name)
        | _ -> cd.Types.cstr_name
      in
      (* constructor names a handler pattern catches; ["*"] when it is a
         catch-all (variable/wildcard) or too complex to name *)
      let rec handler_pat_names (p : Typedtree.pattern) =
        match p.Typedtree.pat_desc with
        | Typedtree.Tpat_construct (_, cd, _, _) -> [ exn_ctor_name cd ]
        | Typedtree.Tpat_alias (sub, _, _) -> handler_pat_names sub
        | Typedtree.Tpat_or (a, b, _) ->
            handler_pat_names a @ handler_pat_names b
        | _ -> [ "*" ]
      in
      (* the exception argument of [raise]/[raise_with_backtrace]: a
         literal constructor names itself, anything else is unknown *)
      let exn_of_arg (args : Typedtree.expression list) =
        match args with
        | { Typedtree.exp_desc = Typedtree.Texp_construct (_, cd, _); _ } :: _
          ->
            exn_ctor_name cd
        | _ -> "*"
      in
      (* expression walker: records references, write-mutations and
         Mutex.protect nesting into [current], in context [held] *)
      let super = Tast_iterator.default_iterator in
      (* [let x = ref init in body] where [x] holds an immediate/float
         and every use of [x] in [body] is directly under [!]/[:=]/
         [incr]/[decr]: ocamlopt unboxes the reference (no allocation),
         so the budget pass must not count the [ref]. *)
      let deref_ops = [ "!"; ":="; "incr"; "decr" ] in
      let uses_only_deref id body =
        let ok = ref true in
        let expr self (e : Typedtree.expression) =
          match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
              ok := false
          | Typedtree.Texp_apply (fn, args) -> (
              let deref =
                match fn.Typedtree.exp_desc with
                | Typedtree.Texp_ident (p, _, _) -> (
                    match canon p with
                    | Some n -> List.mem (strip_stdlib n) deref_ops
                    | None -> false)
                | _ -> false
              in
              match (deref, args) with
              | ( true,
                  ( _,
                    Some
                      {
                        Typedtree.exp_desc =
                          Typedtree.Texp_ident (Path.Pident i, _, _);
                        _;
                      } )
                  :: rest )
                when Ident.same i id ->
                  List.iter
                    (function _, Some a -> self.Tast_iterator.expr self a | _ -> ())
                    rest
              | _ -> super.Tast_iterator.expr self e)
          | _ -> super.Tast_iterator.expr self e
        in
        let it = { super with expr } in
        it.Tast_iterator.expr it body;
        !ok
      in
      let unboxable_ref_binding (vb : Typedtree.value_binding) body =
        match vb.Typedtree.vb_pat.Typedtree.pat_desc with
        | Typedtree.Tpat_var (id, _) -> (
            match vb.Typedtree.vb_expr.Typedtree.exp_desc with
            | Typedtree.Texp_apply (fn, [ (_, Some init) ]) -> (
                match fn.Typedtree.exp_desc with
                | Typedtree.Texp_ident (p, _, _)
                  when (match Option.map strip_stdlib (canon p) with
                       | Some "ref" -> true
                       | _ -> false)
                       && is_immediate_ty init.Typedtree.exp_type
                       && uses_only_deref id body ->
                    Some init
                | _ -> None)
            | _ -> None)
        | _ -> None
      in
      let rec walk_expr self (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            match canon p with
            | Some target ->
                !current.a_refs <-
                  { target; rloc = e.Typedtree.exp_loc; rheld = !held }
                  :: !current.a_refs
            | None -> ())
        | Typedtree.Texp_apply (fn, args) ->
            let args =
              List.filter_map (function _, Some a -> Some a | _ -> None) args
            in
            handle_app self e fn args
        | Typedtree.Texp_setfield (tgt, _, _, v) ->
            (match tgt.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match canon p with
                | Some cell ->
                    !current.a_mutations <-
                      {
                        cell;
                        via = "<-";
                        mloc = e.Typedtree.exp_loc;
                        mheld = !held;
                      }
                      :: !current.a_mutations
                | None -> ())
            | _ -> ());
            self.Tast_iterator.expr self tgt;
            self.Tast_iterator.expr self v
        | Typedtree.Texp_let (Asttypes.Nonrecursive, [ vb ], body)
          when unboxable_ref_binding vb body <> None ->
            (match unboxable_ref_binding vb body with
            | Some init -> self.Tast_iterator.expr self init
            | None -> assert false);
            self.Tast_iterator.expr self body
        | Typedtree.Texp_function _ ->
            record_alloc e.Typedtree.exp_loc Closure;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_letop _ ->
            record_alloc e.Typedtree.exp_loc Closure;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_tuple _ ->
            record_alloc e.Typedtree.exp_loc Tuple;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_construct (_, _, args) when args <> [] ->
            record_alloc e.Typedtree.exp_loc Variant;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_record _ ->
            record_alloc e.Typedtree.exp_loc Record;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_array _ ->
            record_alloc e.Typedtree.exp_loc Array_lit;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_lazy _ ->
            record_alloc e.Typedtree.exp_loc Lazy_block;
            super.Tast_iterator.expr self e
        | Typedtree.Texp_try (body, cases) ->
            (* guarded handlers re-raise when the guard fails, so only
               unguarded cases establish handler context for the body *)
            let names =
              List.concat_map
                (fun (c : Typedtree.value Typedtree.case) ->
                  if c.Typedtree.c_guard <> None then []
                  else handler_pat_names c.Typedtree.c_lhs)
                cases
            in
            with_caught names (fun () -> self.Tast_iterator.expr self body);
            List.iter (self.Tast_iterator.case self) cases
        | Typedtree.Texp_match (scrut, cases, _) ->
            (* [match e with ... | exception P -> ...] handles P around
               the scrutinee only, not around the case bodies *)
            let names =
              List.concat_map
                (fun (c : Typedtree.computation Typedtree.case) ->
                  if c.Typedtree.c_guard <> None then []
                  else
                    match snd (Typedtree.split_pattern c.Typedtree.c_lhs) with
                    | Some p -> handler_pat_names p
                    | None -> [])
                cases
            in
            with_caught names (fun () -> self.Tast_iterator.expr self scrut);
            List.iter (self.Tast_iterator.case self) cases
        | Typedtree.Texp_assert (cond, _) ->
            record_raise e.Typedtree.exp_loc "Assert_failure";
            self.Tast_iterator.expr self cond
        | _ -> super.Tast_iterator.expr self e
      and handle_app self app fn args =
        match fn.Typedtree.exp_desc with
        (* [Mutex.protect m @@ fun () -> ...] puts the partial
           application [Mutex.protect m] in the function position of
           [@@]; flatten it so the full argument list is visible *)
        | Typedtree.Texp_apply (fn', args') ->
            let args' =
              List.filter_map
                (function _, Some a -> Some a | _ -> None)
                args'
            in
            handle_app self app fn' (args' @ args)
        | _ -> (
        let fn_name =
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> canon p
          | _ -> None
        in
        match (Option.map strip_stdlib fn_name, args) with
        (* [f @@ x] and [x |> f] are applications of [f] to [x] *)
        | Some "@@", [ f; x ] -> handle_app self app f [ x ]
        | Some "|>", [ x; f ] -> handle_app self app f [ x ]
        | Some "Mutex.protect", [ m; body ] ->
            let lock =
              match m.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _) -> canon p
              | _ -> None
            in
            self.Tast_iterator.expr self m;
            (match lock with
            | Some lock ->
                !current.a_protects <-
                  { lock; ploc = m.Typedtree.exp_loc; outer = !held }
                  :: !current.a_protects;
                let saved = !held in
                held := lock :: saved;
                Fun.protect
                  ~finally:(fun () -> held := saved)
                  (fun () -> self.Tast_iterator.expr self body)
            | None -> self.Tast_iterator.expr self body)
        | fn_stripped, _ ->
            (match (fn_stripped, args) with
            | Some via, first :: _ when List.mem via write_mutators -> (
                match first.Typedtree.exp_desc with
                | Typedtree.Texp_ident (p, _, _) -> (
                    match canon p with
                    | Some cell ->
                        !current.a_mutations <-
                          {
                            cell;
                            via;
                            mloc = first.Typedtree.exp_loc;
                            mheld = !held;
                          }
                          :: !current.a_mutations
                    | None -> ())
                | _ -> ())
            | _ -> ());
            (match Option.map strip_stdlib fn_name with
            | Some "Printexc.raise_with_backtrace" ->
                record_raise app.Typedtree.exp_loc (exn_of_arg args)
            | _ -> ());
            (match fn_name with
            | Some n when is_raiser n ->
                (let nn = strip_stdlib n in
                 let ends s =
                   String.equal nn s
                   || String.ends_with ~suffix:("." ^ s) nn
                 in
                 let exn =
                   if ends "failwith" then "Failure"
                   else if ends "invalid_arg" then "Invalid_argument"
                   else if
                     ends "Search_error.invalid" || ends "Search_error.raise_"
                   then "Search_error.Error"
                   else exn_of_arg args
                 in
                 record_raise app.Typedtree.exp_loc exn);
                (* cold path: the raiser's argument subtree is exempt
                   from allocation and hot-call accounting *)
                self.Tast_iterator.expr self fn;
                incr raise_depth;
                Fun.protect
                  ~finally:(fun () -> decr raise_depth)
                  (fun () -> List.iter (self.Tast_iterator.expr self) args)
            | _ ->
                (match fn_name with
                | Some n -> record_hcall fn.Typedtree.exp_loc n
                | None -> ());
                (if is_arrow app.Typedtree.exp_type then
                   (* under-application: the result closure is built *)
                   record_alloc app.Typedtree.exp_loc Partial
                 else
                   match (fn.Typedtree.exp_desc, fn_stripped) with
                   | _, Some n when is_alloc_stdlib n ->
                       record_alloc app.Typedtree.exp_loc (Alloc_call n)
                   | Typedtree.Texp_ident (_, _, vd), Some n
                     when (match vd.Types.val_kind with
                          | Types.Val_prim _ -> false
                          | _ -> true) ->
                       let disp = display_name n in
                       if is_float_ty app.Typedtree.exp_type then
                         record_alloc app.Typedtree.exp_loc
                           (Boxed_float ("boxed float return of " ^ disp))
                       else begin
                         let formals =
                           arrow_formals vd.Types.val_type (List.length args)
                         in
                         let rec zip fs xs =
                           match (fs, xs) with
                           | f :: fs', (x : Typedtree.expression) :: xs' ->
                               (f, x.Typedtree.exp_type) :: zip fs' xs'
                           | _ -> []
                         in
                         let pairs = zip formals args in
                         let bare_tvar ty =
                           match Types.get_desc ty with
                           | Types.Tvar _ -> true
                           | _ -> false
                         in
                         if
                           List.exists
                             (fun (f, a) -> bare_tvar f && is_float_ty a)
                             pairs
                         then
                           record_alloc app.Typedtree.exp_loc
                             (Boxed_float
                                ("float boxed at polymorphic argument of "
                               ^ disp))
                         else if
                           List.exists
                             (fun f -> is_arrow f && contains_tvar f)
                             formals
                           && List.exists
                                (fun (f, a) -> instantiates_float f a)
                                pairs
                         then
                           record_alloc app.Typedtree.exp_loc
                             (Boxed_float
                                ("polymorphic higher-order call to " ^ disp
                               ^ " instantiated at float"))
                       end
                   | _ -> ());
                self.Tast_iterator.expr self fn;
                List.iter (self.Tast_iterator.expr self) args))
      in
      let it = { super with expr = walk_expr } in
      (* Walk a binding's expression, peeling the outermost chain of
         single-case lambdas first: those are the def's own formal
         parameters (its static closure), not per-call allocations. *)
      let rec walk_def_body (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_function { cases = [ c ]; _ }
          when c.Typedtree.c_guard = None ->
            walk_def_body c.Typedtree.c_rhs
        | Typedtree.Texp_function { cases; _ } ->
            List.iter
              (fun c ->
                Option.iter (it.Tast_iterator.expr it) c.Typedtree.c_guard;
                it.Tast_iterator.expr it c.Typedtree.c_rhs)
              cases
        | _ -> it.Tast_iterator.expr it e
      in
      let finish_def ~prefix ~name ~dloc ~attrs acc =
        let has a =
          List.exists
            (fun (at : Parsetree.attribute) ->
              String.equal at.Parsetree.attr_name.Location.txt a)
            attrs
        in
        defs :=
          {
            name = prefix ^ "." ^ name;
            display = display_name (prefix ^ "." ^ name);
            file;
            dloc;
            refs = List.rev acc.a_refs;
            mutations = List.rev acc.a_mutations;
            protects = List.rev acc.a_protects;
            allocs = List.rev acc.a_allocs;
            hcalls = List.rev acc.a_hcalls;
            raises = List.rev acc.a_raises;
            pool_entry = has "pool_entry";
            hot = has "hot";
            event_loop = has "event_loop";
            nonblocking = has "nonblocking";
            releases = has "releases";
            real_io = has "real_io";
          }
          :: !defs
      in
      let rec pat_vars (p : Typedtree.pattern) =
        match p.Typedtree.pat_desc with
        | Typedtree.Tpat_var (id, nm) -> [ (id, nm.Location.txt) ]
        | Typedtree.Tpat_alias (sub, id, nm) ->
            (id, nm.Location.txt) :: pat_vars sub
        | Typedtree.Tpat_tuple ps -> List.concat_map pat_vars ps
        | Typedtree.Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
        | Typedtree.Tpat_record (fields, _) ->
            List.concat_map (fun (_, _, p) -> pat_vars p) fields
        | _ -> []
      in
      let rec walk_items prefix items =
        List.iter (walk_item prefix) items
      and walk_item prefix (item : Typedtree.structure_item) =
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match pat_vars vb.Typedtree.vb_pat with
                | [] ->
                    (* [let () = ...]: top-level effects join [(init)] *)
                    let acc =
                      match !init_acc with
                      | Some a -> a
                      | None ->
                          let a = fresh_acc () in
                          init_acc := Some a;
                          a
                    in
                    current := acc;
                    it.Tast_iterator.expr it vb.Typedtree.vb_expr
                | (id0, name0) :: _ as vars ->
                    List.iter
                      (fun (id, nm) -> bind id (prefix ^ "." ^ nm))
                      vars;
                    (match cell_of_binding vb with
                    | Some `Mutex ->
                        mutexes :=
                          (prefix ^ "." ^ name0, vb.Typedtree.vb_loc)
                          :: !mutexes
                    | Some (`Cell kind) ->
                        cells :=
                          {
                            cell_name = prefix ^ "." ^ name0;
                            kind;
                            cell_file = file;
                            cell_loc = vb.Typedtree.vb_loc;
                          }
                          :: !cells
                    | None -> ());
                    ignore id0;
                    let acc = fresh_acc () in
                    current := acc;
                    walk_def_body vb.Typedtree.vb_expr;
                    finish_def ~prefix ~name:name0 ~dloc:vb.Typedtree.vb_loc
                      ~attrs:vb.Typedtree.vb_attributes acc)
              vbs
        | Typedtree.Tstr_eval (e, _) ->
            let acc =
              match !init_acc with
              | Some a -> a
              | None ->
                  let a = fresh_acc () in
                  init_acc := Some a;
                  a
            in
            current := acc;
            it.Tast_iterator.expr it e
        | Typedtree.Tstr_exception ext ->
            (* register the constructor so in-unit raise sites and
               handlers canonicalise to the same dotted name foreign
               units resolve to *)
            let ec = ext.Typedtree.tyexn_constructor in
            bind ec.Typedtree.ext_id
              (prefix ^ "." ^ ec.Typedtree.ext_name.Location.txt)
        | Typedtree.Tstr_module mb -> walk_module prefix mb
        | Typedtree.Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
        | Typedtree.Tstr_include incl ->
            walk_module_expr prefix None incl.Typedtree.incl_mod
        | _ -> ()
      and walk_module prefix (mb : Typedtree.module_binding) =
        match mb.Typedtree.mb_id with
        | None -> ()
        | Some id -> walk_module_expr prefix (Some id) mb.Typedtree.mb_expr
      and walk_module_expr prefix id (me : Typedtree.module_expr) =
        match me.Typedtree.mod_desc with
        | Typedtree.Tmod_constraint (inner, _, _, _) ->
            walk_module_expr prefix id inner
        | Typedtree.Tmod_ident (p, _) -> (
            match (id, canon p) with
            | Some id, Some target ->
                bind id target;
                aliases := (prefix ^ "." ^ Ident.name id, target) :: !aliases
            | _ -> ())
        | Typedtree.Tmod_structure sub ->
            let sub_prefix =
              match id with
              | Some id ->
                  let sp = prefix ^ "." ^ Ident.name id in
                  bind id sp;
                  sp
              | None -> prefix
            in
            walk_items sub_prefix sub.Typedtree.str_items
        | _ -> ()
      and cell_of_binding (vb : Typedtree.value_binding) =
        match vb.Typedtree.vb_expr.Typedtree.exp_desc with
        | Typedtree.Texp_apply (fn, _) -> (
            match fn.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                match Option.map strip_stdlib (canon p) with
                | Some "Mutex.create" -> Some `Mutex
                | Some ctor ->
                    Option.map (fun k -> `Cell k) (cell_ctor ctor)
                | None -> None)
            | _ -> None)
        | _ -> None
      in
      walk_items unit_name st.Typedtree.str_items;
      (match !init_acc with
      | Some acc ->
          defs :=
            {
              name = init_name;
              display = display_name init_name;
              file;
              dloc = Location.in_file file;
              refs = List.rev acc.a_refs;
              mutations = List.rev acc.a_mutations;
              protects = List.rev acc.a_protects;
              allocs = List.rev acc.a_allocs;
              hcalls = List.rev acc.a_hcalls;
              raises = List.rev acc.a_raises;
              pool_entry = false;
              hot = false;
              event_loop = false;
              nonblocking = false;
              releases = false;
              real_io = false;
            }
            :: !defs
      | None -> ());
      {
        unit_name;
        unit_file = u.Cmt_loader.source;
        defs = List.rev !defs;
        cells = List.rev !cells;
        mutexes = List.rev !mutexes;
        aliases = List.rev !aliases;
      }

(* ------------------------------------------------------------------ *)
(* the global graph                                                    *)

type t = {
  defs : (string, def) Hashtbl.t;
  def_order : string list;  (** sorted canonical names *)
  cells : (string, cell) Hashtbl.t;
  mutex_locs : (string, Location.t) Hashtbl.t;
  entries : (string, unit) Hashtbl.t;
}

let builtin_entries = [ "Domain.spawn" ]

(* Rewrite the longest known alias prefix of a dotted name, repeatedly:
   [Faulty_search.Params.make] -> [Search_bounds.Params.make] ->
   [Search_bounds__Params.make]. *)
let resolve_with aliases name =
  (* candidate prefix lengths of [name]: the whole of it, then every
     dot position, longest first *)
  let prefix_lengths name =
    let rec dots n acc =
      match String.rindex_opt (String.sub name 0 n) '.' with
      | Some i when i > 0 -> dots i (i :: acc)
      | _ -> acc
    in
    String.length name :: List.rev (dots (String.length name) [])
  in
  let rec go name fuel =
    if fuel = 0 then name
    else
      let hit =
        List.find_map
          (fun n ->
            let p = String.sub name 0 n in
            match Hashtbl.find_opt aliases p with
            | Some target when not (String.equal target p) ->
                Some (target ^ String.sub name n (String.length name - n))
            | _ -> None)
          (prefix_lengths name)
      in
      match hit with None -> name | Some name' -> go name' (fuel - 1)
  in
  go name 16

let build summaries =
  let aliases = Hashtbl.create 256 in
  List.iter
    (fun (s : summary) ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem aliases k) then Hashtbl.add aliases k v)
        s.aliases)
    summaries;
  let resolve = resolve_with aliases in
  let defs = Hashtbl.create 1024 in
  let cells = Hashtbl.create 64 in
  let mutex_locs = Hashtbl.create 16 in
  let entries = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace entries e ()) builtin_entries;
  List.iter
    (fun (s : summary) ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem cells c.cell_name) then
            Hashtbl.add cells c.cell_name c)
        s.cells;
      List.iter
        (fun (m, loc) ->
          if not (Hashtbl.mem mutex_locs m) then Hashtbl.add mutex_locs m loc)
        s.mutexes;
      List.iter
        (fun d ->
          let d =
            {
              d with
              refs =
                List.map
                  (fun r -> { r with target = resolve r.target;
                              rheld = List.map resolve r.rheld })
                  d.refs;
              mutations =
                List.map
                  (fun m -> { m with cell = resolve m.cell;
                              mheld = List.map resolve m.mheld })
                  d.mutations;
              protects =
                List.map
                  (fun p -> { p with lock = resolve p.lock;
                              outer = List.map resolve p.outer })
                  d.protects;
              hcalls =
                List.map
                  (fun h -> { h with hname = resolve h.hname;
                              hcaught = List.map resolve h.hcaught })
                  d.hcalls;
              raises =
                List.map
                  (fun (x : raise_site) ->
                    { x with exn = resolve x.exn;
                      xcaught = List.map resolve x.xcaught })
                  d.raises;
            }
          in
          if not (Hashtbl.mem defs d.name) then Hashtbl.add defs d.name d;
          if d.pool_entry then Hashtbl.replace entries d.name ())
        s.defs)
    summaries;
  let def_order =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) defs [])
  in
  { defs; def_order; cells; mutex_locs; entries }

let find_def t name = Hashtbl.find_opt t.defs name
let is_entry t name = Hashtbl.mem t.entries name || Hashtbl.mem t.entries (strip_stdlib name)
let find_cell t name = Hashtbl.find_opt t.cells name
let mutex_defined t name = Hashtbl.mem t.mutex_locs name
