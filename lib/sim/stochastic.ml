type distribution = { support : (World.point * float) list }

let make support =
  if support = [] then Search_numerics.Search_error.invalid ~where:"Stochastic.make" "empty support";
  List.iter
    (fun (_, w) ->
      (* the finiteness guard matters: [w <= 0.] is false for a NaN
         weight, and a NaN total defeats the sum check below (every
         comparison against NaN is false) *)
      if not (Float.is_finite w) then
        Search_numerics.Search_error.invalid ~where:"Stochastic.make" "weight not finite";
      if w <= 0. then Search_numerics.Search_error.invalid ~where:"Stochastic.make" "weight <= 0")
    support;
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. support in
  if Float.abs (total -. 1.) > 1e-9 then
    Search_numerics.Search_error.invalid ~where:"Stochastic.make" "weights must sum to 1";
  { support = List.map (fun (p, w) -> (p, w /. total)) support }

let uniform_line ~cells ~lo ~hi =
  if not (1. <= lo && lo < hi) then
    Search_numerics.Search_error.invalid ~where:"Stochastic.uniform_line" "need 1 <= lo < hi";
  if cells < 1 then Search_numerics.Search_error.invalid ~where:"Stochastic.uniform_line" "need cells >= 1";
  let w = 1. /. float_of_int (2 * cells) in
  let step = (hi -. lo) /. float_of_int cells in
  let side ray =
    List.init cells (fun i ->
        let dist = lo +. ((float_of_int i +. 0.5) *. step) in
        (World.point World.line ~ray ~dist, w))
  in
  make (side 0 @ side 1)

let geometric_line ~ratio ~terms ~lo =
  if ratio <= 1. then Search_numerics.Search_error.invalid ~where:"Stochastic.geometric_line" "need ratio > 1";
  if terms < 1 then Search_numerics.Search_error.invalid ~where:"Stochastic.geometric_line" "need terms >= 1";
  if lo < 1. then Search_numerics.Search_error.invalid ~where:"Stochastic.geometric_line" "need lo >= 1";
  let weights = List.init terms (fun j -> ratio ** float_of_int (-j)) in
  let total = 2. *. List.fold_left ( +. ) 0. weights in
  let side ray =
    List.mapi
      (fun j w ->
        (World.point World.line ~ray ~dist:(lo *. (ratio ** float_of_int j)),
         w /. total))
      weights
  in
  make (side 0 @ side 1)

let point_mass p = make [ (p, 1.) ]

let expected_distance d =
  List.fold_left (fun a (p, w) -> a +. (w *. p.World.dist)) 0. d.support

let expected_detection_time trajectories ~f d ~horizon =
  List.fold_left
    (fun acc (target, w) ->
      match Engine.detection_time_worst trajectories ~f ~target ~horizon with
      | Some t -> acc +. (w *. t)
      | None -> infinity)
    0. d.support

let beck_quotient trajectories ~f d ~horizon =
  expected_detection_time trajectories ~f d ~horizon /. expected_distance d

(* One robot, no faults: sweep one side out to its farthest support
   point, return, sweep the other.  Exact expectation over the support. *)
let best_sided_sweep d =
  let farthest ray =
    List.fold_left
      (fun acc (p, _) ->
        if Int.equal p.World.ray ray then Float.max acc p.World.dist else acc)
      0. d.support
  in
  let expected_first ray =
    (* targets on [ray] reached at their distance; targets on the other
       side reached after the full out-and-back plus their distance *)
    let far = farthest ray in
    List.fold_left
      (fun acc (p, w) ->
        let t =
          if Int.equal p.World.ray ray then p.World.dist
          else (2. *. far) +. p.World.dist
        in
        acc +. (w *. t))
      0. d.support
  in
  Float.min (expected_first 0) (expected_first 1) /. expected_distance d
