module Stats = Search_numerics.Stats

type outcome = {
  ratio : float;
  witness : World.point;
  detection_time : float;
  candidates_scanned : int;
}

let default_eps = 1e-7
let default_ratio_cap = 256.

let candidate_targets trajectories ?(eps = default_eps) ~n ~time_horizon () =
  if n < 1. then Search_numerics.Search_error.invalid ~where:"Adversary.candidate_targets" "need n >= 1";
  let world = Trajectory.world trajectories.(0) in
  let m = World.arity world in
  let depths_per_ray = Array.make m [] in
  Array.iter
    (fun tr ->
      List.iter
        (fun (ray, d) -> depths_per_ray.(ray) <- d :: depths_per_ray.(ray))
        (Trajectory.leg_endpoints tr ~horizon:time_horizon))
    trajectories;
  let points = ref [] in
  let add ray dist =
    if dist >= 1. && dist <= n then
      points := World.point world ~ray ~dist :: !points
  in
  for ray = 0 to m - 1 do
    add ray 1.;
    add ray n;
    List.iter
      (fun d ->
        add ray d;
        add ray (d *. (1. -. eps));
        add ray (d *. (1. +. eps)))
      depths_per_ray.(ray)
  done;
  !points

let worst_case trajectories ~f ?(eps = default_eps)
    ?(ratio_cap = default_ratio_cap) ~n () =
  if Array.length trajectories = 0 then
    Search_numerics.Search_error.invalid ~where:"Adversary.worst_case" "no robots";
  let time_horizon = ratio_cap *. n in
  let candidates = candidate_targets trajectories ~eps ~n ~time_horizon () in
  let sup =
    List.fold_left
      (fun acc target ->
        let ratio =
          Engine.detection_ratio trajectories ~f ~target ~time_horizon
        in
        Stats.sup_add acc ~key:target ~value:ratio)
      Stats.sup_empty candidates
  in
  match Stats.sup_witness sup with
  | None -> Search_numerics.Search_error.invalid ~where:"Adversary.worst_case" "empty candidate set"
  | Some witness ->
      let ratio = Stats.sup_value sup in
      let detection_time =
        if Float.equal ratio infinity then infinity
        else ratio *. witness.World.dist
      in
      { ratio; witness; detection_time; candidates_scanned = List.length candidates }
