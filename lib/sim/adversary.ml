module Stats = Search_numerics.Stats
module Search_error = Search_numerics.Search_error

type outcome = {
  ratio : float;
  witness : World.point;
  detection_time : float;
  candidates_scanned : int;
}

let default_eps = 1e-7
let default_ratio_cap = 256.

(* Sorted dedup in place: candidate depths come in with real duplicates
   (the same turning depth reached by several trajectories, and the
   always-added [1.]/[n] colliding with leg endpoints), and every
   duplicate re-runs a full detection scan for an identical answer. *)
let sorted_dedup a =
  let n = Array.length a in
  if n <= 1 then a
  else begin
    Array.sort Float.compare a;
    let w = ref 1 in
    for r = 1 to n - 1 do
      if not (Float.equal a.(r) a.(!w - 1)) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    Array.sub a 0 !w
  end

(* Per-ray candidate depths, each ascending and duplicate-free.  Both
   kernels scan rays in index order and depths in ascending order, so
   the supremum fold visits identical (ray, depth) sequences — same
   ratio, same witness. *)
let candidate_depths trajectories ~eps ~n ~time_horizon =
  if n < 1. then
    Search_error.invalid ~where:"Adversary.candidate_targets" "need n >= 1";
  let world = Trajectory.world trajectories.(0) in
  let m = World.arity world in
  let depths_per_ray = Array.make m [] in
  let add ray d =
    if d >= 1. && d <= n then depths_per_ray.(ray) <- d :: depths_per_ray.(ray)
  in
  for ray = 0 to m - 1 do
    add ray 1.;
    add ray n
  done;
  Array.iter
    (fun tr ->
      List.iter
        (fun (ray, d) ->
          add ray d;
          add ray (d *. (1. -. eps));
          add ray (d *. (1. +. eps)))
        (Trajectory.leg_endpoints tr ~horizon:time_horizon))
    trajectories;
  Array.map (fun ds -> sorted_dedup (Array.of_list ds)) depths_per_ray

let candidate_targets trajectories ?(eps = default_eps) ~n ~time_horizon () =
  let world = Trajectory.world trajectories.(0) in
  let depths = candidate_depths trajectories ~eps ~n ~time_horizon in
  List.concat
    (List.mapi
       (fun ray ds ->
         Array.to_list ds |> List.map (fun d -> World.point world ~ray ~dist:d))
       (Array.to_list depths))

(* The compiled detection scan, extracted so the allocation lint can
   hold it to a zero budget and the bench can put a Gc meter on it.
   Writes [best ratio; best ray (as float); best dist] into [out]
   (unit return — a float return would box on the way out); [times] is
   the reused (f+1)-st-order-statistic scratch.  The flat first-visit
   probe is inlined (a cross-module call pays the float-return box) and
   the per-candidate [Array.sort] is an in-place insertion sort — [k]
   is the robot count, single digits, where insertion sort on an
   almost-sorted scratch beats the closure-per-comparison of
   [Array.sort Float.compare]. *)
let[@hot] compiled_scan ~flats ~depths ~times ~f ~k ~horizon ~out =
  out.(0) <- neg_infinity;
  out.(1) <- 0.;
  out.(2) <- 0.;
  for ray = 0 to Array.length depths - 1 do
    let ds = depths.(ray) in
    for di = 0 to Array.length ds - 1 do
      let d = ds.(di) in
      for r = 0 to k - 1 do
        let fl = flats.(r) in
        let len = Array.length fl.Trajectory.flat_starts in
        let j = ref 0 in
        let visit = ref infinity in
        let scanning = ref true in
        while !scanning && !j < len do
          if
            Int.equal fl.Trajectory.flat_rays.(!j) ray
            && d >= fl.Trajectory.flat_los.(!j)
            && d <= fl.Trajectory.flat_his.(!j)
          then begin
            let time =
              fl.Trajectory.flat_starts.(!j)
              +. Float.abs (d -. fl.Trajectory.flat_froms.(!j))
            in
            if time <= horizon then visit := time;
            scanning := false
          end
          else incr j
        done;
        times.(r) <- !visit
      done;
      for i = 1 to k - 1 do
        let x = times.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && times.(!j) > x do
          times.(!j + 1) <- times.(!j);
          decr j
        done;
        times.(!j + 1) <- x
      done;
      let t = if f < k then times.(f) else infinity in
      let ratio = if Float.equal t infinity then infinity else t /. d in
      (* same contract as [Stats.sup_add]: a NaN ratio surfaces.  NaN
         fails every ordered comparison, so this is the primitive NaN
         test — [Float.is_nan] would box the unboxed local to make the
         call. *)
      if not (ratio >= neg_infinity) then
        Search_error.raise_
          (Search_error.Non_convergence
             {
               where = "Stats.sup_add";
               steps = 0;
               detail = "supremum fed a NaN sample";
             });
      if ratio > out.(0) then begin
        out.(0) <- ratio;
        out.(1) <- Float.of_int ray;
        out.(2) <- d
      end
    done
  done

let worst_case trajectories ~f ?(eps = default_eps)
    ?(ratio_cap = default_ratio_cap) ?(kernel = `Compiled) ~n () =
  if Array.length trajectories = 0 then
    Search_error.invalid ~where:"Adversary.worst_case" "no robots";
  let time_horizon = ratio_cap *. n in
  let world = Trajectory.world trajectories.(0) in
  let depths = candidate_depths trajectories ~eps ~n ~time_horizon in
  let scanned = Array.fold_left (fun acc a -> acc + Array.length a) 0 depths in
  match kernel with
  | `Lazy ->
      (* reference path: per-candidate option lists through [Engine] *)
      let sup = ref Stats.sup_empty in
      Array.iteri
        (fun ray ds ->
          Array.iter
            (fun d ->
              let target = World.point world ~ray ~dist:d in
              let ratio =
                Engine.detection_ratio trajectories ~f ~target ~time_horizon
              in
              sup := Stats.sup_add !sup ~key:target ~value:ratio)
            ds)
        depths;
      let sup = !sup in
      (match Stats.sup_witness sup with
      | None ->
          Search_error.invalid ~where:"Adversary.worst_case"
            "empty candidate set"
      | Some witness ->
          let ratio = Stats.sup_value sup in
          let detection_time =
            if Float.equal ratio infinity then infinity
            else ratio *. witness.World.dist
          in
          { ratio; witness; detection_time; candidates_scanned = scanned })
  | `Compiled ->
      if f < 0 then Search_error.invalid ~where:"Adversary.worst_case" "f < 0";
      (* fast path: flat leg arrays, a reused scratch array for the
         (f+1)-st smallest visit time, no per-candidate allocation.  The
         arithmetic (visit times, the (f+1)-st order statistic, the
         ratio) matches the lazy path bit for bit, and candidates are
         visited in the same order, so ratio and witness agree exactly. *)
      let flats =
        Array.map
          (fun tr -> Trajectory.flatten tr ~horizon:time_horizon)
          trajectories
      in
      let k = Array.length trajectories in
      let times = Array.make k infinity in
      let out = [| neg_infinity; 0.; 0. |] in
      compiled_scan ~flats ~depths ~times ~f ~k ~horizon:time_horizon ~out;
      if Float.equal out.(0) neg_infinity then
        Search_error.invalid ~where:"Adversary.worst_case"
          "empty candidate set";
      let witness =
        World.point world ~ray:(int_of_float out.(1)) ~dist:out.(2)
      in
      let ratio = out.(0) in
      let detection_time =
        if Float.equal ratio infinity then infinity
        else ratio *. witness.World.dist
      in
      { ratio; witness; detection_time; candidates_scanned = scanned }
