type t = { m : int }

let rays m =
  if m < 1 then invalid_arg "World.rays: need m >= 1";
  { m }

let line = rays 2
let arity t = t.m

type point = { ray : int; dist : float }

let point t ~ray ~dist =
  if ray < 0 || ray >= t.m then
    invalid_arg (Printf.sprintf "World.point: ray %d outside [0, %d)" ray t.m);
  if dist < 0. || Float.is_nan dist then
    invalid_arg "World.point: need dist >= 0";
  { ray; dist }

let origin = { ray = 0; dist = 0. }
let is_origin p = Float.equal p.dist 0.
let equal_point a b =
  (is_origin a && is_origin b)
  || (Int.equal a.ray b.ray && Float.equal a.dist b.dist)

let travel_distance a b =
  if Int.equal a.ray b.ray then Float.abs (a.dist -. b.dist)
  else if is_origin a then b.dist
  else if is_origin b then a.dist
  else a.dist +. b.dist

let line_coordinate p =
  match p.ray with
  | 0 -> p.dist
  | 1 -> -.p.dist
  | r -> invalid_arg (Printf.sprintf "World.line_coordinate: ray %d" r)

let of_line_coordinate x =
  if x >= 0. then { ray = 0; dist = x } else { ray = 1; dist = -.x }

let pp_point ppf p =
  if is_origin p then Format.pp_print_string ppf "origin"
  else Format.fprintf ppf "ray %d @@ %g" p.ray p.dist
