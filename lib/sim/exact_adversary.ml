type piece = { x_lo : float; x_hi : float; a : float; b : float }

let eval p x = p.a +. (p.b *. x)

(* First-visit pieces on one ray: walk legs in time order; every depth is
   first reached on an outbound leg, at time t_start + (x - d_from). *)
let first_visit_pieces tr ~ray ~x_max ~time_horizon =
  let rec walk i covered acc =
    let l = Trajectory.leg tr i in
    if l.Trajectory.t_start > time_horizon then List.rev acc
    else
      let covered, acc =
        if
          Int.equal l.Trajectory.ray ray
          && l.Trajectory.d_to > l.Trajectory.d_from (* outbound *)
          && l.Trajectory.d_to > covered
        then begin
          let lo = Float.max covered l.Trajectory.d_from in
          let reach_time_limited =
            (* clip the piece so the visit happens within the horizon *)
            Float.min l.Trajectory.d_to
              (l.Trajectory.d_from +. (time_horizon -. l.Trajectory.t_start))
          in
          let hi = Float.min x_max reach_time_limited in
          if hi > lo then
            ( Float.max covered reach_time_limited,
              {
                x_lo = lo;
                x_hi = hi;
                a = l.Trajectory.t_start -. l.Trajectory.d_from;
                b = 1.;
              }
              :: acc )
          else (Float.max covered reach_time_limited, acc)
        end
        else (covered, acc)
      in
      if covered >= x_max then List.rev acc else walk (i + 1) covered acc
  in
  walk 1 0. []

(* Pointwise order statistic of several piecewise-affine functions.  We
   refine the x-axis by all piece boundaries and all pairwise crossings,
   then on each elementary interval select the rank-th smallest affine
   function (functions are affine on the whole interval there, and their
   order is constant between crossings). *)
let order_statistic fns ~rank ~x_max =
  let boundaries =
    Array.to_list fns
    |> List.concat_map (fun ps -> List.concat_map (fun p -> [ p.x_lo; p.x_hi ]) ps)
    |> List.filter (fun x -> x > 0. && x < x_max)
  in
  (* the affine function of robot r active at point x, if any *)
  let active_at r x =
    List.find_opt (fun p -> x > p.x_lo && x <= p.x_hi) fns.(r)
  in
  (* pairwise crossings inside the current refinement *)
  let crossings =
    let cross = ref [] in
    let n = Array.length fns in
    for r1 = 0 to n - 1 do
      for r2 = r1 + 1 to n - 1 do
        List.iter
          (fun p1 ->
            List.iter
              (fun p2 ->
                if not (Float.equal p1.b p2.b) then begin
                  let x = (p2.a -. p1.a) /. (p1.b -. p2.b) in
                  if
                    x > Float.max p1.x_lo p2.x_lo
                    && x <= Float.min p1.x_hi p2.x_hi
                    && x > 0. && x < x_max
                  then cross := x :: !cross
                end)
              fns.(r2))
          fns.(r1)
      done
    done;
    !cross
  in
  let cuts =
    (boundaries @ crossings @ [ x_max ])
    |> List.filter (fun x -> x > 0.)
    |> List.sort_uniq Float.compare
  in
  let rec pieces last acc = function
    | [] -> List.rev acc
    | cut :: rest ->
        let mid = 0.5 *. (last +. cut) in
        let present =
          Array.to_list fns
          |> List.mapi (fun r _ -> active_at r mid)
          |> List.filter_map Fun.id
          |> List.sort (fun p1 p2 -> Float.compare (eval p1 mid) (eval p2 mid))
        in
        let acc =
          match List.nth_opt present rank with
          | Some p -> { x_lo = last; x_hi = cut; a = p.a; b = p.b } :: acc
          | None -> acc
        in
        pieces cut acc rest
  in
  pieces 0. [] cuts

type outcome = {
  sup : float;
  witness_dist : float;
  witness_ray : int;
  attained : bool;
}

let worst_case trajectories ~f ?(ratio_cap = 1024.) ~n () =
  if Array.length trajectories = 0 then
    invalid_arg "Exact_adversary.worst_case: no robots";
  if n < 1. then invalid_arg "Exact_adversary.worst_case: need n >= 1";
  let world = Trajectory.world trajectories.(0) in
  let time_horizon = ratio_cap *. n in
  let best = ref { sup = neg_infinity; witness_dist = 1.; witness_ray = 0; attained = true } in
  let consider ~ray ~dist ~value ~attained =
    if value > !best.sup then
      best := { sup = value; witness_dist = dist; witness_ray = ray; attained }
  in
  for ray = 0 to World.arity world - 1 do
    let fns =
      Array.map
        (fun tr -> first_visit_pieces tr ~ray ~x_max:n ~time_horizon)
        trajectories
    in
    let detect = order_statistic fns ~rank:f ~x_max:n in
    (* undetectable stretches within [1, n]: any gap in the pieces *)
    let rec scan last = function
      | [] -> if last < n then consider ~ray ~dist:n ~value:infinity ~attained:false
      | p :: rest ->
          if p.x_lo > last && p.x_lo >= 1. && last < n then
            consider ~ray ~dist:(Float.max 1. last) ~value:infinity
              ~attained:false
          else begin
            (* ratio (a + b x)/x on the piece clipped to [1, n]: monotone,
               extremes at the (one-sided) endpoints *)
            let lo = Float.max 1. p.x_lo and hi = Float.min n p.x_hi in
            if lo <= hi then begin
              (* right endpoint: attained *)
              consider ~ray ~dist:hi ~value:(eval p hi /. hi) ~attained:true;
              (* left endpoint: attained iff it is 1 (the domain's closed
                 edge) or coincides with the previous piece's right end
                 value; otherwise a one-sided limit *)
              let v_lo = eval p lo /. lo in
              consider ~ray ~dist:lo ~value:v_lo ~attained:(Float.equal lo 1.)
            end
          end;
          scan (Float.max last p.x_hi) rest
    in
    scan 0. detect
  done;
  !best
