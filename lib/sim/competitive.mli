(** Empirical competitive ratios: profiles and horizon convergence.

    Wraps {!Adversary.worst_case} with the reporting shapes used by the
    experiments: the full ratio-vs-distance profile (a "figure" series) and
    the convergence of the finite-horizon supremum to the paper's bound as
    the horizon grows (experiment F4). *)

type profile_point = { dist : float; ray : int; ratio : float }

val sup_ratio :
  Trajectory.t array -> f:int -> ?eps:float -> ?ratio_cap:float
  -> ?kernel:[ `Lazy | `Compiled ] -> n:float -> unit -> Adversary.outcome
(** Alias for {!Adversary.worst_case}. *)

val profile :
  Trajectory.t array -> f:int -> ?ratio_cap:float -> n:float -> samples:int
  -> unit -> profile_point list
(** Detection ratio at [samples] log-spaced distances in [[1, n]] on every
    ray, in increasing distance order (rays interleaved).  This is the raw
    series behind the ratio curves. *)

val horizon_convergence :
  make_trajectories:(unit -> Trajectory.t array) -> f:int
  -> ?ratio_cap:float -> ns:float list -> unit -> (float * float) list
(** [(n, sup-ratio over [1, n])] for each horizon in [ns].
    [make_trajectories] is called once per horizon so that memoisation
    caches don't accumulate across runs. *)
