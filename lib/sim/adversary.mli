(** The adversary: worst-case target placement.

    For a fixed group of trajectories, the worst-case competitive ratio
    over targets in [[1, N]] on each ray is a supremum of
    [detection_time(x) / x].  Between consecutive turning points the
    detection time is affine in [x] with slope [±1] (the last needed
    visitor is on a single leg), so [ratio(x)] is monotone there and the
    supremum is attained arbitrarily close to the breakpoints — the leg
    endpoints of the robots.  The scan therefore evaluates each breakpoint
    depth [d] together with [d (1 ± eps)], which brackets the one-sided
    limits; this is exactly the adversary of the paper's proofs ("the
    adversary will place the target there"), discretised to precision
    [eps]. *)

type outcome = {
  ratio : float;  (** the supremum found ([infinity] if some target escapes) *)
  witness : World.point;  (** a target attaining (approaching) it *)
  detection_time : float;  (** detection time at the witness *)
  candidates_scanned : int;
}

val default_eps : float
(** Relative bracketing offset around breakpoints: [1e-7]. *)

val default_ratio_cap : float
(** Time-horizon multiplier: a target at distance [x] undetected by time
    [ratio_cap *. x] is reported as escaping ([ratio = infinity]).
    Default [256.] — far above every bound in the paper's range. *)

val candidate_targets :
  Trajectory.t array -> ?eps:float -> n:float -> time_horizon:float -> unit
  -> World.point list
(** All breakpoint-bracketing targets with distances in [[1, n]]:
    the distances [1.], [n], and [d], [d (1-eps)], [d (1+eps)] for every
    leg-endpoint depth [d] of every robot reached within [time_horizon].
    Sorted by ray index, then ascending distance, with exact duplicates
    removed — the same depth reached by several robots (or colliding with
    the [1.]/[n] endpoints) is scanned once. *)

val compiled_scan :
  flats:Trajectory.flat array ->
  depths:float array array ->
  times:float array ->
  f:int ->
  k:int ->
  horizon:float ->
  out:float array ->
  unit
(** The allocation-free inner loop of the [`Compiled] kernel, exposed
    so the bench harness can put a Gc meter directly on it.  [flats]
    are the [k] flattened trajectories, [depths] the per-ray candidate
    depths (ascending, duplicate-free), [times] a reused length-[k]
    scratch.  Writes [[| best ratio; best ray (as float); best dist |]]
    into [out] ([out.(0) = neg_infinity] when the candidate set is
    empty); raises the {!Search_numerics.Search_error.Non_convergence}
    NaN contract of [Stats.sup_add].  A [@hot] lint root: zero
    reachable allocation sites, checked by [lint --hotpath] and
    cross-checked dynamically by [bench/kernels.exe]. *)

val worst_case :
  Trajectory.t array -> f:int -> ?eps:float -> ?ratio_cap:float
  -> ?kernel:[ `Lazy | `Compiled ] -> n:float -> unit -> outcome
(** Supremum of the crash-fault detection ratio over {!candidate_targets}.
    Requires a non-empty trajectory array and [n >= 1.].

    [kernel] selects the scan implementation: [`Compiled] (default)
    flattens each trajectory's leg prefix into arrays once and runs an
    allocation-free inner loop with a reused scratch array for the
    (f+1)-st-smallest visit time; [`Lazy] evaluates each candidate
    through {!Engine.detection_ratio} (consed lists, per-candidate
    sort).  Both visit the candidates in the same order and perform the
    same float operations, so [ratio], [witness] and [detection_time]
    are bit-identical. *)
