let first_visits trajectories ~target ~horizon =
  Array.map (fun tr -> Trajectory.first_visit tr ~target ~horizon) trajectories

let detection_time_fixed trajectories ~assignment ~target ~horizon =
  let { Fault.faulty; _ } = assignment in
  if Array.length faulty <> Array.length trajectories then
    Search_numerics.Search_error.invalid ~where:"Engine.detection_time_fixed" "assignment arity mismatch";
  let best = ref None in
  Array.iteri
    (fun r tr ->
      if not faulty.(r) then
        match Trajectory.first_visit tr ~target ~horizon with
        | Some t ->
            best :=
              Some (match !best with None -> t | Some b -> Float.min b t)
        | None -> ())
    trajectories;
  !best

let detection_time_worst trajectories ~f ~target ~horizon =
  if f < 0 then Search_numerics.Search_error.invalid ~where:"Engine.detection_time_worst" "f < 0";
  let times =
    first_visits trajectories ~target ~horizon
    |> Array.to_list
    |> List.filter_map Fun.id
    |> List.sort Float.compare
  in
  List.nth_opt times f

let detection_ratio trajectories ~f ~target ~time_horizon =
  if target.World.dist < 1. then
    Search_numerics.Search_error.invalid ~where:"Engine.detection_ratio" "need |target| >= 1";
  match detection_time_worst trajectories ~f ~target ~horizon:time_horizon with
  | None -> infinity
  | Some t -> t /. target.World.dist
