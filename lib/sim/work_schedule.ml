module Lazy_seq = Search_numerics.Lazy_seq
module Stats = Search_numerics.Stats
module E = Search_numerics.Search_error

type move = { robot : int; target : World.point }

type t = {
  world : World.t;
  robots : int;
  moves : move Lazy_seq.t;
}

let make ~world ~robots moves =
  if robots < 1 then invalid_arg "Work_schedule.make: need robots >= 1";
  let check i =
    let mv = moves i in
    if mv.robot < 0 || mv.robot >= robots then
      invalid_arg "Work_schedule.make: robot index out of range";
    (* revalidate the point against the world *)
    {
      mv with
      target = World.point world ~ray:mv.target.World.ray ~dist:mv.target.World.dist;
    }
  in
  { world; robots; moves = Lazy_seq.of_fun check }

let world t = t.world
let robots t = t.robots
let move t i = Lazy_seq.get t.moves i

(* Does moving from [from_] to [to_] pass through [target], and after how
   much travel?  The path is direct on a shared ray, otherwise through
   the origin. *)
let passage ~from_ ~to_ ~target =
  let same_ray =
    World.is_origin from_ || World.is_origin to_
    || Int.equal from_.World.ray to_.World.ray
  in
  if same_ray then begin
    let ray =
      if World.is_origin from_ then to_.World.ray else from_.World.ray
    in
    if (not (Int.equal target.World.ray ray)) && not (World.is_origin target)
    then None
    else
      let d = target.World.dist in
      let lo = Float.min from_.World.dist to_.World.dist in
      let hi = Float.max from_.World.dist to_.World.dist in
      if d < lo || d > hi then None
      else Some (Float.abs (d -. from_.World.dist))
  end
  else begin
    (* inbound on from_.ray then outbound on to_.ray *)
    let d = target.World.dist in
    if (Int.equal target.World.ray from_.World.ray || World.is_origin target)
       && d <= from_.World.dist
    then Some (from_.World.dist -. d)
    else if Int.equal target.World.ray to_.World.ray && d <= to_.World.dist
    then
      Some (from_.World.dist +. d)
    else None
  end

let fold_moves ?(max_moves = 1_000_000) t ~continue ~f init =
  let positions = Array.make t.robots World.origin in
  let rec loop i acc =
    if i > max_moves then
      E.raise_
        (E.Non_convergence
           {
             where = "Work_schedule";
             steps = max_moves;
             detail = Printf.sprintf "exceeded %d moves" max_moves;
           })
    else
      let mv = move t i in
      let from_ = positions.(mv.robot) in
      match continue acc from_ mv with
      | false -> acc
      | true ->
          let acc = f acc ~from_ ~mv in
          positions.(mv.robot) <- mv.target;
          loop (i + 1) acc
  in
  loop 1 init

let work_to_visit ?max_moves t ~target ~work_budget =
  let result = ref None in
  let total =
    try
      fold_moves ?max_moves t
        ~continue:(fun work _ _ -> !result = None && work <= work_budget)
        ~f:(fun work ~from_ ~mv ->
          (match passage ~from_ ~to_:mv.target ~target with
          | Some partial when work +. partial <= work_budget ->
              if !result = None then result := Some (work +. partial)
          | Some _ | None -> ());
          work +. World.travel_distance from_ mv.target)
        0.
    with E.Error (E.Non_convergence _) -> work_budget +. 1.
  in
  ignore total;
  !result

let move_endpoints ?max_moves t ~work_budget =
  let acc =
    fold_moves ?max_moves t
      ~continue:(fun (work, _) _ _ -> work <= work_budget)
      ~f:(fun (work, eps) ~from_ ~mv ->
        ( work +. World.travel_distance from_ mv.target,
          (mv.target.World.ray, mv.target.World.dist) :: eps ))
      (0., [])
  in
  List.rev (snd acc)

type outcome = { ratio : float; witness : World.point }

let worst_ratio ?(eps = 1e-7) ?(ratio_cap = 1024.) t ~n () =
  if n < 1. then invalid_arg "Work_schedule.worst_ratio: need n >= 1";
  let budget = ratio_cap *. n in
  let endpoints = move_endpoints t ~work_budget:budget in
  let candidates = ref [] in
  let add ray dist =
    if dist >= 1. && dist <= n then
      candidates := World.point t.world ~ray ~dist :: !candidates
  in
  for ray = 0 to World.arity t.world - 1 do
    add ray 1.;
    add ray n
  done;
  List.iter
    (fun (ray, d) ->
      add ray d;
      add ray (d *. (1. -. eps));
      add ray (d *. (1. +. eps)))
    endpoints;
  let sup =
    List.fold_left
      (fun acc target ->
        let ratio =
          match
            work_to_visit t ~target
              ~work_budget:(ratio_cap *. target.World.dist)
          with
          | Some w -> w /. target.World.dist
          | None -> infinity
        in
        Stats.sup_add acc ~key:target ~value:ratio)
      Stats.sup_empty !candidates
  in
  match Stats.sup_witness sup with
  | None -> invalid_arg "Work_schedule.worst_ratio: no candidates"
  | Some witness -> { ratio = Stats.sup_value sup; witness }

let kmsy ?(alpha = 2.) ~m ~k () =
  if not (1 <= k && k <= m) then invalid_arg "Work_schedule.kmsy: need 1 <= k <= m";
  if alpha <= 1. then invalid_arg "Work_schedule.kmsy: need alpha > 1";
  let world = World.rays m in
  let scale = alpha ** float_of_int (-2 * m) in
  let moves i =
    let p = i - 1 in
    let ray = p mod m in
    let robot = if ray <= k - 2 then ray else k - 1 in
    { robot; target = World.point world ~ray ~dist:(scale *. (alpha ** float_of_int p)) }
  in
  make ~world ~robots:k moves

let parallel_charged trajectories ~f ~n =
  let out = Adversary.worst_case trajectories ~f ~n () in
  float_of_int (Array.length trajectories) *. out.Adversary.ratio
