(** Announcement-level simulation of Byzantine-type faults.

    In the Byzantine model of Czyzowitz et al. (ISAAC'16) a faulty robot
    "may stay silent even when it detects or visits the target, or may
    claim that it has found the target when, in fact, it has not".  The
    searchers here use the conservative confirmation rule that is provably
    safe for any fault pattern:

    {e a location is confirmed as the target once f + 1 distinct robots
    have announced the target there.}

    Under this rule no false claim can ever be confirmed (at most [f]
    robots lie, and honest visitors of a non-target stay silent).  The
    rule is strictly {e more} conservative than the crash model: faulty
    robots never announce the true target either, so confirmation needs
    [f + 1] distinct {e honest} visitors, and the worst case over fault
    assignments is the [(2f+1)]-st distinct robot's visit (the adversary
    silences the [f] earliest) — compared to the [(f+1)]-st in the crash
    model.  This concretely witnesses the direction of the paper's
    transfer [B(k, f) >= A(k, f)]: Byzantine faults can only make the
    problem harder.  The richer inference rules of ISAAC'16 (cross-
    checking claims, exploiting silences) narrow the gap from the upper
    side; they are beyond this conservative baseline.

    The simulator takes explicit lie schedules so that tests can check
    both safety (no false confirmation) and liveness (true target
    confirmed at the (f+1)-st honest visit). *)

type claim = { robot : int; place : World.point; at_time : float }
(** Robot [robot] announces "target at [place]" at [at_time].  The
    announcement is only physically possible if the robot is at [place]
    at that time; {!run} validates this. *)

type event =
  | Visit of { robot : int; time : float }
      (** a robot reaches the true target *)
  | Announcement of claim
  | Confirmed of { place : World.point; time : float }

type result = {
  confirmed_at : float option;
      (** time the true target is confirmed, if within the horizon *)
  false_confirmation : (World.point * float) option;
      (** a non-target location that got confirmed — must be [None] for
          any valid run; surfaced so tests can assert safety *)
  events : event list;  (** chronological *)
}

val run :
  Trajectory.t array -> assignment:Fault.assignment -> lies:claim list
  -> target:World.point -> horizon:float -> result
(** Simulate: honest robots announce the target truthfully on every visit;
    faulty (Byzantine) robots are silent at the target and additionally
    issue the [lies].  Requires [assignment.kind = Byzantine].
    @raise Search_numerics.Search_error.Error ([Invalid_input]) when a
      lie schedule announces from a place the robot does not occupy at
      that time, or an honest robot is scheduled to lie. *)

val worst_case_detection :
  Trajectory.t array -> f:int -> target:World.point -> horizon:float
  -> float option
(** Worst case over assignments and lie schedules under the confirmation
    rule: lies never help the adversary (announcement sets are
    per-place), so the worst case is making the [f] earliest visitors
    faulty and silent — the [(2f+1)]-st distinct robot's first visit,
    i.e. [Engine.detection_time_worst] with [2 f] tolerated faults.
    [None] when fewer than [2f + 1] robots visit within the horizon. *)
