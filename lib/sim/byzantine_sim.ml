type claim = { robot : int; place : World.point; at_time : float }

type event =
  | Visit of { robot : int; time : float }
  | Announcement of claim
  | Confirmed of { place : World.point; time : float }

type result = {
  confirmed_at : float option;
  false_confirmation : (World.point * float) option;
  events : event list;
}

let invalid_claim what =
  Search_numerics.Search_error.invalid ~where:"Byzantine_sim.claim" what

let event_time = function
  | Visit { time; _ } -> time
  | Announcement { at_time; _ } -> at_time
  | Confirmed { time; _ } -> time

let validate_claim trajectories ~assignment (c : claim) =
  let n = Array.length trajectories in
  if c.robot < 0 || c.robot >= n then
    invalid_claim (Printf.sprintf "robot %d out of range" c.robot);
  if not assignment.Fault.faulty.(c.robot) then
    invalid_claim (Printf.sprintf "robot %d is honest, cannot lie" c.robot);
  let pos = Trajectory.position trajectories.(c.robot) c.at_time in
  if not (World.equal_point pos c.place) then
    invalid_claim
      (Format.asprintf "robot %d is at %a, not at %a, at time %g" c.robot
         World.pp_point pos World.pp_point c.place c.at_time)

let run trajectories ~assignment ~lies ~target ~horizon =
  if assignment.Fault.kind <> Fault.Byzantine then
    invalid_arg "Byzantine_sim.run: assignment must be Byzantine";
  if Array.length assignment.Fault.faulty <> Array.length trajectories then
    invalid_arg "Byzantine_sim.run: assignment arity mismatch";
  List.iter (validate_claim trajectories ~assignment) lies;
  (* Collect announcements: honest robots announce truthfully at every
     visit of the target; Byzantine robots announce only their lies. *)
  let truthful =
    Array.to_list
      (Array.mapi
         (fun r tr ->
           if assignment.Fault.faulty.(r) then []
           else
             Trajectory.visits tr ~target ~horizon
             |> List.map (fun time ->
                    { robot = r; place = target; at_time = time }))
         trajectories)
    |> List.concat
  in
  let lies = List.filter (fun c -> c.at_time <= horizon) lies in
  let announcements =
    List.sort
      (fun a b -> Float.compare a.at_time b.at_time)
      (truthful @ lies)
  in
  (* Confirmation rule: a place is confirmed once f+1 = (#faulty)+1 distinct
     robots have announced it.  Track per-place announcer sets. *)
  let f = Fault.count_faulty assignment in
  let by_place : (World.point * int list ref) list ref = ref [] in
  let announcers place =
    match
      List.find_opt (fun (p, _) -> World.equal_point p place) !by_place
    with
    | Some (_, set) -> set
    | None ->
        let set = ref [] in
        by_place := (place, set) :: !by_place;
        set
  in
  let visits =
    Array.to_list
      (Array.mapi
         (fun r tr ->
           Trajectory.visits tr ~target ~horizon
           |> List.map (fun time -> Visit { robot = r; time }))
         trajectories)
    |> List.concat
  in
  let confirmed_at = ref None in
  let false_confirmation = ref None in
  let confirmation_events = ref [] in
  List.iter
    (fun c ->
      let set = announcers c.place in
      if not (List.mem c.robot !set) then begin
        set := c.robot :: !set;
        if List.length !set = f + 1 then begin
          confirmation_events :=
            Confirmed { place = c.place; time = c.at_time }
            :: !confirmation_events;
          if World.equal_point c.place target then begin
            if !confirmed_at = None then confirmed_at := Some c.at_time
          end
          else if !false_confirmation = None then
            false_confirmation := Some (c.place, c.at_time)
        end
      end)
    announcements;
  let events =
    visits
    @ List.map (fun c -> Announcement c) announcements
    @ !confirmation_events
    |> List.sort (fun a b -> Float.compare (event_time a) (event_time b))
  in
  {
    confirmed_at = !confirmed_at;
    false_confirmation = !false_confirmation;
    events;
  }

let worst_case_detection trajectories ~f ~target ~horizon =
  (* Lies cannot delay the true confirmation (announcement sets are
     per-place and independent), so the adversary's best move is silence:
     make the f earliest visitors faulty.  Confirmation then waits for
     f + 1 honest visitors — the (2f+1)-st distinct visitor overall. *)
  Engine.detection_time_worst trajectories ~f:(2 * f) ~target ~horizon
