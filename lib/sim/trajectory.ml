module Lazy_seq = Search_numerics.Lazy_seq
module E = Search_numerics.Search_error

type leg = { ray : int; d_from : float; d_to : float; t_start : float }

type t = { itinerary : Itinerary.t; legs : leg Lazy_seq.t }

let stalled ~steps detail =
  E.raise_
    (E.Non_convergence { where = "Trajectory"; steps; detail })

let default_max_legs = 2_000_000

(* State of the leg generator: next waypoint to head to, current location
   and time, plus a stashed second leg when a ray change was split. *)
type gen_state = {
  next_wp : int;
  pos : World.point;
  now : float;
  stash : (int * float) option; (* (ray, d_to): outbound leg from origin *)
}

let duration d_from d_to = Float.abs (d_to -. d_from)

let compile itinerary =
  let step state =
    match state.stash with
    | Some (ray, d_to) ->
        let l = { ray; d_from = 0.; d_to; t_start = state.now } in
        ( l,
          {
            next_wp = state.next_wp;
            pos = World.point (Itinerary.world itinerary) ~ray ~dist:d_to;
            now = state.now +. d_to;
            stash = None;
          } )
    | None ->
        (* Find the next waypoint that produces a nonzero move; bound the
           scan so a constant itinerary raises instead of spinning. *)
        let rec advance i guard =
          if guard > 1000 then
            stalled ~steps:guard
              (Printf.sprintf "%s: 1000 consecutive stationary waypoints"
                 (Itinerary.label itinerary))
          else
            let wp = Itinerary.waypoint itinerary i in
            if World.equal_point wp state.pos then advance (i + 1) (guard + 1)
            else (i, wp)
        in
        let i, wp = advance state.next_wp 0 in
        let same_ray =
          World.is_origin state.pos || World.is_origin wp
          || Int.equal wp.World.ray state.pos.World.ray
        in
        if same_ray then
          let ray =
            if World.is_origin wp then state.pos.World.ray else wp.World.ray
          in
          let d_from = state.pos.World.dist and d_to = wp.World.dist in
          let l = { ray; d_from; d_to; t_start = state.now } in
          ( l,
            {
              next_wp = i + 1;
              pos = wp;
              now = state.now +. duration d_from d_to;
              stash = None;
            } )
        else
          (* inbound leg now; outbound leg stashed *)
          let d_from = state.pos.World.dist in
          let l =
            { ray = state.pos.World.ray; d_from; d_to = 0.; t_start = state.now }
          in
          ( l,
            {
              next_wp = i + 1;
              pos = World.origin;
              now = state.now +. d_from;
              stash = Some (wp.World.ray, wp.World.dist);
            } )
  in
  let init = { next_wp = 1; pos = World.origin; now = 0.; stash = None } in
  { itinerary; legs = Lazy_seq.unfold ~init step }

let itinerary t = t.itinerary
let world t = Itinerary.world t.itinerary
let label t = Itinerary.label t.itinerary
let leg t i = Lazy_seq.get t.legs i

let leg_end l = l.t_start +. duration l.d_from l.d_to

(* Walk legs while [continue leg] holds, threading an accumulator. *)
let fold_legs t ~max_legs ~continue ~f init =
  let rec loop i acc =
    if i > max_legs then
      stalled ~steps:max_legs
        (Printf.sprintf "%s: exceeded %d legs within horizon" (label t)
           max_legs)
    else
      let l = leg t i in
      if not (continue l) then acc else loop (i + 1) (f acc l)
  in
  loop 1 init

let position ?(max_legs = default_max_legs) t time =
  if time < 0. then invalid_arg "Trajectory.position: negative time";
  let found =
    fold_legs t ~max_legs
      ~continue:(fun l -> l.t_start <= time)
      ~f:(fun acc l ->
        if time <= leg_end l then
          let progressed = time -. l.t_start in
          let dir = if l.d_to >= l.d_from then 1. else -1. in
          Some (World.point (world t) ~ray:l.ray ~dist:(l.d_from +. (dir *. progressed)))
        else acc)
      None
  in
  match found with
  | Some p -> p
  | None -> World.origin (* time 0 before any leg *)

(* Visit times of [target] within one leg. *)
let leg_visit l (target : World.point) =
  if (not (Int.equal l.ray target.World.ray)) && not (World.is_origin target)
  then None
  else
    let d = target.World.dist in
    let lo = Float.min l.d_from l.d_to and hi = Float.max l.d_from l.d_to in
    if World.is_origin target then
      (* the origin belongs to every ray *)
      if lo <= 0. && 0. <= hi then Some (l.t_start +. duration l.d_from 0.)
      else None
    else if d < lo || d > hi then None
    else Some (l.t_start +. duration l.d_from d)

let visits ?(max_legs = default_max_legs) t ~target ~horizon =
  let times =
    fold_legs t ~max_legs
      ~continue:(fun l -> l.t_start <= horizon)
      ~f:(fun acc l ->
        match leg_visit l target with
        | Some time when time <= horizon -> time :: acc
        | Some _ | None -> acc)
      []
  in
  (* A turn exactly at the target produces the same time from the inbound
     and outbound legs; dedup. *)
  List.sort_uniq Float.compare times

let first_visit ?max_legs t ~target ~horizon =
  match visits ?max_legs t ~target ~horizon with [] -> None | x :: _ -> Some x

let leg_endpoints ?(max_legs = default_max_legs) t ~horizon =
  fold_legs t ~max_legs
    ~continue:(fun l -> l.t_start <= horizon)
    ~f:(fun acc l -> (l.ray, l.d_to) :: acc)
    []
  |> List.rev

(* Flat (struct-of-arrays) view of the leg prefix within a horizon: the
   adversary probes the same prefix once per candidate target, and the
   lazy path pays a mutex + hashtable probe per leg per candidate.  The
   flat view is built in one walk and scanned with plain array reads. *)
type flat = {
  flat_rays : int array;
  flat_froms : float array;
  flat_los : float array;
  flat_his : float array;
  flat_starts : float array;
}

let flatten ?(max_legs = default_max_legs) t ~horizon =
  let legs =
    fold_legs t ~max_legs
      ~continue:(fun l -> l.t_start <= horizon)
      ~f:(fun acc l -> l :: acc)
      []
    |> List.rev |> Array.of_list
  in
  {
    flat_rays = Array.map (fun l -> l.ray) legs;
    flat_froms = Array.map (fun l -> l.d_from) legs;
    flat_los = Array.map (fun l -> Float.min l.d_from l.d_to) legs;
    flat_his = Array.map (fun l -> Float.max l.d_from l.d_to) legs;
    flat_starts = Array.map (fun l -> l.t_start) legs;
  }

let[@hot] flat_first_visit fl ~ray ~dist ~horizon =
  (* Legs are time-ordered, so the first leg containing the target gives
     the earliest visit; a visit time past the horizon cannot be beaten
     by a later leg (whose times are even later), hence the early
     [infinity].  Bit-identical to [first_visit] for targets with
     [dist >= 1] (never the origin): same time expression, same horizon
     cut.  [infinity] encodes "not visited" so callers can sort a
     scratch array without an option box.  A while loop over unboxed
     local refs, not a recursive closure — this probe runs once per
     robot per candidate and must not allocate. *)
  let len = Array.length fl.flat_starts in
  let j = ref 0 in
  let out = ref infinity in
  let scanning = ref true in
  while !scanning && !j < len do
    if
      Int.equal fl.flat_rays.(!j) ray
      && dist >= fl.flat_los.(!j)
      && dist <= fl.flat_his.(!j)
    then begin
      let time =
        fl.flat_starts.(!j) +. Float.abs (dist -. fl.flat_froms.(!j))
      in
      if time <= horizon then out := time;
      scanning := false
    end
    else incr j
  done;
  !out
