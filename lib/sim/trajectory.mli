(** Compiled unit-speed motion of one robot.

    An {!Itinerary.t} is compiled into an infinite sequence of {e legs}:
    maximal stretches of motion along a single ray.  A waypoint change
    between distinct rays contributes two legs (in to the origin, out on the
    new ray).  All queries walk the legs lazily and are bounded by a time
    horizon, since strategies are infinite objects.

    Invariant (checked by the property tests): motion is continuous and has
    speed exactly 1 — the duration of every leg equals its travelled
    distance. *)

type leg = private {
  ray : int;
  d_from : float;
  d_to : float;
  t_start : float;
}
(** Motion along [ray] from distance [d_from] to [d_to], starting at
    [t_start] and lasting [|d_to -. d_from|]. *)

type t

val compile : Itinerary.t -> t
val itinerary : t -> Itinerary.t
val world : t -> World.t
val label : t -> string

val leg : t -> int -> leg
(** The i-th leg (1-based); zero-duration legs are elided. *)

val position : ?max_legs:int -> t -> float -> World.point
(** Location at a given time [>= 0.]; the robot starts at the origin.
    @raise Search_numerics.Search_error.Error ([Non_convergence]) when a
      strategy stops making progress: more than [max_legs] consecutive
      legs fit under the queried horizon.  This catches malformed
      strategies whose turning points stop growing. *)

val first_visit : ?max_legs:int -> t -> target:World.point -> horizon:float -> float option
(** Earliest time [<= horizon] at which the robot is at [target]. *)

val visits : ?max_legs:int -> t -> target:World.point -> horizon:float -> float list
(** All visit times [<= horizon], increasing.  A tangential turn at the
    target (arriving and immediately reversing) counts once. *)

val leg_endpoints : ?max_legs:int -> t -> horizon:float -> (int * float) list
(** [(ray, dist)] of every leg endpoint reached by time [horizon] —
    the turning points of the strategy, which are exactly the breakpoints
    of the detection-time function the adversary scans. *)

type flat = private {
  flat_rays : int array;
  flat_froms : float array;
  flat_los : float array;  (** min of the leg's two endpoints *)
  flat_his : float array;  (** max of the leg's two endpoints *)
  flat_starts : float array;
}
(** Struct-of-arrays view of the leg prefix within a horizon, for
    allocation-free scanning (the adversary's hot path).  One entry per
    leg with [t_start <= horizon], in time order. *)

val flatten : ?max_legs:int -> t -> horizon:float -> flat
(** One lazy walk of the legs, then plain arrays.
    @raise Search_numerics.Search_error.Error ([Non_convergence]) as
      {!position} would. *)

val flat_first_visit : flat -> ray:int -> dist:float -> horizon:float -> float
(** Earliest visit time of the non-origin target [(ray, dist)], or
    [infinity] when it is not visited by [horizon].  Agrees bit-for-bit
    with {!first_visit} on the flattened trajectory for [dist >= 1] and
    the same horizon. *)

val default_max_legs : int
