(** The distance (total work) measure of Kao–Ma–Sipser–Yin.

    Section 3 contrasts two cost measures for parallel ray search: time
    [T/d] (the paper's subject) and total distance [D/d] travelled by all
    robots (resolved in [20]).  In the distance measure the clock is
    irrelevant — only the sum of path lengths counts — so an optimal
    schedule may run one robot at a time.  The paper remarks:
    "Somewhat unfortunately, the optimal algorithm does not really use
    multiple robots simultaneously: all but one robot search on one ray
    each, while the last robot performs the search on all remaining rays."

    This module implements that measure: a {e work schedule} is a
    sequence of single-robot moves executed one at a time; the cost of
    finding a target is the total distance accumulated when some robot
    first passes it.  The KMSY-shaped schedule below exhibits the quoted
    structure; the benches contrast its [D/d] with the time-optimal
    strategy's (which pays [k] distances per time unit). *)

type move = { robot : int; target : World.point }
(** Move one robot from wherever it is to [target] (star metric); all
    other robots stand still and accrue no distance. *)

type t

val make : world:World.t -> robots:int -> (int -> move) -> t
(** [make ~world ~robots moves] — [moves i] is the i-th move (1-based);
    robot indices must be in [[0, robots)].  Memoised, must be pure. *)

val world : t -> World.t
val robots : t -> int
val move : t -> int -> move

val work_to_visit :
  ?max_moves:int -> t -> target:World.point -> work_budget:float
  -> float option
(** Total distance accumulated when the target is first passed (the final
    move counted only up to the target), or [None] if the budget is
    exhausted first.  [max_moves] defaults to 1_000_000; exceeding it
    raises [Search_numerics.Search_error.Error] ([Non_convergence]). *)

val move_endpoints :
  ?max_moves:int -> t -> work_budget:float -> (int * float) list
(** [(ray, dist)] of every move destination reachable within the budget —
    the breakpoints the worst-case scan uses. *)

type outcome = { ratio : float; witness : World.point }

val worst_ratio :
  ?eps:float -> ?ratio_cap:float -> t -> n:float -> unit -> outcome
(** Supremum of [work_to_visit x / |x|] over targets with distances in
    [[1, n]] (breakpoint bracketing as in {!Adversary}).  [ratio_cap]
    (default 1024) bounds the explored work budget per unit distance. *)

val kmsy : ?alpha:float -> m:int -> k:int -> unit -> t
(** The [20]-shaped schedule for [k <= m] fault-free robots: robots
    [0 .. k-2] own rays [0 .. k-2] and only ever advance (no
    backtracking); robot [k-1] sweeps rays [k-1 .. m-1].  Exploration
    depths follow one global geometric sequence of base [alpha]
    (default 2) visiting the rays cyclically.  With [k = 1] this is the
    plain single-robot m-ray search and [worst_ratio] reproduces
    [1 + 2 m^m/(m-1)^(m-1)] at the optimal base — the calibration anchor
    for the work semantics. *)

val parallel_charged :
  Trajectory.t array -> f:int -> n:float -> float
(** The distance cost of running a {e parallel} strategy: all [k] robots
    move simultaneously, so the work at detection time [T] is [k T]; this
    returns the worst-case [k T(x) / |x|] — the quantity the KMSY remark
    says is wasteful. *)
