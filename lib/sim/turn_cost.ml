module Stats = Search_numerics.Stats

let leg_duration (l : Trajectory.leg) =
  Float.abs (l.Trajectory.d_to -. l.Trajectory.d_from)

let leg_direction (l : Trajectory.leg) =
  Float.compare l.Trajectory.d_to l.Trajectory.d_from

(* A boundary between consecutive legs is a charged reversal when the
   direction flips on the same ray; a ray change through the origin is
   charged only when [charge_origin]. *)
let reversals_before ?(charge_origin = false) tr ~time =
  let rec loop i count =
    let l = Trajectory.leg tr i in
    let t_end = l.Trajectory.t_start +. leg_duration l in
    if t_end >= time then count
    else
      let next = Trajectory.leg tr (i + 1) in
      let charged =
        if Int.equal next.Trajectory.ray l.Trajectory.ray then
          not (Int.equal (leg_direction next) (leg_direction l))
        else charge_origin
      in
      loop (i + 1) (if charged then count + 1 else count)
  in
  loop 1 0

let charged_visit ?charge_origin tr ~turn_cost ~target ~horizon =
  if turn_cost < 0. then invalid_arg "Turn_cost.charged_visit: need c >= 0";
  match Trajectory.visits tr ~target ~horizon with
  | [] -> None
  | visits ->
      (* cost is nondecreasing in visit time, but take the min anyway *)
      let costs =
        List.map
          (fun t ->
            t
            +. (turn_cost
               *. float_of_int (reversals_before ?charge_origin tr ~time:t)))
          visits
      in
      Some (List.fold_left Float.min infinity costs)

let detection_cost ?charge_origin trajectories ~f ~turn_cost ~target ~horizon =
  if f < 0 then invalid_arg "Turn_cost.detection_cost: f < 0";
  let costs =
    Array.to_list trajectories
    |> List.filter_map (fun tr ->
           charged_visit ?charge_origin tr ~turn_cost ~target ~horizon)
    |> List.sort Float.compare
  in
  List.nth_opt costs f

let worst_ratio ?charge_origin ?(eps = 1e-7) ?(ratio_cap = 1024.) trajectories
    ~f ~turn_cost ~n () =
  if n < 1. then invalid_arg "Turn_cost.worst_ratio: need n >= 1";
  let world = Trajectory.world trajectories.(0) in
  let horizon = ratio_cap *. n in
  let candidates = ref [] in
  let add ray dist =
    if dist >= 1. && dist <= n then
      candidates := World.point world ~ray ~dist :: !candidates
  in
  for ray = 0 to World.arity world - 1 do
    add ray 1.;
    add ray n
  done;
  Array.iter
    (fun tr ->
      List.iter
        (fun (ray, d) ->
          add ray d;
          add ray (d *. (1. -. eps));
          add ray (d *. (1. +. eps)))
        (Trajectory.leg_endpoints tr ~horizon))
    trajectories;
  let sup =
    List.fold_left
      (fun acc target ->
        let ratio =
          match
            detection_cost ?charge_origin trajectories ~f ~turn_cost ~target
              ~horizon
          with
          | Some c -> c /. target.World.dist
          | None -> infinity
        in
        Stats.sup_add acc ~key:target ~value:ratio)
      Stats.sup_empty !candidates
  in
  Stats.sup_value sup
