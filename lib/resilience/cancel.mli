(** Cooperative cancellation tokens.

    A token is shared between a controller (who calls {!cancel}) and any
    number of supervised tasks (who poll {!check} at progress points — the
    supervisor polls once per attempt on the tasks' behalf).  Cancellation
    is a latch: once set it never resets, and the first reason wins. *)

type t

val create : unit -> t

val cancel : ?reason:string -> t -> unit
(** Latch the token; default reason ["cancelled"].  Later calls keep the
    first reason. *)

val is_cancelled : t -> bool
val reason : t -> string option

val check : t -> task:string -> unit
(** @raise Search_numerics.Search_error.Error with [Cancelled] when the
    token is latched. *)
