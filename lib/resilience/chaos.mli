(** Deterministic, seed-driven fault injection ("chaos mode").

    The fault plan for a task is a pure function of (chaos seed, task key):
    each task key derives its own split PRNG, which decides how many faults
    to inject, of what kind, and how much artificial delay to add.  The
    same seed therefore injects the *same* faults at any [--jobs], in any
    task execution order, and on every rerun — so a supervisor with enough
    retries must reproduce the fault-free outputs byte for byte.  That is
    the property the chaos drills in CI check.

    Injected delays perturb scheduling only; injected failures surface as
    [Injected_fault] (retryable) before the task body runs, so a plan of
    [n] faults makes attempts [0 .. n-1] fail and attempt [n] succeed. *)

type t

val disabled : t
(** Injects nothing; zero overhead on the task path. *)

val make :
  ?fault_rate:float ->
  ?max_faults:int ->
  ?delay_rate:float ->
  seed:int ->
  unit ->
  t
(** [make ~seed ()] — a task suffers at least one fault with probability
    [fault_rate] (default 0.25), escalating geometrically up to
    [max_faults] (default 2) total; with probability [delay_rate] (default
    0.25) it also gets a sub-2ms artificial delay each attempt.
    @raise Search_numerics.Search_error.Error on rates outside [0, 1] or
    non-positive [max_faults]. *)

val enabled : t -> bool

val max_faults : t -> int
(** Worst-case faults per task (0 when disabled): a retry policy with
    [attempts > max_faults] always recovers. *)

type plan = { faults : int; kinds : string list; delay : float }
(** [kinds] has length [faults]; each is ["exception"] or
    ["worker-death"].  [delay] is seconds of injected latency per
    attempt. *)

val plan : t -> task:string -> plan
(** The (pure, deterministic) fault plan for [task]. *)

val plan_equal : plan -> plan -> bool

val run : t -> task:string -> attempt:int -> (unit -> 'a) -> 'a
(** Apply the plan: sleep the injected delay, then either raise
    [Injected_fault] (when [attempt < faults]) or run the body. *)
