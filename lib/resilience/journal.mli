(** Content-addressed checkpoint/resume journal.

    A journal is an append-only JSONL file under a results directory whose
    name is derived from a digest of the run's configuration — so a rerun
    with the same config finds its own checkpoints and a different config
    cannot collide.  Line 1 is a header carrying the config; each later
    line is [{"key": k, "value": v}] recording one completed task.  Every
    record is flushed immediately, so a [SIGKILL] loses at most the line
    being written; on reopen a torn trailing line is discarded and the run
    resumes from the completed prefix.  Because tasks are deterministic,
    replaying journalled values and recomputing the rest yields outputs
    byte-identical to an uninterrupted run; {!finish} deletes the file on
    success so completed runs leave nothing behind.

    Concurrency: one journal value may be shared by pool workers in a
    single process ({!record} is mutex-protected).  Two *processes* must
    not share a journal file. *)

type t

val open_ : dir:string -> config:Search_numerics.Json.t -> t
(** Open (resuming) or create the journal for [config] under [dir],
    creating [dir] if needed.
    @raise Search_numerics.Search_error.Error with [Io_failure] when the
    directory or file cannot be used. *)

val path : t -> string
val entries : t -> int
(** Completed records currently known (resumed + recorded). *)

val find : t -> string -> Search_numerics.Json.t option
(** The journalled value for a key, if that task already completed. *)

val record : t -> key:string -> Search_numerics.Json.t -> unit
(** Append one completed task (last write wins on duplicate keys) and
    flush. *)

val close : t -> unit
(** Close the file, keeping it for a later resume.  Idempotent. *)

val finish : t -> unit
(** Close and delete — the run completed, checkpoints are no longer
    needed. *)
