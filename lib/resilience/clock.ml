(* The one sanctioned home for the ambient wall clock (see lint.allow):
   every time-consumer in the library takes a clock as a parameter and
   defaults to [unix], so a simulated runtime can substitute a virtual
   clock without touching production code paths. *)

type t = { now : unit -> float; sleep : float -> unit }

let unix = { now = Unix.gettimeofday; sleep = Unix.sleepf }

let fixed ~now:t = { now = (fun () -> t); sleep = ignore }
