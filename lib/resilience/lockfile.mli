(** Crash-safe advisory file locks with stale-lock recovery.

    The lock is the classic [O_CREAT | O_EXCL] sentinel file, but its
    contents record the holder's PID and creation time so a later process
    can recover from a holder that died without unlinking: a lock is
    *stale* — and gets broken — when its PID is no longer alive, or when
    it is older than [stale_after] (covers PID reuse and unreadable
    files).  This replaces the bare [Unix.lockf] scheme whose sentinel
    files survived kills and wedged every subsequent run.

    Locks serialise short critical sections (a metrics merge, a corpus
    write); waiting is bounded and gives up with [Io_failure] rather than
    hanging forever. *)

val with_lock :
  ?clock:Clock.t ->
  ?stale_after:float ->
  ?give_up_after:float ->
  path:string ->
  (unit -> 'a) ->
  'a
(** [with_lock ~path f] acquires [path], runs [f], and unlinks the lock
    even when [f] raises.  Contended acquisition polls at 10 ms; locks
    whose holder is dead or older than [stale_after] (default 60 s) are
    broken.  [clock] (default {!Clock.unix}) supplies the creation
    timestamp, the staleness "now", and the contention sleep.
    @raise Search_numerics.Search_error.Error with [Io_failure] after
    [give_up_after] (default 30 s) of waiting. *)
