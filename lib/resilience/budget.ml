module E = Search_numerics.Search_error

type t = { steps : int option; seconds : float option }

let unlimited = { steps = None; seconds = None }

let make ?steps ?seconds () =
  (match steps with
  | Some s when s <= 0 ->
      E.invalid ~where:"Budget.make" "steps limit must be positive"
  | _ -> ());
  (match seconds with
  | Some s when not (s > 0.) ->
      E.invalid ~where:"Budget.make" "seconds limit must be positive"
  | _ -> ());
  { steps; seconds }

let is_unlimited t = Option.is_none t.steps && Option.is_none t.seconds

type meter = {
  spec : t;
  task : string;
  clock : unit -> float;
  mutable consumed : int;
  started : float;  (** 0. when no wall-clock limit is armed *)
}

let start ?(clock = Clock.unix.Clock.now) spec ~task =
  let started =
    (* the clock is read only when a seconds cap was requested, so fully
       deterministic budgets never touch wall time *)
    match spec.seconds with None -> 0. | Some _ -> clock ()
  in
  { spec; task; clock; consumed = 0; started }

let step ?(cost = 1) m =
  m.consumed <- m.consumed + cost;
  (match m.spec.steps with
  | Some limit when m.consumed > limit ->
      E.raise_
        (E.Budget_exceeded
           {
             task = m.task;
             resource = E.Steps;
             limit = float_of_int limit;
             spent = float_of_int m.consumed;
           })
  | Some _ | None -> ());
  match m.spec.seconds with
  | Some limit ->
      let spent = m.clock () -. m.started in
      if spent > limit then
        E.raise_
          (E.Budget_exceeded
             { task = m.task; resource = E.Seconds; limit; spent })
  | None -> ()

let used m = m.consumed
