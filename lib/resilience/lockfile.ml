module E = Search_numerics.Search_error

let poll_interval = 0.01

(* Lock contents are "<pid> <created-epoch>\n".  A torn/unreadable lock
   falls back to the file's mtime for the age test. *)

let read_holder path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | line -> (
              match String.split_on_char ' ' (String.trim line) with
              | [ pid; created ] -> (
                  match (int_of_string_opt pid, float_of_string_opt created)
                  with
                  | Some pid, Some created -> Some (pid, created)
                  | _ -> None)
              | _ -> None))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (_, _, _) -> true (* EPERM: alive, not ours *)

let is_stale ~stale_after ~now path =
  match read_holder path with
  | Some (pid, created) ->
      (not (pid_alive pid)) || now -. created > stale_after
  | None -> (
      (* unreadable or torn: age by mtime; a vanished file is "stale"
         in the sense that retrying the exclusive create will settle it *)
      match Unix.stat path with
      | { Unix.st_mtime; _ } -> now -. st_mtime > stale_after
      | exception Unix.Unix_error (_, _, _) -> true)

let acquire ~clock ~stale_after ~give_up_after path =
  let rec go waited =
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd ->
        (* the channel owns fd from here on; close it on every path,
           including a failing write, or the descriptor leaks *)
        let oc = Unix.out_channel_of_descr fd in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Printf.fprintf oc "%d %.3f\n" (Unix.getpid ())
              (clock.Clock.now ()))
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
        if waited > give_up_after then
          E.raise_
            (E.Io_failure
               {
                 path;
                 what =
                   Printf.sprintf "lock still held after %.0fs" give_up_after;
               });
        if is_stale ~stale_after ~now:(clock.Clock.now ()) path then begin
          (* break it; a racing breaker may win the unlink, that's fine *)
          (try Unix.unlink path
           with Unix.Unix_error (_, _, _) -> ());
          go waited
        end
        else begin
          clock.Clock.sleep poll_interval;
          go (waited +. poll_interval)
        end
    | exception Unix.Unix_error (e, _, _) ->
        E.raise_ (E.Io_failure { path; what = Unix.error_message e })
  in
  go 0.

let release path =
  try Unix.unlink path with Unix.Unix_error (_, _, _) -> ()

let with_lock ?(clock = Clock.unix) ?(stale_after = 60.) ?(give_up_after = 30.)
    ~path f =
  acquire ~clock ~stale_after ~give_up_after path;
  Fun.protect ~finally:(fun () -> release path) f
