module E = Search_numerics.Search_error

type policy = {
  attempts : int;
  base_delay : float;
  factor : float;
  max_delay : float;
}

let none = { attempts = 1; base_delay = 0.; factor = 2.; max_delay = 0. }

let default =
  { attempts = 3; base_delay = 0.001; factor = 2.; max_delay = 0.05 }

let immediate ~attempts =
  if attempts < 1 then
    E.invalid ~where:"Retry.immediate" "need at least one attempt";
  { none with attempts }

let delay_for policy ~attempt =
  Float.min policy.max_delay
    (policy.base_delay *. (policy.factor ** float_of_int attempt))

(* [run_with] takes the backoff primitive as a required argument and
   never mentions [Unix.sleepf]: callers on a latency-sensitive thread
   (the serve dispatch path) go through here with a cooperative
   backoff, and the hotpath lint can prove no real sleep is reachable.
   [run] is the batch/CLI convenience wrapper that defaults to the
   real thing. *)
let run_with ~sleep ?(policy = default) ?on_error ~task f =
  let rec go attempt =
    match f ~attempt with
    | v -> Ok v
    | exception exn ->
        let err = E.classify ~task ~attempt exn in
        (match on_error with
        | Some report -> report ~attempt err
        | None -> ());
        if E.retryable err && attempt + 1 < policy.attempts then begin
          let d = delay_for policy ~attempt in
          if d > 0. then sleep d;
          go (attempt + 1)
        end
        else Error err
  in
  go 0

let cooperative (_ : float) = Domain.cpu_relax ()

let run ?policy ?(sleep = Unix.sleepf) ?on_error ~task f =
  run_with ~sleep ?policy ?on_error ~task f
