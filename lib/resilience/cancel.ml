module E = Search_numerics.Search_error

type t = string option Atomic.t

let create () = Atomic.make None

let cancel ?(reason = "cancelled") t =
  (* first reason wins; a lost race means someone else already latched *)
  ignore (Atomic.compare_and_set t None (Some reason))

let reason t = Atomic.get t
let is_cancelled t = Option.is_some (Atomic.get t)

let check t ~task =
  match Atomic.get t with
  | None -> ()
  | Some reason -> E.raise_ (E.Cancelled { task; reason })
