(** Re-export of the shared error taxonomy.

    The type and exception are defined in {!Search_numerics.Search_error}
    (bottom of the dependency stack, so every layer can raise it); this
    alias exists so resilience users can say [Search_resilience.Search_error]
    without also depending on numerics directly.  [include] preserves the
    exception identity: [Error] raised anywhere matches here. *)

include module type of Search_numerics.Search_error
