module E = Search_numerics.Search_error
module Prng = Search_numerics.Prng

type config = {
  seed : int;
  fault_rate : float;
  max_faults_ : int;
  delay_rate : float;
}

type t = config option

let disabled = None

let make ?(fault_rate = 0.25) ?(max_faults = 2) ?(delay_rate = 0.25) ~seed ()
    =
  let rate_ok r = Float.is_finite r && r >= 0. && r <= 1. in
  if not (rate_ok fault_rate) then
    E.invalid ~where:"Chaos.make" "fault_rate must lie in [0, 1]";
  if not (rate_ok delay_rate) then
    E.invalid ~where:"Chaos.make" "delay_rate must lie in [0, 1]";
  if max_faults < 1 then
    E.invalid ~where:"Chaos.make" "max_faults must be positive";
  Some { seed; fault_rate; max_faults_ = max_faults; delay_rate }

let enabled t = Option.is_some t
let max_faults = function None -> 0 | Some c -> c.max_faults_

type plan = { faults : int; kinds : string list; delay : float }

let no_faults = { faults = 0; kinds = []; delay = 0. }

(* Fold the task key's digest into a seed perturbation so distinct tasks
   get independent streams.  [Digest.string] (MD5) is deterministic across
   runs, unlike the lint-banned [Hashtbl.hash]. *)
let task_salt task =
  let d = Digest.string task in
  let h = ref 0 in
  for i = 0 to 6 do
    h := (!h lsl 8) lor Char.code d.[i]
  done;
  !h

let compute_plan c ~task =
  let g = Prng.make ~seed:(c.seed lxor task_salt task) in
  let u, g = Prng.float g in
  let faults, g =
    if u >= c.fault_rate then (0, g)
    else
      (* geometric escalation: each extra fault needs another hit *)
      let rec extra n g =
        if n >= c.max_faults_ then (n, g)
        else
          let u, g = Prng.float g in
          if u < c.fault_rate then extra (n + 1) g else (n, g)
      in
      extra 1 g
  in
  let rec kinds n g acc =
    if n = 0 then (List.rev acc, g)
    else
      let b, g = Prng.bool g in
      kinds (n - 1) g ((if b then "worker-death" else "exception") :: acc)
  in
  let kinds, g = kinds faults g [] in
  let u, _ = Prng.float g in
  let delay = if u < c.delay_rate then u *. 0.002 else 0. in
  { faults; kinds; delay }

let plan t ~task =
  match t with None -> no_faults | Some c -> compute_plan c ~task

let plan_equal a b =
  Int.equal a.faults b.faults
  && List.equal String.equal a.kinds b.kinds
  && Float.equal a.delay b.delay

(* [@real_io]: the injected delay sleeps for real.  Chaos is a
   production/bench-only knob — DST scenarios never construct a chaos
   config, so the simulation stays on the virtual clock — which makes
   this an audited barrier for the sim-hygiene pass. *)
let[@real_io] run t ~task ~attempt f =
  match t with
  | None -> f ()
  | Some c ->
      let p = compute_plan c ~task in
      if p.delay > 0. then Unix.sleepf p.delay;
      if attempt < p.faults then
        E.raise_
          (E.Injected_fault
             { task; attempt; kind = List.nth p.kinds attempt })
      else f ()
