(** Retry with deterministic backoff.

    The retry *decision* is fully deterministic: it depends only on the
    policy, the attempt number, and {!Search_numerics.Search_error.retryable}
    on the classified failure.  The backoff *sleep* affects scheduling
    only, never results, so outputs stay byte-identical at any job count
    (and policies with [base_delay = 0.] never sleep at all). *)

type policy = {
  attempts : int;  (** total attempts, including the first; >= 1 *)
  base_delay : float;  (** seconds before the first retry *)
  factor : float;  (** exponential growth per retry *)
  max_delay : float;  (** backoff ceiling in seconds *)
}

val none : policy
(** Single attempt, no retries. *)

val default : policy
(** 3 attempts, 1 ms base delay doubling, capped at 50 ms. *)

val immediate : attempts:int -> policy
(** [attempts] attempts with zero backoff — for tests and chaos drills.
    @raise Search_numerics.Search_error.Error when [attempts < 1]. *)

val delay_for : policy -> attempt:int -> float
(** Backoff after failed attempt [attempt] (0-based):
    [min max_delay (base_delay *. factor ^ attempt)].  Pure. *)

val run_with :
  sleep:(float -> unit) ->
  ?policy:policy ->
  ?on_error:(attempt:int -> Search_numerics.Search_error.t -> unit) ->
  task:string ->
  (attempt:int -> 'a) ->
  ('a, Search_numerics.Search_error.t) result
(** [run_with ~sleep ~task f] evaluates [f ~attempt:0]; on an exception
    it classifies the failure, reports it to [on_error], and — when
    retryable with attempts left — backs off via [sleep] and tries
    [f ~attempt:(i+1)].  Returns the first success or the last failure.
    [sleep] is required and never called with a non-positive delay;
    this entry point never references [Unix.sleepf], so code reachable
    from the serve event loop can retry without a real sleep anywhere
    in its call graph (the [hotpath-blocking] lint checks exactly
    that).  Pass {!cooperative} on latency-sensitive threads. *)

val cooperative : float -> unit
(** Backoff that yields the processor ([Domain.cpu_relax]) instead of
    sleeping — ignores the requested delay.  The retry *decision*
    sequence is unchanged (see the header): only scheduling differs. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?on_error:(attempt:int -> Search_numerics.Search_error.t -> unit) ->
  task:string ->
  (attempt:int -> 'a) ->
  ('a, Search_numerics.Search_error.t) result
(** {!run_with} with [sleep] defaulting to [Unix.sleepf] — the
    batch/CLI convenience wrapper.  Not for code reachable from the
    serve event loop; use {!run_with} there. *)
