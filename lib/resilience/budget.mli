(** Per-task budgets: deterministic step limits, optional wall-clock caps.

    A {!t} is a passive spec; {!start} arms it into a {!meter} that the
    task threads through its hot loop, calling {!step} at natural progress
    points.  Enforcement is cooperative — nothing preempts a task that
    never calls {!step}.

    Determinism contract: the step limit is exact and reproducible.  The
    [seconds] limit reads the injected clock (default the ambient wall
    clock, {!Clock.unix}) and therefore must never gate a code path whose
    *output* is part of a deterministic artefact; it exists as a backstop
    against runaway tasks. *)

type t
(** A budget spec; immutable and shareable across tasks. *)

val unlimited : t

val make : ?steps:int -> ?seconds:float -> unit -> t
(** [make ?steps ?seconds ()] caps each supervised task at [steps]
    {!step}-units and/or [seconds] of wall clock.  Omitted means
    unlimited.  @raise Search_numerics.Search_error.Error on non-positive
    limits. *)

val is_unlimited : t -> bool

type meter
(** One task's running consumption against a spec. *)

val start : ?clock:(unit -> float) -> t -> task:string -> meter
(** Arm the budget for task [task]; the clock (if any) starts now.
    [clock] defaults to {!Clock.unix}'s [now] and is read only when a
    seconds cap was requested. *)

val step : ?cost:int -> meter -> unit
(** Record [cost] (default 1) units of progress; checks both limits.
    @raise Search_numerics.Search_error.Error with [Budget_exceeded] when
    either limit is crossed. *)

val used : meter -> int
(** Steps consumed so far. *)
