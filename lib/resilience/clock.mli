(** Injectable time source.

    Every module that needs wall-clock time or a real sleep ({!Budget}
    seconds caps, {!Lockfile} age stamps and polling,
    {!Search_exec.Supervise} specs) takes a {!t} and defaults to
    {!unix}, so the deterministic simulator ([lib/dst]) can run the same
    code against a virtual clock.  This module is the only sanctioned
    reader of the ambient clock outside designated observational sinks
    (see lint.allow); everything else must thread a {!t}. *)

type t = {
  now : unit -> float;  (** seconds; epoch-based for {!unix} *)
  sleep : float -> unit;  (** block (or simulate blocking) for that long *)
}

val unix : t
(** [Unix.gettimeofday] / [Unix.sleepf]. *)

val fixed : now:float -> t
(** A frozen clock: [now] always answers the given instant, [sleep]
    returns immediately.  For tests. *)
