module E = Search_numerics.Search_error
module Json = Search_numerics.Json

type t = {
  path : string;
  table : (string, Json.t) Hashtbl.t;
  mutex : Mutex.t;
  mutable oc : out_channel option;
}

let io path what = E.raise_ (E.Io_failure { path; what })

let with_io path f =
  try f () with Sys_error msg -> io path msg

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let header config = Json.Assoc [ ("journal", Json.String "v1"); ("config", config) ]

(* Load the completed prefix, tolerating a torn trailing line (the record
   being written when the process was killed parses as garbage and is
   simply dropped — its task recomputes). *)
let load path table =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec lines first =
        match input_line ic with
        | exception End_of_file -> ()
        | line ->
            (match Json.of_string line with
            | Ok j when not first -> (
                match
                  ( Option.bind (Json.member "key" j) Json.to_string_value,
                    Json.member "value" j )
                with
                | Some key, Some value -> Hashtbl.replace table key value
                | _ -> ())
            | Ok _ | Error _ -> ());
            lines false
      in
      lines true)

(* [@releases]: the append channel's ownership transfers to the
   returned handle (Journal.close closes it); the only raising path
   between open and return — the header write — closes it first. *)
let[@releases] open_ ~dir ~config =
  let digest = Digest.to_hex (Digest.string (Json.to_string config)) in
  let path =
    Filename.concat dir ("journal-" ^ String.sub digest 0 12 ^ ".jsonl")
  in
  with_io path (fun () ->
      mkdir_p dir;
      let table = Hashtbl.create 64 in
      let fresh = not (Sys.file_exists path) in
      if not fresh then load path table;
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
      in
      (try
         if fresh then begin
           output_string oc (Json.to_string (header config));
           output_char oc '\n';
           flush oc
         end
       with Sys_error msg ->
         close_out_noerr oc;
         io path ("header write failed: " ^ msg));
      { path; table; mutex = Mutex.create (); oc = Some oc })

let path t = t.path

let entries t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.table)

let find t key = Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.table key)

let record t ~key value =
  let line =
    Json.to_string (Json.Assoc [ ("key", Json.String key); ("value", value) ])
  in
  Mutex.protect t.mutex (fun () ->
      Hashtbl.replace t.table key value;
      match t.oc with
      | None -> io t.path "Journal.record: journal is closed"
      | Some oc ->
          with_io t.path (fun () ->
              output_string oc line;
              output_char oc '\n';
              flush oc))

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          t.oc <- None;
          close_out_noerr oc)

let finish t =
  close t;
  try Sys.remove t.path with Sys_error _ -> ()
