module Sweep = Search_numerics.Sweep

type jump = { robot : int; from_left : float; to_left : float }

let per_robot_lefts intervals =
  let tbl : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (iv : Assigned.interval) ->
      match Hashtbl.find_opt tbl iv.Assigned.robot with
      | Some l -> l := iv.Assigned.left :: !l
      | None -> Hashtbl.add tbl iv.Assigned.robot (ref [ iv.Assigned.left ]))
    intervals;
  Hashtbl.fold (fun robot lefts acc -> (robot, List.rev !lefts) :: acc) tbl []
  |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)

let consecutive_ratios intervals =
  per_robot_lefts intervals
  |> List.concat_map (fun (robot, lefts) ->
         let rec pairs = function
           | a :: (b :: _ as rest) when a > 0. ->
               { robot; from_left = a; to_left = b } :: pairs rest
           | _ :: rest -> pairs rest
           | [] -> []
         in
         pairs lefts)

let jumps intervals ~c =
  if c <= 1. then invalid_arg "Induction.jumps: need c > 1";
  List.filter (fun j -> j.to_left /. j.from_left >= c) (consecutive_ratios intervals)

let observed_c intervals =
  List.fold_left
    (fun acc j -> Float.max acc (j.to_left /. j.from_left))
    1. (consecutive_ratios intervals)

type case =
  | Case1 of { c : float }
  | Case2 of {
      jump : jump;
      window : float * float;
      rescale : float;
      reduced_k : int;
      reduced_demand : int;
    }

let classify intervals ~k ~demand ~mu ~c =
  match jumps intervals ~c with
  | [] -> Case1 { c = observed_c intervals }
  | jump :: _ ->
      let lo = mu *. jump.from_left and hi = c *. jump.from_left in
      Case2
        {
          jump;
          window = (lo, hi);
          rescale = lo;
          reduced_k = k - 1;
          reduced_demand = demand - 1;
        }

let verify_reduction ~turns ~jump ~mu ~demand =
  let k = Array.length turns in
  if jump.robot < 0 || jump.robot >= k then
    invalid_arg "Induction.verify_reduction: jump robot out of range";
  let others =
    Array.to_list turns
    |> List.filteri (fun r _ -> not (Int.equal r jump.robot))
    |> Array.of_list
  in
  let lo = Float.max 1. (mu *. jump.from_left) and hi = jump.to_left in
  if lo >= hi then Sweep.Covered
  else
    let ivs =
      Array.to_list others
      |> List.concat_map (fun t ->
             Search_strategy.Orc_round.cover_intervals_within t ~mu
               ~within:(lo, hi) ()
             |> List.map snd)
    in
    Sweep.check ~demand:(demand - 1) ~within:(lo, hi) ivs

let epsilon' = Search_bounds.Asymptotics.epsilon'
