module Sweep = Search_numerics.Sweep

type verdict =
  | Refuted_gap of { at : float; multiplicity : int; demand : int }
  | Refuted_potential of Potential.trace
  | Not_refuted of { n : float; delta : float }
  | Inconclusive of string

let run_certificate setting ~turns ~demand ~lambda ~n ~coverage =
  let k = Array.length turns in
  let mu = (lambda -. 1.) /. 2. in
  match coverage () with
  | Sweep.Gap { at; multiplicity; _ } ->
      Refuted_gap { at; multiplicity; demand }
  | Sweep.Covered -> (
      let delta = Potential.delta setting ~k ~demand ~mu in
      if delta <= 1. then Not_refuted { n; delta }
      else
        (* below the bound: build the assignment and watch the potential *)
        match Assigned.build setting ~mu ~demand ~turns ~up_to:n () with
        | Assigned.Stuck { frontier; _ } ->
            Inconclusive
              (Printf.sprintf
                 "greedy assignment stuck at frontier %g (coverage verified \
                  to %g; no conclusion)"
                 frontier n)
        | Assigned.Complete intervals ->
            let trace = Potential.analyze setting ~k ~demand ~mu intervals in
            if trace.Potential.exceeded then Refuted_potential trace
            else Not_refuted { n; delta })

let check_line ?kernel ~turns ~f ~lambda ~n () =
  let k = Array.length turns in
  let s = (2 * (f + 1)) - k in
  if not (0 < s && s <= k) then
    invalid_arg "Certificate.check_line: need 0 < 2(f+1)-k <= k";
  run_certificate Assigned.Line_symmetric ~turns ~demand:s ~lambda ~n
    ~coverage:(fun () -> Symmetric.check ?kernel turns ~demand:s ~lambda ~n)

let check_orc ?kernel ~turns ~demand ~lambda ~n () =
  let k = Array.length turns in
  if demand <= k then invalid_arg "Certificate.check_orc: need demand > k";
  run_certificate Assigned.Orc_setting ~turns ~demand ~lambda ~n
    ~coverage:(fun () -> Orc.check ?kernel turns ~demand ~lambda ~n)

(* The λ-grid refutations are independent point evaluations sharing only
   the (mutex-memoised) turning sequences, so they shard across a domain
   pool; results are re-assembled in input order, making the parallel
   path byte-identical to the sequential one. *)
let check_sharded ?jobs ~lambdas check =
  Search_exec.Pool.with_pool ?jobs (fun pool ->
      Search_exec.Par.parallel_map pool
        ~f:(fun lambda -> (lambda, check ~lambda))
        lambdas)

let check_line_sharded ?jobs ?kernel ~turns ~f ~lambdas ~n () =
  check_sharded ?jobs ~lambdas (fun ~lambda ->
      check_line ?kernel ~turns ~f ~lambda ~n ())

let check_orc_sharded ?jobs ?kernel ~turns ~demand ~lambdas ~n () =
  check_sharded ?jobs ~lambdas (fun ~lambda ->
      check_orc ?kernel ~turns ~demand ~lambda ~n ())

let lambda_grid ~lo ~hi ~count =
  if count < 1 then invalid_arg "Certificate.lambda_grid: need count >= 1";
  if lo > hi then invalid_arg "Certificate.lambda_grid: need lo <= hi";
  if count = 1 then [ 0.5 *. (lo +. hi) ]
  else
    List.init count (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (count - 1)))

let log_horizon_bound setting ~k ~demand ~lambda ?engage ?c () =
  if lambda <= 1. then invalid_arg "Certificate.log_horizon_bound: lambda <= 1";
  let mu = (lambda -. 1.) /. 2. in
  let engage = match engage with Some e -> e | None -> Float.max 1. mu in
  let s =
    match setting with
    | Assigned.Line_symmetric -> demand
    | Assigned.Orc_setting -> demand - k
  in
  if s < 1 then invalid_arg "Certificate.log_horizon_bound: effective s < 1";
  let delta = Potential.delta setting ~k ~demand ~mu in
  if delta <= 1. then infinity
  else
    let sk = float_of_int (s * k) in
    let ln_floor = -.sk *. log (mu *. engage) in
    let ln_ceiling =
      match setting with
      | Assigned.Line_symmetric -> sk *. log mu
      | Assigned.Orc_setting ->
          let c = match c with Some c -> c | None -> mu *. mu in
          (float_of_int (demand * k) *. log c) +. (sk *. log mu)
    in
    let steps = (ln_ceiling -. ln_floor) /. log delta in
    log engage +. (steps *. log mu)

let coverage_threshold_lambda ~check ~lo ~hi ?(tol = 1e-9) () =
  if not (check ~lambda:hi) then
    invalid_arg "Certificate.coverage_threshold_lambda: check fails at hi";
  if check ~lambda:lo then lo
  else
    let rec bisect lo hi =
      if hi -. lo <= tol *. Float.max 1. hi then hi
      else
        let mid = 0.5 *. (lo +. hi) in
        if check ~lambda:mid then bisect lo mid else bisect mid hi
    in
    bisect lo hi

let pp_verdict ppf = function
  | Refuted_gap { at; multiplicity; demand } ->
      Format.fprintf ppf
        "REFUTED (coverage gap): point %g covered %d < %d times" at
        multiplicity demand
  | Refuted_potential trace ->
      Format.fprintf ppf
        "REFUTED (potential): ln f reached %.4g > ceiling %.4g (delta = %.6g \
         per step, %d steps)"
        trace.Potential.max_log_potential trace.Potential.log_ceiling
        trace.Potential.delta
        (List.length trace.Potential.steps)
  | Not_refuted { n; delta } ->
      Format.fprintf ppf "NOT REFUTED on [1, %g] (delta = %.6g)" n delta
  | Inconclusive reason -> Format.fprintf ppf "INCONCLUSIVE: %s" reason
