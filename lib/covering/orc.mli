(** The one-ray cover with returns (ORC) setting (Section 3).

    All robots move on a single ray; a point may be covered several times
    by the same robot, but repeat coverings only count when separated by a
    visit of the origin — i.e. by round.  A strategy for searching a
    target on [m] rays with [k] robots, [f] faulty, with competitive ratio
    λ induces a [q]-fold λ-covering here with [q = m (f + 1)]: discard the
    ray labels, keep the rounds.  This module builds the interval multiset
    of a round-strategy group and checks the demand.

    [kernel] selects the evaluation path as in {!Symmetric}: [`Compiled]
    (default) walks flat-array prefix views, [`Lazy] the memoised
    sequences; the outputs are bit-identical. *)

val cover_intervals_within :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t -> lambda:float
  -> within:float * float -> (int * Search_numerics.Interval1.t) list
(** One robot's fruitful round intervals [[t''_i, t_i]]
    ([t''_i = (t1 + ... + t_{i-1}) / mu]) intersecting the window. *)

val check :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t array
  -> demand:int -> lambda:float -> n:float -> Search_numerics.Sweep.verdict
(** Is [[1, n]] [demand]-fold λ-covered in the ORC setting? *)

val max_covered :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t array
  -> demand:int -> lambda:float -> n:float -> float
(** Largest fully covered prefix of [[1, n]], as in {!Symmetric.max_covered}. *)

val of_mray : Search_strategy.Mray_exponential.t -> robot:int -> Search_strategy.Turning.t
(** The ORC projection of an m-ray strategy: the robot's turn depths in
    pass order, ray labels discarded — the relaxation step of the
    Theorem 6 proof.  For the exponential strategy this is geometric with
    ratio [alpha^k].  Depths are increasing in the pass index. *)

val of_mray_group : Search_strategy.Mray_exponential.t -> Search_strategy.Turning.t array
(** One ORC projection per robot. *)
