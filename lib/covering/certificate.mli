(** Executable lower-bound certificates.

    The paper proves: no strategy achieves competitive ratio
    [lambda < lambda0].  For a {e concrete} strategy and a claimed
    [lambda], this module produces a checkable refutation along the
    proof's own lines:

    + if the strategy does not even [demand]-fold λ-cover [[1, n]], the
      sweep exhibits an under-covered witness point — the adversary places
      the target there ([Refuted_gap]);
    + if it does cover, the assigned-interval system is built and the
      potential function is evaluated; when [lambda] is below the bound,
      Lemma 5 forces every step to multiply the potential by
      [delta > 1] while boundedness caps it, so the potential trace
      crossing its ceiling certifies that the coverage cannot extend much
      further ([Refuted_potential] — carries the trace).

    Above the bound ([delta <= 1]) nothing is refuted and the verdict
    reports the verified coverage ([Not_refuted]).  A greedy failure in
    the assignment builder is reported as [Inconclusive] (it is not a
    proof of anything). *)

type verdict =
  | Refuted_gap of { at : float; multiplicity : int; demand : int }
      (** a point of [[1, n]] covered fewer than [demand] times *)
  | Refuted_potential of Potential.trace
      (** coverage holds on [[1, n]] but the potential crossed its
          ceiling: the strategy cannot λ-cover much beyond [n] *)
  | Not_refuted of { n : float; delta : float }
      (** coverage verified; [delta <= 1] (λ at or above the bound) or the
          potential stayed within its ceiling on this horizon *)
  | Inconclusive of string

val check_line :
  ?kernel:[ `Lazy | `Compiled ] -> turns:Search_strategy.Turning.t array
  -> f:int -> lambda:float -> n:float -> unit -> verdict
(** Certificate for the line problem: [k = Array.length turns] robots,
    [f] crash faults, demand [s = 2(f+1) - k] in the ±-covering setting.
    Requires the searching regime ([0 < s <= k]).  [kernel] selects the
    coverage evaluation path (default [`Compiled]); verdicts are
    identical either way. *)

val check_orc :
  ?kernel:[ `Lazy | `Compiled ] -> turns:Search_strategy.Turning.t array
  -> demand:int -> lambda:float -> n:float -> unit -> verdict
(** Certificate in the ORC setting with covering demand [q = demand]
    (for the m-ray problem, [q = m (f+1)]).  Requires [k < demand]. *)

val check_line_sharded :
  ?jobs:int -> ?kernel:[ `Lazy | `Compiled ]
  -> turns:Search_strategy.Turning.t array -> f:int
  -> lambdas:float list -> n:float -> unit -> (float * verdict) list
(** {!check_line} over a whole λ-grid, the points sharded across a
    domain pool of [jobs] workers (default
    [Domain.recommended_domain_count ()]).  The result list pairs each λ
    with its verdict, in the input order — identical to mapping
    {!check_line} sequentially, at any job count. *)

val check_orc_sharded :
  ?jobs:int -> ?kernel:[ `Lazy | `Compiled ]
  -> turns:Search_strategy.Turning.t array -> demand:int
  -> lambdas:float list -> n:float -> unit -> (float * verdict) list
(** {!check_orc} over a λ-grid; same contract as
    {!check_line_sharded}. *)

val lambda_grid : lo:float -> hi:float -> count:int -> float list
(** [count] evenly spaced λ values from [lo] to [hi] inclusive
    (a single midpoint when [count = 1]).  Requires [count >= 1] and
    [lo <= hi]. *)

val log_horizon_bound :
  Assigned.setting -> k:int -> demand:int -> lambda:float -> ?engage:float
  -> ?c:float -> unit -> float
(** The quantitative content of Theorems 3 and 6's lower bounds: for
    [lambda] strictly below the bound, [ln] of an explicit horizon [N]
    beyond which {e no} strategy can [demand]-fold λ-cover [[1, N]]
    (returns [infinity] at or above the bound, where arbitrarily long
    coverings exist).

    Derivation (line setting, [mu = (lambda-1)/2], [s = demand]): once
    every robot has an assigned interval — by frontier [engage], default
    [mu], the natural normalisation; the paper's Section 3.1 Case 2
    induction handles strategies that violate it — the potential satisfies
    [ln f(P0) >= -. s k ln (mu *. engage)] (loads at least 1, the [s]
    multiset elements at most [mu a]); every step multiplies [f] by
    [delta > 1] (Lemma 5) while [f <= mu^(s k)] (eq. 8), capping the
    number of steps at [T = s k (2 ln mu + ln engage) / ln delta]; and
    each step advances the frontier by a factor at most [mu], so
    [N <= engage *. mu^T].

    ORC setting: same shape with [s = demand - k] and the Case-1 ceiling
    [C^(demand k) mu^(s k)] for left-end jump ratio at most [c]
    (default [mu^2]). *)

val coverage_threshold_lambda :
  check:(lambda:float -> bool) -> lo:float -> hi:float -> ?tol:float -> unit
  -> float
(** Bisection utility for experiment F5: the smallest λ in [[lo, hi]] for
    which [check ~lambda] holds, assuming monotonicity (coverage only
    improves as λ grows).  [tol] defaults to 1e-9. *)

val pp_verdict : Format.formatter -> verdict -> unit
