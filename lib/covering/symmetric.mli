(** The symmetric line-cover setting (±-covering, Section 2).

    A point [x >= 1] is covered by a robot at the moment it has visited
    both [x] and [-x]; it is λ-covered if that happens within time
    [lambda x].  A strategy with competitive ratio λ for the line problem
    with [f] crash faults must s-fold λ-cover [R >= 1] with
    [s = 2(f+1) - k]: both [x] and [-x] need [f + 1] timely visits —
    [2(f+1)] in total — and each of the [k] robots contributes at most one
    single-sided visit unless it λ-covers the pair, so at least
    [2(f+1) - k] robots must visit both sides in time.  This module turns
    turning-sequence strategies into interval multisets and checks the
    demand with the sweep line.

    Every entry point takes an optional [kernel]: [`Compiled] (default)
    walks flat-array prefix views ({!Search_strategy.Turning.compiled}),
    [`Lazy] walks the mutex-memoised sequences directly.  The two are
    bit-identical — the compiled view replays the same arithmetic in the
    same order — and the CI perf-smoke job diffs their outputs. *)

val cover_intervals_within :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t -> lambda:float
  -> within:float * float -> ?max_rounds:int -> unit
  -> (int * Search_numerics.Interval1.t) list
(** One robot's λ-cover [Cov_mu(T)] restricted to the window: the fruitful
    intervals [[t''_i, t_i]] (eq. 3, [mu = (lambda-1)/2]) that intersect
    it.  Stops at the first turn whose threshold passes the window (the
    thresholds are nondecreasing).  [max_rounds] defaults to 1_000_000. *)

val check :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t array
  -> demand:int -> lambda:float -> n:float -> Search_numerics.Sweep.verdict
(** Is [[1, n]] [demand]-fold λ-covered by the group?  [demand] is
    typically [Params.s] of the instance. *)

val max_covered :
  ?kernel:[ `Lazy | `Compiled ] -> Search_strategy.Turning.t array
  -> demand:int -> lambda:float -> n:float -> float
(** The largest [x <= n] such that [[1, x)] is [demand]-fold λ-covered:
    the sweep's gap witness is the leftmost under-covered point ([n] when
    fully covered, [1.] when not even a neighbourhood of 1 is). *)
