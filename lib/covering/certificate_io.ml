module Json = Search_numerics.Json

type kind =
  | Refuted_gap of { at : float; multiplicity : int }
  | Refuted_potential of {
      steps : int;
      max_log_potential : float;
      log_ceiling : float;
    }
  | Not_refuted of { delta : float }
  | Inconclusive of string

type parsed = {
  setting : Assigned.setting;
  k : int;
  demand : int;
  lambda : float;
  n : float;
  kind : kind;
}

let setting_to_string = function
  | Assigned.Line_symmetric -> "line-symmetric"
  | Assigned.Orc_setting -> "orc"

let setting_of_string = function
  | "line-symmetric" -> Ok Assigned.Line_symmetric
  | "orc" -> Ok Assigned.Orc_setting
  | s -> Error (Printf.sprintf "unknown setting %S" s)

let kind_json = function
  | Certificate.Refuted_gap { at; multiplicity; _ } ->
      Json.Assoc
        [
          ("kind", Json.String "refuted-gap");
          ("at", Json.Number at);
          ("multiplicity", Json.Number (float_of_int multiplicity));
        ]
  | Certificate.Refuted_potential trace ->
      Json.Assoc
        [
          ("kind", Json.String "refuted-potential");
          ("steps", Json.Number (float_of_int (List.length trace.Potential.steps)));
          ("max_log_potential", Json.Number trace.Potential.max_log_potential);
          ("log_ceiling", Json.Number trace.Potential.log_ceiling);
        ]
  | Certificate.Not_refuted { delta; _ } ->
      Json.Assoc
        [ ("kind", Json.String "not-refuted"); ("delta", Json.Number delta) ]
  | Certificate.Inconclusive reason ->
      Json.Assoc
        [ ("kind", Json.String "inconclusive"); ("reason", Json.String reason) ]

let export ~setting ~k ~demand ~lambda ~n verdict =
  Json.Assoc
    [
      ("format", Json.String "faulty-search-certificate/1");
      ("setting", Json.String (setting_to_string setting));
      ("k", Json.Number (float_of_int k));
      ("demand", Json.Number (float_of_int demand));
      ("lambda", Json.Number lambda);
      ("n", Json.Number n);
      ("verdict", kind_json verdict);
    ]

let export_string ?pretty ~setting ~k ~demand ~lambda ~n verdict =
  Json.to_string ?pretty (export ~setting ~k ~demand ~lambda ~n verdict)

let ( let* ) r f = Result.bind r f

let field name extract json =
  match Json.member name json with
  | Some v -> (
      match extract v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let parse json =
  let* fmt = field "format" Json.to_string_value json in
  let* () =
    if fmt = "faulty-search-certificate/1" then Ok ()
    else Error (Printf.sprintf "unknown format %S" fmt)
  in
  let* setting_s = field "setting" Json.to_string_value json in
  let* setting = setting_of_string setting_s in
  let* k = field "k" Json.to_int json in
  let* demand = field "demand" Json.to_int json in
  let* lambda = field "lambda" Json.to_float json in
  let* n = field "n" Json.to_float json in
  let* verdict = field "verdict" Option.some json in
  let* kind_s = field "kind" Json.to_string_value verdict in
  let* kind =
    match kind_s with
    | "refuted-gap" ->
        let* at = field "at" Json.to_float verdict in
        let* multiplicity = field "multiplicity" Json.to_int verdict in
        Ok (Refuted_gap { at; multiplicity })
    | "refuted-potential" ->
        let* steps = field "steps" Json.to_int verdict in
        let* max_log_potential = field "max_log_potential" Json.to_float verdict in
        let* log_ceiling = field "log_ceiling" Json.to_float verdict in
        Ok (Refuted_potential { steps; max_log_potential; log_ceiling })
    | "not-refuted" ->
        let* delta = field "delta" Json.to_float verdict in
        Ok (Not_refuted { delta })
    | "inconclusive" ->
        let* reason = field "reason" Json.to_string_value verdict in
        Ok (Inconclusive reason)
    | s -> Error (Printf.sprintf "unknown verdict kind %S" s)
  in
  Ok { setting; k; demand; lambda; n; kind }

let parse_string s =
  let* json = Json.of_string s in
  parse json

type assignment_doc = {
  a_setting : Assigned.setting;
  a_k : int;
  a_demand : int;
  a_mu : float;
  intervals : Assigned.interval list;
}

let export_assignment doc =
  Json.Assoc
    [
      ("format", Json.String "faulty-search-assignment/1");
      ("setting", Json.String (setting_to_string doc.a_setting));
      ("k", Json.Number (float_of_int doc.a_k));
      ("demand", Json.Number (float_of_int doc.a_demand));
      ("mu", Json.Number doc.a_mu);
      ( "intervals",
        Json.List
          (List.map
             (fun (iv : Assigned.interval) ->
               Json.List
                 [
                   Json.Number (float_of_int iv.Assigned.robot);
                   Json.Number iv.Assigned.left;
                   Json.Number iv.Assigned.turn;
                 ])
             doc.intervals) );
    ]

let parse_assignment json =
  let* fmt = field "format" Json.to_string_value json in
  let* () =
    if fmt = "faulty-search-assignment/1" then Ok ()
    else Error (Printf.sprintf "unknown format %S" fmt)
  in
  let* setting_s = field "setting" Json.to_string_value json in
  let* a_setting = setting_of_string setting_s in
  let* a_k = field "k" Json.to_int json in
  let* a_demand = field "demand" Json.to_int json in
  let* a_mu = field "mu" Json.to_float json in
  let* items = field "intervals" Json.to_list json in
  let* intervals =
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match item with
        | Json.List [ r; l; t ] -> (
            match (Json.to_int r, Json.to_float l, Json.to_float t) with
            | Some robot, Some left, Some turn ->
                Ok ({ Assigned.robot; left; turn } :: acc)
            | _ -> Error "malformed interval entry")
        | _ -> Error "malformed interval entry")
      (Ok []) items
  in
  Ok { a_setting; a_k; a_demand; a_mu; intervals = List.rev intervals }

let check_assignment doc =
  let { a_setting; a_k = k; a_demand = demand; a_mu = mu; intervals } = doc in
  if k < 1 then Error "k < 1"
  else if demand < 1 then Error "demand < 1"
  else if mu <= 0. then Error "mu <= 0"
  else begin
    let tol x = 1e-6 *. Float.max 1. (Float.abs x) in
    let loads = Array.make k 0. in
    let multiset = ref (List.init demand (fun _ -> 1.)) in
    let insert x =
      let rec ins = function
        | [] -> [ x ]
        | y :: r -> if x <= y then x :: y :: r else y :: ins r
      in
      match !multiset with
      | _ :: rest -> multiset := ins rest
      | [] -> assert false
    in
    let rec structural i = function
      | [] -> Ok ()
      | (iv : Assigned.interval) :: rest ->
          let a = match !multiset with x :: _ -> x | [] -> 1. in
          if iv.Assigned.robot < 0 || iv.Assigned.robot >= k then
            Error (Printf.sprintf "interval %d: robot out of range" i)
          else if Float.abs (iv.Assigned.left -. a) > tol a then
            Error
              (Printf.sprintf
                 "interval %d: starts at %g, frontier is %g (coverage not \
                  exact)"
                 i iv.Assigned.left a)
          else if iv.Assigned.turn <= a then
            Error (Printf.sprintf "interval %d: does not extend the frontier" i)
          else begin
            let legal =
              match a_setting with
              | Assigned.Orc_setting ->
                  loads.(iv.Assigned.robot) <= (mu *. a) +. tol (mu *. a)
              | Assigned.Line_symmetric ->
                  loads.(iv.Assigned.robot) +. iv.Assigned.turn
                  <= (mu *. a) +. tol (mu *. a)
            in
            if not legal then
              Error
                (Printf.sprintf "interval %d: load constraint violated" i)
            else begin
              loads.(iv.Assigned.robot) <-
                loads.(iv.Assigned.robot) +. iv.Assigned.turn;
              insert iv.Assigned.turn;
              structural (i + 1) rest
            end
          end
    in
    let* () = structural 1 intervals in
    (* potential-level confirmation of Lemma 5 / eq. (8) on this object *)
    match Potential.analyze a_setting ~k ~demand ~mu intervals with
    | exception Invalid_argument msg -> Error msg
    | trace ->
        let delta = trace.Potential.delta in
        let bad_step =
          List.find_opt
            (fun st ->
              match st.Potential.step_ratio with
              | Some r -> r < delta -. 1e-6
              | None -> false)
            trace.Potential.steps
        in
        (match bad_step with
        | Some st ->
            Error
              (Printf.sprintf "step %d: potential ratio below delta"
                 st.Potential.index)
        | None ->
            if trace.Potential.exceeded then
              Error "potential exceeded its ceiling (inconsistent object)"
            else Ok ())
  end

let recheck parsed ~turns =
  let* () =
    if Array.length turns = parsed.k then Ok ()
    else
      Error
        (Printf.sprintf "certificate is for k = %d, got %d strategies"
           parsed.k (Array.length turns))
  in
  let verdict =
    match parsed.setting with
    | Assigned.Line_symmetric ->
        (* recover f from the line demand s = 2(f+1) - k *)
        let f = (parsed.demand + parsed.k) / 2 - 1 in
        Certificate.check_line ~turns ~f ~lambda:parsed.lambda ~n:parsed.n ()
    | Assigned.Orc_setting ->
        Certificate.check_orc ~turns ~demand:parsed.demand
          ~lambda:parsed.lambda ~n:parsed.n ()
  in
  let close_rel a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs b) in
  match (parsed.kind, verdict) with
  | Refuted_gap { at; multiplicity }, Certificate.Refuted_gap g ->
      if not (close_rel at g.at) then
        Error (Printf.sprintf "gap witness moved: recorded %g, recomputed %g" at g.at)
      else if not (Int.equal multiplicity g.multiplicity) then
        Error
          (Printf.sprintf "gap multiplicity: recorded %d, recomputed %d"
             multiplicity g.multiplicity)
      else Ok ()
  | Refuted_potential r, Certificate.Refuted_potential trace ->
      if not (close_rel r.max_log_potential trace.Potential.max_log_potential)
      then Error "potential summary differs"
      else if not (close_rel r.log_ceiling trace.Potential.log_ceiling) then
        Error "ceiling differs"
      else Ok ()
  | Not_refuted { delta }, Certificate.Not_refuted v ->
      if close_rel delta v.delta then Ok () else Error "delta differs"
  | Inconclusive _, Certificate.Inconclusive _ -> Ok ()
  | _, v ->
      Error
        (Format.asprintf "verdict kind changed: recomputed %a"
           Certificate.pp_verdict v)
