module Sweep = Search_numerics.Sweep
module Orc_round = Search_strategy.Orc_round
module Mray = Search_strategy.Mray_exponential
module Turning = Search_strategy.Turning
module Params = Search_bounds.Params

let mu_of_lambda lambda =
  if lambda <= 1. then invalid_arg "Orc: need lambda > 1";
  (lambda -. 1.) /. 2.

module Interval1 = Search_numerics.Interval1

(* Flat-array twin of [Orc_round.cover_intervals_within]: identical
   control flow and arithmetic order, so the collected intervals are
   bit-identical to the lazy loop's. *)
let[@hot] cover_intervals_within_compiled turns ~mu ~within:(lo, hi)
    ~max_rounds () =
  let c = Turning.compile turns in
  let rec collect i acc =
    if i > max_rounds then List.rev acc
    else
      let t'' = Turning.compiled_partial_sum c (i - 1) /. mu in
      if t'' > hi then List.rev acc
      else
        let ti = Turning.compiled_get c i in
        if t'' <= ti && ti >= lo then
          collect (i + 1) ((i, Interval1.closed t'' ti) :: acc)
        else collect (i + 1) acc
  in
  collect 1 []

let cover_intervals_within ?(kernel = `Compiled) turns ~lambda ~within =
  let mu = mu_of_lambda lambda in
  match kernel with
  | `Lazy -> Orc_round.cover_intervals_within turns ~mu ~within ()
  | `Compiled ->
      cover_intervals_within_compiled turns ~mu ~within
        ~max_rounds:1_000_000 ()

let group_intervals ?kernel turns_array ~lambda ~within =
  Array.to_list turns_array
  |> List.concat_map (fun turns ->
         cover_intervals_within ?kernel turns ~lambda ~within |> List.map snd)

let check ?kernel turns_array ~demand ~lambda ~n =
  if n < 1. then invalid_arg "Orc.check: need n >= 1";
  let ivs = group_intervals ?kernel turns_array ~lambda ~within:(1., n) in
  Sweep.check ~demand ~within:(1., n) ivs

let max_covered ?kernel turns_array ~demand ~lambda ~n =
  match check ?kernel turns_array ~demand ~lambda ~n with
  | Sweep.Covered -> n
  | Sweep.Gap { from_; _ } -> Float.max 1. from_

let of_mray strat ~robot =
  let p = Mray.params strat in
  let k = p.Params.k in
  if robot < 0 || robot >= k then invalid_arg "Orc.of_mray: robot out of range";
  (* pass index l starts at the strategy's l_min; depths are increasing in l *)
  let itin = Mray.itinerary strat ~robot in
  Turning.of_fun (fun i ->
      let wp = Search_sim.Itinerary.waypoint itin ((2 * i) - 1) in
      wp.Search_sim.World.dist)

let of_mray_group strat =
  let p = Mray.params strat in
  Array.init p.Params.k (fun robot -> of_mray strat ~robot)
