module Interval1 = Search_numerics.Interval1
module Sweep = Search_numerics.Sweep
module Line_zigzag = Search_strategy.Line_zigzag
module Turning = Search_strategy.Turning

let mu_of_lambda lambda =
  if lambda <= 1. then invalid_arg "Symmetric: need lambda > 1";
  (lambda -. 1.) /. 2.

let cover_intervals_within_lazy turns ~lambda ~within:(lo, hi) ~max_rounds () =
  let mu = mu_of_lambda lambda in
  let rec collect i acc =
    if i > max_rounds then List.rev acc
    else
      let t'' = Line_zigzag.cover_threshold turns ~mu ~i in
      (* thresholds are nondecreasing: once past the window, stop *)
      if Turning.partial_sum turns i /. mu > hi then List.rev acc
      else
        let ti = Turning.get turns i in
        if t'' <= ti && ti >= lo && t'' <= hi then
          collect (i + 1) ((i, Interval1.closed t'' ti) :: acc)
        else collect (i + 1) acc
  in
  collect 1 []

(* Same loop through the flat-array view: each round costs three array
   reads instead of mutex+hashtable probes.  The arithmetic (including
   the Kahan partial sums) is replayed in the identical order, so the
   collected intervals are bit-identical to the lazy loop's. *)
let[@hot] cover_intervals_within_compiled turns ~lambda ~within:(lo, hi)
    ~max_rounds
    () =
  let mu = mu_of_lambda lambda in
  let c = Turning.compile turns in
  let rec collect i acc =
    if i > max_rounds then List.rev acc
    else
      let prev = if i = 1 then 0. else Turning.compiled_get c (i - 1) in
      let sum_i = Turning.compiled_partial_sum c i in
      let t'' = Float.max (sum_i /. mu) prev in
      if sum_i /. mu > hi then List.rev acc
      else
        let ti = Turning.compiled_get c i in
        if t'' <= ti && ti >= lo && t'' <= hi then
          collect (i + 1) ((i, Interval1.closed t'' ti) :: acc)
        else collect (i + 1) acc
  in
  collect 1 []

let cover_intervals_within ?(kernel = `Compiled) turns ~lambda ~within
    ?(max_rounds = 1_000_000) () =
  match kernel with
  | `Lazy -> cover_intervals_within_lazy turns ~lambda ~within ~max_rounds ()
  | `Compiled ->
      cover_intervals_within_compiled turns ~lambda ~within ~max_rounds ()

let group_intervals ?kernel turns_array ~lambda ~within =
  Array.to_list turns_array
  |> List.concat_map (fun turns ->
         cover_intervals_within ?kernel turns ~lambda ~within ()
         |> List.map snd)

let check ?kernel turns_array ~demand ~lambda ~n =
  if n < 1. then invalid_arg "Symmetric.check: need n >= 1";
  let ivs = group_intervals ?kernel turns_array ~lambda ~within:(1., n) in
  Sweep.check ~demand ~within:(1., n) ivs

let max_covered ?kernel turns_array ~demand ~lambda ~n =
  match check ?kernel turns_array ~demand ~lambda ~n with
  | Sweep.Covered -> n
  | Sweep.Gap { from_; _ } ->
      (* the gap's left end bounds the covered prefix: everything strictly
         before it is covered *)
      Float.max 1. from_
