module Params = Search_bounds.Params
module Group = Search_strategy.Group
module Mray = Search_strategy.Mray_exponential

type solution = {
  problem : Problem.t;
  group : Group.t;
  bound : float;
  designed_ratio : float;
  exponential : Mray.t option; (* the underlying strategy, searching regime *)
}

module E = Search_numerics.Search_error

let solve ?alpha problem =
  let params = problem.Problem.params in
  match Params.regime params with
  | Params.Unsolvable ->
      E.raise_
        (E.Regime_violation
           {
             m = params.Params.m;
             k = params.Params.k;
             f = params.Params.f;
             what = "all robots may be faulty";
           })
  | Params.Ratio_one ->
      let group = Group.optimal ?alpha params in
      {
        problem;
        group;
        bound = Problem.bound problem;
        designed_ratio = 1.;
        exponential = None;
      }
  | Params.Searching ->
      let strat = Mray.make ?alpha params in
      let group =
        {
          Group.params;
          itineraries = Mray.itineraries strat;
          predicted_ratio = Mray.predicted_ratio strat;
        }
      in
      {
        problem;
        group;
        bound = Problem.bound problem;
        designed_ratio = Mray.predicted_ratio strat;
        exponential = Some strat;
      }

let trajectories t = Group.trajectories t.group

let orc_turns t =
  Option.map Search_covering.Orc.of_mray_group t.exponential
