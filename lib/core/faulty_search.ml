(** Parallel search on the line and on [m] rays with faulty robots.

    An OCaml reproduction of Kupavskii and Welzl, {e Lower Bounds for
    Searching Robots, some Faulty} (PODC 2018; arXiv:1707.05077).

    Quick tour:
    {[
      let problem = Faulty_search.Problem.line ~k:3 ~f:1 () in
      let solution = Faulty_search.Solve.solve problem in
      let report = Faulty_search.Verify.verify solution in
      Format.printf "%a@." Faulty_search.Verify.pp report
    ]}

    The high-level modules below are defined in this library; the
    substrate namespaces re-export the full stack for power users. *)

(** {1 High-level API} *)

module Problem = Problem
module Solve = Solve
module Verify = Verify
module Report = Report

(** {1 Closed-form bounds (Theorems 1 and 6, eq. 11)} *)

module Params = Search_bounds.Params
module Formulas = Search_bounds.Formulas
module Lemma = Search_bounds.Lemma
module Byzantine = Search_bounds.Byzantine
module Asymptotics = Search_bounds.Asymptotics
module Planning = Search_bounds.Planning

(** {1 Strategies} *)

module Turning = Search_strategy.Turning
module Line_zigzag = Search_strategy.Line_zigzag
module Orc_round = Search_strategy.Orc_round
module Normalize = Search_strategy.Normalize
module Mray_exponential = Search_strategy.Mray_exponential
module Cyclic = Search_strategy.Cyclic
module Baseline = Search_strategy.Baseline
module Group = Search_strategy.Group
module Randomized = Search_strategy.Randomized

(** {1 Simulation} *)

module World = Search_sim.World
module Itinerary = Search_sim.Itinerary
module Trajectory = Search_sim.Trajectory
module Fault = Search_sim.Fault
module Engine = Search_sim.Engine
module Adversary = Search_sim.Adversary
module Exact_adversary = Search_sim.Exact_adversary
module Competitive = Search_sim.Competitive
module Byzantine_sim = Search_sim.Byzantine_sim
module Event_log = Search_sim.Event_log
module Svg_render = Search_sim.Svg_render

(** {1 Cost-model variants (related work the paper builds on)} *)

module Work_schedule = Search_sim.Work_schedule
module Turn_cost = Search_sim.Turn_cost
module Stochastic = Search_sim.Stochastic

(** {1 Covering relaxations and the lower-bound machinery} *)

module Symmetric_cover = Search_covering.Symmetric
module Orc_cover = Search_covering.Orc
module Assigned = Search_covering.Assigned
module Potential = Search_covering.Potential
module Certificate = Search_covering.Certificate
module Certificate_io = Search_covering.Certificate_io
module Fractional = Search_covering.Fractional
module Induction = Search_covering.Induction
module Frontier = Search_covering.Frontier

(** {1 Property-based checking (fuzzing harness)} *)

module Check = Search_check
(** Submodules: [Check.Case], [Check.Gen], [Check.Invariant],
    [Check.Shrink], [Check.Corpus], [Check.Fuzz]. *)

(** {1 Static analysis (determinism & numeric-safety lint)} *)

module Analysis = Search_analysis
(** Submodules: [Analysis.Finding], [Analysis.Allow], [Analysis.Source],
    [Analysis.Rules], [Analysis.Driver]. *)

(** {1 Parallel execution (domain pool, deterministic sharding)} *)

module Pool = Search_exec.Pool
module Par = Search_exec.Par
module Shard = Search_exec.Shard
module Memo = Search_exec.Memo
module Metrics = Search_exec.Metrics

(** {1 Resilience (supervised execution runtime)} *)

module Search_error = Search_numerics.Search_error
module Budget = Search_resilience.Budget
module Cancel = Search_resilience.Cancel
module Retry = Search_resilience.Retry
module Chaos = Search_resilience.Chaos
module Journal = Search_resilience.Journal
module Lockfile = Search_resilience.Lockfile
module Supervise = Search_exec.Supervise

(** {1 Numerics} *)

module Interval1 = Search_numerics.Interval1
module Sweep = Search_numerics.Sweep
module Rational = Search_numerics.Rational
module Table = Search_numerics.Table
module Prng = Search_numerics.Prng
module Csv_out = Search_numerics.Csv_out
module Json = Search_numerics.Json
module Stats = Search_numerics.Stats
