module Params = Search_bounds.Params
module Certificate = Search_covering.Certificate

type t = {
  problem : Problem.t;
  regime : Params.regime;
  bound : float;
  designed_ratio : float;
  simulated_ratio : float;
  exact_sup : float;
  covering_ok : bool option;
  certificate_below : Certificate.verdict option;
  byzantine_transfer : float option;
}

let build ?(claimed_fraction = 0.99) problem =
  let solution = Solve.solve problem in
  let verify = Verify.verify solution in
  let params = problem.Problem.params in
  let f = params.Params.f in
  let n = problem.Problem.horizon in
  let trajectories = Solve.trajectories solution in
  let exact_sup =
    (Search_sim.Exact_adversary.worst_case trajectories ~f ~n ())
      .Search_sim.Exact_adversary.sup
  in
  let certificate_below, byzantine_transfer =
    match (Params.regime params, Solve.orc_turns solution) with
    | Params.Searching, Some turns ->
        let lambda = claimed_fraction *. Problem.bound problem in
        let verdict =
          if params.Params.m = 2 then
            Certificate.check_line ~turns ~f ~lambda ~n ()
          else
            Certificate.check_orc ~turns ~demand:(Params.q params) ~lambda ~n ()
        in
        let byz =
          if params.Params.m = 2 then
            Some (Search_bounds.Byzantine.lower_bound ~k:params.Params.k ~f)
          else None
        in
        (Some verdict, byz)
    | _ -> (None, None)
  in
  {
    problem;
    regime = Params.regime params;
    bound = Problem.bound problem;
    designed_ratio = solution.Solve.designed_ratio;
    simulated_ratio = verify.Verify.simulated_ratio;
    exact_sup;
    covering_ok = verify.Verify.covering_ok;
    certificate_below;
    byzantine_transfer;
  }

let to_markdown t =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let { Params.m; k; f } = t.problem.Problem.params in
  p "# Instance report: m = %d rays, k = %d robots, f = %d crash faults" m k f;
  p "";
  p "- regime: **%s**" (Format.asprintf "%a" Params.pp_regime t.regime);
  p "- evaluation horizon: targets in [1, %g]" t.problem.Problem.horizon;
  p "";
  p "## Competitive ratio";
  p "";
  p "| quantity | value |";
  p "|---|---|";
  p "| closed-form optimum (Theorems 1/6) | %.9f |" t.bound;
  p "| designed ratio of the synthesized strategy | %.9f |" t.designed_ratio;
  p "| simulated worst case (bracketing scan) | %.9f |" t.simulated_ratio;
  p "| exact supremum (piecewise-affine analysis) | %.9f |" t.exact_sup;
  (match t.covering_ok with
  | Some ok -> p "| ORC covering at the designed ratio | %s |" (if ok then "verified" else "**FAILED**")
  | None -> ());
  (match t.byzantine_transfer with
  | Some b -> p "| Byzantine transfer: B(%d,%d) >= | %.9f |" k f b
  | None -> ());
  (match t.certificate_below with
  | Some v ->
      p "";
      p "## Lower-bound certificate (at 99%% of the bound)";
      p "";
      p "```";
      p "%s" (Format.asprintf "%a" Certificate.pp_verdict v);
      p "```"
  | None -> ());
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf
    "%a: bound %.6f, simulated %.6f, exact %.6f%s" Problem.pp t.problem
    t.bound t.simulated_ratio t.exact_sup
    (match t.certificate_below with
    | Some (Certificate.Refuted_gap _ | Certificate.Refuted_potential _) ->
        ", sub-bound claim refuted"
    | Some _ -> ", sub-bound claim NOT refuted"
    | None -> "")
