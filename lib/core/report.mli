(** Structured instance reports.

    Bundles everything the library can say about one instance — regime,
    closed-form bound, designed and simulated ratios (both the bracketing
    scan and the exact piecewise-affine supremum), the covering verdict,
    the certificate at a claimed sub-bound ratio, and the Byzantine
    transfer — into a single record with a markdown renderer.  The CLI's
    [report] subcommand writes it to a file. *)

type t = {
  problem : Problem.t;
  regime : Search_bounds.Params.regime;
  bound : float;
  designed_ratio : float;
  simulated_ratio : float;  (** bracketing scan *)
  exact_sup : float;  (** exact piecewise-affine supremum *)
  covering_ok : bool option;
  certificate_below : Search_covering.Certificate.verdict option;
      (** verdict at [0.99 *. bound]; [None] outside the searching regime *)
  byzantine_transfer : float option;
      (** the [B >= A] figure; [None] when not in the searching regime *)
}

val build : ?claimed_fraction:float -> Problem.t -> t
(** Solve, verify, and certify the instance.  [claimed_fraction]
    (default 0.99) sets the sub-bound ratio the certificate is run at.
    @raise Search_numerics.Search_error.Error ([Regime_violation]) for
      [f = k]. *)

val to_markdown : t -> string
(** A self-contained markdown document. *)

val pp : Format.formatter -> t -> unit
(** Compact one-paragraph rendering. *)
