(** Problem specifications for the public API.

    A problem instance bundles the combinatorial parameters [(m, k, f)]
    with the fault model and the finite evaluation horizon used by
    simulation and verification (the theory concerns targets at any
    distance [>= 1]; all empirical checks run on [[1, horizon]]). *)

type fault_kind = Crash | Byzantine

type t = private {
  params : Search_bounds.Params.t;
  fault_kind : fault_kind;
  horizon : float;  (** evaluation horizon [N >= 1] *)
}

val make :
  ?fault_kind:fault_kind -> ?horizon:float -> m:int -> k:int -> f:int -> unit
  -> t
(** Defaults: [Crash] faults, horizon [1e4].
    @raise Search_numerics.Search_error.Error ([Regime_violation]) on
      bad [(m, k, f)];
    @raise Invalid_argument on a horizon [< 1.]. *)

val line : ?fault_kind:fault_kind -> ?horizon:float -> k:int -> f:int -> unit -> t
(** [make ~m:2 ...]. *)

val regime : t -> Search_bounds.Params.regime

val bound : t -> float
(** The tight competitive ratio of the instance: [A(m, k, f)] for crash
    faults (Theorems 1 and 6); for Byzantine faults this is the paper's
    {e lower} bound [B >= A] (the exact Byzantine value is open). *)

val pp : Format.formatter -> t -> unit
