(** Strategy synthesis: from a problem to a concrete group plan.

    Dispatches on the regime: the partition strategy when [k >= m(f+1)]
    (ratio 1), the optimal exponential strategy in the searching regime
    (ratio [lambda0] of Theorem 6, which Theorem 6's lower bound shows is
    the best possible).  Unsolvable instances ([f = k]) are rejected. *)

type solution = private {
  problem : Problem.t;
  group : Search_strategy.Group.t;
  bound : float;
      (** the closed-form optimum for the instance (crash model); the
          strategy's design ratio equals it at the default [alpha] *)
  designed_ratio : float;
      (** the ratio this concrete group targets — differs from [bound]
          only when a non-default [alpha] was requested *)
  exponential : Search_strategy.Mray_exponential.t option;
      (** the underlying exponential strategy (searching regime only) *)
}

val solve : ?alpha:float -> Problem.t -> solution
(** @raise Search_numerics.Search_error.Error
      ([Regime_violation]) when [f = k]. *)

val trajectories : solution -> Search_sim.Trajectory.t array
(** Compiled motion of every robot. *)

val orc_turns : solution -> Search_strategy.Turning.t array option
(** The ORC projection of the group's round strategies (for covering
    checks); [None] in the ratio-one regime (straight-line robots have no
    rounds). *)
