(** Fixed-size pool of worker domains with a shared work queue.

    The experiment harness evaluates many independent closures (table
    rows, λ-grid points, Monte-Carlo shards).  This pool runs them on
    [jobs - 1] worker domains plus the submitting domain itself: while a
    caller {!await}s a promise it {e helps}, draining the queue, so a
    pool of size 1 degenerates to plain sequential evaluation (no domain
    is spawned) and nested submissions can never deadlock.

    Exceptions raised by a task are captured with their backtrace and
    re-raised at the {!await} site.

    Determinism contract: tasks must not communicate through shared
    mutable state; results flow only through promises.  Under that
    discipline every awaited value is independent of the pool size and
    of the order in which the scheduler happens to run tasks. *)

type t
(** A pool handle.  Pools are cheap (a queue, a mutex, [jobs - 1]
    domains) but not free: create one per batch of work, or keep one for
    a whole program run, and {!shutdown} it when done. *)

type 'a promise
(** The future result of a submitted task. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}).  Requires [jobs >= 1]. *)

val jobs : t -> int
(** The pool size the pool was created with (counting the caller). *)

val async : t -> (unit -> 'a) -> 'a promise
(** Submit a task.  Tasks may themselves call [async]/[await] on the
    same pool (nested fan-out).
    @raise Search_numerics.Search_error.Error with [Pool_closed] on a
    pool that was shut down. *)

val await : 'a promise -> 'a
(** Block until the task has run, helping to drain the queue in the
    meantime; returns its value or re-raises its exception (with the
    original backtrace).  A promise abandoned by {!shutdown} raises
    [Search_error.Error (Pool_closed _)]. *)

val shutdown : t -> unit
(** Close the pool and join the worker domains.  Idempotent.  Queued
    tasks that have not started are dropped; every promise still pending
    (including those whose task was dropped) fails with [Pool_closed],
    and waiters parked in {!await} are woken — shutdown never strands a
    waiter in [Condition.wait]. *)

type stats = {
  jobs : int;  (** pool size, counting the caller *)
  submitted : int;  (** tasks accepted by {!async} since creation *)
  settled : int;  (** promises resolved: completed, crashed, or failed
                      by {!shutdown} *)
  pending : int;  (** [submitted - settled]: queued or in flight *)
}

val stats : t -> stats
(** A consistent snapshot of the pool's task counters — the daemon's
    [stats] request and the load-generator report read these.  Purely
    observational: the numbers depend on scheduling and must never gate
    a deterministic artefact. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] = create, run [f], always shutdown. *)
