(** Per-task wall-clock metrics with JSON export.

    The bench harness times each experiment section and writes
    [results/bench_timings.json] so later changes have a recorded perf
    trajectory to regress against.  Recording is thread-safe (tasks on
    any domain may call {!time}); entries keep submission order.

    File schema — a JSON list of
    [{ "experiment": "T1", "jobs": 4, "seconds": 0.173 }]
    objects.  {!write} merges: entries of previous runs with a different
    [jobs] value are kept, entries with the same [jobs] are replaced. *)

type t

val create : jobs:int -> unit -> t
(** A recorder whose entries are all tagged with the given job count. *)

val time : t -> experiment:string -> (unit -> 'a) -> 'a
(** Run the closure, record its wall-clock duration under the id, and
    pass its result (or exception) through. *)

val record : t -> experiment:string -> seconds:float -> unit
(** Append an externally measured duration. *)

val entries : t -> (string * float) list
(** [(experiment, seconds)] in recording order. *)

val total : t -> float
(** Sum of all recorded durations. *)

val to_json : t -> Search_numerics.Json.t
(** This recorder's entries in the file schema. *)

val write : t -> path:string -> unit
(** Merge into the JSON file at [path] (see above); creates it — but not
    its directory — when absent.  An unparsable existing file is
    overwritten.

    The read-merge-write cycle holds an advisory lock on a [path ^
    ".lock"] sidecar (plus an in-process mutex: fcntl locks do not
    exclude domains of one process), and the new contents are written to
    a temp file in the same directory and renamed into place — two
    concurrent bench runs cannot clobber each other's entries or leave a
    torn file. *)

val append_history : t -> path:string -> run:string -> unit
(** Append this recorder as one line of JSONL trend history:
    [{ "run": run, "unix_time": ..., "jobs": ..., "entries": [...] }].
    Unlike {!write}, nothing is ever replaced — consecutive runs
    accumulate, so the perf trajectory across commits stays visible.
    Guarded by the same lock-file + mutex pair as {!write}. *)

val read_history : string -> Search_numerics.Json.t list
(** Parse a history file back, one {!Search_numerics.Json.t} per line,
    oldest first; unparsable lines (e.g. a torn tail from a killed run)
    are skipped.  A missing file is an empty history. *)
