module Prng = Search_numerics.Prng

let prngs ~root ~n =
  if n < 0 then invalid_arg "Shard.prngs: need n >= 0";
  let spine = ref root in
  Array.init n (fun _ ->
      let leaf, rest = Prng.split !spine in
      spine := rest;
      leaf)

let[@pool_entry] sharded_map pool ~root ~f xs =
  let gs = prngs ~root ~n:(List.length xs) in
  Par.parallel_mapi pool ~f:(fun i x -> f ~prng:gs.(i) x) xs

let shards ~shards:count xs =
  if count < 1 then invalid_arg "Shard.shards: need shards >= 1";
  let n = List.length xs in
  let used = min count n in
  if used = 0 then []
  else begin
    let base = n / used and extra = n mod used in
    (* chunk i gets base + 1 items if i < extra, else base *)
    let rec cut i remaining =
      if Int.equal i used then []
      else
        let len = base + if i < extra then 1 else 0 in
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | x :: tl -> take (n - 1) (x :: acc) tl
        in
        let chunk, rest = take len [] remaining in
        chunk :: cut (i + 1) rest
    in
    cut 0 xs
  end

let sharded_chunks ~root ~shards:count xs =
  let chunks = shards ~shards:count xs in
  let gs = prngs ~root ~n:(List.length chunks) in
  List.mapi (fun i c -> (c, gs.(i))) chunks

let grid2 xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
