type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(initial_size = 64) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create initial_size;
    hits = 0;
    misses = 0;
  }

let find_or_add t key compute =
  let cached =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some winner -> winner
          | None ->
              Hashtbl.add t.table key v;
              v)

let memoize t f key = find_or_add t key (fun () -> f key)

let stats t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table })

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)

module Lru = struct
  (* Intrusive doubly-linked recency list threaded through the hash
     table's nodes: head = most recent, tail = next eviction victim.
     Every structural operation happens under the mutex; like the
     unbounded cache above, the compute itself runs outside it. *)
  type ('k, 'v) node = {
    key : 'k;
    value : 'v;
    mutable prev : ('k, 'v) node option;  (* towards head / MRU *)
    mutable next : ('k, 'v) node option;  (* towards tail / LRU *)
  }

  type ('k, 'v) t = {
    mutex : Mutex.t;
    table : ('k, ('k, 'v) node) Hashtbl.t;
    capacity : int;
    mutable head : ('k, 'v) node option;
    mutable tail : ('k, 'v) node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  type stats = {
    hits : int;
    misses : int;
    evictions : int;
    entries : int;
    capacity : int;
  }

  let create ~capacity () =
    if capacity < 1 then
      Search_numerics.Search_error.invalid ~where:"Memo.Lru.create"
        "need capacity >= 1";
    {
      mutex = Mutex.create ();
      table = Hashtbl.create (min capacity 64);
      capacity;
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity (t : (_, _) t) = t.capacity

  (* all three list operations assume the mutex is held *)
  let detach_locked t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front_locked t node =
    node.prev <- None;
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> ());
    t.head <- Some node;
    match t.tail with None -> t.tail <- Some node | Some _ -> ()

  let evict_excess_locked t =
    while Hashtbl.length t.table > t.capacity do
      match t.tail with
      | None -> assert false (* table non-empty means the list is too *)
      | Some victim ->
          detach_locked t victim;
          Hashtbl.remove t.table victim.key;
          t.evictions <- t.evictions + 1
    done

  let find_or_add t key compute =
    let cached =
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some node ->
              t.hits <- t.hits + 1;
              detach_locked t node;
              push_front_locked t node;
              Some node.value
          | None ->
              t.misses <- t.misses + 1;
              None)
    in
    match cached with
    | Some v -> v
    | None ->
        let v = compute () in
        Mutex.protect t.mutex (fun () ->
            match Hashtbl.find_opt t.table key with
            | Some winner ->
                (* a concurrent compute landed first; keep it (the
                   function is pure, the values agree) and refresh its
                   recency *)
                detach_locked t winner;
                push_front_locked t winner;
                winner.value
            | None ->
                let node = { key; value = v; prev = None; next = None } in
                Hashtbl.add t.table key node;
                push_front_locked t node;
                evict_excess_locked t;
                v)

  let memoize t f key = find_or_add t key (fun () -> f key)

  let stats t =
    Mutex.protect t.mutex (fun () ->
        {
          hits = t.hits;
          misses = t.misses;
          evictions = t.evictions;
          entries = Hashtbl.length t.table;
          capacity = t.capacity;
        })

  let clear t =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.reset t.table;
        t.head <- None;
        t.tail <- None;
        t.hits <- 0;
        t.misses <- 0;
        t.evictions <- 0)
end
