type ('k, 'v) t = {
  mutex : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(initial_size = 64) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create initial_size;
    hits = 0;
    misses = 0;
  }

let find_or_add t key compute =
  let cached =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some v ->
            t.hits <- t.hits + 1;
            Some v
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some winner -> winner
          | None ->
              Hashtbl.add t.table key v;
              v)

let memoize t f key = find_or_add t key (fun () -> f key)

let stats t =
  Mutex.protect t.mutex (fun () ->
      { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table })

let clear t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)
