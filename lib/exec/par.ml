let chunked size xs =
  if size < 1 then invalid_arg "Par.parallel_map: need chunk >= 1";
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let rec go = function
    | [] -> []
    | xs ->
        let c, rest = take size [] xs in
        c :: go rest
  in
  go xs

let[@pool_entry] map_plain pool ~f xs =
  let promises = List.map (fun x -> Pool.async pool (fun () -> f x)) xs in
  List.map Pool.await promises

let[@pool_entry] parallel_map ?(chunk = 1) pool ~f xs =
  if chunk = 1 then map_plain pool ~f xs
  else List.concat (map_plain pool ~f:(List.map f) (chunked chunk xs))

let[@pool_entry] parallel_mapi pool ~f xs =
  List.mapi (fun i x -> (i, x)) xs
  |> map_plain pool ~f:(fun (i, x) -> f i x)

let[@pool_entry] parallel_iter pool ~f xs = ignore (map_plain pool ~f xs : unit list)

let[@pool_entry] parallel_reduce pool ~map ~combine ~init xs =
  List.fold_left combine init (map_plain pool ~f:map xs)

let[@pool_entry] parallel_map_array pool ~f xs =
  Array.of_list (map_plain pool ~f (Array.to_list xs))
