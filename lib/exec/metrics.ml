module Json = Search_numerics.Json

type t = {
  mutex : Mutex.t;
  jobs : int;
  mutable entries : (string * float) list; (* reversed *)
}

let create ~jobs () = { mutex = Mutex.create (); jobs; entries = [] }

let record t ~experiment ~seconds =
  Mutex.protect t.mutex (fun () ->
      t.entries <- (experiment, seconds) :: t.entries)

let time t ~experiment f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      record t ~experiment ~seconds:(Unix.gettimeofday () -. t0))
    f

let entries t = Mutex.protect t.mutex (fun () -> List.rev t.entries)
let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0. (entries t)

let entry_json ~jobs (experiment, seconds) =
  Json.Assoc
    [
      ("experiment", Json.String experiment);
      ("jobs", Json.Number (float_of_int jobs));
      ("seconds", Json.Number seconds);
    ]

let to_json t = Json.List (List.map (entry_json ~jobs:t.jobs) (entries t))

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Ok (Json.List items) -> Some items
    | Ok _ | Error _ -> None
  end

(* The merge is a read-modify-write cycle: two bench runs writing the
   same timings file concurrently (say --jobs 1 and --jobs 4 in parallel
   CI lanes) would clobber each other's entries.  Serialisation is
   two-level: a module mutex for domains of this process, and a sentinel
   lock file for other processes — [Lockfile] records the holder's PID
   and age and breaks stale locks, so a bench run killed mid-write no
   longer wedges every later run (the old [Unix.lockf] sidecar survived
   kills).  The new contents land via temp-file + rename in the target
   directory, so a reader never observes a torn file. *)
let write_mutex = Mutex.create ()

let write t ~path =
  let ours =
    match to_json t with Json.List items -> items | _ -> assert false
  in
  Mutex.protect write_mutex @@ fun () ->
  Search_resilience.Lockfile.with_lock ~path:(path ^ ".lock") @@ fun () ->
  let kept =
    match read_file path with
    | None -> []
    | Some items ->
        List.filter
          (fun item ->
            match Option.bind (Json.member "jobs" item) Json.to_int with
            | Some j -> not (Int.equal j t.jobs)
            | None -> false)
          items
  in
  let tmp, oc =
    Filename.open_temp_file
      ~temp_dir:(Filename.dirname path)
      ~mode:[ Open_binary ] "bench_timings" ".tmp"
  in
  match
    output_string oc (Json.to_string ~pretty:true (Json.List (kept @ ours)));
    output_char oc '\n';
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* Trend file: [write] above keeps only the latest run per job count, so
   nothing in the repo showed whether a change made the suite faster or
   slower than last week.  The history file is append-only JSONL — one
   self-contained line per run, never rewritten — so consecutive runs
   stay comparable; a torn tail (a run killed mid-append) leaves at most
   one unparsable final line, which readers skip. *)
let append_history t ~path ~run =
  let line =
    Json.to_string
      (Json.Assoc
         [
           ("run", Json.String run);
           ("unix_time", Json.Number (Float.round (Unix.gettimeofday ())));
           ("jobs", Json.Number (float_of_int t.jobs));
           ("entries", to_json t);
         ])
  in
  Mutex.protect write_mutex @@ fun () ->
  Search_resilience.Lockfile.with_lock ~path:(path ^ ".lock") @@ fun () ->
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n')

let read_history path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            lines := input_line ic :: !lines
          done
        with End_of_file -> ());
    List.rev !lines
    |> List.filter_map (fun l ->
           match Json.of_string l with Ok j -> Some j | Error _ -> None)
  end
