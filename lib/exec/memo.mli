(** Thread-safe memoisation cache.

    The bench grids re-evaluate the same closed-form bounds — [A(m,k,f)],
    [alpha*], regime checks — once per table that mentions them; with the
    grids fanned out over domains the evaluations also race.  This cache
    is a mutex-guarded hash table: lookups and insertions are atomic, the
    compute itself runs {e outside} the lock (so a slow miss never blocks
    the pool, and re-entrant computes cannot deadlock).  Two domains
    missing the same key concurrently may both compute it; the function
    must therefore be pure, which also makes the duplication harmless —
    first insertion wins. *)

type ('k, 'v) t

val create : ?initial_size:int -> unit -> ('k, 'v) t
(** [initial_size] defaults to 64 buckets. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Cached value for the key, computing and caching it on a miss. *)

val memoize : ('k, 'v) t -> ('k -> 'v) -> 'k -> 'v
(** [memoize cache f] is [f] backed by [cache] — e.g.
    [memoize c (fun (m, k, f) -> Formulas.a_mray ~m ~k ~f)]. *)

type stats = { hits : int; misses : int; entries : int }

val stats : ('k, 'v) t -> stats
(** [misses] counts computes started, so under a concurrent duplicate
    compute it can exceed [entries]. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries (statistics included). *)
