(** Thread-safe memoisation cache.

    The bench grids re-evaluate the same closed-form bounds — [A(m,k,f)],
    [alpha*], regime checks — once per table that mentions them; with the
    grids fanned out over domains the evaluations also race.  This cache
    is a mutex-guarded hash table: lookups and insertions are atomic, the
    compute itself runs {e outside} the lock (so a slow miss never blocks
    the pool, and re-entrant computes cannot deadlock).  Two domains
    missing the same key concurrently may both compute it; the function
    must therefore be pure, which also makes the duplication harmless —
    first insertion wins. *)

type ('k, 'v) t

val create : ?initial_size:int -> unit -> ('k, 'v) t
(** [initial_size] defaults to 64 buckets. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Cached value for the key, computing and caching it on a miss. *)

val memoize : ('k, 'v) t -> ('k -> 'v) -> 'k -> 'v
(** [memoize cache f] is [f] backed by [cache] — e.g.
    [memoize c (fun (m, k, f) -> Formulas.a_mray ~m ~k ~f)]. *)

type stats = { hits : int; misses : int; entries : int }

val stats : ('k, 'v) t -> stats
(** [misses] counts computes started, so under a concurrent duplicate
    compute it can exceed [entries]. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries (statistics included). *)

(** {1 Size-bounded variant}

    The unbounded cache above is right for bench tables — a known, small
    key universe evaluated once per run.  A long-lived server answering
    arbitrary client queries must not grow without bound, so {!Lru} caps
    the entry count and evicts the least-recently-used key; its counters
    (including evictions) feed the daemon's [stats] response.  Same
    locking discipline as the unbounded cache: structural operations are
    atomic, the compute runs outside the lock, concurrent duplicate
    computes of a pure function are harmless. *)
module Lru : sig
  type ('k, 'v) t

  val create : capacity:int -> unit -> ('k, 'v) t
  (** At most [capacity] entries are retained.
      @raise Search_numerics.Search_error.Error when [capacity < 1]. *)

  val capacity : ('k, 'v) t -> int

  val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** Cached value for the key, computing and caching it on a miss — a
      hit refreshes the key's recency; an insert over capacity evicts
      the least-recently-used entry. *)

  val memoize : ('k, 'v) t -> ('k -> 'v) -> 'k -> 'v

  type stats = {
    hits : int;
    misses : int;
    evictions : int;
    entries : int;
    capacity : int;
  }

  val stats : ('k, 'v) t -> stats
  (** [misses] counts computes started (may exceed [entries] under
      concurrent duplicate computes, and under eviction churn);
      [evictions] counts entries dropped to respect [capacity]. *)

  val clear : ('k, 'v) t -> unit
  (** Drop all entries and reset every counter. *)
end
