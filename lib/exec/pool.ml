(* One mutex/condition pair guards everything: the queue, the shutdown
   flag, the pending-promise registry and every promise's state.  [wake]
   is broadcast on each of the three events an idle domain can be waiting
   for — new work, a promise resolving, shutdown — which keeps the
   protocol obviously deadlock-free at the cost of some spurious wake-ups
   (fine at table-row granularity).

   Every critical section goes through [Mutex.protect] so an exception
   raised inside (e.g. [async] on a closed pool) cannot leak the lock;
   jobs themselves always run outside the protected region.

   Shutdown protocol: queued-but-unstarted jobs are dropped and every
   still-pending promise is failed with [Pool_closed], then [wake] is
   broadcast — so a waiter parked in [Condition.wait] inside [await]
   wakes, observes [Failed] and raises, instead of sleeping forever on a
   pool nobody will ever run work for.  Jobs already executing on a
   worker finish normally, but their late result is discarded (the
   promise is already [Failed]; first writer wins). *)

module E = Search_numerics.Search_error

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type t = {
  mutex : Mutex.t;
  wake : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  mutable pending : hidden list;
  mutable since_prune : int;
  mutable submitted : int;
  mutable settled : int;
  jobs : int;
}

and 'a promise = { pool : t; mutable result : 'a state }
and hidden = Hide : 'a promise -> hidden

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

let worker t =
  let running = ref true in
  while !running do
    let job =
      Mutex.protect t.mutex (fun () ->
          while Queue.is_empty t.queue && not t.closing do
            Condition.wait t.wake t.mutex
          done;
          if Queue.is_empty t.queue then begin
            (* closing and drained *)
            running := false;
            None
          end
          else Some (Queue.pop t.queue))
    in
    (* run outside the critical section *)
    Option.iter (fun job -> job ()) job
  done

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then E.invalid ~where:"Pool.create" "need jobs >= 1";
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      pending = [];
      since_prune = 0;
      submitted = 0;
      settled = 0;
      jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

(* Registry upkeep: long-lived pools submit thousands of promises, so the
   registry is compacted every so often instead of on every resolution
   (which would be quadratic). *)
let prune_every = 1024

let prune_locked t =
  t.since_prune <- t.since_prune + 1;
  if t.since_prune >= prune_every then begin
    t.since_prune <- 0;
    t.pending <-
      List.filter
        (fun (Hide p) -> match p.result with Pending -> true | _ -> false)
        t.pending
  end

(* [@pool_entry] marks the functions whose closure arguments may run on
   another domain; the deep lockset lint (lib/analysis/lockset.ml)
   treats their callers as potentially-parallel roots. *)
let[@pool_entry] async t f =
  let p = { pool = t; result = Pending } in
  let job () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.protect t.mutex (fun () ->
        (* first writer wins: shutdown may already have failed it *)
        (match p.result with
        | Pending ->
            p.result <- r;
            t.settled <- t.settled + 1
        | Done _ | Failed _ -> ());
        Condition.broadcast t.wake)
  in
  Mutex.protect t.mutex (fun () ->
      if t.closing then
        E.raise_ (E.Pool_closed { what = "Pool.async: pool is shut down" });
      t.pending <- Hide p :: t.pending;
      t.submitted <- t.submitted + 1;
      prune_locked t;
      Queue.push job t.queue;
      Condition.broadcast t.wake);
  p

let rec await p =
  let t = p.pool in
  let action =
    Mutex.protect t.mutex (fun () ->
        match p.result with
        | Done v -> `Return v
        | Failed (e, bt) -> `Raise (e, bt)
        | Pending ->
            if not (Queue.is_empty t.queue) then
              (* help: run some queued task (possibly, but not necessarily,
                 the one we are waiting for) *)
              `Run (Queue.pop t.queue)
            else begin
              Condition.wait t.wake t.mutex;
              `Retry
            end)
  in
  match action with
  | `Return v -> v
  | `Raise (e, bt) -> Printexc.raise_with_backtrace e bt
  | `Run job ->
      job ();
      await p
  | `Retry -> await p

let shutdown t =
  let already =
    Mutex.protect t.mutex (fun () ->
        let already = t.closing in
        t.closing <- true;
        if not already then begin
          (* drop unstarted work and fail whatever is still pending, so
             parked awaiters wake into a [Failed] state *)
          Queue.clear t.queue;
          let bt = Printexc.get_callstack 0 in
          List.iter
            (fun (Hide p) ->
              match p.result with
              | Pending ->
                  p.result <-
                    Failed
                      ( E.Error
                          (E.Pool_closed
                             { what = "task abandoned by Pool.shutdown" }),
                        bt );
                  t.settled <- t.settled + 1
              | Done _ | Failed _ -> ())
            t.pending;
          t.pending <- []
        end;
        Condition.broadcast t.wake;
        already)
  in
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

type stats = { jobs : int; submitted : int; settled : int; pending : int }

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        jobs = t.jobs;
        submitted = t.submitted;
        settled = t.settled;
        pending = t.submitted - t.settled;
      })

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
