(* One mutex/condition pair guards everything: the queue, the shutdown
   flag and every promise's state.  [wake] is broadcast on each of the
   three events an idle domain can be waiting for — new work, a promise
   resolving, shutdown — which keeps the protocol obviously deadlock-free
   at the cost of some spurious wake-ups (fine at table-row granularity).

   Every critical section goes through [Mutex.protect] so an exception
   raised inside (e.g. [async] on a closed pool) cannot leak the lock;
   jobs themselves always run outside the protected region. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type t = {
  mutex : Mutex.t;
  wake : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a promise = { pool : t; mutable result : 'a state }

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

let worker t =
  let running = ref true in
  while !running do
    let job =
      Mutex.protect t.mutex (fun () ->
          while Queue.is_empty t.queue && not t.closing do
            Condition.wait t.wake t.mutex
          done;
          if Queue.is_empty t.queue then begin
            (* closing and drained *)
            running := false;
            None
          end
          else Some (Queue.pop t.queue))
    in
    (* run outside the critical section *)
    Option.iter (fun job -> job ()) job
  done

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: need jobs >= 1";
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let async t f =
  let p = { pool = t; result = Pending } in
  let job () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.protect t.mutex (fun () ->
        p.result <- r;
        Condition.broadcast t.wake)
  in
  Mutex.protect t.mutex (fun () ->
      if t.closing then invalid_arg "Pool.async: pool is shut down";
      Queue.push job t.queue;
      Condition.broadcast t.wake);
  p

let rec await p =
  let t = p.pool in
  let action =
    Mutex.protect t.mutex (fun () ->
        match p.result with
        | Done v -> `Return v
        | Failed (e, bt) -> `Raise (e, bt)
        | Pending ->
            if not (Queue.is_empty t.queue) then
              (* help: run some queued task (possibly, but not necessarily,
                 the one we are waiting for) *)
              `Run (Queue.pop t.queue)
            else begin
              Condition.wait t.wake t.mutex;
              `Retry
            end)
  in
  match action with
  | `Return v -> v
  | `Raise (e, bt) -> Printexc.raise_with_backtrace e bt
  | `Run job ->
      job ();
      await p
  | `Retry -> await p

let shutdown t =
  let already =
    Mutex.protect t.mutex (fun () ->
        let already = t.closing in
        t.closing <- true;
        Condition.broadcast t.wake;
        already)
  in
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
