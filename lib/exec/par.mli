(** Deterministic parallel combinators over a {!Pool}.

    All combinators preserve {e input order}: results are assembled by
    submission position, never by completion order, so for pure functions
    the output — including the floating-point evaluation order of any
    subsequent fold — is byte-identical to the sequential
    [List.map]/[List.fold_left] at every pool size. *)

val parallel_map : ?chunk:int -> Pool.t -> f:('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map].  [chunk] (default 1) groups
    that many consecutive items into one task, amortising queue traffic
    for very cheap [f].  If any [f x] raises, the leftmost failing
    item's exception is re-raised. *)

val parallel_mapi : Pool.t -> f:(int -> 'a -> 'b) -> 'a list -> 'b list
(** Same with the 0-based input position. *)

val parallel_iter : Pool.t -> f:('a -> unit) -> 'a list -> unit
(** Runs [f] on every item (no result ordering to speak of, but all
    tasks are awaited — and exceptions re-raised — before returning). *)

val parallel_reduce :
  Pool.t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c
  -> 'a list -> 'c
(** [map] runs in parallel; [combine] folds the results sequentially in
    input order.  Safe for non-associative combines (float addition). *)

val parallel_map_array : Pool.t -> f:('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!parallel_map}. *)
