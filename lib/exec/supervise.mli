(** Supervised parallel map: budgets, retries, chaos, checkpoints.

    {!map} is the resilient counterpart of [Par.parallel_map]: each item
    runs as a pool task under a {!spec} (cancellation poll, fault
    injection, per-task budget, retry with backoff) and failures come
    back as [Error] values instead of aborting the whole batch — the
    caller renders them as error cells and keeps going (graceful
    degradation).  With a {!persist} attached, completed results are
    journalled as they land and found again on resume, so a killed run
    recomputes only what is missing.

    Determinism: given deterministic [f] and task keys, the result list
    is independent of the job count and of scheduling; chaos faults are a
    pure function of (seed, task key), so a retry policy with more
    attempts than [Chaos.max_faults] reproduces the fault-free output
    exactly. *)

type spec = {
  budget : Search_resilience.Budget.t;
  retry : Search_resilience.Retry.policy;
  backoff : float -> unit;
      (** sleep primitive for retry backoff.  Tasks run on pool workers
          that latency-sensitive callers (the serve dispatch path)
          await, so the default is {!Search_resilience.Retry.cooperative}
          — a processor yield, not a real sleep.  Batch callers that
          want wall-clock backoff set [Unix.sleepf]. *)
  chaos : Search_resilience.Chaos.t;
  cancel : Search_resilience.Cancel.t option;
  clock : unit -> float;
      (** time source armed into each task's budget meter (the seconds
          cap backstop).  Default {!Search_resilience.Clock.unix}'s
          [now]; the deterministic simulator substitutes its virtual
          clock. *)
}

val default : spec
(** Unlimited budget, no retries, cooperative backoff, chaos disabled,
    no cancellation, wall clock — with [default], [map] degrades to a
    per-item [try]. *)

type 'b persist = {
  journal : Search_resilience.Journal.t;
  encode : 'b -> Search_numerics.Json.t;
  decode : Search_numerics.Json.t -> ('b, string) result;
}
(** Checkpointing glue: results are journalled under the task key.  A
    journalled value that fails to [decode] is recomputed. *)

val map :
  Pool.t ->
  ?spec:spec ->
  ?persist:'b persist ->
  ?chunk:int ->
  task:(int -> 'a -> string) ->
  f:(Search_resilience.Budget.meter -> 'a -> 'b) ->
  'a list ->
  ('b, Search_numerics.Search_error.t) result list
(** [map pool ~task ~f items] — results in input order.  [task i x] must
    be a stable unique key (it names the task in errors, seeds its chaos
    plan, and keys its checkpoint).  [f] receives the armed budget meter
    and should call [Budget.step] at progress points.

    [chunk] (default [1]) groups that many consecutive items into one
    pool task, amortising dispatch overhead when items are cheap (the
    sweep grid).  Per-item semantics — task keys, chaos plans, retries,
    budgets, checkpoints, result order — are unchanged at any chunk
    size; already-journalled items are never re-dispatched. *)
