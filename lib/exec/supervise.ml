module E = Search_numerics.Search_error
module Json = Search_numerics.Json
module Budget = Search_resilience.Budget
module Cancel = Search_resilience.Cancel
module Retry = Search_resilience.Retry
module Chaos = Search_resilience.Chaos
module Journal = Search_resilience.Journal

type spec = {
  budget : Budget.t;
  retry : Retry.policy;
  chaos : Chaos.t;
  cancel : Cancel.t option;
}

let default =
  {
    budget = Budget.unlimited;
    retry = Retry.none;
    chaos = Chaos.disabled;
    cancel = None;
  }

type 'b persist = {
  journal : Journal.t;
  encode : 'b -> Json.t;
  decode : Json.t -> ('b, string) result;
}

let run_one spec ~task x f =
  Retry.run ~policy:spec.retry ~task (fun ~attempt ->
      (match spec.cancel with
      | Some c -> Cancel.check c ~task
      | None -> ());
      Chaos.run spec.chaos ~task ~attempt (fun () ->
          let meter = Budget.start spec.budget ~task in
          f meter x))

let[@pool_entry] map pool ?(spec = default) ?persist ~task ~f items =
  let cached key =
    match persist with
    | None -> None
    | Some p -> (
        match Option.map p.decode (Journal.find p.journal key) with
        | Some (Ok v) -> Some v
        | Some (Error _) | None -> None)
  in
  let slots =
    List.mapi
      (fun i x ->
        let key = task i x in
        match cached key with
        | Some v -> `Cached v
        | None ->
            `Running
              (Pool.async pool (fun () ->
                   let r = run_one spec ~task:key x f in
                   (match (r, persist) with
                   | Ok v, Some p ->
                       (* checkpoint from the worker, before anything can
                          kill the run *)
                       Journal.record p.journal ~key (p.encode v)
                   | Ok _, None | Error _, _ -> ());
                   r)))
      items
  in
  List.map
    (function `Cached v -> Ok v | `Running p -> Pool.await p)
    slots
