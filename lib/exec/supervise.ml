module E = Search_numerics.Search_error
module Json = Search_numerics.Json
module Budget = Search_resilience.Budget
module Cancel = Search_resilience.Cancel
module Retry = Search_resilience.Retry
module Chaos = Search_resilience.Chaos
module Clock = Search_resilience.Clock
module Journal = Search_resilience.Journal

type spec = {
  budget : Budget.t;
  retry : Retry.policy;
  backoff : float -> unit;
  chaos : Chaos.t;
  cancel : Cancel.t option;
  clock : unit -> float;
}

let default =
  {
    budget = Budget.unlimited;
    retry = Retry.none;
    (* cooperative, not a real sleep: supervised tasks run on pool
       workers that the serve dispatch path awaits, so a sleeping
       backoff would stall the event loop.  Batch callers that want
       wall-clock backoff opt in with [Unix.sleepf]. *)
    backoff = Retry.cooperative;
    chaos = Chaos.disabled;
    cancel = None;
    clock = Clock.unix.Clock.now;
  }

type 'b persist = {
  journal : Journal.t;
  encode : 'b -> Json.t;
  decode : Json.t -> ('b, string) result;
}

let run_one spec ~task x f =
  Retry.run_with ~sleep:spec.backoff ~policy:spec.retry ~task (fun ~attempt ->
      (match spec.cancel with
      | Some c -> Cancel.check c ~task
      | None -> ());
      Chaos.run spec.chaos ~task ~attempt (fun () ->
          let meter = Budget.start ~clock:spec.clock spec.budget ~task in
          f meter x))

(* Split a list into consecutive groups of [n] (last may be shorter). *)
let chunked n items =
  let rec loop acc cur c = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | x :: rest ->
        if Int.equal c n then loop (List.rev cur :: acc) [ x ] 1 rest
        else loop acc (x :: cur) (c + 1) rest
  in
  loop [] [] 0 items

let[@pool_entry] [@hot] map pool ?(spec = default) ?persist ?(chunk = 1) ~task
    ~f items =
  if chunk < 1 then invalid_arg "Supervise.map: chunk must be >= 1";
  let cached key =
    match persist with
    | None -> None
    | Some p -> (
        match Option.map p.decode (Journal.find p.journal key) with
        | Some (Ok v) -> Some v
        | Some (Error _) | None -> None)
  in
  let eval key x =
    let r = run_one spec ~task:key x f in
    (match (r, persist) with
    | Ok v, Some p ->
        (* checkpoint from the worker, before anything can kill the run *)
        Journal.record p.journal ~key (p.encode v)
    | Ok _, None | Error _, _ -> ());
    r
  in
  (* Cache hits are resolved before dispatch (a resumed run reschedules
     only what is missing); the rest is grouped so that one pool task
     carries [chunk] items.  Each item keeps its own task key, and with
     it its own chaos plan, retry loop, budget meter and checkpoint
     record — chunking changes scheduling granularity, never per-item
     semantics, so outputs stay byte-identical at any chunk size. *)
  let groups =
    List.mapi
      (fun i x ->
        let key = task i x in
        match cached key with Some v -> `Cached v | None -> `Todo (key, x))
      items
    |> chunked chunk
    |> List.map (fun slots ->
           if List.exists (function `Todo _ -> true | `Cached _ -> false) slots
           then
             `Running
               (Pool.async pool (fun () ->
                    List.map
                      (function
                        | `Cached v -> Ok v | `Todo (key, x) -> eval key x)
                      slots))
           else
             `Done
               (List.map
                  (function `Cached v -> Ok v | `Todo _ -> assert false)
                  slots))
  in
  List.concat_map
    (function `Done rs -> rs | `Running p -> Pool.await p)
    groups
