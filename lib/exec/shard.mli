(** Grid/sweep sharding with deterministic per-shard randomness.

    Stochastic experiments must be bit-identical at any [--jobs] count.
    The rule that achieves this: the decomposition of the work — and the
    {!Search_numerics.Prng} state handed to each piece — depends only on
    the {e input} (its length, or an explicitly chosen shard count),
    never on the pool size.  Each piece's generator is a leaf of the
    deterministic split tree [leaf i = fst (split (snd split)^i root)],
    so piece [i] draws the same pseudo-random stream whether the pieces
    run on one domain or eight. *)

val prngs : root:Search_numerics.Prng.t -> n:int -> Search_numerics.Prng.t array
(** [n] independent generators, [leaf 0 .. leaf (n-1)] of the split tree
    rooted at [root].  Requires [n >= 0]. *)

val sharded_map :
  Pool.t -> root:Search_numerics.Prng.t
  -> f:(prng:Search_numerics.Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map where item [i] receives [leaf i].
    Bit-identical results at every pool size (for pure [f]). *)

val shards : shards:int -> 'a list -> 'a list list
(** Split into [shards] contiguous chunks whose lengths differ by at
    most one (leading chunks get the extra items).  Fewer chunks are
    returned when the list is shorter than [shards]; never an empty
    chunk.  Requires [shards >= 1]. *)

val sharded_chunks :
  root:Search_numerics.Prng.t -> shards:int -> 'a list
  -> ('a list * Search_numerics.Prng.t) list
(** {!shards} with [leaf i] attached to chunk [i]: the coarse-grained
    variant for trials that consume a stream per chunk rather than per
    item.  Fix [shards] per experiment (not from the pool size) to keep
    the output jobs-invariant. *)

val grid2 : 'a list -> 'b list -> ('a * 'b) list
(** Row-major cartesian product — the flattened (outer, inner) sweep
    grid, in the order the sequential nested loops would visit it. *)
