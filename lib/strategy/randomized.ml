module Prng = Search_numerics.Prng
module Root = Search_numerics.Root

let ratio_formula ~beta =
  if beta <= 1. then invalid_arg "Randomized.ratio_formula: need beta > 1";
  1. +. ((1. +. beta) /. log beta)

let optimal_beta () =
  Root.brent ~f:(fun b -> (b *. log b) -. b -. 1.) 1.5 10.

let optimal_ratio () = 1. +. optimal_beta ()

let turning ~beta ~u =
  if beta <= 1. then invalid_arg "Randomized.turning: need beta > 1";
  if not (0. <= u && u < 1.) then invalid_arg "Randomized.turning: need 0 <= u < 1";
  Turning.of_fun (fun i -> beta ** (float_of_int i +. u))

(* Motion-level walk of the zigzag until the signed coordinate x is
   reached; the turning points need not bracket x yet, so walk leg by
   leg. *)
let detection_time ~beta ~u ~positive_first ~x =
  if Float.equal x 0. then
    invalid_arg "Randomized.detection_time: need x <> 0";
  let turns = turning ~beta ~u in
  let rec walk i pos time =
    if i > 10_000 then
      Search_numerics.Search_error.raise_
        (Search_numerics.Search_error.Non_convergence
           {
             where = "Randomized.detection_time";
             steps = 10_000;
             detail = "target not reached";
           })
    else
      let sign =
        if Bool.equal (i mod 2 = 1) positive_first then 1. else -1.
      in
      let dest = sign *. Turning.get turns i in
      let lo = Float.min pos dest and hi = Float.max pos dest in
      if x >= lo && x <= hi then time +. Float.abs (x -. pos)
      else walk (i + 1) dest (time +. Float.abs (dest -. pos))
  in
  walk 1 0. 0.

let expected_ratio_at ~beta ~x ~samples ~prng =
  if samples < 1 then invalid_arg "Randomized.expected_ratio_at";
  let rec loop i prng acc =
    if i >= samples then acc /. float_of_int samples
    else
      let u, prng = Prng.float prng in
      let positive_first, prng = Prng.bool prng in
      let t = detection_time ~beta ~u ~positive_first ~x in
      loop (i + 1) prng (acc +. (t /. Float.abs x))
  in
  loop 0 prng 0.

let expected_ratio_exact ~beta ~x ~grid =
  if grid < 1 then invalid_arg "Randomized.expected_ratio_exact";
  let acc = ref 0. in
  for i = 0 to grid - 1 do
    let u = (float_of_int i +. 0.5) /. float_of_int grid in
    let t_pos = detection_time ~beta ~u ~positive_first:true ~x in
    let t_neg = detection_time ~beta ~u ~positive_first:false ~x in
    acc := !acc +. (0.5 *. (t_pos +. t_neg) /. Float.abs x)
  done;
  !acc /. float_of_int grid
