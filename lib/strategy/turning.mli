(** Turning-point sequences.

    A single robot's strategy, in both settings of the paper, is an
    infinite sequence of turning points [t_1, t_2, t_3, ...] over [R >= 0]:
    on the line it alternates directions ("sent till +t1, till -t2, till
    +t3, ..."); in the ORC setting [t_i] is the depth of round [i].  The
    proofs normalise to nondecreasing sequences; constructors here accept
    arbitrary nonnegative sequences so the normalisation steps
    ({!Normalize}) can be exercised on un-normalised inputs. *)

type t

val of_fun : (int -> float) -> t
(** [of_fun f] — [f i] is [t_i] (1-based), memoised; must be pure and
    nonnegative (checked on access). *)

val of_list_then : float list -> (int -> float) -> t
(** Explicit prefix, then a tail rule. *)

val geometric : ?scale:float -> alpha:float -> unit -> t
(** [t_i = scale *. alpha^i]; [scale] defaults to 1.  Requires
    [alpha > 0.] and [scale > 0.]. *)

val constant_then_geometric : first:float -> alpha:float -> t
(** [t_1 = first], then geometric growth from it: [t_i = first *. alpha^(i-1)]. *)

val get : t -> int -> float
(** [get s i] = [t_i].
    @raise Invalid_argument on [i < 1] or a negative produced value. *)

val partial_sum : t -> int -> float
(** [partial_sum s i = t_1 +. ... +. t_i] (compensated); [0.] for [i = 0]. *)

val nondecreasing_prefix : t -> n:int -> bool
(** Whether [t_1 <= t_2 <= ... <= t_n]. *)

val scale : t -> float -> t
(** [scale s c] multiplies every turning point by [c > 0.] — the rescaling
    step used in Case 2 of the Section 3.1 induction. *)

val map_indices : t -> (int -> int) -> t
(** [map_indices s g] is the subsequence [t_{g 1}, t_{g 2}, ...]; [g] must
    be strictly increasing (not checked).  Used to skip turning points. *)

(** {2 Compiled (flat-array) view}

    The covering and adversary inner loops re-probe the same turning
    prefix thousands of times; through the lazy representation each probe
    pays a mutex acquisition and a hashtable lookup.  A compiled view
    caches the prefix in preallocated float arrays (grown by doubling)
    and replays the exact Kahan summation chain of the lazy
    [partial_sums], so every value it returns is bit-identical to the
    lazy path — the two kernels cannot drift. *)

type compiled
(** A flat-array prefix cache over a turning sequence.  NOT domain-safe:
    one view per task/domain (the underlying {!t} stays shared and
    mutex-memoised). *)

val compile : ?hint:int -> t -> compiled
(** A fresh view; [hint] preallocates that many elements (default 64).
    Construction is O(1) — elements are pulled from the source on first
    access. *)

val source : compiled -> t
val compiled_length : compiled -> int
(** Number of elements materialised so far. *)

val compiled_get : compiled -> int -> float
(** Same contract (including validation) as {!get}. *)

val compiled_partial_sum : compiled -> int -> float
(** Same contract as {!partial_sum}, bit-identical values. *)

val compiled_prefix_walk : compiled -> int -> float
(** Sum of the partial sums [S_1 + ... + S_depth] over the already
    materialised prefix — the steady-state read pattern of the covering
    sweeps, exposed as a benchable kernel.  Raises [Invalid_argument]
    when [depth] is negative or exceeds {!compiled_length}: unlike
    {!compiled_partial_sum} it never grows the view, so it stays
    allocation-free (a [@hot] lint root with a zero budget). *)
