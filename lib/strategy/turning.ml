module Lazy_seq = Search_numerics.Lazy_seq
module Kahan = Search_numerics.Kahan

type t = { seq : float Lazy_seq.t; sums : float Lazy_seq.t }

let wrap seq = { seq; sums = Lazy_seq.partial_sums seq }

let of_fun f = wrap (Lazy_seq.of_fun f)
let of_list_then prefix tail = wrap (Lazy_seq.of_list_then prefix tail)

let geometric ?(scale = 1.) ~alpha () =
  if alpha <= 0. then invalid_arg "Turning.geometric: need alpha > 0";
  if scale <= 0. then invalid_arg "Turning.geometric: need scale > 0";
  of_fun (fun i -> scale *. (alpha ** float_of_int i))

let constant_then_geometric ~first ~alpha =
  if first <= 0. then invalid_arg "Turning.constant_then_geometric: first <= 0";
  if alpha <= 0. then invalid_arg "Turning.constant_then_geometric: alpha <= 0";
  of_fun (fun i -> first *. (alpha ** float_of_int (i - 1)))

let get t i =
  let v = Lazy_seq.get t.seq i in
  if v < 0. || Float.is_nan v then
    invalid_arg (Printf.sprintf "Turning.get: t_%d = %g is invalid" i v);
  v

let partial_sum t i =
  if i < 0 then invalid_arg "Turning.partial_sum: negative index"
  else if i = 0 then 0.
  else Lazy_seq.get t.sums i

let nondecreasing_prefix t ~n =
  let rec check i prev =
    if i > n then true
    else
      let v = get t i in
      if v >= prev then check (i + 1) v else false
  in
  check 1 0.

let scale t c =
  if c <= 0. then invalid_arg "Turning.scale: need c > 0";
  of_fun (fun i -> c *. get t i)

let map_indices t g = of_fun (fun i -> get t (g i))

(* ------------------------------------------------------------------ *)
(* Compiled (flat-array) view                                          *)

(* The lazy representation pays a mutex acquisition plus a hashtable
   lookup per element access — fine for construction and memoisation,
   hostile in the covering/adversary inner loops that re-probe the same
   prefix thousands of times.  A compiled view caches the prefix in
   plain float arrays.  The partial sums replay the exact Kahan chain of
   [Lazy_seq.partial_sums] (same values, same order, same operations),
   so every float read through the compiled view is bit-identical to the
   lazy path — outputs cannot drift between the two kernels.

   The view grows by doubling and is NOT domain-safe: it is a per-task
   scratch structure (each parallel λ-point / sweep cell compiles its
   own view over the shared, mutex-memoised source sequence). *)

type compiled = {
  src : t;
  mutable turns : float array; (* turns.(i-1) = t_i, 1 <= i <= len *)
  mutable sums : float array; (* sums.(i-1) = value of the Kahan chain at i *)
  mutable acc : Kahan.t;
  mutable len : int;
}

let compile ?(hint = 64) src =
  let cap = Stdlib.max 1 hint in
  {
    src;
    turns = Array.make cap 0.;
    sums = Array.make cap 0.;
    acc = Kahan.zero;
    len = 0;
  }

let source c = c.src
let compiled_length c = c.len

let ensure c i =
  if c.len < i then begin
    if Array.length c.turns < i then begin
      let cap = Stdlib.max i (2 * Array.length c.turns) in
      let grow a = Array.append a (Array.make (cap - Array.length a) 0.) in
      c.turns <- grow c.turns;
      c.sums <- grow c.sums
    end;
    (* pull raw values: validation happens in [compiled_get], exactly
       where the lazy path validates (partial sums never validate) *)
    for j = c.len + 1 to i do
      let v = Lazy_seq.get c.src.seq j in
      c.turns.(j - 1) <- v;
      c.acc <- Kahan.add c.acc v;
      c.sums.(j - 1) <- Kahan.value c.acc
    done;
    c.len <- i
  end

let[@hot] compiled_get c i =
  if i < 1 then invalid_arg "Turning.compiled_get: index must be >= 1";
  ensure c i;
  let v = c.turns.(i - 1) in
  if v < 0. || Float.is_nan v then
    invalid_arg (Printf.sprintf "Turning.get: t_%d = %g is invalid" i v);
  v

let[@hot] compiled_partial_sum c i =
  if i < 0 then invalid_arg "Turning.compiled_partial_sum: negative index"
  else if i = 0 then 0.
  else begin
    ensure c i;
    c.sums.(i - 1)
  end

let[@hot] compiled_prefix_walk c depth =
  (* Steady-state read path: the prefix must already be materialised
     ([ensure] grows arrays and replays the Kahan chain — an
     allocation the walk must not pay), so out-of-range depths are a
     caller bug, not a growth trigger. *)
  if depth < 0 then
    invalid_arg "Turning.compiled_prefix_walk: negative depth";
  if depth > c.len then
    invalid_arg
      (Printf.sprintf
         "Turning.compiled_prefix_walk: depth %d exceeds compiled prefix %d"
         depth c.len);
  let total = ref 0. in
  for i = 1 to depth do
    total := !total +. c.sums.(i - 1)
  done;
  !total
