module Params = Search_bounds.Params
module Formulas = Search_bounds.Formulas
module Interval1 = Search_numerics.Interval1

type t = { params : Params.t; alpha : float; l_min : int }

let make ?alpha ?l_min params =
  (match Params.regime params with
  | Params.Searching -> ()
  | Params.Unsolvable | Params.Ratio_one ->
      let { Params.m; k; f } = params in
      Search_numerics.Search_error.raise_
        (Search_numerics.Search_error.Regime_violation
           {
             m;
             k;
             f;
             what = "Mray_exponential.make: instance not in the searching regime";
           }));
  let { Params.m; k; f } = params in
  let q = Params.q params in
  let alpha =
    match alpha with Some a -> a | None -> Formulas.alpha_star ~q ~k
  in
  if alpha <= 1. then invalid_arg "Mray_exponential.make: need alpha > 1";
  let l_min = match l_min with Some l -> l | None -> -(m * (f + 2)) in
  { params; alpha; l_min }

let params t = t.params
let alpha t = t.alpha

let ray_of_pass t ~l =
  let m = t.params.Params.m in
  (((l - 1) mod m) + m) mod m

let depth_of_pass t ~robot ~l =
  let { Params.m; k; _ } = t.params in
  if robot < 0 || robot >= k then
    invalid_arg "Mray_exponential.depth_of_pass: robot out of range";
  let e = (k * l) + (m * (robot + 1)) in
  t.alpha ** float_of_int e

let itinerary t ~robot =
  let world = Search_sim.World.rays t.params.Params.m in
  let label = Printf.sprintf "robot-%d" robot in
  Search_sim.Itinerary.of_excursions ~label ~world (fun p ->
      let l = t.l_min + p - 1 in
      (ray_of_pass t ~l, depth_of_pass t ~robot ~l))

let itineraries t =
  Array.init t.params.Params.k (fun robot -> itinerary t ~robot)

let assigned_intervals_on_ray t ~robot ~ray ~within:(lo, hi) =
  if lo <= 0. || hi < lo then
    invalid_arg "Mray_exponential.assigned_intervals_on_ray: bad window";
  let { Params.m; k; f } = t.params in
  if ray < 0 || ray >= m then
    invalid_arg "Mray_exponential.assigned_intervals_on_ray: bad ray";
  let r1 = robot + 1 in
  let log_alpha = log t.alpha in
  let hi_exp = log hi /. log_alpha in
  (* passes on this ray: l = ray + 1 (mod m), starting at the first >= l_min *)
  let first_l =
    let target = ray + 1 in
    let rec find l =
      if Int.equal (ray_of_pass t ~l) ray then l else find (l + 1)
    in
    ignore target;
    find t.l_min
  in
  let rec collect l acc =
    let left_exp = float_of_int ((k * l) + (m * (r1 - f - 1))) in
    if left_exp >= hi_exp then List.rev acc
    else
      let right_exp = float_of_int ((k * l) + (m * r1)) in
      let left = t.alpha ** left_exp and right = t.alpha ** right_exp in
      let acc =
        if right >= lo then Interval1.left_open left right :: acc else acc
      in
      collect (l + m) acc
  in
  collect first_l []

let predicted_ratio t =
  let { Params.k; _ } = t.params in
  Formulas.exponential_ratio ~q:(Params.q t.params) ~k ~alpha:t.alpha

(* Multiplicity of the integer exponent e on ray 0:
   #{(r, l) : l ≡ 1 (mod m), 1 <= r <= k,
              k l + m (r - f - 1) < e <= k l + m r},
   equivalently, with l = 1 + m j,
              0 <= k + k m j + m r - e < m (f + 1).
   Interval endpoints are integers, so real exponents x in (e-1, e] have
   the multiplicity of e; shifting e by k m shifts j by 1 (periodicity),
   and ray i's multiplicity at e is ray 0's at e - k i (shift l by i).
   Hence the length-k*m array below decides the covering claim for every
   distance on every ray. *)
let coverage_multiplicity_by_residue t =
  let { Params.m; k; f } = t.params in
  let width = m * (f + 1) in
  let out = Array.make (k * m) 0 in
  for e = 0 to (k * m) - 1 do
    let count = ref 0 in
    for r = 1 to k do
      (* j only matters within a window of length m(f+1) around
         (e - k - m r)/(k m); with e in [0, k m) a fixed small range of j
         safely covers it *)
      for j = -(f + 3) to f + 3 do
        let v = k + (k * m * j) + (m * r) - e in
        if 0 <= v && v < width then incr count
      done
    done;
    out.(e) <- !count
  done;
  out

let coverage_theorem_holds t =
  let { Params.f; _ } = t.params in
  Array.for_all (( = ) (f + 1)) (coverage_multiplicity_by_residue t)
