module E = Search_numerics.Search_error

(* Both variants walk the original sequence, keeping a turn when it is
   fruitful w.r.t. the turns kept so far.  The kept partial sum and the
   previous kept turn are the only state needed. *)

let transform ~scan_limit ~keep turns =
  let next (orig_i, sum_kept, prev_kept) =
    let rec scan i tries =
      if tries > scan_limit then
        E.raise_
          (E.Non_convergence
             {
               where = "Normalize";
               steps = scan_limit;
               detail =
                 Printf.sprintf
                   "no fruitful turn among %d candidates after index %d"
                   scan_limit orig_i;
             })
      else
        let t = Turning.get turns i in
        if keep ~sum_kept ~prev_kept t then (t, i)
        else scan (i + 1) (tries + 1)
    in
    let t, i = scan orig_i 0 in
    (t, (i + 1, sum_kept +. t, t))
  in
  Turning.of_fun
    (let seq = Search_numerics.Lazy_seq.unfold ~init:(1, 0., 0.) next in
     fun i -> Search_numerics.Lazy_seq.get seq i)

let fruitful_only_orc ?(scan_limit = 10_000) ~mu turns =
  if mu <= 0. then invalid_arg "Normalize.fruitful_only_orc: need mu > 0";
  let keep ~sum_kept ~prev_kept:_ t = sum_kept /. mu <= t in
  transform ~scan_limit ~keep turns

let fruitful_only_line ?(scan_limit = 10_000) ~mu turns =
  if mu <= 0. then invalid_arg "Normalize.fruitful_only_line: need mu > 0";
  let keep ~sum_kept ~prev_kept t =
    (* line threshold includes t itself in the sum, and the kept sequence
       must strictly increase for a turn to add coverage *)
    t > prev_kept && (sum_kept +. t) /. mu <= t
  in
  transform ~scan_limit ~keep turns
