(** The standardisation steps of the proofs, as strategy transformers.

    Both proofs begin by normalising an arbitrary strategy into one whose
    every turn λ-covers something: "turning points that are not fruitful
    can be skipped, in this way definitely λ-covering at least as much"
    (Section 2), and "if [t''_i > t_i], round [i] does not λ-cover any
    point, and we may as well skip this round" (Section 3.1).  Skipping a
    turn shrinks the partial sums, so later thresholds [t''] move left and
    coverage only grows — the monotonicity the property tests check. *)

val fruitful_only_orc : ?scan_limit:int -> mu:float -> Turning.t -> Turning.t
(** Keep exactly the rounds that are fruitful {e with respect to the
    already-kept prefix} (thresholds are recomputed as rounds are dropped).
    The result's rounds are all fruitful at [mu].  [scan_limit] defaults to
    10_000; when that many consecutive candidates are unfruitful — the
    input strategy cannot cover anything at this [mu], e.g. its turning
    points grow too slowly — forcing the result raises
    [Search_numerics.Search_error.Error] ([Non_convergence]). *)

val fruitful_only_line : ?scan_limit:int -> mu:float -> Turning.t -> Turning.t
(** Line variant: fruitfulness uses the line threshold
    [t''_i = max ((sum up to i) / mu) t_{i-1}] over kept turns, and turns
    that do not exceed the previous kept turning point are dropped too
    (the proof's monotonicity repair: "if [t_{i+1} = t_i] ... we can skip
    [t_{i+1}]"). *)
