(** Request evaluation: batches onto the domain pool, shared bound cache.

    One dispatcher serves every connection.  The server's event loop
    drains a batch from the {!Backlog} and calls {!handle_batch}; the
    batch fans out across the pool as supervised tasks
    ({!Search_exec.Supervise.map}), so each request gets the full
    resilience treatment — per-task budget, retry policy, structured
    {!Search_numerics.Search_error.t} on failure — and a crash in one
    request degrades to a {!Protocol.Failed} response instead of taking
    the daemon (or even the connection) down.

    The [Bound] cache is shared across every client and every batch: a
    size-bounded LRU ({!Search_exec.Memo.Lru}) whose hit/miss/eviction
    counters surface through {!stats}.  Caching never changes response
    bytes — the cached function is pure, so a hit and a recompute are
    byte-identical. *)

type t

val create :
  pool:Search_exec.Pool.t ->
  ?cache_capacity:int ->
  ?spec:Search_exec.Supervise.spec ->
  unit ->
  t
(** [cache_capacity] bounds the bound-payload LRU (default 256 entries);
    [spec] defaults to {!Search_exec.Supervise.default}.
    @raise Search_numerics.Search_error.Error when [cache_capacity < 1]. *)

val handle_batch :
  t -> ('c * int * Protocol.request) list -> ('c * int * Protocol.response) list
(** Evaluate one admitted batch.  Each element carries an opaque routing
    token ['c] (the server uses the connection) and the client's request
    [id]; both are returned untouched with the response, in input order.
    Task failures come back as {!Protocol.Failed} — this function never
    raises on bad requests.  [Stats] requests answer with a snapshot
    taken just before the batch dispatches. *)

val note_shed : t -> unit
(** Record one admission-control shed (the server answers the request
    with {!Protocol.Overloaded} itself). *)

val stats : t -> Protocol.server_stats
(** Counters so far: requests served/shed, batch shape, cache and pool
    statistics.  Purely observational. *)
