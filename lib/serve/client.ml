module E = Search_numerics.Search_error

type t = {
  fd : Unix.file_descr;
  path : string;
  decoder : Protocol.Frame.Decoder.t;
  scratch : Bytes.t;
}

let connect ?max_frame ~socket_path () =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
      {
        fd;
        path = socket_path;
        decoder = Protocol.Frame.Decoder.create ?max_frame ();
        scratch = Bytes.create 65536;
      }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.raise_
        (E.Io_failure
           { path = socket_path; what = "connect: " ^ Unix.error_message err })

let write_all t s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring t.fd s off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (err, _, _) ->
          E.raise_
            (E.Io_failure
               { path = t.path; what = "write: " ^ Unix.error_message err })
      | n -> go (off + n)
  in
  go 0

let send t ~id req =
  write_all t (Protocol.Frame.encode (Protocol.encode_request ~id req))

let rec recv t =
  match Protocol.Frame.Decoder.next t.decoder with
  | `Frame payload -> (
      match Protocol.decode_response payload with
      | Ok (id, resp) -> (id, resp)
      | Error msg ->
          E.raise_ (E.Invalid_input { where = "Client.recv"; what = msg }))
  | `Corrupt msg ->
      E.raise_ (E.Invalid_input { where = "Client.recv"; what = msg })
  | `Awaiting -> (
      match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv t
      | exception Unix.Unix_error (err, _, _) ->
          E.raise_
            (E.Io_failure
               { path = t.path; what = "read: " ^ Unix.error_message err })
      | 0 ->
          E.raise_
            (E.Io_failure
               { path = t.path; what = "unexpected EOF mid-response" })
      | n ->
          Protocol.Frame.Decoder.feed t.decoder t.scratch ~off:0 ~len:n;
          recv t)

let call t ~id req =
  send t ~id req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_client ?max_frame ~socket_path f =
  let t = connect ?max_frame ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
