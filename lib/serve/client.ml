module E = Search_numerics.Search_error

type t =
  | Client : {
      fd : 'fd;
      ops : 'fd Runtime.ops;
      path : string;
      decoder : Protocol.Frame.Decoder.t;
      scratch : Bytes.t;
    }
      -> t

let connect ?(runtime = Runtime.default) ?max_frame ~socket_path () =
  match runtime with
  | Runtime.T ops ->
      let fd = ops.Runtime.connect ~path:socket_path in
      Client
        {
          fd;
          ops;
          path = socket_path;
          decoder = Protocol.Frame.Decoder.create ?max_frame ();
          scratch = Bytes.create 65536;
        }

let write_all (Client c) s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match c.ops.Runtime.write_blocking c.fd s ~off ~len:(len - off) with
      | `Err msg ->
          E.raise_ (E.Io_failure { path = c.path; what = "write: " ^ msg })
      | `Wrote n -> go (off + n)
  in
  go 0

let send t ~id req =
  write_all t (Protocol.Frame.encode (Protocol.encode_request ~id req))

let rec recv (Client c as t) =
  match Protocol.Frame.Decoder.next c.decoder with
  | `Frame payload -> (
      match Protocol.decode_response payload with
      | Ok (id, resp) -> (id, resp)
      | Error msg ->
          E.raise_ (E.Invalid_input { where = "Client.recv"; what = msg }))
  | `Corrupt msg ->
      E.raise_ (E.Invalid_input { where = "Client.recv"; what = msg })
  | `Awaiting -> (
      match
        c.ops.Runtime.read_blocking c.fd c.scratch ~off:0
          ~len:(Bytes.length c.scratch)
      with
      | `Err msg ->
          E.raise_ (E.Io_failure { path = c.path; what = "read: " ^ msg })
      | `Eof ->
          E.raise_
            (E.Io_failure
               { path = c.path; what = "unexpected EOF mid-response" })
      | `Data n ->
          Protocol.Frame.Decoder.feed c.decoder c.scratch ~off:0 ~len:n;
          recv t)

let call t ~id req =
  send t ~id req;
  recv t

let close (Client c) = c.ops.Runtime.close c.fd

let with_client ?runtime ?max_frame ~socket_path f =
  let t = connect ?runtime ?max_frame ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
