(** The daemon: a single-threaded event loop over a Unix-domain socket.

    Architecture — one select loop (through the {!Runtime} seam; real
    [Unix.select] by default) owns every socket; the domain pool (inside
    the {!Dispatch.t}) owns every computation:

    + {b read}: drain readable connections into per-connection frame
      decoders; completed frames are parsed and admitted to the bounded
      {!Backlog} (or answered [Overloaded] on the spot when it is full —
      admission control, not disconnection);
    + {b dispatch}: take one batch (at most [batch_cap] requests) and run
      it across the pool via {!Dispatch.handle_batch}.  While the batch
      computes, newly arriving requests accumulate in kernel buffers and
      the backlog — batching emerges from load without timers;
    + {b write}: flush response frames to writable connections,
      tolerating partial writes and peers that disappeared.

    No threads, no clocks, no per-connection state beyond a decoder and
    an output buffer.  Malformed traffic (non-JSON frames, bad
    envelopes) is answered with a structured [Failed] response; only an
    unrecoverable framing violation (negative/oversized length) closes
    the connection, after the error response drains.

    Shutdown: flip the [stop] flag (e.g. from a SIGTERM handler); the
    loop notices within its select timeout (50 ms), closes every
    connection and the listener, and removes the socket file. *)

type config = {
  socket_path : string;
  queue_cap : int;  (** backlog bound; pushes beyond it shed *)
  batch_cap : int;  (** max requests dispatched per cycle *)
  max_frame : int;  (** framing limit, bytes *)
  log : string -> unit;  (** daemon lifecycle messages; [ignore] to mute *)
}

val config :
  ?queue_cap:int ->
  ?batch_cap:int ->
  ?max_frame:int ->
  ?log:(string -> unit) ->
  socket_path:string ->
  unit ->
  config
(** Defaults: [queue_cap = 64], [batch_cap = 32],
    [max_frame = Protocol.Frame.default_max_frame], [log = ignore].
    @raise Search_numerics.Search_error.Error on non-positive caps. *)

val run :
  ?runtime:Runtime.t -> config -> dispatch:Dispatch.t -> stop:bool Atomic.t -> unit
(** Bind, serve until [stop] reads [true], tear down.  A stale socket
    file at [socket_path] is replaced.  On return the listener and all
    connections are closed and the socket file is gone, including on
    exceptional exit.  [runtime] (default {!Runtime.default}, real Unix
    sockets) supplies every I/O primitive the loop touches — the
    deterministic simulator passes its fake network here and the same
    loop runs at memory speed under a virtual clock.
    @raise Search_numerics.Search_error.Error with [Io_failure] when the
    socket cannot be bound. *)
