(** The I/O seam between the daemon and the operating system.

    {!Server.run} and {!Client.connect} are written against an ['fd ops]
    record instead of calling [Unix] directly, so the same select loop,
    framing, admission control and dispatch path run unchanged on real
    Unix-domain sockets (the {!unix} implementation, the default
    everywhere) or inside the deterministic simulator's fake network
    ([Search_dst.Net]).  Production binaries never pass a runtime and
    never change behaviour.

    Contract for implementations:

    - [listen ~path] binds a listening endpoint at [path], replacing a
      stale one; raises [Search_error.Error] ([Io_failure]) when the
      path cannot be bound.  [accept] on its result never blocks:
      [`Again] when no connection is pending.
    - [read]/[write] are the non-blocking handlers the event loop uses:
      [`Again] means "would block, try after select"; [`Err] means the
      transport failed and the connection must be culled; [read] answers
      [`Eof] when the peer closed its write side.  Partial reads and
      writes are expected; callers must loop.
    - [select ~read ~write ~timeout] blocks until some watched endpoint
      is ready or [timeout] (seconds) elapses, answering the ready
      subsets in input order.  A simulated implementation suspends the
      calling fiber instead of blocking a thread.
    - [connect]/[read_blocking]/[write_blocking] are the blocking client
      side; [`Again] never escapes them.
    - [close] and [unlink] swallow errors (teardown paths call them
      unconditionally).
    - [guard_sigpipe ()] installs whatever protection writing to a
      vanished peer needs and answers the undo function ([SIG_IGN] on
      Unix; a no-op in the simulator). *)

type 'fd ops = {
  equal_fd : 'fd -> 'fd -> bool;
  listen : path:string -> 'fd;
  accept : 'fd -> [ `Conn of 'fd | `Again | `Err of string ];
  read :
    'fd -> bytes -> off:int -> len:int -> [ `Data of int | `Eof | `Again | `Err of string ];
  write :
    'fd -> string -> off:int -> len:int -> [ `Wrote of int | `Again | `Err of string ];
  select : read:'fd list -> write:'fd list -> timeout:float -> 'fd list * 'fd list;
  close : 'fd -> unit;
  unlink : string -> unit;
  guard_sigpipe : unit -> unit -> unit;
  connect : path:string -> 'fd;
  read_blocking :
    'fd -> bytes -> off:int -> len:int -> [ `Data of int | `Eof | `Err of string ];
  write_blocking :
    'fd -> string -> off:int -> len:int -> [ `Wrote of int | `Err of string ];
}

type t = T : 'fd ops -> t  (** an implementation with its handle type packed *)

val unix : Unix.file_descr ops
(** Real Unix-domain sockets; accepted and listening fds are set
    non-blocking, EINTR is retried or folded into [`Again]. *)

val default : t
(** [T unix]. *)
