(** Wire protocol of the [faulty_search.serve] daemon.

    Transport: a Unix-domain stream socket carrying length-prefixed
    frames — a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Each request frame is an envelope
    [{ "id": I, "req": R }]; the server answers with [{ "id": I,
    "resp": P }], echoing the client-chosen [id] so pipelined clients can
    correlate (responses to one connection keep the admission order of
    their requests, except shed requests, which are answered
    immediately).

    The codec is exact: every request/response value round-trips through
    its JSON rendering bit-for-bit (non-finite floats — e.g. the bound of
    an unsolvable instance — are encoded as the strings ["inf"],
    ["-inf"], ["nan"], since the JSON printer rejects them as numbers).
    Malformed input never kills a connection silently: a frame that is
    not JSON, or JSON that is not a valid envelope, produces a structured
    decode error the server maps onto a {!Failed} response carrying an
    [Invalid_input] tag. *)

(** {1 Requests} *)

type request =
  | Bound of { m : int; k : int; f : int }
      (** Closed-form bound [A(m, k, f)], regime, optimal base — served
          from the shared LRU cache. *)
  | Certify of { m : int; k : int; f : int; n : float; lambda : float }
      (** Run the lower-bound certificate (line for [m = 2], ORC
          otherwise) for the instance's optimal strategy against the
          claimed [lambda] on horizon [n]. *)
  | Sweep of { m : int; k : int; f : int; n : float; samples : int }
      (** Ratio-vs-alpha sweep around the optimal base; rows rendered as
          table cells, exactly as the CLI [sweep] subcommand renders
          them. *)
  | Simulate of { beta : float; x : float; samples : int; seed : int }
      (** Monte-Carlo estimate of the randomized cow-path ratio at
          target [x]; deterministic in [seed]. *)
  | Stats
      (** Server-side counters: cache hit/miss/eviction, pool tasks,
          batches, sheds.  Observational — see the determinism note
          below. *)

(** {1 Responses} *)

type bound_payload = {
  bound : float;  (** [A(m, k, f)]; [infinity] when unsolvable *)
  regime : string;  (** ["searching" | "ratio-one" | "unsolvable"] *)
  alpha_star : float option;  (** optimal base, searching regime only *)
}

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type pool_stats = { jobs : int; submitted : int; settled : int; pending : int }

type server_stats = {
  served : int;  (** requests dispatched (not shed) *)
  sheds : int;  (** requests refused with {!Overloaded} *)
  batches : int;  (** dispatch cycles executed *)
  max_batch : int;  (** largest batch dispatched so far *)
  cache : cache_stats;
  pool : pool_stats;
}

type response =
  | Bound_ok of bound_payload
  | Certify_ok of { verdict : string; detail : string; bound : float }
      (** [verdict] is the stable tag ["refuted-gap" | "refuted-potential"
          | "not-refuted" | "inconclusive"]; [detail] a one-line human
          rendering; [bound] the cached theoretical bound. *)
  | Sweep_ok of { rows : string list list }
      (** One row per retained sample: rendered [alpha], predicted and
          simulated ratio cells. *)
  | Simulate_ok of { estimate : float }
  | Stats_ok of server_stats
  | Overloaded of { pending : int; cap : int }
      (** Admission control shed this request: the pending queue held
          [pending] of at most [cap] requests.  Back off and retry. *)
  | Failed of Search_numerics.Search_error.t
      (** The supervised evaluation failed; the structured error says
          why (bad parameters, budget blowout, worker crash, ...). *)

(** Determinism contract: for every request except [Stats], the response
    bytes are a pure function of the request — independent of the
    server's [--jobs], batching, concurrent clients, and cache state
    (the cache memoises pure functions).  [Stats_ok] and [Overloaded]
    are observational by nature and exempt. *)

(** {1 JSON codec} *)

val request_to_json : request -> Search_numerics.Json.t
val request_of_json : Search_numerics.Json.t -> (request, string) result
val response_to_json : response -> Search_numerics.Json.t
val response_of_json : Search_numerics.Json.t -> (response, string) result

val encode_request : id:int -> request -> string
(** The envelope [{ "id": I, "req": ... }] as compact JSON (unframed). *)

val decode_request : string -> (int * request, int option * string) result
(** Parse a request envelope.  On failure the error carries the [id] if
    one could still be extracted, so the server can address its error
    response. *)

val encode_response : id:int -> response -> string

val decode_response : string -> (int * response, string) result

(** {1 Framing} *)

module Frame : sig
  val default_max_frame : int
  (** 1 MiB. *)

  val encode : string -> string
  (** Prefix the payload with its 4-byte big-endian length.
      @raise Search_numerics.Search_error.Error on payloads at or above
      2^31 bytes. *)

  (** Incremental decoder for one stream of concatenated frames. *)
  module Decoder : sig
    type t

    val create : ?max_frame:int -> unit -> t
    (** [max_frame] defaults to {!default_max_frame}; a declared length
        above it is a protocol violation, not an allocation request. *)

    val feed : t -> bytes -> off:int -> len:int -> unit
    val feed_string : t -> string -> unit

    val next : t -> [ `Frame of string | `Awaiting | `Corrupt of string ]
    (** [`Frame payload] consumes one complete frame; [`Awaiting] means
        the buffered bytes end mid-frame (a torn frame — feed more);
        [`Corrupt] means the stream declared a negative or oversized
        length and is beyond resynchronisation — the error is sticky and
        the connection should be closed after reporting it. *)
  end
end
