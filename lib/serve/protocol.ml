module Json = Search_numerics.Json
module E = Search_numerics.Search_error

type request =
  | Bound of { m : int; k : int; f : int }
  | Certify of { m : int; k : int; f : int; n : float; lambda : float }
  | Sweep of { m : int; k : int; f : int; n : float; samples : int }
  | Simulate of { beta : float; x : float; samples : int; seed : int }
  | Stats

type bound_payload = {
  bound : float;
  regime : string;
  alpha_star : float option;
}

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type pool_stats = { jobs : int; submitted : int; settled : int; pending : int }

type server_stats = {
  served : int;
  sheds : int;
  batches : int;
  max_batch : int;
  cache : cache_stats;
  pool : pool_stats;
}

type response =
  | Bound_ok of bound_payload
  | Certify_ok of { verdict : string; detail : string; bound : float }
  | Sweep_ok of { rows : string list list }
  | Simulate_ok of { estimate : float }
  | Stats_ok of server_stats
  | Overloaded of { pending : int; cap : int }
  | Failed of Search_numerics.Search_error.t

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)

(* the JSON printer rejects non-finite numbers; the bound of an
   unsolvable instance is [infinity], so floats travel through this
   non-finite-safe encoding (mirroring Search_error.to_json) *)
let float_to_json v =
  if Float.is_finite v then Json.Number v
  else if Float.is_nan v then Json.String "nan"
  else if v > 0. then Json.String "inf"
  else Json.String "-inf"

let float_of_json = function
  | Json.Number v -> Some v
  | Json.String "inf" -> Some infinity
  | Json.String "-inf" -> Some neg_infinity
  | Json.String "nan" -> Some Float.nan
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Assoc _ ->
      None

let int_j i = Json.Number (float_of_int i)

let field name j = Json.member name j

let int_field name j =
  match Option.bind (field name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field %S" name)

let float_field name j =
  match Option.bind (field name j) float_of_json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let string_field name j =
  match Option.bind (field name j) Json.to_string_value with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* requests                                                            *)

let request_to_json = function
  | Bound { m; k; f } ->
      Json.Assoc
        [ ("op", Json.String "bound"); ("m", int_j m); ("k", int_j k);
          ("f", int_j f) ]
  | Certify { m; k; f; n; lambda } ->
      Json.Assoc
        [
          ("op", Json.String "certify"); ("m", int_j m); ("k", int_j k);
          ("f", int_j f); ("n", float_to_json n);
          ("lambda", float_to_json lambda);
        ]
  | Sweep { m; k; f; n; samples } ->
      Json.Assoc
        [
          ("op", Json.String "sweep"); ("m", int_j m); ("k", int_j k);
          ("f", int_j f); ("n", float_to_json n); ("samples", int_j samples);
        ]
  | Simulate { beta; x; samples; seed } ->
      Json.Assoc
        [
          ("op", Json.String "simulate"); ("beta", float_to_json beta);
          ("x", float_to_json x); ("samples", int_j samples);
          ("seed", int_j seed);
        ]
  | Stats -> Json.Assoc [ ("op", Json.String "stats") ]

let request_of_json j =
  let* op = string_field "op" j in
  match op with
  | "bound" ->
      let* m = int_field "m" j in
      let* k = int_field "k" j in
      let* f = int_field "f" j in
      Ok (Bound { m; k; f })
  | "certify" ->
      let* m = int_field "m" j in
      let* k = int_field "k" j in
      let* f = int_field "f" j in
      let* n = float_field "n" j in
      let* lambda = float_field "lambda" j in
      Ok (Certify { m; k; f; n; lambda })
  | "sweep" ->
      let* m = int_field "m" j in
      let* k = int_field "k" j in
      let* f = int_field "f" j in
      let* n = float_field "n" j in
      let* samples = int_field "samples" j in
      Ok (Sweep { m; k; f; n; samples })
  | "simulate" ->
      let* beta = float_field "beta" j in
      let* x = float_field "x" j in
      let* samples = int_field "samples" j in
      let* seed = int_field "seed" j in
      Ok (Simulate { beta; x; samples; seed })
  | "stats" -> Ok Stats
  | other -> Error (Printf.sprintf "unknown op %S" other)

(* ------------------------------------------------------------------ *)
(* responses                                                           *)

let cache_stats_to_json (c : cache_stats) =
  Json.Assoc
    [
      ("hits", int_j c.hits); ("misses", int_j c.misses);
      ("evictions", int_j c.evictions); ("entries", int_j c.entries);
      ("capacity", int_j c.capacity);
    ]

let cache_stats_of_json j =
  let* hits = int_field "hits" j in
  let* misses = int_field "misses" j in
  let* evictions = int_field "evictions" j in
  let* entries = int_field "entries" j in
  let* capacity = int_field "capacity" j in
  Ok { hits; misses; evictions; entries; capacity }

let pool_stats_to_json (p : pool_stats) =
  Json.Assoc
    [
      ("jobs", int_j p.jobs); ("submitted", int_j p.submitted);
      ("settled", int_j p.settled); ("pending", int_j p.pending);
    ]

let pool_stats_of_json j =
  let* jobs = int_field "jobs" j in
  let* submitted = int_field "submitted" j in
  let* settled = int_field "settled" j in
  let* pending = int_field "pending" j in
  Ok { jobs; submitted; settled; pending }

let response_to_json = function
  | Bound_ok { bound; regime; alpha_star } ->
      Json.Assoc
        [
          ("tag", Json.String "bound"); ("bound", float_to_json bound);
          ("regime", Json.String regime);
          ( "alpha_star",
            match alpha_star with
            | Some a -> float_to_json a
            | None -> Json.Null );
        ]
  | Certify_ok { verdict; detail; bound } ->
      Json.Assoc
        [
          ("tag", Json.String "certify"); ("verdict", Json.String verdict);
          ("detail", Json.String detail); ("bound", float_to_json bound);
        ]
  | Sweep_ok { rows } ->
      Json.Assoc
        [
          ("tag", Json.String "sweep");
          ( "rows",
            Json.List
              (List.map
                 (fun row -> Json.List (List.map (fun c -> Json.String c) row))
                 rows) );
        ]
  | Simulate_ok { estimate } ->
      Json.Assoc
        [ ("tag", Json.String "simulate"); ("estimate", float_to_json estimate) ]
  | Stats_ok s ->
      Json.Assoc
        [
          ("tag", Json.String "stats"); ("served", int_j s.served);
          ("sheds", int_j s.sheds); ("batches", int_j s.batches);
          ("max_batch", int_j s.max_batch);
          ("cache", cache_stats_to_json s.cache);
          ("pool", pool_stats_to_json s.pool);
        ]
  | Overloaded { pending; cap } ->
      Json.Assoc
        [
          ("tag", Json.String "overloaded"); ("pending", int_j pending);
          ("cap", int_j cap);
        ]
  | Failed err ->
      Json.Assoc [ ("tag", Json.String "error"); ("error", E.to_json err) ]

let response_of_json j =
  let* tag = string_field "tag" j in
  match tag with
  | "bound" ->
      let* bound = float_field "bound" j in
      let* regime = string_field "regime" j in
      let* alpha_star =
        match field "alpha_star" j with
        | Some Json.Null | None -> Ok None
        | Some v -> (
            match float_of_json v with
            | Some a -> Ok (Some a)
            | None -> Error "non-numeric field \"alpha_star\"")
      in
      Ok (Bound_ok { bound; regime; alpha_star })
  | "certify" ->
      let* verdict = string_field "verdict" j in
      let* detail = string_field "detail" j in
      let* bound = float_field "bound" j in
      Ok (Certify_ok { verdict; detail; bound })
  | "sweep" -> (
      match Option.bind (field "rows" j) Json.to_list with
      | None -> Error "missing or non-list field \"rows\""
      | Some rows ->
          let row_of_json r =
            match Json.to_list r with
            | None -> None
            | Some cells ->
                let strings = List.filter_map Json.to_string_value cells in
                if Int.equal (List.length strings) (List.length cells) then
                  Some strings
                else None
          in
          let parsed = List.filter_map row_of_json rows in
          if Int.equal (List.length parsed) (List.length rows) then
            Ok (Sweep_ok { rows = parsed })
          else Error "malformed sweep row")
  | "simulate" ->
      let* estimate = float_field "estimate" j in
      Ok (Simulate_ok { estimate })
  | "stats" ->
      let* served = int_field "served" j in
      let* sheds = int_field "sheds" j in
      let* batches = int_field "batches" j in
      let* max_batch = int_field "max_batch" j in
      let* cache =
        match field "cache" j with
        | Some c -> cache_stats_of_json c
        | None -> Error "missing field \"cache\""
      in
      let* pool =
        match field "pool" j with
        | Some p -> pool_stats_of_json p
        | None -> Error "missing field \"pool\""
      in
      Ok (Stats_ok { served; sheds; batches; max_batch; cache; pool })
  | "overloaded" ->
      let* pending = int_field "pending" j in
      let* cap = int_field "cap" j in
      Ok (Overloaded { pending; cap })
  | "error" -> (
      match field "error" j with
      | None -> Error "missing field \"error\""
      | Some e ->
          let* err = E.of_json e in
          Ok (Failed err))
  | other -> Error (Printf.sprintf "unknown tag %S" other)

(* ------------------------------------------------------------------ *)
(* envelopes                                                           *)

let encode_request ~id req =
  Json.to_string
    (Json.Assoc [ ("id", int_j id); ("req", request_to_json req) ])

let decode_request s =
  match Json.of_string s with
  | Error msg -> Error (None, "frame is not JSON: " ^ msg)
  | Ok j -> (
      let id = Option.bind (field "id" j) Json.to_int in
      match field "req" j with
      | None -> Error (id, "missing field \"req\"")
      | Some rj -> (
          match request_of_json rj with
          | Error msg -> Error (id, msg)
          | Ok req -> (
              match id with
              | Some id -> Ok (id, req)
              | None -> Error (None, "missing or non-integer field \"id\""))))

let encode_response ~id resp =
  Json.to_string
    (Json.Assoc [ ("id", int_j id); ("resp", response_to_json resp) ])

let decode_response s =
  match Json.of_string s with
  | Error msg -> Error ("frame is not JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (field "id" j) Json.to_int with
      | None -> Error "missing or non-integer field \"id\""
      | Some id -> (
          match field "resp" j with
          | None -> Error "missing field \"resp\""
          | Some rj ->
              let* resp = response_of_json rj in
              Ok (id, resp)))

(* ------------------------------------------------------------------ *)
(* framing                                                             *)

module Frame = struct
  let default_max_frame = 1 lsl 20

  let encode payload =
    let len = String.length payload in
    if len >= 1 lsl 31 then
      E.invalid ~where:"Protocol.Frame.encode" "payload too large for a frame";
    let b = Bytes.create (4 + len) in
    Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (len land 0xff));
    Bytes.blit_string payload 0 b 4 len;
    Bytes.to_string b

  module Decoder = struct
    type t = {
      buf : Buffer.t;
      max_frame : int;
      mutable pos : int;  (* bytes of [buf] already consumed *)
      mutable corrupt : string option;  (* sticky *)
    }

    let create ?(max_frame = default_max_frame) () =
      { buf = Buffer.create 4096; max_frame; pos = 0; corrupt = None }

    let feed t b ~off ~len =
      if len > 0 then Buffer.add_subbytes t.buf b off len

    let feed_string t s = Buffer.add_string t.buf s

    (* drop consumed bytes so a long-lived connection's buffer does not
       grow with the total traffic ever seen *)
    let compact t =
      if Int.equal t.pos (Buffer.length t.buf) then begin
        Buffer.clear t.buf;
        t.pos <- 0
      end
      else if t.pos > 1 lsl 16 then begin
        let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
        Buffer.clear t.buf;
        Buffer.add_string t.buf rest;
        t.pos <- 0
      end

    let next t =
      match t.corrupt with
      | Some msg -> `Corrupt msg
      | None ->
          let available = Buffer.length t.buf - t.pos in
          if available < 4 then begin
            compact t;
            `Awaiting
          end
          else begin
            let byte i = Char.code (Buffer.nth t.buf (t.pos + i)) in
            let len =
              (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
            in
            if byte 0 land 0x80 <> 0 then begin
              let msg = "negative frame length" in
              t.corrupt <- Some msg;
              `Corrupt msg
            end
            else if len > t.max_frame then begin
              let msg =
                Printf.sprintf "frame length %d exceeds the %d-byte limit" len
                  t.max_frame
              in
              t.corrupt <- Some msg;
              `Corrupt msg
            end
            else if available < 4 + len then begin
              compact t;
              `Awaiting
            end
            else begin
              let payload = Buffer.sub t.buf (t.pos + 4) len in
              t.pos <- t.pos + 4 + len;
              compact t;
              `Frame payload
            end
          end
  end
end
