module E = Search_numerics.Search_error

type 'fd ops = {
  equal_fd : 'fd -> 'fd -> bool;
  listen : path:string -> 'fd;
  accept : 'fd -> [ `Conn of 'fd | `Again | `Err of string ];
  read : 'fd -> bytes -> off:int -> len:int -> [ `Data of int | `Eof | `Again | `Err of string ];
  write : 'fd -> string -> off:int -> len:int -> [ `Wrote of int | `Again | `Err of string ];
  select : read:'fd list -> write:'fd list -> timeout:float -> 'fd list * 'fd list;
  close : 'fd -> unit;
  unlink : string -> unit;
  guard_sigpipe : unit -> unit -> unit;
  connect : path:string -> 'fd;
  read_blocking : 'fd -> bytes -> off:int -> len:int -> [ `Data of int | `Eof | `Err of string ];
  write_blocking : 'fd -> string -> off:int -> len:int -> [ `Wrote of int | `Err of string ];
}

type t = T : 'fd ops -> t

(* ------------------------------------------------------------------ *)
(* The production implementation: real Unix-domain sockets.  Non-
   blocking handlers fold EINTR into [`Again] (the caller loops through
   select anyway); blocking handlers retry EINTR internally, preserving
   the old Client behaviour.

   Every handler below is an audited [@real_io] barrier: this record is
   the one place the serve layer touches the real OS, and the escape
   analysis (lint --escape, escape-realio) checks that nothing else
   reachable from the ops seam or the dst fibers does.  [@releases]
   marks the two acquirers whose error paths close the descriptor
   before re-raising (and whose success path transfers ownership to
   the caller). *)

let[@real_io] [@releases] unix_listen ~path =
  (try if Sys.file_exists path then Unix.unlink path
   with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    Unix.set_nonblock fd
  with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.raise_
        (E.Io_failure { path; what = "bind: " ^ Unix.error_message err })

let[@real_io] [@releases] unix_accept fd =
  match Unix.accept ~cloexec:true fd with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Again
  | exception Unix.Unix_error (err, _, _) -> `Err (Unix.error_message err)
  | conn, _ ->
      Unix.set_nonblock conn;
      `Conn conn

let[@real_io] unix_read fd buf ~off ~len =
  match Unix.read fd buf off len with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Again
  | exception Unix.Unix_error (err, _, _) -> `Err (Unix.error_message err)
  | 0 -> `Eof
  | n -> `Data n

let[@real_io] unix_write fd s ~off ~len =
  match Unix.write_substring fd s off len with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Again
  | exception Unix.Unix_error (err, _, _) -> `Err (Unix.error_message err)
  | n -> `Wrote n

let[@real_io] unix_select ~read ~write ~timeout =
  match Unix.select read write [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
  | readable, writable, _ -> (readable, writable)

let[@real_io] unix_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let[@real_io] unix_unlink path =
  try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()

let[@real_io] unix_guard_sigpipe () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  fun () -> ignore (Sys.signal Sys.sigpipe prev)

let[@real_io] [@releases] unix_connect ~path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.raise_
        (E.Io_failure { path; what = "connect: " ^ Unix.error_message err })

let[@real_io] rec unix_read_blocking fd buf ~off ~len =
  match Unix.read fd buf off len with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      unix_read_blocking fd buf ~off ~len
  | exception Unix.Unix_error (err, _, _) -> `Err (Unix.error_message err)
  | 0 -> `Eof
  | n -> `Data n

let[@real_io] rec unix_write_blocking fd s ~off ~len =
  match Unix.write_substring fd s off len with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      unix_write_blocking fd s ~off ~len
  | exception Unix.Unix_error (err, _, _) -> `Err (Unix.error_message err)
  | n -> `Wrote n

let unix =
  {
    (* Unix.file_descr is an abstract handle with no Int-style equal;
       structural equality on it is the documented comparison (it is a
       plain int under the hood) — see the lint.allow entry. *)
    equal_fd = ( = );
    listen = unix_listen;
    accept = unix_accept;
    read = unix_read;
    write = unix_write;
    select = unix_select;
    close = unix_close;
    unlink = unix_unlink;
    guard_sigpipe = unix_guard_sigpipe;
    connect = unix_connect;
    read_blocking = unix_read_blocking;
    write_blocking = unix_write_blocking;
  }

let default = T unix
