type 'a t = { queue : 'a Queue.t; cap : int }

let create ~cap () =
  if cap < 1 then
    Search_numerics.Search_error.invalid ~where:"Backlog.create"
      "need cap >= 1";
  { queue = Queue.create (); cap }

let push t x =
  if Queue.length t.queue >= t.cap then `Shed
  else begin
    Queue.push x t.queue;
    `Accepted
  end

let take t ~max =
  if max < 1 then
    Search_numerics.Search_error.invalid ~where:"Backlog.take" "need max >= 1";
  let rec go acc taken =
    if taken >= max || Queue.is_empty t.queue then List.rev acc
    else go (Queue.pop t.queue :: acc) (taken + 1)
  in
  go [] 0

let length t = Queue.length t.queue
let cap t = t.cap
