module E = Search_numerics.Search_error

type config = {
  socket_path : string;
  queue_cap : int;
  batch_cap : int;
  max_frame : int;
  log : string -> unit;
}

let config ?(queue_cap = 64) ?(batch_cap = 32)
    ?(max_frame = Protocol.Frame.default_max_frame) ?(log = ignore)
    ~socket_path () =
  if queue_cap < 1 then E.invalid ~where:"Server.config" "need queue_cap >= 1";
  if batch_cap < 1 then E.invalid ~where:"Server.config" "need batch_cap >= 1";
  if max_frame < 8 then E.invalid ~where:"Server.config" "need max_frame >= 8";
  { socket_path; queue_cap; batch_cap; max_frame; log }

type conn = {
  fd : Unix.file_descr;
  decoder : Protocol.Frame.Decoder.t;
  out : Buffer.t;  (** encoded frames awaiting the peer *)
  mutable sent : int;  (** prefix of [out] already written *)
  mutable inflight : int;  (** admitted requests not yet answered *)
  mutable eof : bool;  (** peer closed its write side *)
  mutable closing : bool;  (** framing violation: close once [out] drains *)
  mutable dead : bool;  (** transport failed: close now *)
}

let make_conn ~max_frame fd =
  {
    fd;
    decoder = Protocol.Frame.Decoder.create ~max_frame ();
    out = Buffer.create 512;
    sent = 0;
    inflight = 0;
    eof = false;
    closing = false;
    dead = false;
  }

let respond c ~id resp =
  Buffer.add_string c.out (Protocol.Frame.encode (Protocol.encode_response ~id resp))

let protocol_error ~where what =
  Protocol.Failed (E.Invalid_input { where; what })

(* Parse every completed frame buffered on [c]: valid requests are
   admitted (or shed with an immediate [Overloaded]); undecodable ones
   are answered in place with a structured error, addressed to the
   envelope id when one survived parsing, to -1 otherwise. *)
let drain_frames dispatch backlog c =
  let rec go () =
    match Protocol.Frame.Decoder.next c.decoder with
    | `Awaiting -> ()
    | `Corrupt msg ->
        respond c ~id:(-1) (protocol_error ~where:"serve/frame" msg);
        c.closing <- true
    | `Frame payload ->
        (match Protocol.decode_request payload with
        | Ok (id, req) -> (
            match Backlog.push backlog (c, id, req) with
            | `Accepted -> c.inflight <- c.inflight + 1
            | `Shed ->
                Dispatch.note_shed dispatch;
                respond c ~id
                  (Protocol.Overloaded
                     { pending = Backlog.length backlog; cap = Backlog.cap backlog }))
        | Error (id_opt, msg) ->
            let id = Option.value id_opt ~default:(-1) in
            respond c ~id (protocol_error ~where:"serve/protocol" msg));
        go ()
  in
  go ()

(* [@nonblocking]: every fd that reaches these handlers had
   [Unix.set_nonblock] applied at accept time, and EAGAIN/EWOULDBLOCK
   are handled — the Unix.read/write here cannot park the loop thread.
   The attribute is the audited barrier the [hotpath-blocking] lint
   stops at. *)
let[@nonblocking] read_conn dispatch backlog scratch c =
  match Unix.read c.fd scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error (_, _, _) -> c.dead <- true
  | 0 -> c.eof <- true
  | n ->
      Protocol.Frame.Decoder.feed c.decoder scratch ~off:0 ~len:n;
      drain_frames dispatch backlog c

let[@nonblocking] write_conn c =
  let pending = Buffer.length c.out - c.sent in
  if pending > 0 then
    match Unix.write_substring c.fd (Buffer.contents c.out) c.sent pending with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ()
    | exception Unix.Unix_error (_, _, _) -> c.dead <- true
    | n ->
        c.sent <- c.sent + n;
        if c.sent >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.sent <- 0
        end

let bind_listener path =
  (try if Sys.file_exists path then Unix.unlink path
   with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    Unix.set_nonblock fd
  with
  | () -> fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      E.raise_
        (E.Io_failure { path; what = "bind: " ^ Unix.error_message err })

let[@event_loop] run cfg ~dispatch ~stop =
  let listener = bind_listener cfg.socket_path in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let backlog = Backlog.create ~cap:cfg.queue_cap () in
  let scratch = Bytes.create 65536 in
  (* a peer may vanish between select and write; with SIGPIPE ignored
     that surfaces as EPIPE on the write, which we already handle *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let accept_all () =
    let rec go () =
      match Unix.accept ~cloexec:true listener with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _ ->
          Unix.set_nonblock fd;
          Hashtbl.replace conns fd (make_conn ~max_frame:cfg.max_frame fd);
          go ()
    in
    go ()
  in
  let reap () =
    let victims =
      Hashtbl.fold
        (fun _fd c acc ->
          let drained = Buffer.length c.out - c.sent <= 0 in
          if
            c.dead
            || (c.closing && drained)
            || (c.eof && c.inflight <= 0 && drained)
          then c :: acc
          else acc)
        conns []
    in
    List.iter
      (fun c ->
        Hashtbl.remove conns c.fd;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      victims
  in
  let teardown () =
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      conns;
    Hashtbl.reset conns;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    ignore (Sys.signal Sys.sigpipe prev_sigpipe)
  in
  cfg.log (Printf.sprintf "listening on %s" cfg.socket_path);
  Fun.protect ~finally:teardown @@ fun () ->
  while not (Atomic.get stop) do
    let rds =
      listener
      :: Hashtbl.fold
           (fun fd c acc -> if c.eof || c.dead then acc else fd :: acc)
           conns []
    in
    let wrs =
      Hashtbl.fold
        (fun fd c acc ->
          if (not c.dead) && Buffer.length c.out - c.sent > 0 then fd :: acc
          else acc)
        conns []
    in
    (* the timeout doubles as the stop-flag poll interval *)
    match Unix.select rds wrs [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> read_conn dispatch backlog scratch c
            | None -> accept_all ())
          readable;
        if Backlog.length backlog > 0 then begin
          let batch = Backlog.take backlog ~max:cfg.batch_cap in
          let replies = Dispatch.handle_batch dispatch batch in
          List.iter
            (fun (c, id, resp) ->
              c.inflight <- c.inflight - 1;
              if not c.dead then respond c ~id resp)
            replies
        end;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> write_conn c
            | None -> ())
          writable;
        (* responses enqueued by this cycle's dispatch get flushed
           eagerly rather than waiting for the next select round *)
        Hashtbl.iter (fun _fd c -> if not c.dead then write_conn c) conns;
        reap ()
  done;
  cfg.log "stop requested; shutting down"
