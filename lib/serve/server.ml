module E = Search_numerics.Search_error

type config = {
  socket_path : string;
  queue_cap : int;
  batch_cap : int;
  max_frame : int;
  log : string -> unit;
}

let config ?(queue_cap = 64) ?(batch_cap = 32)
    ?(max_frame = Protocol.Frame.default_max_frame) ?(log = ignore)
    ~socket_path () =
  if queue_cap < 1 then E.invalid ~where:"Server.config" "need queue_cap >= 1";
  if batch_cap < 1 then E.invalid ~where:"Server.config" "need batch_cap >= 1";
  if max_frame < 8 then E.invalid ~where:"Server.config" "need max_frame >= 8";
  { socket_path; queue_cap; batch_cap; max_frame; log }

type 'fd conn = {
  fd : 'fd;
  decoder : Protocol.Frame.Decoder.t;
  out : Buffer.t;  (** encoded frames awaiting the peer *)
  mutable sent : int;  (** prefix of [out] already written *)
  mutable inflight : int;  (** admitted requests not yet answered *)
  mutable eof : bool;  (** peer closed its write side *)
  mutable closing : bool;  (** framing violation: close once [out] drains *)
  mutable dead : bool;  (** transport failed: close now *)
}

let make_conn ~max_frame fd =
  {
    fd;
    decoder = Protocol.Frame.Decoder.create ~max_frame ();
    out = Buffer.create 512;
    sent = 0;
    inflight = 0;
    eof = false;
    closing = false;
    dead = false;
  }

let respond c ~id resp =
  Buffer.add_string c.out (Protocol.Frame.encode (Protocol.encode_response ~id resp))

let protocol_error ~where what =
  Protocol.Failed (E.Invalid_input { where; what })

(* Parse every completed frame buffered on [c]: valid requests are
   admitted (or shed with an immediate [Overloaded]); undecodable ones
   are answered in place with a structured error, addressed to the
   envelope id when one survived parsing, to -1 otherwise. *)
let drain_frames dispatch backlog c =
  let rec go () =
    match Protocol.Frame.Decoder.next c.decoder with
    | `Awaiting -> ()
    | `Corrupt msg ->
        respond c ~id:(-1) (protocol_error ~where:"serve/frame" msg);
        c.closing <- true
    | `Frame payload ->
        (match Protocol.decode_request payload with
        | Ok (id, req) -> (
            match Backlog.push backlog (c, id, req) with
            | `Accepted -> c.inflight <- c.inflight + 1
            | `Shed ->
                Dispatch.note_shed dispatch;
                respond c ~id
                  (Protocol.Overloaded
                     { pending = Backlog.length backlog; cap = Backlog.cap backlog }))
        | Error (id_opt, msg) ->
            let id = Option.value id_opt ~default:(-1) in
            respond c ~id (protocol_error ~where:"serve/protocol" msg));
        go ()
  in
  go ()

(* [@nonblocking]: the runtime's [read]/[write] handlers answer [`Again]
   instead of parking the loop thread (the Unix implementation applies
   [Unix.set_nonblock] at accept time and folds EAGAIN/EWOULDBLOCK/EINTR
   into [`Again]; the simulated one never blocks at all).  The attribute
   is the audited barrier the [hotpath-blocking] lint stops at. *)
let[@nonblocking] read_conn ops dispatch backlog scratch c =
  match ops.Runtime.read c.fd scratch ~off:0 ~len:(Bytes.length scratch) with
  | `Again -> ()
  | `Err _ -> c.dead <- true
  | `Eof -> c.eof <- true
  | `Data n ->
      Protocol.Frame.Decoder.feed c.decoder scratch ~off:0 ~len:n;
      drain_frames dispatch backlog c

let[@nonblocking] write_conn ops c =
  let pending = Buffer.length c.out - c.sent in
  if pending > 0 then
    match ops.Runtime.write c.fd (Buffer.contents c.out) ~off:c.sent ~len:pending with
    | `Again -> ()
    | `Err _ -> c.dead <- true
    | `Wrote n ->
        c.sent <- c.sent + n;
        if c.sent >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.sent <- 0
        end

(* The loop is generic in the runtime's handle type: the production
   daemon instantiates it at [Unix.file_descr], the deterministic
   simulator at its fake-socket handles.  Connections live in a small
   list keyed by [equal_fd] — connection counts are bounded by the
   process fd limit and each cycle's work is dominated by JSON
   evaluation, so linear lookup is immaterial. *)
let[@event_loop] serve : type fd.
    fd Runtime.ops -> config -> dispatch:Dispatch.t -> stop:bool Atomic.t -> unit
    =
 fun ops cfg ~dispatch ~stop ->
  let listener = ops.Runtime.listen ~path:cfg.socket_path in
  let conns : fd conn list ref = ref [] in
  let backlog = Backlog.create ~cap:cfg.queue_cap () in
  let scratch = Bytes.create 65536 in
  (* a peer may vanish between select and write; with SIGPIPE guarded
     that surfaces as an [`Err] on the write, which we already handle *)
  let restore_sigpipe = ops.Runtime.guard_sigpipe () in
  let find_conn fd = List.find_opt (fun c -> ops.Runtime.equal_fd c.fd fd) !conns in
  let accept_all () =
    let rec go () =
      match ops.Runtime.accept listener with
      | `Again | `Err _ -> ()
      | `Conn fd ->
          conns := make_conn ~max_frame:cfg.max_frame fd :: !conns;
          go ()
    in
    go ()
  in
  let reap () =
    let victims, kept =
      List.partition
        (fun c ->
          let drained = Buffer.length c.out - c.sent <= 0 in
          c.dead
          || (c.closing && drained)
          || (c.eof && c.inflight <= 0 && drained))
        !conns
    in
    conns := kept;
    List.iter (fun c -> ops.Runtime.close c.fd) victims
  in
  let teardown () =
    (* never leak a connection fd, also on exceptional exit *)
    List.iter (fun c -> ops.Runtime.close c.fd) !conns;
    conns := [];
    ops.Runtime.close listener;
    ops.Runtime.unlink cfg.socket_path;
    restore_sigpipe ()
  in
  cfg.log (Printf.sprintf "listening on %s" cfg.socket_path);
  Fun.protect ~finally:teardown @@ fun () ->
  while not (Atomic.get stop) do
    let rds =
      listener
      :: List.filter_map
           (fun c -> if c.eof || c.dead then None else Some c.fd)
           !conns
    in
    let wrs =
      List.filter_map
        (fun c ->
          if (not c.dead) && Buffer.length c.out - c.sent > 0 then Some c.fd
          else None)
        !conns
    in
    (* the timeout doubles as the stop-flag poll interval *)
    let readable, writable = ops.Runtime.select ~read:rds ~write:wrs ~timeout:0.05 in
    List.iter
      (fun fd ->
        if ops.Runtime.equal_fd fd listener then accept_all ()
        else
          match find_conn fd with
          | Some c -> read_conn ops dispatch backlog scratch c
          | None -> ())
      readable;
    if Backlog.length backlog > 0 then begin
      let batch = Backlog.take backlog ~max:cfg.batch_cap in
      let replies = Dispatch.handle_batch dispatch batch in
      List.iter
        (fun (c, id, resp) ->
          c.inflight <- c.inflight - 1;
          if not c.dead then respond c ~id resp)
        replies
    end;
    List.iter
      (fun fd ->
        match find_conn fd with
        | Some c -> write_conn ops c
        | None -> ())
      writable;
    (* responses enqueued by this cycle's dispatch get flushed
       eagerly rather than waiting for the next select round *)
    List.iter (fun c -> if not c.dead then write_conn ops c) !conns;
    reap ()
  done;
  cfg.log "stop requested; shutting down"

let run ?(runtime = Runtime.default) cfg ~dispatch ~stop =
  match runtime with Runtime.T ops -> serve ops cfg ~dispatch ~stop
