(** Bounded admission queue — the daemon's backpressure valve.

    Parsed requests wait here between the read phase and the dispatch
    phase of the server loop.  The bound is the admission-control
    contract: a server that queued without limit would trade overload
    for unbounded memory and unbounded latency; instead, a push over
    capacity is refused and the server answers that request with an
    explicit [Overloaded] response immediately, so clients learn to back
    off while admitted requests keep their latency.

    Single-threaded by design: only the server's event loop touches it
    (the pool workers see requests only after {!take}). *)

type 'a t

val create : cap:int -> unit -> 'a t
(** @raise Search_numerics.Search_error.Error when [cap < 1]. *)

val push : 'a t -> 'a -> [ `Accepted | `Shed ]
(** FIFO admit, unless the queue already holds [cap] items. *)

val take : 'a t -> max:int -> 'a list
(** Remove and return up to [max] items, oldest first (the next dispatch
    batch).  Requires [max >= 1]. *)

val length : 'a t -> int

val cap : 'a t -> int
