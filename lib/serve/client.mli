(** Blocking client for the serve daemon.

    The simple synchronous interface: connect, {!call} one request at a
    time (or pipeline with {!send} / {!recv}), close.  Transport and
    protocol failures raise {!Search_numerics.Search_error.Error} with an
    [Io_failure] / [Invalid_input] payload — the same taxonomy the
    daemon itself speaks.  The load generator does not use this module
    (it multiplexes hundreds of connections on a select loop); tests and
    scripts do. *)

type t

val connect :
  ?runtime:Runtime.t -> ?max_frame:int -> socket_path:string -> unit -> t
(** [runtime] defaults to {!Runtime.default} (real Unix sockets); the
    deterministic simulator passes its fake network.
    @raise Search_numerics.Search_error.Error with [Io_failure] when the
    socket cannot be reached. *)

val send : t -> id:int -> Protocol.request -> unit
(** Write one framed request, handling partial writes. *)

val recv : t -> int * Protocol.response
(** Block until the next complete response frame; returns the echoed id
    with the decoded response. *)

val call : t -> id:int -> Protocol.request -> int * Protocol.response
(** [send] then [recv]. *)

val close : t -> unit

val with_client :
  ?runtime:Runtime.t -> ?max_frame:int -> socket_path:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)
