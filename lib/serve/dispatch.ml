module FS = Faulty_search
module E = Search_numerics.Search_error
module Memo = Search_exec.Memo
module Pool = Search_exec.Pool
module Supervise = Search_exec.Supervise
module Budget = Search_resilience.Budget

type t = {
  pool : Pool.t;
  spec : Supervise.spec;
  cache : (int * int * int, Protocol.bound_payload) Memo.Lru.t;
  seq : int Atomic.t;  (** task-key sequence, never reused across batches *)
  served : int Atomic.t;
  sheds : int Atomic.t;
  batches : int Atomic.t;
  max_batch : int Atomic.t;
}

let create ~pool ?(cache_capacity = 256) ?(spec = Supervise.default) () =
  {
    pool;
    spec;
    cache = Memo.Lru.create ~capacity:cache_capacity ();
    seq = Atomic.make 0;
    served = Atomic.make 0;
    sheds = Atomic.make 0;
    batches = Atomic.make 0;
    max_batch = Atomic.make 0;
  }

let note_shed t = Atomic.incr t.sheds

let stats t =
  let c = Memo.Lru.stats t.cache in
  let p = Pool.stats t.pool in
  {
    Protocol.served = Atomic.get t.served;
    sheds = Atomic.get t.sheds;
    batches = Atomic.get t.batches;
    max_batch = Atomic.get t.max_batch;
    cache =
      {
        Protocol.hits = c.Memo.Lru.hits;
        misses = c.Memo.Lru.misses;
        evictions = c.Memo.Lru.evictions;
        entries = c.Memo.Lru.entries;
        capacity = c.Memo.Lru.capacity;
      };
    pool =
      {
        Protocol.jobs = p.Pool.jobs;
        submitted = p.Pool.submitted;
        settled = p.Pool.settled;
        pending = p.Pool.pending;
      };
  }

(* ------------------------------------------------------------------ *)
(* per-request evaluation (runs on pool workers)                      *)
(* ------------------------------------------------------------------ *)

let regime_string = function
  | FS.Params.Unsolvable -> "unsolvable"
  | FS.Params.Ratio_one -> "ratio-one"
  | FS.Params.Searching -> "searching"

(* Params.make raises the taxonomy directly (Regime_violation), which
   is exactly what the protocol error path wants. *)
let params_or_invalid ~where:_ ~m ~k ~f = FS.Params.make ~m ~k ~f

let eval_bound t meter ~m ~k ~f =
  Budget.step meter;
  let payload =
    Memo.Lru.find_or_add t.cache (m, k, f) (fun () ->
        let p = params_or_invalid ~where:"serve/bound" ~m ~k ~f in
        let regime = FS.Params.regime p in
        let alpha_star =
          match regime with
          | FS.Params.Searching ->
              Some (FS.Formulas.alpha_star ~q:(FS.Params.q p) ~k)
          | FS.Params.Ratio_one | FS.Params.Unsolvable -> None
        in
        {
          Protocol.bound = FS.Formulas.of_params p;
          regime = regime_string regime;
          alpha_star;
        })
  in
  Protocol.Bound_ok payload

let searching_or_violation ~where ~m ~k ~f =
  let p = params_or_invalid ~where ~m ~k ~f in
  match FS.Params.regime p with
  | FS.Params.Searching -> p
  | FS.Params.Ratio_one | FS.Params.Unsolvable ->
      E.raise_
        (E.Regime_violation
           { m; k; f; what = where ^ " requires the searching regime" })

let eval_certify meter ~m ~k ~f ~n ~lambda =
  if not (Float.is_finite n && n >= 1.) then
    E.invalid ~where:"serve/certify" "need a finite horizon n >= 1";
  if not (Float.is_finite lambda && lambda > 0.) then
    E.invalid ~where:"serve/certify" "need a finite lambda > 0";
  let p = searching_or_violation ~where:"serve/certify" ~m ~k ~f in
  let q = FS.Params.q p in
  Budget.step meter;
  let problem = FS.Problem.make ~m ~k ~f ~horizon:n () in
  let solution = FS.Solve.solve problem in
  let turns = Option.get (FS.Solve.orc_turns solution) in
  let bound = FS.Problem.bound problem in
  Budget.step meter;
  let verdict =
    if m = 2 then FS.Certificate.check_line ~turns ~f ~lambda ~n ()
    else FS.Certificate.check_orc ~turns ~demand:q ~lambda ~n ()
  in
  let tag =
    match verdict with
    | FS.Certificate.Refuted_gap _ -> "refuted-gap"
    | FS.Certificate.Refuted_potential _ -> "refuted-potential"
    | FS.Certificate.Not_refuted _ -> "not-refuted"
    | FS.Certificate.Inconclusive _ -> "inconclusive"
  in
  let detail = Format.asprintf "%a" FS.Certificate.pp_verdict verdict in
  Protocol.Certify_ok { verdict = tag; detail; bound }

(* mirrors the CLI sweep's alpha grid around the optimal base, so a serve
   client and the [sweep] subcommand render identical rows *)
let eval_sweep meter ~m ~k ~f ~n ~samples =
  if samples < 2 then E.invalid ~where:"serve/sweep" "need samples >= 2";
  if not (Float.is_finite n && n >= 1.) then
    E.invalid ~where:"serve/sweep" "need a finite horizon n >= 1";
  let p = searching_or_violation ~where:"serve/sweep" ~m ~k ~f in
  let q = FS.Params.q p in
  let a_star = FS.Formulas.alpha_star ~q ~k in
  let rows =
    List.filter_map
      (fun i ->
        Budget.step meter;
        let t = float_of_int i /. float_of_int (samples - 1) in
        let alpha = a_star *. (0.7 +. (0.8 *. t)) in
        if alpha > 1.001 then begin
          let problem = FS.Problem.make ~m ~k ~f ~horizon:n () in
          let solution = FS.Solve.solve ~alpha problem in
          let outcome =
            FS.Adversary.worst_case (FS.Solve.trajectories solution) ~f ~n ()
          in
          Some
            [
              FS.Table.cell_f ~decimals:4 alpha;
              FS.Table.cell_f ~decimals:4 solution.FS.Solve.designed_ratio;
              FS.Table.cell_f ~decimals:4 outcome.FS.Adversary.ratio;
            ]
        end
        else None)
      (List.init samples Fun.id)
  in
  Protocol.Sweep_ok { rows }

let eval_simulate meter ~beta ~x ~samples ~seed =
  if not (Float.is_finite beta && beta > 1.) then
    E.invalid ~where:"serve/simulate" "need a finite beta > 1";
  if not (Float.is_finite x) || Float.equal x 0. then
    E.invalid ~where:"serve/simulate" "need a finite non-zero target x";
  if samples < 1 then E.invalid ~where:"serve/simulate" "need samples >= 1";
  Budget.step meter ~cost:samples;
  let prng = FS.Prng.make ~seed in
  let estimate = FS.Randomized.expected_ratio_at ~beta ~x ~samples ~prng in
  Protocol.Simulate_ok { estimate }

let eval t snapshot meter = function
  | Protocol.Bound { m; k; f } -> eval_bound t meter ~m ~k ~f
  | Protocol.Certify { m; k; f; n; lambda } ->
      eval_certify meter ~m ~k ~f ~n ~lambda
  | Protocol.Sweep { m; k; f; n; samples } ->
      eval_sweep meter ~m ~k ~f ~n ~samples
  | Protocol.Simulate { beta; x; samples; seed } ->
      eval_simulate meter ~beta ~x ~samples ~seed
  | Protocol.Stats -> Protocol.Stats_ok snapshot

(* ------------------------------------------------------------------ *)
(* batch dispatch (runs on the server's event-loop thread)            *)
(* ------------------------------------------------------------------ *)

let[@pool_entry] handle_batch t items =
  match items with
  | [] -> []
  | _ :: _ ->
      (* Stats requests in this batch see the state as of admission —
         a stable snapshot rather than a torn read mid-batch *)
      let snapshot = stats t in
      let n = List.length items in
      Atomic.incr t.batches;
      if n > Atomic.get t.max_batch then Atomic.set t.max_batch n;
      let base = Atomic.fetch_and_add t.seq n in
      let results =
        Supervise.map t.pool ~spec:t.spec
          ~task:(fun i _ -> Printf.sprintf "serve/req-%d" (base + i))
          ~f:(fun meter req -> eval t snapshot meter req)
          (List.map (fun (_tok, _id, req) -> req) items)
      in
      ignore (Atomic.fetch_and_add t.served n);
      List.map2
        (fun (tok, id, _req) result ->
          match result with
          | Ok resp -> (tok, id, resp)
          | Error err -> (tok, id, Protocol.Failed err))
        items results
