type t = {
  count : int;
  mean : float;
  m2 : float; (* Welford's sum of squared deviations *)
  min_v : float;
  max_v : float;
}

let empty = { count = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min_v = Float.min t.min_v x; max_v = Float.max t.max_v x }

let count t = t.count

let nonempty name t =
  if t.count = 0 then invalid_arg ("Stats." ^ name ^ ": empty summary")

let mean t =
  nonempty "mean" t;
  t.mean

let min t =
  nonempty "min" t;
  t.min_v

let max t =
  nonempty "max" t;
  t.max_v

let stddev t = if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int t.count)

type 'a sup = { sup_v : float; witness : 'a option }

let sup_empty = { sup_v = neg_infinity; witness = None }

let sup_add s ~key ~value =
  (* [value > sup_v] is false for NaN, so without the explicit check a
     NaN sample would vanish from the supremum — a poisoned detection
     ratio must surface, not be swallowed.  [infinity] stays a legal
     sample: it is the adversary's "target escaped" verdict. *)
  if Float.is_nan value then
    Search_error.raise_
      (Search_error.Non_convergence
         {
           where = "Stats.sup_add";
           steps = 0;
           detail = "supremum fed a NaN sample";
         })
  else if value > s.sup_v then { sup_v = value; witness = Some key }
  else s

let sup_value s = s.sup_v
let sup_witness s = s.witness

let nearest_rank sorted ~p =
  if p < 0. || p > 100. || Float.is_nan p then
    invalid_arg "Stats.nearest_rank: need 0 <= p <= 100";
  let n = Array.length sorted in
  if n = 0 then None
  else
    let r = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    Some sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (r - 1)))
