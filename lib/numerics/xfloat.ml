let default_eps = 1e-9

let approx_eq ?(eps = default_eps) a b =
  if Float.equal a b then true
  else
    let scale = Float.max (Float.abs a) (Float.abs b) in
    if scale < eps then Float.abs (a -. b) <= eps
    else Float.abs (a -. b) <= eps *. scale

let approx_le ?(eps = default_eps) a b = a <= b || approx_eq ~eps a b
let approx_ge ?(eps = default_eps) a b = a >= b || approx_eq ~eps a b

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let is_finite x = Float.is_finite x

let log_pow b e =
  assert (b >= 0.);
  if Float.equal e 0. then 0. (* continuous extension: b^0 = 1, including 0^0 *)
  else e *. log b

let pow b e = exp (log_pow b e)
let sum xs = List.fold_left ( +. ) 0. xs

let pp ppf x =
  let s = Printf.sprintf "%g" x in
  match float_of_string_opt s with
  | Some y when Float.equal y x -> Format.pp_print_string ppf s
  | Some _ | None -> Format.fprintf ppf "%.17g" x
