(** Deterministic splittable pseudo-random numbers (splitmix64).

    The randomized-search modules need reproducible randomness: Monte
    Carlo estimates in tests must not flake, and experiment tables must be
    identical across runs.  This is the standard splitmix64 generator with
    a pure (state-passing) interface — no global state. *)

type t
(** Immutable generator state. *)

val make : seed:int -> t

val next_int64 : t -> int64 * t
(** One 64-bit output and the advanced state. *)

val float : t -> float * t
(** Uniform in [[0, 1)] (53-bit resolution). *)

val float_range : lo:float -> hi:float -> t -> float * t
(** Uniform in [[lo, hi)].  Requires [lo < hi]. *)

val bool : t -> bool * t

val int : bound:int -> t -> int * t
(** Uniform in [[0, bound)] — exactly uniform, by rejection sampling on
    the 64-bit stream (every residue is reachable, even for bounds above
    2^53).  Requires [bound > 0]. *)

val split : t -> t * t
(** Two independent generators derived from one state.  Both child
    states are passed through the SplitMix64 finaliser, so neither
    coincides with any stream {e output} — parent and child streams
    cannot interleave. *)
