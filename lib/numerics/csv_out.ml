let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let float_cell x =
  let s = Printf.sprintf "%g" x in
  match float_of_string_opt s with
  | Some y when Float.equal y x -> s
  | Some _ | None -> Printf.sprintf "%.17g" x

let write ~path ~header ~rows =
  let arity = List.length header in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Csv_out.write: row arity mismatch")
    rows;
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let emit row =
        output_string oc (String.concat "," (List.map escape_field row));
        output_char oc '\n'
      in
      emit header;
      List.iter emit rows)
