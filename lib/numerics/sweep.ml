type verdict =
  | Covered
  | Gap of { from_ : float; upto : float; at : float; multiplicity : int }

let multiplicity_at x ivs =
  List.fold_left (fun n iv -> if Interval1.mem x iv then n + 1 else n) 0 ivs

(* The profile works on interval interiors: collect all endpoints clipped to
   the window, sort/dedup them, and evaluate the multiplicity at each piece's
   midpoint.  Midpoint evaluation makes left-end kinds irrelevant (they only
   matter on a measure-zero set), which is exactly the resolution at which
   the covering proofs operate ("every point of R_{>1} is covered exactly s
   times" after truncation).

   A piece's midpoint lies strictly between two consecutive endpoints, so an
   interval contains it iff the interval has started (lo <= piece start) and
   not yet ended (hi >= piece end; hi cannot fall inside the piece).  A
   single pass over the endpoint events — +1 at each lo, -1 at each hi, both
   applied once the sweep moves past the position — therefore maintains every
   piece's multiplicity in O(n log n) total, instead of the former
   O(pieces x intervals) rescan per piece; this is the certificate checker's
   hot loop.  Degenerate intervals [c, c] add and immediately retire at the
   same position, contributing to no piece — exactly the midpoint semantics. *)
let coverage_profile ~within:(lo, hi) ivs =
  if lo >= hi then []
  else begin
    let n = List.length ivs in
    (* +1 events at interval starts, -1 events at interval ends *)
    let events = Array.make (2 * n) (0., 0) in
    List.iteri
      (fun i (iv : Interval1.t) ->
        events.(2 * i) <- (iv.Interval1.lo, 1);
        events.((2 * i) + 1) <- (iv.Interval1.hi, -1))
      ivs;
    Array.sort
      (fun (x, _) (y, _) -> Float.compare x y)
      events;
    let cuts =
      Array.to_list events
      |> List.filter_map (fun (x, _) -> if x > lo && x < hi then Some x else None)
      |> List.sort_uniq Float.compare
    in
    let points = (lo :: cuts) @ [ hi ] in
    let next_event = ref 0 in
    let running = ref 0 in
    (* apply every event at a position <= a: an interval ending exactly at
       the piece's start no longer covers its midpoint, one starting there
       does *)
    let advance_to a =
      while
        !next_event < Array.length events && fst events.(!next_event) <= a
      do
        running := !running + snd events.(!next_event);
        incr next_event
      done
    in
    let rec pieces = function
      | a :: (b :: _ as rest) ->
          advance_to a;
          (* bind before recursing: argument evaluation order must not let
             the recursive call advance the cursor past this piece *)
          let count = !running in
          (a, b, count) :: pieces rest
      | [ _ ] | [] -> []
    in
    pieces points
  end

let min_multiplicity ~within ivs =
  match coverage_profile ~within ivs with
  | [] -> 0
  | pieces -> List.fold_left (fun m (_, _, c) -> min m c) max_int pieces

let check ~demand ~within ivs =
  let pieces = coverage_profile ~within ivs in
  let rec find = function
    | [] -> Covered
    | (a, b, c) :: rest ->
        if c < demand then
          Gap { from_ = a; upto = b; at = 0.5 *. (a +. b); multiplicity = c }
        else find rest
  in
  match pieces with
  | [] ->
      (* degenerate window: single point *)
      let lo, _ = within in
      let c = multiplicity_at lo ivs in
      if c >= demand then Covered
      else Gap { from_ = lo; upto = lo; at = lo; multiplicity = c }
  | pieces -> find pieces
