(** Structured error taxonomy for the whole system.

    Every failure the runtime can surface — bad regime parameters, a solver
    that ran out of iterations, a task that blew its budget, a worker domain
    that died — is a value of {!t}, carried by the single exception
    {!Error}.  Having one typed channel (instead of stringly
    [Invalid_argument]/[Failure] everywhere) lets the supervised runtime in
    [faulty_search.resilience] classify failures, decide what is retryable,
    render error cells in reports, and journal them as JSON.

    The type lives at the bottom of the dependency stack (numerics) so that
    [lib/bounds], [lib/sim], [lib/exec] and everything above can raise it
    without dependency cycles; [Search_resilience.Search_error] re-exports
    it unchanged. *)

type resource =
  | Steps  (** deterministic step/eval count *)
  | Seconds  (** wall-clock, only ever consulted behind {!Budget} *)

type t =
  | Invalid_input of { where : string; what : string }
      (** Precondition violation at the API boundary, e.g.
          ["Formulas.mu: need 0 < k <= q"].  Deterministic; never retried. *)
  | Regime_violation of { m : int; k : int; f : int; what : string }
      (** The (m, k, f) instance is outside the searching regime of the
          paper (Theorem 1 needs k <= 2f + 2 etc.). *)
  | Non_convergence of { where : string; steps : int; detail : string }
      (** An iterative solver exhausted its iteration allowance without
          bracketing/meeting tolerance. *)
  | Budget_exceeded of {
      task : string;
      resource : resource;
      limit : float;
      spent : float;
    }  (** A supervised task ran past its per-task budget. *)
  | Cancelled of { task : string; reason : string }
      (** A cooperative cancellation token was triggered. *)
  | Injected_fault of { task : string; attempt : int; kind : string }
      (** A fault deliberately injected by the deterministic chaos mode. *)
  | Worker_crash of { task : string; attempt : int; detail : string }
      (** A task raised an exception the taxonomy does not know; the
          original exception text is preserved in [detail]. *)
  | Pool_closed of { what : string }
      (** The domain pool was shut down while the operation was pending. *)
  | Io_failure of { path : string; what : string }
      (** Filesystem trouble in the journal / lock-file / corpus layer. *)

exception Error of t

val raise_ : t -> 'a
(** [raise_ e] raises [Error e]. *)

val invalid : where:string -> string -> 'a
(** [invalid ~where what] raises [Error (Invalid_input _)]; drop-in
    replacement for [invalid_arg (where ^ ": " ^ what)]. *)

val tag : t -> string
(** Stable kebab-case discriminator, e.g. ["budget-exceeded"]; used as the
    JSON ["error"] field and in rendered error cells. *)

val to_string : t -> string
(** One-line human rendering: ["[tag] details"]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Exact rendering; non-finite floats are encoded as strings so the result
    always survives {!Json.to_string}. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}. *)

val classify : task:string -> attempt:int -> exn -> t
(** Fold an arbitrary exception from a supervised task into the taxonomy:
    [Error e] stays [e]; [Invalid_argument] becomes [Invalid_input];
    anything else becomes [Worker_crash] with the printed exception. *)

val retryable : t -> bool
(** True for transient failures a supervisor may retry ([Injected_fault],
    [Worker_crash], [Io_failure]); false for deterministic ones — retrying
    an [Invalid_input] or [Budget_exceeded] can only fail identically. *)
