type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if not (Float.is_finite x) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%g" x in
    match float_of_string_opt shorter with
    | Some y when Float.equal y x -> shorter
    | Some _ | None -> s

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            go (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) v)
          fields;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing: recursive descent over a string with an index *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when Char.equal c' c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', got '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', got end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let expect_word w =
    String.iter (fun c -> expect c) w
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* encode the BMP code point as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | Some c -> fail (Printf.sprintf "bad escape '\\%c'" c)
          | None -> fail "truncated escape");
          loop ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some x -> Number x
    | None -> fail (Printf.sprintf "bad number literal %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Assoc (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' ->
        expect_word "true";
        Bool true
    | Some 'f' ->
        expect_word "false";
        Bool false
    | Some 'n' ->
        expect_word "null";
        Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Number x -> Some x | _ -> None

let to_int = function
  | Number x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string_value = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
