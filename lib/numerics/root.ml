let check_bracket ~who ~flo ~fhi lo hi =
  if flo *. fhi > 0. then
    Search_error.raise_
      (Search_error.Invalid_input
         {
           where = who;
           what =
             Printf.sprintf "f(%g)=%g and f(%g)=%g have the same sign" lo flo
               hi fhi;
         })

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  check_bracket ~who:"Root.bisect" ~flo ~fhi lo hi;
  if Float.equal flo 0. then lo
  else if Float.equal fhi 0. then hi
  else
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      let width = hi -. lo in
      let scale = Float.max 1. (Float.abs mid) in
      if width <= tol *. scale || iter >= max_iter then mid
      else
        let fmid = f mid in
        if Float.equal fmid 0. then mid
        else if flo *. fmid < 0. then loop lo mid flo (iter + 1)
        else loop mid hi fmid (iter + 1)
    in
    loop lo hi flo 0

(* Classic Brent: maintain (a, b) with f(b) closest to zero, previous iterate
   c, and fall back to bisection whenever interpolation misbehaves. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f lo hi =
  let fa = f lo and fb = f hi in
  check_bracket ~who:"Root.brent" ~flo:fa ~fhi:fb lo hi;
  if Float.equal fa 0. then lo
  else if Float.equal fb 0. then hi
  else begin
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and mflag = ref true in
    let iter = ref 0 in
    let result = ref None in
    while !result = None && !iter < max_iter do
      incr iter;
      let scale = Float.max 1. (Float.abs !b) in
      if Float.equal !fb 0. || Float.abs (!b -. !a) <= tol *. scale then
        result := Some !b
      else begin
        let s =
          if (not (Float.equal !fa !fc)) && not (Float.equal !fb !fc) then
            (* inverse quadratic interpolation *)
            (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
            +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
            +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
          else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
        in
        let lo_lim = ((3. *. !a) +. !b) /. 4. in
        let between =
          if lo_lim < !b then s >= lo_lim && s <= !b
          else s >= !b && s <= lo_lim
        in
        let use_bisect =
          (not between)
          || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
          || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
          || (!mflag && Float.abs (!b -. !c) < tol *. scale)
          || ((not !mflag) && Float.abs (!c -. !d) < tol *. scale)
        in
        let s = if use_bisect then 0.5 *. (!a +. !b) else s in
        mflag := use_bisect;
        let fs = f s in
        d := !c;
        c := !b;
        fc := !fb;
        if !fa *. fs < 0. then begin
          b := s;
          fb := fs
        end
        else begin
          a := s;
          fa := fs
        end;
        if Float.abs !fa < Float.abs !fb then begin
          let t = !a in
          a := !b;
          b := t;
          let t = !fa in
          fa := !fb;
          fb := t
        end
      end
    done;
    match !result with Some x -> x | None -> !b
  end

let expand_bracket ?(grow = 1.6) ?(max_iter = 60) ~f lo hi =
  if lo >= hi then None
  else
    let rec loop lo hi flo fhi iter =
      if flo *. fhi <= 0. then Some (lo, hi)
      else if iter >= max_iter then None
      else
        let width = (hi -. lo) *. grow in
        if Float.abs flo < Float.abs fhi then
          let lo' = lo -. width in
          loop lo' hi (f lo') fhi (iter + 1)
        else
          let hi' = hi +. width in
          loop lo hi' flo (f hi') (iter + 1)
    in
    loop lo hi (f lo) (f hi) 0
