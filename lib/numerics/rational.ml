type t = { num : int; den : int }

exception Overflow
exception Division_by_zero_rational

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Overflow-checked primitives: detect by inverse operation. *)
let add_exn a b =
  let c = a + b in
  if (a >= 0 && b >= 0 && c < 0) || (a < 0 && b < 0 && c >= 0) then
    raise Overflow
  else c

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if not (Int.equal (c / b) a) then raise Overflow else c

let make num den =
  if den = 0 then raise Division_by_zero_rational
  else
    let sign = if den < 0 then -1 else 1 in
    let num = sign * num and den = sign * den in
    let g = gcd num den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

let add a b =
  (* reduce cross terms by gcd of denominators first to delay overflow *)
  let g = gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = add_exn (mul_exn a.num db) (mul_exn b.num da) in
  let d = mul_exn a.den db in
  make n d

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  let n = mul_exn (a.num / g1) (b.num / g2) in
  let d = mul_exn (a.den / g2) (b.den / g1) in
  make n d

let inv a =
  if a.num = 0 then raise Division_by_zero_rational
  else make a.den a.num

let div a b = mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }

let compare a b =
  (* a.num/a.den ? b.num/b.den -- cross-multiply carefully *)
  let lhs = mul_exn a.num b.den and rhs = mul_exn b.num a.den in
  Stdlib.compare lhs rhs

let equal a b = Int.equal a.num b.num && Int.equal a.den b.den
let to_float a = float_of_int a.num /. float_of_int a.den

let of_float_approx ?(max_den = 10_000) x =
  if not (Float.is_finite x) then invalid_arg "Rational.of_float_approx";
  let negative = x < 0. in
  let x = Float.abs x in
  (* Continued-fraction expansion, stopping before the denominator limit. *)
  let rec walk x (p0, q0) (p1, q1) depth =
    if depth > 64 then (p1, q1)
    else
      let a = int_of_float (floor x) in
      let p2 = add_exn (mul_exn a p1) p0 and q2 = add_exn (mul_exn a q1) q0 in
      if q2 > max_den then (p1, q1)
      else
        let frac = x -. float_of_int a in
        if frac < 1e-12 then (p2, q2)
        else walk (1. /. frac) (p1, q1) (p2, q2) (depth + 1)
  in
  let p, q = walk x (0, 1) (1, 0) 0 in
  let q = if q = 0 then 1 else q in
  make (if negative then -p else p) q

let approximations_above ~target ~count =
  if target <= 1. then invalid_arg "Rational.approximations_above";
  (* grow the denominator geometrically, keeping only approximants that
     strictly improve; when the target is itself rational the sequence
     reaches it exactly and stops improving — return what we have *)
  let rec build k acc got guard =
    (* stop before the denominator outruns float precision *)
    if got >= count || guard > 40 then List.rev acc
    else
      let q = int_of_float (ceil (target *. float_of_int k)) in
      let q = Stdlib.max q (k + 1) in
      let r = make q k in
      let improves =
        match acc with [] -> true | prev :: _ -> compare r prev < 0
      in
      if improves then build (k * 2) (r :: acc) (got + 1) (guard + 1)
      else build (k * 2) acc got (guard + 1)
  in
  build 2 [] 0 0

let pp ppf t =
  if t.den = 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

(* Defined last: these shadow the polymorphic Stdlib comparisons. *)
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
