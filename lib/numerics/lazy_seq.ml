(* Memoisation must be domain-safe: the parallel execution layer
   (faulty_search.exec) shares turning-point sequences across domains —
   e.g. one strategy probed at many λ-grid points concurrently — and a
   bare Hashtbl races under concurrent insertion.  Each sequence carries
   a mutex; the user's generator runs OUTSIDE the lock (it must be pure,
   so a duplicated compute on a concurrent miss is harmless and the
   first insertion wins), which also keeps re-entrant generators —
   sequences defined in terms of other sequences — deadlock-free.  The
   [unfold] state walk is inherently sequential, so there the lock is
   held across the walk; its [step] may probe other sequences but must
   not probe its own. *)

type 'a t = {
  get_raw : int -> 'a;
  cache : (int, 'a) Hashtbl.t;
  mutex : Mutex.t;
}

let of_fun f = { get_raw = f; cache = Hashtbl.create 64; mutex = Mutex.create () }

let get t i =
  if i < 1 then invalid_arg "Lazy_seq.get: index must be >= 1"
  else
    match
      Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.cache i)
    with
    | Some v -> v
    | None ->
        let v = t.get_raw i in
        Mutex.protect t.mutex (fun () ->
            match Hashtbl.find_opt t.cache i with
            | Some winner -> winner
            | None ->
                Hashtbl.add t.cache i v;
                v)

let of_list_then prefix tail =
  let arr = Array.of_list prefix in
  let n = Array.length arr in
  of_fun (fun i -> if i <= n then arr.(i - 1) else tail i)

let unfold ~init step =
  (* Memoise the state walk.  Only the state *after* the deepest computed
     element is ever stepped from again, so one slot suffices — the
     produced values are what gets memoised, not the intermediate states
     (trajectories can have millions of legs; retaining every state kept
     the whole walk live for the lifetime of the sequence).  The walk is
     iterative, so filling up to a deep index is constant stack. *)
  let walk_mutex = Mutex.create () in
  let state = ref init in
  let values : (int, 'a) Hashtbl.t = Hashtbl.create 64 in
  let highest = ref 0 in
  let ensure i =
    while !highest < i do
      let j = !highest + 1 in
      let v, s' = step !state in
      Hashtbl.add values j v;
      state := s';
      highest := j
    done
  in
  of_fun (fun i ->
      Mutex.protect walk_mutex (fun () ->
          ensure i;
          Hashtbl.find values i))

let prefix t n = List.init n (fun i -> get t (i + 1))
let map f t = of_fun (fun i -> f (get t i))

let find_first p t ~limit =
  let rec loop i =
    if i > limit then None
    else
      let v = get t i in
      if p v then Some (i, v) else loop (i + 1)
  in
  loop 1

let partial_sums t =
  unfold ~init:(1, Kahan.zero) (fun (i, acc) ->
      let acc = Kahan.add acc (get t i) in
      (Kahan.value acc, (i + 1, acc)))
