type t = { state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let make ~seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  let state = Int64.add t.state golden_gamma in
  (mix state, { state })

let float t =
  let v, t = next_int64 t in
  (* take the top 53 bits *)
  let bits = Int64.shift_right_logical v 11 in
  (Int64.to_float bits *. (1. /. 9007199254740992.), t)

let float_range ~lo ~hi t =
  if lo >= hi then invalid_arg "Prng.float_range: need lo < hi";
  let u, t = float t in
  (lo +. (u *. (hi -. lo)), t)

let bool t =
  let v, t = next_int64 t in
  (Int64.logand v 1L = 1L, t)

let int ~bound t =
  if bound <= 0 then invalid_arg "Prng.int: need bound > 0";
  (* Unbiased rejection sampling on the raw 64-bit stream.  Scaling a
     53-bit float by [bound] (the former implementation) is biased and,
     for bounds above 2^53, leaves whole residue classes unreachable
     (floats near the top of the range are spaced hundreds apart).
     Instead: accept a draw [v] only when it falls below the largest
     multiple of [bound] (so every residue has exactly
     [floor(2^64 / bound)] preimages) and reduce modulo [bound]. *)
  let b = Int64.of_int bound in
  (* 2^64 mod b == (2^64 - b) mod b, and 2^64 - b is [Int64.neg b]
     read unsigned; [limit] = 2^64 - (2^64 mod b), with 0 standing for
     2^64 itself (b a power of two: accept everything). *)
  let r = Int64.unsigned_rem (Int64.neg b) b in
  let limit = Int64.neg r in
  let rec draw t =
    let v, t = next_int64 t in
    if Int64.equal limit 0L || Int64.unsigned_compare v limit < 0 then
      (Int64.to_int (Int64.unsigned_rem v b), t)
    else draw t
  in
  draw t

let split t =
  (* SplitMix64 split: both children get *mixed* states.  Handing the raw
     first output [a] to the left child (the former implementation) made
     the child's state a value that is simultaneously somebody's stream
     output, so parent and child streams could interleave or collide
     under the shared golden gamma. *)
  let a, t = next_int64 t in
  let b, _ = next_int64 t in
  ({ state = mix a }, { state = mix b })
