(** Bracketing one-dimensional root finders.

    Used to invert the paper's bound formulas — e.g. finding the λ at which
    the lower-bound certificate stops refuting (experiment F5), or the ρ
    achieving a prescribed competitive ratio. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds [x] in [[lo, hi]] with [f x = 0], assuming
    [f lo] and [f hi] have opposite (weak) signs.  Stops when the bracket is
    shorter than [tol] (default [1e-12] relative) or after [max_iter]
    (default 200) halvings.

    @raise Search_error.Error ([Invalid_input]) if [f lo *. f hi > 0.] —
      the supplied interval does not bracket a sign change. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation with a bisection
    safeguard.  Same contract as {!bisect}, typically an order of magnitude
    fewer evaluations.

    @raise Search_error.Error ([Invalid_input]) if [f lo *. f hi > 0.]. *)

val expand_bracket :
  ?grow:float -> ?max_iter:int -> f:(float -> float) -> float -> float
  -> (float * float) option
(** [expand_bracket ~f lo hi] grows the interval geometrically (factor
    [grow], default 1.6) until it brackets a sign change of [f], or gives up
    after [max_iter] (default 60) expansions. *)
