(* Structured error taxonomy; see search_error.mli for the contract. *)

type resource = Steps | Seconds

type t =
  | Invalid_input of { where : string; what : string }
  | Regime_violation of { m : int; k : int; f : int; what : string }
  | Non_convergence of { where : string; steps : int; detail : string }
  | Budget_exceeded of {
      task : string;
      resource : resource;
      limit : float;
      spent : float;
    }
  | Cancelled of { task : string; reason : string }
  | Injected_fault of { task : string; attempt : int; kind : string }
  | Worker_crash of { task : string; attempt : int; detail : string }
  | Pool_closed of { what : string }
  | Io_failure of { path : string; what : string }

exception Error of t

let raise_ e = raise (Error e)
let invalid ~where what = raise_ (Invalid_input { where; what })

let resource_name = function Steps -> "steps" | Seconds -> "seconds"

let resource_of_name = function
  | "steps" -> Some Steps
  | "seconds" -> Some Seconds
  | _ -> None

let tag = function
  | Invalid_input _ -> "invalid-input"
  | Regime_violation _ -> "regime-violation"
  | Non_convergence _ -> "non-convergence"
  | Budget_exceeded _ -> "budget-exceeded"
  | Cancelled _ -> "cancelled"
  | Injected_fault _ -> "injected-fault"
  | Worker_crash _ -> "worker-crash"
  | Pool_closed _ -> "pool-closed"
  | Io_failure _ -> "io-failure"

let to_string e =
  let body =
    match e with
    | Invalid_input { where; what } -> Printf.sprintf "%s: %s" where what
    | Regime_violation { m; k; f; what } ->
        Printf.sprintf "(m=%d, k=%d, f=%d): %s" m k f what
    | Non_convergence { where; steps; detail } ->
        Printf.sprintf "%s after %d steps: %s" where steps detail
    | Budget_exceeded { task; resource; limit; spent } ->
        Printf.sprintf "%s: %s limit %g exceeded (spent %g)" task
          (resource_name resource) limit spent
    | Cancelled { task; reason } -> Printf.sprintf "%s: %s" task reason
    | Injected_fault { task; attempt; kind } ->
        Printf.sprintf "%s (attempt %d): %s" task attempt kind
    | Worker_crash { task; attempt; detail } ->
        Printf.sprintf "%s (attempt %d): %s" task attempt detail
    | Pool_closed { what } -> what
    | Io_failure { path; what } -> Printf.sprintf "%s: %s" path what
  in
  Printf.sprintf "[%s] %s" (tag e) body

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* [Json.to_string] rejects non-finite numbers, so encode them as strings;
   journalled errors must always serialise. *)
let num x =
  if Float.is_finite x then Json.Number x else Json.String (Float.to_string x)

let num_back = function
  | Json.Number x -> Some x
  | Json.String s -> float_of_string_opt s
  | _ -> None

let to_json e =
  let fields =
    match e with
    | Invalid_input { where; what } ->
        [ ("where", Json.String where); ("what", Json.String what) ]
    | Regime_violation { m; k; f; what } ->
        [
          ("m", num (float_of_int m));
          ("k", num (float_of_int k));
          ("f", num (float_of_int f));
          ("what", Json.String what);
        ]
    | Non_convergence { where; steps; detail } ->
        [
          ("where", Json.String where);
          ("steps", num (float_of_int steps));
          ("detail", Json.String detail);
        ]
    | Budget_exceeded { task; resource; limit; spent } ->
        [
          ("task", Json.String task);
          ("resource", Json.String (resource_name resource));
          ("limit", num limit);
          ("spent", num spent);
        ]
    | Cancelled { task; reason } ->
        [ ("task", Json.String task); ("reason", Json.String reason) ]
    | Injected_fault { task; attempt; kind } ->
        [
          ("task", Json.String task);
          ("attempt", num (float_of_int attempt));
          ("kind", Json.String kind);
        ]
    | Worker_crash { task; attempt; detail } ->
        [
          ("task", Json.String task);
          ("attempt", num (float_of_int attempt));
          ("detail", Json.String detail);
        ]
    | Pool_closed { what } -> [ ("what", Json.String what) ]
    | Io_failure { path; what } ->
        [ ("path", Json.String path); ("what", Json.String what) ]
  in
  Json.Assoc (("error", Json.String (tag e)) :: fields)

let of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_value in
  let int name =
    Option.bind (Json.member name j) num_back |> Option.map int_of_float
  in
  let flt name = Option.bind (Json.member name j) num_back in
  let ( let* ) o f = Option.bind o f in
  let v =
    match str "error" with
    | Some "invalid-input" ->
        let* where = str "where" in
        let* what = str "what" in
        Some (Invalid_input { where; what })
    | Some "regime-violation" ->
        let* m = int "m" in
        let* k = int "k" in
        let* f = int "f" in
        let* what = str "what" in
        Some (Regime_violation { m; k; f; what })
    | Some "non-convergence" ->
        let* where = str "where" in
        let* steps = int "steps" in
        let* detail = str "detail" in
        Some (Non_convergence { where; steps; detail })
    | Some "budget-exceeded" ->
        let* task = str "task" in
        let* resource = Option.bind (str "resource") resource_of_name in
        let* limit = flt "limit" in
        let* spent = flt "spent" in
        Some (Budget_exceeded { task; resource; limit; spent })
    | Some "cancelled" ->
        let* task = str "task" in
        let* reason = str "reason" in
        Some (Cancelled { task; reason })
    | Some "injected-fault" ->
        let* task = str "task" in
        let* attempt = int "attempt" in
        let* kind = str "kind" in
        Some (Injected_fault { task; attempt; kind })
    | Some "worker-crash" ->
        let* task = str "task" in
        let* attempt = int "attempt" in
        let* detail = str "detail" in
        Some (Worker_crash { task; attempt; detail })
    | Some "pool-closed" ->
        let* what = str "what" in
        Some (Pool_closed { what })
    | Some "io-failure" ->
        let* path = str "path" in
        let* what = str "what" in
        Some (Io_failure { path; what })
    | Some _ | None -> None
  in
  match v with
  | Some e -> Ok e
  | None -> Result.Error ("Search_error.of_json: " ^ Json.to_string j)

let classify ~task ~attempt = function
  | Error e -> e
  | Invalid_argument s ->
      (* preserve the original ["where: what"] shape when present *)
      let where, what =
        match String.index_opt s ':' with
        | Some i ->
            ( String.sub s 0 i,
              String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
        | None -> (task, s)
      in
      Invalid_input { where; what }
  | Failure s -> Worker_crash { task; attempt; detail = "Failure: " ^ s }
  | e -> Worker_crash { task; attempt; detail = Printexc.to_string e }

let retryable = function
  | Injected_fault _ | Worker_crash _ | Io_failure _ -> true
  | Invalid_input _ | Regime_violation _ | Non_convergence _
  | Budget_exceeded _ | Cancelled _ | Pool_closed _ ->
      false
