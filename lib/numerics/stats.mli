(** Running statistics and sup-ratio tracking.

    The competitive ratio is a supremum of [time(x) / |x|] over target
    locations; the simulator feeds candidate targets one by one and this
    module keeps the running supremum together with the witness argmax. *)

type t
(** Immutable running summary. *)

val empty : t
val add : t -> float -> t

val count : t -> int
val mean : t -> float
(** @raise Invalid_argument on an empty summary. *)

val min : t -> float
val max : t -> float
(** @raise Invalid_argument on an empty summary. *)

val stddev : t -> float
(** Population standard deviation (Welford).  0 for fewer than 2 samples. *)

type 'a sup
(** Running supremum of a keyed value, remembering the argmax key. *)

val sup_empty : 'a sup
val sup_add : 'a sup -> key:'a -> value:float -> 'a sup
(** Fold one sample into the running supremum.  [infinity] is a legal
    sample (the adversary's escape verdict); a NaN sample raises
    [Search_error.Error (Non_convergence _)] instead of being silently
    dropped by the [>] comparison.
    @raise Search_error.Error on a NaN [value]. *)

val sup_value : 'a sup -> float
(** Neutral element: negative infinity when empty. *)

val sup_witness : 'a sup -> 'a option
(** The key achieving the supremum, if any sample was added. *)

val nearest_rank : float array -> p:float -> float option
(** Nearest-rank percentile of an array already sorted ascending:
    element of rank [ceil (p/100 * n)] (1-based, clamped), or [None] on
    an empty array — the caller renders that as a null/"nan" cell
    instead of crashing.  Requires [0 <= p <= 100]. *)
