(** Memoised infinite sequences indexed from 1.

    Robot strategies are infinite turning-point sequences [t_1, t_2, ...]
    (Section 2 of the paper).  We represent them as total functions from a
    1-based index, memoised so that repeated probing (simulation, covering
    checks, prefix machinery) costs each element only once.

    Sequences are domain-safe: the cache is mutex-guarded, so one
    sequence may be probed from several domains concurrently (the
    parallel λ-grid and sweep paths of [faulty_search.exec] do).  The
    generator runs outside the lock — it must be pure; two domains
    missing the same index may both run it, and the first insertion
    wins.  Exception: an {!unfold}'s [step] runs under its sequence's
    lock (the state walk is sequential) and must not probe its own
    sequence. *)

type 'a t
(** An infinite sequence [a_1, a_2, ...]. *)

val of_fun : (int -> 'a) -> 'a t
(** [of_fun f] is the sequence [f 1, f 2, ...], each element computed once
    (at most once per concurrently-missing domain).  [f] must be pure.
    Indices [< 1] are invalid. *)

val of_list_then : 'a list -> (int -> 'a) -> 'a t
(** [of_list_then prefix tail] uses the explicit prefix for the first
    [List.length prefix] elements, then [tail i] for later indices ([i] still
    counts from 1 overall). *)

val unfold : init:'s -> ('s -> 'a * 's) -> 'a t
(** [unfold ~init step] generates the sequence whose n-th element is the
    first component of the n-th [step] application.  Memoised: the state walk
    happens once. *)

val get : 'a t -> int -> 'a
(** [get s i] is the i-th element (1-based).
    @raise Invalid_argument on [i < 1]. *)

val prefix : 'a t -> int -> 'a list
(** First [n] elements. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val find_first : ('a -> bool) -> 'a t -> limit:int -> (int * 'a) option
(** Leftmost index [<= limit] whose element satisfies the predicate. *)

val partial_sums : float t -> float t
(** [partial_sums s] has i-th element [s_1 + ... + s_i], computed with
    compensated summation (the loads of the paper's proofs). *)
