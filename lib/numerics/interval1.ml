type bound_kind = Closed | Open
type t = { lo : float; lo_kind : bound_kind; hi : float }

let make lo_kind lo hi =
  (match lo_kind with
  | Closed -> if lo > hi then invalid_arg "Interval1.make: lo > hi"
  | Open -> if lo >= hi then invalid_arg "Interval1.make: lo >= hi (open)");
  { lo; lo_kind; hi }

let closed lo hi = make Closed lo hi
let left_open lo hi = make Open lo hi

let mem x { lo; lo_kind; hi } =
  x <= hi && (match lo_kind with Closed -> x >= lo | Open -> x > lo)

let length { lo; hi; _ } = hi -. lo
let is_empty t = match t.lo_kind with Closed -> false | Open -> t.lo >= t.hi

let intersects a b =
  (* share a point iff each starts before the other ends (kind-aware) *)
  let starts_before_end x b' =
    match x.lo_kind with Closed -> x.lo <= b'.hi | Open -> x.lo < b'.hi
  in
  starts_before_end a b && starts_before_end b a

let subset a b =
  a.hi <= b.hi
  &&
  match (a.lo_kind, b.lo_kind) with
  | Closed, Closed | Open, Open -> a.lo >= b.lo
  | Closed, Open -> a.lo > b.lo
  | Open, Closed -> a.lo >= b.lo

let truncate_left t x =
  if x >= t.hi then None
  else if x < t.lo || (Float.equal x t.lo && t.lo_kind = Open) then Some t
  else Some { lo = x; lo_kind = Open; hi = t.hi }

let compare_by_left a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c
  else
    let kind_rank = function Closed -> 0 | Open -> 1 in
    let c = Int.compare (kind_rank a.lo_kind) (kind_rank b.lo_kind) in
    if c <> 0 then c else Float.compare a.hi b.hi

let pp ppf t =
  let open_br = match t.lo_kind with Closed -> "[" | Open -> "(" in
  Format.fprintf ppf "%s%g, %g]" open_br t.lo t.hi
