type align = Left | Right

type t = {
  title : string option;
  header : (string * align) list;
  mutable rows : string list list; (* reversed *)
}

let create ?title header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let cell_f ?(decimals = 6) x =
  if Float.equal x infinity then "inf"
  else if Float.equal x neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else Printf.sprintf "%.*f" decimals x

let cell_i = string_of_int

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.header in
  (* arrays once: [render_row] is per-row, so [List.nth] here was
     quadratic in the column count per row *)
  let aligns = Array.of_list (List.map snd t.header) in
  let ncols = Array.length aligns in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account headers;
  List.iter account rows;
  let pad align width cell =
    let fill = width - String.length cell in
    if fill <= 0 then cell
    else
      match align with
      | Left -> cell ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ cell
  in
  let render_row row =
    let cells = List.mapi (fun i c -> pad aligns.(i) widths.(i) c) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-|-" dashes ^ "-|"
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
