(* Kernel microbenchmarks: the lazy reference paths vs the compiled
   flat-array paths introduced by the raw-speed pass, plus the chunked
   sweep-grid dispatch.  Hand-rolled timing (median-free, quota-driven
   mean) so the CI job stays cheap and dependency-free; the Bechamel
   suite in main.ml remains the precise instrument.

   Writes BENCH_kernels.json (schema below) and appends one line to
   results/bench_history.jsonl via Metrics.append_history, so the perf
   trajectory of the kernels is tracked across commits alongside the
   experiment timings.

   Schema:
     { "bench": "kernels", "jobs": 1,
       "kernels": [ { "name": "...",
                      "baseline_ns": ..., "candidate_ns": ...,
                      "speedup": ... }, ... ] }

   The benchmark compares steady-state evaluation: both paths are
   warmed first, so the lazy side pays its per-access mutex + hashtable
   probe and the compiled side its array reads — which is exactly the
   trade the adversary's inner loop sees (the prefix is re-probed once
   per candidate target). *)

module FS = Faulty_search

let quota = ref 0.5
let out_path = ref "BENCH_kernels.json"
let history_path = ref (Filename.concat "results" "bench_history.jsonl")
let no_history = ref false

(* Mean ns/run of [f], measured in doubling batches until [quota]
   seconds of measurement have accumulated.  [f] is warmed once before
   timing so memoisation caches are populated. *)
let time_ns ~quota f =
  ignore (Sys.opaque_identity (f ()));
  let total_t = ref 0. and total_runs = ref 0 in
  let batch = ref 1 in
  while !total_t < quota do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to !batch do
      ignore (Sys.opaque_identity (f ()))
    done;
    total_t := !total_t +. (Unix.gettimeofday () -. t0);
    total_runs := !total_runs + !batch;
    if !batch < 1_048_576 then batch := !batch * 2
  done;
  !total_t /. float_of_int !total_runs *. 1e9

type result = { name : string; baseline_ns : float; candidate_ns : float }

let speedup r = r.baseline_ns /. r.candidate_ns

(* --- kernel 1: turning-prefix evaluation ---------------------------- *)

let turning_prefix () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let turns = (FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p)).(0) in
  let depth = 512 in
  let lazy_eval () =
    let acc = ref 0. in
    for i = 1 to depth do
      acc := !acc +. FS.Turning.partial_sum turns i
    done;
    !acc
  in
  let c = FS.Turning.compile ~hint:depth turns in
  let compiled_eval () =
    let acc = ref 0. in
    for i = 1 to depth do
      acc := !acc +. FS.Turning.compiled_partial_sum c i
    done;
    !acc
  in
  (* both views must agree bit for bit before we time them *)
  assert (Float.equal (lazy_eval ()) (compiled_eval ()));
  {
    name = "turning/prefix-sums-512";
    baseline_ns = time_ns ~quota:!quota lazy_eval;
    candidate_ns = time_ns ~quota:!quota compiled_eval;
  }

(* --- kernel 2: the adversary's critical-point scan ------------------ *)

let adversary_scan () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let strat = FS.Mray_exponential.make p in
  let trs =
    Array.map FS.Trajectory.compile (FS.Mray_exponential.itineraries strat)
  in
  let run kernel () = FS.Adversary.worst_case trs ~f:1 ~kernel ~n:50. () in
  let out_lazy = run `Lazy () and out_compiled = run `Compiled () in
  assert (Float.equal out_lazy.FS.Adversary.ratio out_compiled.FS.Adversary.ratio);
  assert (
    FS.World.equal_point out_lazy.FS.Adversary.witness
      out_compiled.FS.Adversary.witness);
  {
    name = "adversary/worst-case-k3-f1-n50";
    baseline_ns = time_ns ~quota:!quota (run `Lazy);
    candidate_ns = time_ns ~quota:!quota (run `Compiled);
  }

(* --- kernel 3: sweep-grid dispatch granularity ---------------------- *)

let grid_batch () =
  let cells = List.init 256 Fun.id in
  let cell _meter i =
    (* a cheap cell: dispatch overhead must be visible next to it *)
    FS.Formulas.a_mray ~m:3 ~k:2 ~f:1 +. float_of_int i
  in
  let run chunk () =
    FS.Pool.with_pool ~jobs:1 @@ fun pool ->
    FS.Supervise.map pool ~chunk
      ~task:(fun i _ -> Printf.sprintf "bench/cell-%d" i)
      ~f:cell cells
  in
  let sum rs =
    List.fold_left
      (fun acc -> function Ok v -> acc +. v | Error _ -> acc)
      0. rs
  in
  assert (Float.equal (sum (run 1 ())) (sum (run 16 ())));
  {
    name = "sweep/grid-dispatch-chunk16";
    baseline_ns = time_ns ~quota:!quota (run 1);
    candidate_ns = time_ns ~quota:!quota (run 16);
  }

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse
    [
      ( "--quota",
        Arg.Set_float quota,
        "SECONDS  measurement budget per timed side (default 0.5)" );
      ( "--out",
        Arg.Set_string out_path,
        "FILE  where to write the JSON report (default BENCH_kernels.json)" );
      ( "--history",
        Arg.Set_string history_path,
        "FILE  JSONL trend history to append to (default \
         results/bench_history.jsonl)" );
      ( "--no-history",
        Arg.Set no_history,
        "  skip the trend-history append (CI uses the artifact instead)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "kernels.exe [--quota S] [--out FILE]";
  if !quota <= 0. then begin
    prerr_endline "kernels.exe: --quota must be positive";
    exit 2
  end;
  let results = [ turning_prefix (); adversary_scan (); grid_batch () ] in
  let json =
    FS.Json.Assoc
      [
        ("bench", FS.Json.String "kernels");
        ("jobs", FS.Json.Number 1.);
        ( "kernels",
          FS.Json.List
            (List.map
               (fun r ->
                 FS.Json.Assoc
                   [
                     ("name", FS.Json.String r.name);
                     ("baseline_ns", FS.Json.Number r.baseline_ns);
                     ("candidate_ns", FS.Json.Number r.candidate_ns);
                     ("speedup", FS.Json.Number (speedup r));
                   ])
               results) );
      ]
  in
  let oc = open_out !out_path in
  output_string oc (FS.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  if not !no_history then begin
    let metrics = FS.Metrics.create ~jobs:1 () in
    List.iter
      (fun r ->
        FS.Metrics.record metrics
          ~experiment:(r.name ^ "/baseline")
          ~seconds:(r.baseline_ns /. 1e9);
        FS.Metrics.record metrics
          ~experiment:(r.name ^ "/candidate")
          ~seconds:(r.candidate_ns /. 1e9))
      results;
    (try Unix.mkdir (Filename.dirname !history_path) 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    FS.Metrics.append_history metrics ~path:!history_path ~run:"kernels"
  end;
  List.iter
    (fun r ->
      Printf.printf "%-32s baseline %10.1f ns   compiled %10.1f ns   %.2fx\n"
        r.name r.baseline_ns r.candidate_ns (speedup r))
    results;
  Printf.printf "(report written to %s)\n" !out_path
