(* Kernel microbenchmarks: the lazy reference paths vs the compiled
   flat-array paths introduced by the raw-speed pass, plus the chunked
   sweep-grid dispatch.  Hand-rolled timing (median-free, quota-driven
   mean) so the CI job stays cheap and dependency-free; the Bechamel
   suite in main.ml remains the precise instrument.

   Writes BENCH_kernels.json (schema below) and appends one line to
   results/bench_history.jsonl via Metrics.append_history, so the perf
   trajectory of the kernels is tracked across commits alongside the
   experiment timings.

   Schema:
     { "bench": "kernels", "jobs": 1,
       "kernels": [ { "name": "...",
                      "baseline_ns": ..., "candidate_ns": ...,
                      "speedup": ... }, ... ],
       "gc": [ { "name": "...", "minor_words_per_op": ... }, ... ] }

   The "gc" section is the dynamic half of the hot-path allocation
   contract: every kernel lint.budget pins at zero allocation sites is
   measured with a Gc.minor_words meter, amortised per inner operation
   (candidate scanned, prefix element, flat leg slot), and the run
   fails if a statically-zero kernel allocates (>= 0.5 minor words per
   op — float-returning kernels legitimately pay the one 2-word ABI
   return box per *call*, which amortises to ~0 per op; a per-op box
   or closure shows up as >= 2).

   The benchmark compares steady-state evaluation: both paths are
   warmed first, so the lazy side pays its per-access mutex + hashtable
   probe and the compiled side its array reads — which is exactly the
   trade the adversary's inner loop sees (the prefix is re-probed once
   per candidate target). *)

module FS = Faulty_search

let quota = ref 0.5
let out_path = ref "BENCH_kernels.json"
let history_path = ref (Filename.concat "results" "bench_history.jsonl")
let no_history = ref false
let budget_path = ref "lint.budget"

(* Mean ns/run of [f], measured in doubling batches until [quota]
   seconds of measurement have accumulated.  [f] is warmed once before
   timing so memoisation caches are populated. *)
let time_ns ~quota f =
  ignore (Sys.opaque_identity (f ()));
  let total_t = ref 0. and total_runs = ref 0 in
  let batch = ref 1 in
  while !total_t < quota do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to !batch do
      ignore (Sys.opaque_identity (f ()))
    done;
    total_t := !total_t +. (Unix.gettimeofday () -. t0);
    total_runs := !total_runs + !batch;
    if !batch < 1_048_576 then batch := !batch * 2
  done;
  !total_t /. float_of_int !total_runs *. 1e9

type result = { name : string; baseline_ns : float; candidate_ns : float }

let speedup r = r.baseline_ns /. r.candidate_ns

(* --- kernel 1: turning-prefix evaluation ---------------------------- *)

let turning_prefix () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let turns = (FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p)).(0) in
  let depth = 512 in
  let lazy_eval () =
    let acc = ref 0. in
    for i = 1 to depth do
      acc := !acc +. FS.Turning.partial_sum turns i
    done;
    !acc
  in
  let c = FS.Turning.compile ~hint:depth turns in
  let compiled_eval () =
    let acc = ref 0. in
    for i = 1 to depth do
      acc := !acc +. FS.Turning.compiled_partial_sum c i
    done;
    !acc
  in
  (* both views must agree bit for bit before we time them *)
  assert (Float.equal (lazy_eval ()) (compiled_eval ()));
  {
    name = "turning/prefix-sums-512";
    baseline_ns = time_ns ~quota:!quota lazy_eval;
    candidate_ns = time_ns ~quota:!quota compiled_eval;
  }

(* --- kernel 2: the adversary's critical-point scan ------------------ *)

let adversary_scan () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let strat = FS.Mray_exponential.make p in
  let trs =
    Array.map FS.Trajectory.compile (FS.Mray_exponential.itineraries strat)
  in
  let run kernel () = FS.Adversary.worst_case trs ~f:1 ~kernel ~n:50. () in
  let out_lazy = run `Lazy () and out_compiled = run `Compiled () in
  assert (Float.equal out_lazy.FS.Adversary.ratio out_compiled.FS.Adversary.ratio);
  assert (
    FS.World.equal_point out_lazy.FS.Adversary.witness
      out_compiled.FS.Adversary.witness);
  {
    name = "adversary/worst-case-k3-f1-n50";
    baseline_ns = time_ns ~quota:!quota (run `Lazy);
    candidate_ns = time_ns ~quota:!quota (run `Compiled);
  }

(* --- kernel 3: sweep-grid dispatch granularity ---------------------- *)

let grid_batch () =
  let cells = List.init 256 Fun.id in
  let cell _meter i =
    (* a cheap cell: dispatch overhead must be visible next to it *)
    FS.Formulas.a_mray ~m:3 ~k:2 ~f:1 +. float_of_int i
  in
  let run chunk () =
    FS.Pool.with_pool ~jobs:1 @@ fun pool ->
    FS.Supervise.map pool ~chunk
      ~task:(fun i _ -> Printf.sprintf "bench/cell-%d" i)
      ~f:cell cells
  in
  let sum rs =
    List.fold_left
      (fun acc -> function Ok v -> acc +. v | Error _ -> acc)
      0. rs
  in
  assert (Float.equal (sum (run 1 ())) (sum (run 16 ())));
  {
    name = "sweep/grid-dispatch-chunk16";
    baseline_ns = time_ns ~quota:!quota (run 1);
    candidate_ns = time_ns ~quota:!quota (run 16);
  }

(* --- Gc cross-check of the lint.budget zero-alloc kernels ----------- *)

type gc_result = { gname : string; words_per_op : float }

(* Minor words per inner operation: warm once, run [runs] repetitions,
   read the minor-words counter around the whole loop (the counter
   call itself allocates its boxed float result — once, outside the
   measured window). *)
let minor_words_per_op ~ops ~runs f =
  ignore (Sys.opaque_identity (f ()));
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to runs do
    ignore (Sys.opaque_identity (f ()))
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int runs /. float_of_int ops

let gc_compiled_scan () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let strat = FS.Mray_exponential.make p in
  let horizon = 256. *. 50. in
  let flats =
    Array.map
      (fun tr -> FS.Trajectory.flatten (FS.Trajectory.compile tr) ~horizon)
      (FS.Mray_exponential.itineraries strat)
  in
  let depths =
    Array.init 2 (fun _ -> Array.init 64 (fun i -> 1. +. (float_of_int i /. 2.)))
  in
  let k = Array.length flats in
  let times = Array.make k infinity in
  let out = [| neg_infinity; 0.; 0. |] in
  let ops = Array.fold_left (fun acc a -> acc + Array.length a) 0 depths in
  {
    gname = "Adversary.compiled_scan";
    words_per_op =
      minor_words_per_op ~ops ~runs:500 (fun () ->
          FS.Adversary.compiled_scan ~flats ~depths ~times ~f:1 ~k ~horizon
            ~out);
  }

let gc_prefix_walk () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let turns = (FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p)).(0) in
  let depth = 512 in
  let c = FS.Turning.compile ~hint:depth turns in
  ignore (FS.Turning.compiled_partial_sum c depth);
  {
    gname = "Turning.compiled_prefix_walk";
    words_per_op =
      minor_words_per_op ~ops:depth ~runs:2000 (fun () ->
          FS.Turning.compiled_prefix_walk c depth);
  }

let gc_flat_first_visit () =
  let p = FS.Params.line ~k:3 ~f:1 in
  let strat = FS.Mray_exponential.make p in
  let horizon = 500. in
  let tr = FS.Trajectory.compile (FS.Mray_exponential.itineraries strat).(0) in
  let fl = FS.Trajectory.flatten tr ~horizon in
  let ops = Array.length fl.FS.Trajectory.flat_starts in
  {
    gname = "Trajectory.flat_first_visit";
    words_per_op =
      minor_words_per_op ~ops ~runs:20000 (fun () ->
          FS.Trajectory.flat_first_visit fl ~ray:0 ~dist:123.4 ~horizon);
  }

(* The static contract drives the dynamic check: every lint.budget
   entry pinned at zero must have a meter here, and must measure ~0.
   A zero-budget kernel without a measurement fails the run — adding a
   kernel to the budget file obliges wiring a meter for it. *)
let gc_check results =
  match Search_analysis.Budget.load !budget_path with
  | Error msg ->
      Printf.eprintf "kernels.exe: %s\n" msg;
      exit 2
  | Ok budget ->
      let failures = ref 0 in
      List.iter
        (fun (name, count, _line) ->
          if count = 0 then
            match List.find_opt (fun g -> String.equal g.gname name) results with
            | None ->
                incr failures;
                Printf.eprintf
                  "kernels.exe: %s is budgeted zero-alloc in %s but has no \
                   Gc meter in bench/kernels.ml\n"
                  name !budget_path
            | Some g ->
                if g.words_per_op >= 0.5 then begin
                  incr failures;
                  Printf.eprintf
                    "kernels.exe: %s is budgeted zero-alloc but allocates \
                     %.2f minor words per op\n"
                    name g.words_per_op
                end)
        (Search_analysis.Budget.entries_located budget);
      !failures = 0

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse
    [
      ( "--quota",
        Arg.Set_float quota,
        "SECONDS  measurement budget per timed side (default 0.5)" );
      ( "--out",
        Arg.Set_string out_path,
        "FILE  where to write the JSON report (default BENCH_kernels.json)" );
      ( "--history",
        Arg.Set_string history_path,
        "FILE  JSONL trend history to append to (default \
         results/bench_history.jsonl)" );
      ( "--no-history",
        Arg.Set no_history,
        "  skip the trend-history append (CI uses the artifact instead)" );
      ( "--budget",
        Arg.Set_string budget_path,
        "FILE  lint.budget to cross-check Gc meters against (default \
         lint.budget)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "kernels.exe [--quota S] [--out FILE]";
  if !quota <= 0. then begin
    prerr_endline "kernels.exe: --quota must be positive";
    exit 2
  end;
  let results = [ turning_prefix (); adversary_scan (); grid_batch () ] in
  let gc_results =
    [ gc_compiled_scan (); gc_prefix_walk (); gc_flat_first_visit () ]
  in
  let json =
    FS.Json.Assoc
      [
        ("bench", FS.Json.String "kernels");
        ("jobs", FS.Json.Number 1.);
        ( "kernels",
          FS.Json.List
            (List.map
               (fun r ->
                 FS.Json.Assoc
                   [
                     ("name", FS.Json.String r.name);
                     ("baseline_ns", FS.Json.Number r.baseline_ns);
                     ("candidate_ns", FS.Json.Number r.candidate_ns);
                     ("speedup", FS.Json.Number (speedup r));
                   ])
               results) );
        ( "gc",
          FS.Json.List
            (List.map
               (fun g ->
                 FS.Json.Assoc
                   [
                     ("name", FS.Json.String g.gname);
                     ("minor_words_per_op", FS.Json.Number g.words_per_op);
                   ])
               gc_results) );
      ]
  in
  let oc = open_out !out_path in
  output_string oc (FS.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc;
  if not !no_history then begin
    let metrics = FS.Metrics.create ~jobs:1 () in
    List.iter
      (fun r ->
        FS.Metrics.record metrics
          ~experiment:(r.name ^ "/baseline")
          ~seconds:(r.baseline_ns /. 1e9);
        FS.Metrics.record metrics
          ~experiment:(r.name ^ "/candidate")
          ~seconds:(r.candidate_ns /. 1e9))
      results;
    (* the trend line abuses the seconds column for minor words/op:
       what matters is that a regression shows as a jump in the series *)
    List.iter
      (fun g ->
        FS.Metrics.record metrics
          ~experiment:("gc/" ^ g.gname)
          ~seconds:g.words_per_op)
      gc_results;
    (try Unix.mkdir (Filename.dirname !history_path) 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    FS.Metrics.append_history metrics ~path:!history_path ~run:"kernels"
  end;
  List.iter
    (fun r ->
      Printf.printf "%-32s baseline %10.1f ns   compiled %10.1f ns   %.2fx\n"
        r.name r.baseline_ns r.candidate_ns (speedup r))
    results;
  List.iter
    (fun g ->
      Printf.printf "%-32s %.3f minor words/op\n" g.gname g.words_per_op)
    gc_results;
  Printf.printf "(report written to %s)\n" !out_path;
  if not (gc_check gc_results) then exit 1
