(* serve-load: latency-measuring load generator for the serve daemon.

   Drives N concurrent connections (closed loop: one outstanding request
   per connection) over a deterministic seeded workload mix — mostly
   bound queries over a small parameter pool (so the shared cache gets
   hits), plus certificates, Monte-Carlo simulations, sweeps and a few
   stats probes.  Reports throughput and nearest-rank p50/p99 latency
   into BENCH_serve.json, and appends a trend line to
   results/bench_history.jsonl.

   Determinism check: the workload is a pure function of --seed, and the
   daemon's responses are pure functions of the requests, so the hex
   digest printed at the end — computed over the terminal response bytes
   of every non-stats request, in global request order — is identical no
   matter how many worker domains the daemon runs (--jobs 1 vs 4), how
   requests interleave, or how often admission control sheds (shed
   requests are retried until served; the retries are counted, the
   eventual response is the same bytes).  Wall-clock readings stay in
   the latency report and never touch the digest. *)

module FS = Faulty_search
module P = Search_serve.Protocol

let usage () =
  prerr_endline
    "usage: serve_load [--socket PATH] [--conns N] [--requests N] [--seed S]\n\
    \                  [--out FILE] [--history FILE|none]";
  exit 2

type opts = {
  mutable socket : string;
  mutable conns : int;
  mutable requests : int;
  mutable seed : int;
  mutable out : string;
  mutable history : string option;
}

let parse_args () =
  let o =
    {
      socket = "/tmp/faulty-search.sock";
      conns = 200;
      requests = 1000;
      seed = 1;
      out = "BENCH_serve.json";
      history = Some (Filename.concat "results" "bench_history.jsonl");
    }
  in
  let rec go = function
    | [] -> o
    | "--socket" :: v :: rest ->
        o.socket <- v;
        go rest
    | "--conns" :: v :: rest ->
        o.conns <- int_of_string v;
        go rest
    | "--requests" :: v :: rest ->
        o.requests <- int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        o.seed <- int_of_string v;
        go rest
    | "--out" :: v :: rest ->
        o.out <- v;
        go rest
    | "--history" :: "none" :: rest ->
        o.history <- None;
        go rest
    | "--history" :: v :: rest ->
        o.history <- Some v;
        go rest
    | _ -> usage ()
  in
  let o = go (List.tl (Array.to_list Sys.argv)) in
  (* --requests 0 is a legal smoke probe: connect, read the server
     stats, emit a report with null percentiles *)
  if o.conns < 1 || o.requests < 0 then usage ();
  o

(* ------------------------------------------------------------------ *)
(* deterministic workload                                              *)

(* ~50% bound / 20% certify / 15% simulate / 10% sweep / 5% stats *)
let gen_request prng =
  let roll, prng = FS.Prng.int ~bound:100 prng in
  if roll < 50 then begin
    let mi, prng = FS.Prng.int ~bound:2 prng in
    let ki, prng = FS.Prng.int ~bound:4 prng in
    let fi, prng = FS.Prng.int ~bound:3 prng in
    let k = 1 + ki in
    (* keep f <= k so most queries are valid instances; the pool is small
       on purpose — repeats are what make the shared cache hit *)
    let f = if fi > k then k else fi in
    (P.Bound { m = 2 + mi; k; f }, prng)
  end
  else if roll < 70 then begin
    let l, prng = FS.Prng.float_range ~lo:4.0 ~hi:6.0 prng in
    (P.Certify { m = 2; k = 3; f = 1; n = 200.; lambda = l }, prng)
  end
  else if roll < 85 then begin
    let b, prng = FS.Prng.float_range ~lo:2.0 ~hi:5.0 prng in
    let xi, prng = FS.Prng.int ~bound:900 prng in
    let s, prng = FS.Prng.int ~bound:1000000 prng in
    ( P.Simulate
        { beta = b; x = float_of_int (100 + xi); samples = 64; seed = s },
      prng )
  end
  else if roll < 95 then (P.Sweep { m = 2; k = 3; f = 1; n = 100.; samples = 5 }, prng)
  else (P.Stats, prng)

let is_stats = function
  | P.Stats -> true
  | P.Bound _ | P.Certify _ | P.Sweep _ | P.Simulate _ -> false

(* ------------------------------------------------------------------ *)
(* connection driver                                                   *)

type conn = {
  fd : Unix.file_descr;
  decoder : P.Frame.Decoder.t;
  out : Buffer.t;
  mutable sent : int;
  mutable current : int option;  (** outstanding global request index *)
  mutable pending : int list;  (** assigned indices still to issue *)
  mutable first_send : float;  (** of the current request, first attempt *)
}

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("serve_load: " ^ s); exit 1) fmt

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      fail "cannot connect to %s: %s" path (Unix.error_message err));
  Unix.set_nonblock fd;
  {
    fd;
    decoder = P.Frame.Decoder.create ();
    out = Buffer.create 256;
    sent = 0;
    current = None;
    pending = [];
    first_send = 0.;
  }

let enqueue_request requests c i =
  Buffer.add_string c.out (P.Frame.encode (P.encode_request ~id:i requests.(i)))

let flush_writes c =
  let pending = Buffer.length c.out - c.sent in
  if pending > 0 then
    match Unix.write_substring c.fd (Buffer.contents c.out) c.sent pending with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (err, _, _) ->
        fail "write: %s" (Unix.error_message err)
    | n ->
        c.sent <- c.sent + n;
        if c.sent >= Buffer.length c.out then begin
          Buffer.clear c.out;
          c.sent <- 0
        end

let () =
  let o = parse_args () in
  (* pre-generate the whole schedule so it is a pure function of --seed *)
  let requests = Array.make o.requests P.Stats in
  let prng = ref (FS.Prng.make ~seed:o.seed) in
  for i = 0 to o.requests - 1 do
    let req, p = gen_request !prng in
    requests.(i) <- req;
    prng := p
  done;
  let responses = Array.make o.requests "" in
  let latencies = Array.make o.requests 0. in
  let retries = ref 0 in
  let completed = ref 0 in
  let conns = Array.init (min o.conns o.requests) (fun _ -> connect o.socket) in
  (* request i belongs to connection (i mod conns), issued in order *)
  for i = o.requests - 1 downto 0 do
    let c = conns.(i mod Array.length conns) in
    c.pending <- i :: c.pending
  done;
  let issue_next c =
    match c.pending with
    | [] -> ()
    | i :: rest ->
        c.pending <- rest;
        c.current <- Some i;
        c.first_send <- Unix.gettimeofday ();
        enqueue_request requests c i
  in
  Array.iter issue_next conns;
  let handle_response c (id, resp) =
    match c.current with
    | None -> fail "unexpected response id=%d on idle connection" id
    | Some i when id <> i -> fail "response id %d does not match outstanding %d" id i
    | Some i -> (
        match resp with
        | P.Overloaded _ ->
            (* admission control pushed back: retry the same request *)
            incr retries;
            enqueue_request requests c i
        | P.Bound_ok _ | P.Certify_ok _ | P.Sweep_ok _ | P.Simulate_ok _
        | P.Stats_ok _ | P.Failed _ ->
            latencies.(i) <- Unix.gettimeofday () -. c.first_send;
            responses.(i) <-
              FS.Json.to_string (P.response_to_json resp);
            incr completed;
            c.current <- None;
            issue_next c)
  in
  let drain_frames c =
    let rec go () =
      match P.Frame.Decoder.next c.decoder with
      | `Awaiting -> ()
      | `Corrupt msg -> fail "corrupt stream from server: %s" msg
      | `Frame payload ->
          (match P.decode_response payload with
          | Ok r -> handle_response c r
          | Error msg -> fail "undecodable response: %s" msg);
          go ()
    in
    go ()
  in
  let scratch = Bytes.create 65536 in
  let read_conn c =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (err, _, _) ->
        fail "read: %s" (Unix.error_message err)
    | 0 -> fail "server closed the connection mid-run"
    | n ->
        P.Frame.Decoder.feed c.decoder scratch ~off:0 ~len:n;
        drain_frames c
  in
  let t0 = Unix.gettimeofday () in
  while !completed < o.requests do
    let live = Array.to_list conns in
    let rds =
      List.filter_map
        (fun c -> if Option.is_some c.current then Some c.fd else None)
        live
    in
    let wrs =
      List.filter_map
        (fun c -> if Buffer.length c.out - c.sent > 0 then Some c.fd else None)
        live
    in
    match Unix.select rds wrs [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
        let by_fd = Hashtbl.create (Array.length conns) in
        Array.iter (fun c -> Hashtbl.replace by_fd c.fd c) conns;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt by_fd fd with
            | Some c -> flush_writes c
            | None -> ())
          writable;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt by_fd fd with
            | Some c -> read_conn c
            | None -> ())
          readable
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (* final server-side counters over a fresh connection *)
  let stats_json =
    Search_serve.Client.with_client ~socket_path:o.socket @@ fun cl ->
    let _, resp = Search_serve.Client.call cl ~id:o.requests P.Stats in
    P.response_to_json resp
  in
  (* digest over terminal response bytes of the deterministic requests,
     in schedule order — stats probes are observational and excluded *)
  let digest =
    let b = Buffer.create 4096 in
    Array.iteri
      (fun i s ->
        if not (is_stats requests.(i)) then begin
          Buffer.add_string b s;
          Buffer.add_char b '\n'
        end)
      responses;
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let sorted = Array.copy latencies in
  Array.sort Float.compare sorted;
  (* [None] on an empty sample (a --requests 0 probe): the report gets
     JSON null and the console prints "n/a" instead of crashing on
     [sorted.(-1)] *)
  let p50 = FS.Stats.nearest_rank sorted ~p:50.
  and p99 = FS.Stats.nearest_rank sorted ~p:99. in
  let throughput = float_of_int o.requests /. wall in
  let percentile_json = function
    | None -> FS.Json.Null
    | Some v -> FS.Json.Number (v *. 1000.)
  in
  let percentile_cell = function
    | None -> "n/a"
    | Some v -> Printf.sprintf "%.2fms" (v *. 1000.)
  in
  let report =
    FS.Json.Assoc
      [
        ("bench", FS.Json.String "serve-load");
        ("socket", FS.Json.String o.socket);
        ("connections", FS.Json.Number (float_of_int (Array.length conns)));
        ("requests", FS.Json.Number (float_of_int o.requests));
        ("seed", FS.Json.Number (float_of_int o.seed));
        ("wall_seconds", FS.Json.Number wall);
        ("throughput_rps", FS.Json.Number throughput);
        ("p50_ms", percentile_json p50);
        ("p99_ms", percentile_json p99);
        ("overload_retries", FS.Json.Number (float_of_int !retries));
        ("response_digest", FS.Json.String digest);
        ("server_stats", stats_json);
      ]
  in
  let oc = open_out o.out in
  output_string oc (FS.Json.to_string ~pretty:true report);
  output_char oc '\n';
  close_out oc;
  (match o.history with
  | None -> ()
  | Some path ->
      let m = FS.Metrics.create ~jobs:(max 1 (Array.length conns)) () in
      FS.Metrics.record m ~experiment:"serve/wall" ~seconds:wall;
      (* percentile trend points only exist when there were requests *)
      Option.iter
        (fun v -> FS.Metrics.record m ~experiment:"serve/p50" ~seconds:v)
        p50;
      Option.iter
        (fun v -> FS.Metrics.record m ~experiment:"serve/p99" ~seconds:v)
        p99;
      FS.Metrics.append_history m ~path ~run:"serve-load");
  Printf.printf
    "serve-load: %d requests over %d connections in %.2fs (%.0f req/s)\n"
    o.requests (Array.length conns) wall throughput;
  Printf.printf "serve-load: p50 %s  p99 %s  retries %d\n"
    (percentile_cell p50) (percentile_cell p99) !retries;
  Printf.printf "serve-load: digest %s\n" digest;
  Printf.printf "serve-load: report written to %s\n" o.out
