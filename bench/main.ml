(* Experiment harness: regenerates every quantitative claim of the paper
   (see EXPERIMENTS.md for the per-experiment index), then runs Bechamel
   micro-benchmarks of the core primitives.

   The paper is pure theory and has no numbered tables or figures; the
   experiment identifiers T1-T7 (tables) and F1-F5 (figure-like series)
   are defined in DESIGN.md and each corresponds to one quantitative
   claim of the paper.

   The grid rows, λ-sweeps and stochastic trials are embarrassingly
   parallel, so they run on a faulty_search.exec domain pool ([--jobs N],
   default the recommended domain count).  Determinism contract: rows are
   re-assembled in input order and stochastic shards carry split PRNGs,
   so the tables are byte-identical at every job count; only the
   wall-clock numbers (the MICRO section and results/bench_timings.json)
   vary. *)

module FS = Faulty_search
module T = FS.Table
module Pool = FS.Pool
module Par = FS.Par

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

(* ------------------------------------------------------------------ *)
(* Graceful degradation: each grid cell of the row-producing
   experiments runs under the supervised runtime.  A failing cell
   renders as a marked "!ERR <tag>" row instead of aborting the whole
   suite, the error goes to stderr, and the process exits 3 at the end
   if any cell failed (see bin/search_cli.ml for the exit-code
   contract).  [--chaos-seed]/[--retries] drive the fault-injection
   drill: with retries > Chaos.max_faults the output must be
   byte-identical to a fault-free run. *)

let failed_cells = ref 0
let chaos_seed = ref None
let retries = ref 0

let bench_spec () =
  let chaos =
    match !chaos_seed with
    | None -> FS.Chaos.disabled
    | Some seed -> FS.Chaos.make ~seed ()
  in
  let retry =
    if !retries <= 0 then FS.Retry.none
    else FS.Retry.immediate ~attempts:(!retries + 1)
  in
  { FS.Supervise.default with chaos; retry }

let err_row ~id ~width err =
  incr failed_cells;
  Printf.eprintf "bench: %s cell failed: %s\n%!" id
    (FS.Search_error.to_string err);
  ("!ERR " ^ FS.Search_error.tag err) :: List.init (width - 1) (fun _ -> "-")

(* supervised counterpart of [Par.parallel_map] for row-valued cells *)
let guarded pool ~id ~width ~f items =
  FS.Supervise.map pool ~spec:(bench_spec ())
    ~task:(fun i _ -> Printf.sprintf "%s#%d" id i)
    ~f:(fun _meter x -> f x)
    items
  |> List.map (function
       | Ok row -> row
       | Error err -> err_row ~id ~width err)

(* variant for cells that may legitimately produce no row (F2) *)
let guarded_opt pool ~id ~width ~f items =
  FS.Supervise.map pool ~spec:(bench_spec ())
    ~task:(fun i _ -> Printf.sprintf "%s#%d" id i)
    ~f:(fun _meter x -> f x)
    items
  |> List.map (function
       | Ok row -> row
       | Error err -> Some (err_row ~id ~width err))

(* closed-form bounds show up in several tables; memoise them in a
   domain-safe cache keyed by the instance *)
let bound_cache : (int * int * int, float) FS.Memo.t = FS.Memo.create ()

let a_mray ~m ~k ~f =
  FS.Memo.find_or_add bound_cache (m, k, f) (fun () ->
      FS.Formulas.a_mray ~m ~k ~f)

let line_cache : (int * int, float) FS.Memo.t = FS.Memo.create ()

let a_line ~k ~f =
  FS.Memo.find_or_add line_cache (k, f) (fun () -> FS.Formulas.a_line ~k ~f)

let simulate_ratio ?alpha ~m ~k ~f ~n () =
  let problem = FS.Problem.make ~m ~k ~f ~horizon:n () in
  let solution = FS.Solve.solve ?alpha problem in
  let trajectories = FS.Solve.trajectories solution in
  (FS.Adversary.worst_case trajectories ~f ~n ()).FS.Adversary.ratio

(* ------------------------------------------------------------------ *)
(* T1 — Theorem 1: A(k, f) on the line.                               *)

let t1_line_ratio pool =
  section "T1" "Theorem 1: tight competitive ratio A(k, f) on the line";
  let tbl =
    T.create
      [
        ("k", T.Right); ("f", T.Right); ("s", T.Right); ("rho", T.Right);
        ("A(k,f) formula", T.Right); ("simulated", T.Right);
        ("exact sup", T.Right); ("covering@A", T.Left);
        ("refuted@0.99A", T.Left);
      ]
  in
  let n = 2000. in
  guarded pool ~id:"T1" ~width:9
    ~f:(fun (k, f) ->
      let p = FS.Params.line ~k ~f in
      let bound = a_line ~k ~f in
      let simulated = simulate_ratio ~m:2 ~k ~f ~n () in
      let exact =
        let problem = FS.Problem.make ~m:2 ~k ~f ~horizon:n () in
        let trs = FS.Solve.trajectories (FS.Solve.solve problem) in
        (FS.Exact_adversary.worst_case trs ~f ~n ()).FS.Exact_adversary.sup
      in
      let strat = FS.Mray_exponential.make p in
      let turns = FS.Orc_cover.of_mray_group strat in
      let s = FS.Params.s p in
      let covering =
        match
          FS.Symmetric_cover.check turns ~demand:s ~lambda:(bound +. 1e-6) ~n
        with
        | FS.Sweep.Covered -> "yes"
        | FS.Sweep.Gap _ -> "NO"
      in
      let refuted =
        match
          FS.Certificate.check_line ~turns ~f ~lambda:(0.99 *. bound) ~n ()
        with
        | FS.Certificate.Refuted_gap _ | FS.Certificate.Refuted_potential _ ->
            "yes"
        | FS.Certificate.Not_refuted _ | FS.Certificate.Inconclusive _ -> "NO"
      in
      [
        T.cell_i k; T.cell_i f; T.cell_i s;
        T.cell_f ~decimals:4 (FS.Params.rho p);
        T.cell_f ~decimals:6 bound; T.cell_f ~decimals:6 simulated;
        T.cell_f ~decimals:6 exact; covering; refuted;
      ])
    [ (1, 0); (2, 1); (3, 1); (3, 2); (4, 2); (5, 2); (4, 3); (5, 3); (6, 3); (7, 4) ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  print_endline
    "shape check: simulated <= formula everywhere, equality approached;\n\
     covering holds exactly at the bound, refutation fires 1% below."

(* ------------------------------------------------------------------ *)
(* T2 — Byzantine transfer: improvements over ISAAC'16.                *)

let t2_byzantine () =
  section "T2" "Byzantine lower bounds via the crash transfer (Section 1)";
  let tbl =
    T.create
      [
        ("k", T.Right); ("f", T.Right); ("ISAAC'16 bound", T.Right);
        ("crash transfer B >=", T.Right); ("improvement", T.Right);
      ]
  in
  List.iter
    (fun (p : FS.Byzantine.prior) ->
      let nb = FS.Byzantine.lower_bound ~k:p.FS.Byzantine.k ~f:p.FS.Byzantine.f in
      let prior =
        match p.FS.Byzantine.isaac16_bound with
        | None -> "(none quoted)"
        | Some b -> T.cell_f ~decimals:2 b
      in
      let improvement =
        match FS.Byzantine.improvement p with
        | None -> "-"
        | Some d -> T.cell_f ~decimals:4 d
      in
      T.add_row tbl
        [
          T.cell_i p.FS.Byzantine.k; T.cell_i p.FS.Byzantine.f; prior;
          T.cell_f ~decimals:6 nb; improvement;
        ])
    FS.Byzantine.isaac16_priors;
  T.print tbl;
  Printf.printf "B(3,1) closed form: (8/3) 4^(1/3) + 1 = %.6f\n"
    FS.Byzantine.b31_exact

(* ------------------------------------------------------------------ *)
(* F1 — the lambda(rho) curve.                                        *)

let f1_rho_curve () =
  section "F1" "lambda as a function of rho = m(f+1)/k (eq. 1 / eq. 9)";
  let tbl = T.create [ ("rho", T.Right); ("lambda", T.Right) ] in
  let samples = 16 in
  for i = 0 to samples do
    let rho = 1. +. (3. *. float_of_int i /. float_of_int samples) in
    T.add_row tbl
      [ T.cell_f ~decimals:4 rho; T.cell_f ~decimals:6 (FS.Asymptotics.lambda_of_rho rho) ]
  done;
  T.print tbl;
  Printf.printf
    "endpoints: lambda(1+) = %.1f (robots match the demand), lambda(2) = %.1f \
     (classic cow path)\n"
    (FS.Asymptotics.lambda_of_rho 1.)
    (FS.Asymptotics.lambda_of_rho 2.)

(* ------------------------------------------------------------------ *)
(* T3 — Theorem 6: A(m, k, f) on m rays.                              *)

let t3_mray_ratio pool =
  section "T3" "Theorem 6: A(m, k, f) on m rays";
  let tbl =
    T.create
      [
        ("m", T.Right); ("k", T.Right); ("f", T.Right); ("q", T.Right);
        ("formula", T.Right); ("simulated", T.Right); ("ORC q-fold@A", T.Left);
        ("integer theorem", T.Left);
      ]
  in
  let n = 500. in
  guarded pool ~id:"T3" ~width:8
    ~f:(fun (m, k, f) ->
      let p = FS.Params.make ~m ~k ~f in
      let bound = a_mray ~m ~k ~f in
      let simulated = simulate_ratio ~m ~k ~f ~n () in
      let strat = FS.Mray_exponential.make p in
      let turns = FS.Orc_cover.of_mray_group strat in
      let q = FS.Params.q p in
      let covering =
        match FS.Orc_cover.check turns ~demand:q ~lambda:(bound +. 1e-6) ~n with
        | FS.Sweep.Covered -> "yes"
        | FS.Sweep.Gap _ -> "NO"
      in
      (* the horizon-free residue check of the assignment's (f+1)-fold
         covering claim, in exact integer arithmetic *)
      let theorem =
        if FS.Mray_exponential.coverage_theorem_holds strat then "exact (f+1)-fold"
        else "VIOLATED"
      in
      [
        T.cell_i m; T.cell_i k; T.cell_i f; T.cell_i q;
        T.cell_f ~decimals:6 bound; T.cell_f ~decimals:6 simulated; covering;
        theorem;
      ])
    [
      (3, 1, 0); (3, 2, 0); (3, 2, 1); (3, 4, 1); (4, 3, 0); (4, 3, 1);
      (4, 2, 0); (5, 4, 0); (5, 3, 1); (6, 5, 0);
    ]
  |> List.iter (T.add_row tbl);
  T.print tbl

(* ------------------------------------------------------------------ *)
(* T4 — f = 0: the resolved open question on parallel ray search.     *)

let t4_parallel_rays pool =
  section "T4"
    "f = 0: optimal parallel search on m rays (open since Baeza-Yates et \
     al.; cyclic-only bound by Bernstein et al.)";
  let tbl =
    T.create
      ([ ("m \\ k", T.Right) ]
      @ List.map (fun k -> (Printf.sprintf "k=%d" k, T.Right)) [ 1; 2; 3; 4; 5 ])
  in
  List.iter
    (fun m ->
      let row =
        Printf.sprintf "%d" m
        :: List.map
             (fun k ->
               if k >= m then "1"
               else T.cell_f ~decimals:4 (a_mray ~m ~k ~f:0))
             [ 1; 2; 3; 4; 5 ]
      in
      T.add_row tbl row)
    [ 2; 3; 4; 5; 6; 7; 8 ];
  T.print tbl;
  (* the cyclic strategy attains the bound: Theorem 6 proves no strategy
     class restriction was needed *)
  let tbl2 =
    T.create
      [
        ("m", T.Right); ("k", T.Right); ("formula", T.Right);
        ("cyclic simulated", T.Right);
      ]
  in
  guarded pool ~id:"T4" ~width:4
    ~f:(fun (m, k) ->
      let trs =
        Array.map FS.Trajectory.compile (FS.Cyclic.itineraries ~m ~k ())
      in
      let out = FS.Adversary.worst_case trs ~f:0 ~n:400. () in
      [
        T.cell_i m; T.cell_i k;
        T.cell_f ~decimals:6 (a_mray ~m ~k ~f:0);
        T.cell_f ~decimals:6 out.FS.Adversary.ratio;
      ])
    [ (3, 2); (4, 2); (4, 3); (5, 3); (6, 4) ]
  |> List.iter (T.add_row tbl2);
  print_endline "";
  T.print tbl2

(* ------------------------------------------------------------------ *)
(* F2 — ratio vs alpha, minimum at alpha*.                            *)

let f2_alpha_sweep pool =
  section "F2" "exponential strategy: ratio vs base alpha (appendix optimum)";
  List.iter
    (fun (m, k, f) ->
      let q = m * (f + 1) in
      let a_star = FS.Formulas.alpha_star ~q ~k in
      Printf.printf "(m=%d, k=%d, f=%d): alpha* = %.6f, lambda0 = %.6f\n" m k f
        a_star (FS.Formulas.lambda0 ~q ~k);
      let tbl =
        T.create
          [
            ("alpha", T.Right); ("predicted", T.Right); ("simulated", T.Right);
          ]
      in
      guarded_opt pool
        ~id:(Printf.sprintf "F2(%d,%d,%d)" m k f)
        ~width:3
        ~f:(fun i ->
          let alpha = a_star *. (0.75 +. (0.5 *. float_of_int i /. 8.)) in
          if alpha > 1.01 then
            let predicted = FS.Formulas.exponential_ratio ~q ~k ~alpha in
            let simulated = simulate_ratio ~alpha ~m ~k ~f ~n:400. () in
            Some
              [
                T.cell_f ~decimals:4 alpha; T.cell_f ~decimals:4 predicted;
                T.cell_f ~decimals:4 simulated;
              ]
          else None)
        (List.init 9 Fun.id)
      |> List.iter (Option.iter (T.add_row tbl));
      T.print tbl;
      (* numeric minimisation of the simulated ratio recovers alpha* *)
      let argmin, _ =
        Search_numerics.Minimize.grid_then_golden ~samples:24 ~tol:1e-4
          ~f:(fun alpha ->
            if alpha <= 1.01 then infinity
            else FS.Formulas.exponential_ratio ~q ~k ~alpha)
          (Float.max 1.02 (a_star *. 0.6))
          (a_star *. 1.6)
      in
      Printf.printf "numeric argmin of the predicted ratio: %.6f (alpha* = %.6f)\n\n"
        argmin a_star)
    [ (2, 3, 1); (3, 2, 0) ]

(* ------------------------------------------------------------------ *)
(* F3 — potential-function growth.                                    *)

let f3_potential_growth () =
  section "F3"
    "potential function along the assignment (eqs. 7/8: growth below the \
     bound, flat at it)";
  (* (a) the optimal (3,1) strategy at exactly lambda0: delta = 1, the
     potential stays below its ceiling *)
  let p = FS.Params.line ~k:3 ~f:1 in
  let lam0 = FS.Formulas.of_params p in
  let mu0 = (lam0 -. 1.) /. 2. in
  let turns = FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p) in
  (match
     FS.Assigned.build FS.Assigned.Line_symmetric ~mu:mu0 ~demand:1 ~turns
       ~up_to:300. ()
   with
  | FS.Assigned.Complete ivs ->
      let tr =
        FS.Potential.analyze FS.Assigned.Line_symmetric ~k:3 ~demand:1 ~mu:mu0
          ivs
      in
      Printf.printf
        "(k=3, f=1) at lambda0 = %.4f: delta = %.6f, %d steps, max ln f = \
         %.4f <= ceiling %.4f (%s)\n"
        lam0 tr.FS.Potential.delta
        (List.length tr.FS.Potential.steps)
        tr.FS.Potential.max_log_potential tr.FS.Potential.log_ceiling
        (if tr.FS.Potential.exceeded then "EXCEEDED" else "bounded")
  | FS.Assigned.Stuck { frontier; _ } ->
      Printf.printf "assignment stuck at %g (unexpected)\n" frontier);
  (* (b) the best finite-horizon single robot at lambda = 8 < 9: turns are
     chosen greedily maximal (t_i = mu t_{i-1} - sum_{<i}, the largest next
     turn keeping the cover contiguous); below the bound this recursion
     dies in finitely many steps — the executable content of Theorem 3.
     Every potential step multiplies f by >= delta > 1; print the trace. *)
  let lambda = 8. in
  let mu = (lambda -. 1.) /. 2. in
  let greedy = FS.Frontier.line_single ~lambda in
  let greedy_pad = greedy.FS.Frontier.turns in
  let last_turn = greedy.FS.Frontier.horizon in
  let padded =
    FS.Turning.of_list_then greedy_pad (fun i ->
        last_turn *. (2. ** float_of_int (i - List.length greedy_pad)))
  in
  let died_at =
    FS.Symmetric_cover.max_covered [| padded |] ~demand:1 ~lambda ~n:1e6
  in
  Printf.printf
    "\nsingle robot, lambda = %.1f < 9 (mu = %.2f): greedy-maximal turns die \
     at x = %.4f after %d turns\n"
    lambda mu died_at (List.length greedy_pad);
  (match
     FS.Assigned.build FS.Assigned.Line_symmetric ~mu ~demand:1
       ~turns:[| padded |]
       ~up_to:(died_at *. 0.999)
       ()
   with
  | FS.Assigned.Complete ivs ->
      let tr =
        FS.Potential.analyze FS.Assigned.Line_symmetric ~k:1 ~demand:1 ~mu ivs
      in
      let tbl =
        T.create
          [
            ("step", T.Right); ("frontier", T.Right); ("turn", T.Right);
            ("ln f", T.Right); ("ratio", T.Right);
          ]
      in
      List.iter
        (fun (st : FS.Potential.step) ->
          T.add_row tbl
            [
              T.cell_i st.FS.Potential.index;
              T.cell_f ~decimals:4 st.FS.Potential.frontier;
              T.cell_f ~decimals:4 st.FS.Potential.interval.FS.Assigned.turn;
              (match st.FS.Potential.log_potential with
              | Some v -> T.cell_f ~decimals:4 v
              | None -> "-");
              (match st.FS.Potential.step_ratio with
              | Some v -> T.cell_f ~decimals:4 v
              | None -> "-");
            ])
        tr.FS.Potential.steps;
      T.print tbl;
      Printf.printf
        "delta = %.4f: every ratio >= delta; ceiling ln f <= %.4f caps the \
         number of steps, hence the coverable horizon\n"
        tr.FS.Potential.delta tr.FS.Potential.log_ceiling
  | FS.Assigned.Stuck { frontier; _ } ->
      Printf.printf "assignment stuck at %g (unexpected)\n" frontier);
  (* (c) the theoretical horizon bound below lambda0 *)
  let tbl =
    T.create
      [
        ("lambda", T.Right); ("ln N_max (theory)", T.Right);
        ("log10 N_max", T.Right);
      ]
  in
  List.iter
    (fun lambda ->
      let lhb =
        FS.Certificate.log_horizon_bound FS.Assigned.Line_symmetric ~k:1
          ~demand:1 ~lambda ()
      in
      T.add_row tbl
        [
          T.cell_f ~decimals:2 lambda;
          (if Float.equal lhb infinity then "inf"
           else T.cell_f ~decimals:2 lhb);
          (if Float.equal lhb infinity then "inf"
           else T.cell_f ~decimals:2 (lhb /. log 10.));
        ])
    [ 7.0; 8.0; 8.5; 8.9; 8.99; 9.0; 9.1 ];
  print_endline "";
  T.print tbl

(* ------------------------------------------------------------------ *)
(* T5 — the fractional relaxation C(eta).                             *)

let t5_fractional pool =
  section "T5" "fractional one-ray retrieval: C(eta) via rational approximation (eq. 11)";
  Par.parallel_map pool
    ~f:(fun eta ->
      let limit = FS.Fractional.c_eta eta in
      let approximations = FS.Fractional.upper_approximations ~eta ~count:7 in
      let lower = FS.Fractional.lower_bound_eps ~eta ~eps:1e-3 in
      (eta, limit, approximations, lower))
    [ 1.5; 2.0; Float.exp 1.; 3.7 ]
  |> List.iter (fun (eta, limit, approximations, lower) ->
         Printf.printf "eta = %.6f: C(eta) = %.6f\n" eta limit;
         let tbl =
           T.create
             [
               ("q_i/k_i", T.Left); ("value", T.Right);
               ("lambda0(q_i,k_i)", T.Right); ("excess over C(eta)", T.Right);
             ]
         in
         List.iter
           (fun (r, v) ->
             T.add_row tbl
               [
                 Format.asprintf "%a" FS.Rational.pp r;
                 T.cell_f ~decimals:6 (FS.Rational.to_float r);
                 T.cell_f ~decimals:6 v;
                 T.cell_f ~decimals:6 (v -. limit);
               ])
           approximations;
         T.print tbl;
         Printf.printf "lower bound at eps=1e-3: %.6f (deficit %.6f)\n\n" lower
           (limit -. lower))

(* ------------------------------------------------------------------ *)
(* T6 — phase diagram of the regimes.                                 *)

let t6_phase () =
  section "T6" "regimes: unsolvable (x), ratio-one (1), searching (ratio shown)";
  List.iter
    (fun m ->
      Printf.printf "m = %d:\n" m;
      let tbl =
        T.create
          ([ ("k \\ f", T.Right) ]
          @ List.map (fun f -> (Printf.sprintf "f=%d" f, T.Right)) [ 0; 1; 2; 3 ])
      in
      for k = 1 to 8 do
        let row =
          string_of_int k
          :: List.map
               (fun f ->
                 if f > k then "-"
                 else
                   match FS.Params.regime (FS.Params.make ~m ~k ~f) with
                   | FS.Params.Unsolvable -> "x"
                   | FS.Params.Ratio_one -> "1"
                   | FS.Params.Searching ->
                       T.cell_f ~decimals:2 (a_mray ~m ~k ~f))
               [ 0; 1; 2; 3 ]
        in
        T.add_row tbl row
      done;
      T.print tbl;
      print_endline "")
    [ 2; 3 ]

(* ------------------------------------------------------------------ *)
(* T7 — classical baselines as special cases.                         *)

let t7_classics pool =
  section "T7" "classical anchors: single-robot search and baseline comparisons";
  let tbl =
    T.create
      [
        ("m", T.Right); ("formula 1+2m^m/(m-1)^(m-1)", T.Right);
        ("simulated", T.Right);
      ]
  in
  guarded pool ~id:"T7" ~width:3
    ~f:(fun m ->
      let tr = [| FS.Trajectory.compile (FS.Cyclic.single_robot ~m ()) |] in
      let out = FS.Adversary.worst_case tr ~f:0 ~n:400. () in
      [
        T.cell_i m;
        T.cell_f ~decimals:5 (FS.Formulas.single_robot_mray ~m);
        T.cell_f ~decimals:5 out.FS.Adversary.ratio;
      ])
    [ 2; 3; 4; 5; 6 ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  (* baselines vs optimal on the line with faults *)
  print_endline "";
  let tbl2 =
    T.create
      [
        ("instance", T.Left); ("replicated doubling", T.Right);
        ("optimal exponential", T.Right); ("theory", T.Right);
      ]
  in
  guarded pool ~id:"T7b" ~width:4
    ~f:(fun (k, f) ->
      let naive =
        Array.map FS.Trajectory.compile (FS.Baseline.replicated_doubling ~k)
      in
      let naive_ratio =
        (FS.Adversary.worst_case naive ~f ~n:500. ()).FS.Adversary.ratio
      in
      let optimal = simulate_ratio ~m:2 ~k ~f ~n:500. () in
      [
        Printf.sprintf "k=%d f=%d" k f;
        T.cell_f ~decimals:4 naive_ratio;
        T.cell_f ~decimals:4 optimal;
        T.cell_f ~decimals:4 (a_line ~k ~f);
      ])
    [ (3, 1); (5, 2); (7, 3) ]
  |> List.iter (T.add_row tbl2);
  T.print tbl2;
  print_endline
    "shape check: replication is stuck at 9; the optimal strategy beats it\n\
     whenever rho < 2 and approaches it as rho -> 2."

(* ------------------------------------------------------------------ *)
(* F4 — horizon convergence of the simulated supremum.                *)

let f4_horizon pool =
  section "F4" "finite-horizon sup-ratio converges to the bound from below";
  let tbl =
    T.create
      [
        ("instance", T.Left); ("N", T.Right); ("sup ratio on [1,N]", T.Right);
        ("bound - sup", T.Right);
      ]
  in
  (* the (instance, horizon) grid flattened row-major: the long-horizon
     points dominate the suite's sequential wall-clock *)
  FS.Shard.grid2 [ (2, 3, 1); (3, 2, 0) ] [ 1e2; 1e3; 1e4; 1e5 ]
  |> guarded pool ~id:"F4" ~width:4 ~f:(fun ((m, k, f), n) ->
         let bound = a_mray ~m ~k ~f in
         let r = simulate_ratio ~m ~k ~f ~n () in
         [
           Printf.sprintf "m=%d k=%d f=%d" m k f;
           Printf.sprintf "%.0e" n;
           T.cell_f ~decimals:6 r;
           Printf.sprintf "%.2e" (bound -. r);
         ])
  |> List.iter (T.add_row tbl);
  T.print tbl

(* ------------------------------------------------------------------ *)
(* F5 — the coverage threshold equals the bound.                      *)

let f5_threshold pool =
  section "F5"
    "bisection: the lambda at which the optimal strategy's covering kicks \
     in equals lambda0";
  let tbl =
    T.create
      [
        ("k", T.Right); ("f", T.Right); ("lambda0", T.Right);
        ("coverage threshold", T.Right); ("difference", T.Right);
      ]
  in
  guarded pool ~id:"F5" ~width:5
    ~f:(fun (k, f) ->
      let p = FS.Params.line ~k ~f in
      let lam0 = FS.Formulas.of_params p in
      let turns = FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p) in
      let s = FS.Params.s p in
      let check ~lambda =
        FS.Symmetric_cover.check turns ~demand:s ~lambda ~n:500.
        = FS.Sweep.Covered
      in
      let thr =
        FS.Certificate.coverage_threshold_lambda ~check ~lo:(0.5 *. lam0)
          ~hi:(lam0 +. 1.) ()
      in
      [
        T.cell_i k; T.cell_i f; T.cell_f ~decimals:6 lam0;
        T.cell_f ~decimals:6 thr;
        Printf.sprintf "%.2e" (Float.abs (thr -. lam0));
      ])
    [ (1, 0); (3, 1); (3, 2); (5, 3); (5, 2) ]
  |> List.iter (T.add_row tbl);
  T.print tbl

(* ------------------------------------------------------------------ *)
(* F6 — the eps-N trade-off: how far one can cover below the bound.    *)

let f6_eps_n_tradeoff pool =
  section "F6"
    "the eps-N trade-off of inequality (12): optimal finite coverage vs \
     the theoretical cap, single robot on the line";
  let tbl =
    T.create
      [
        ("lambda", T.Right); ("turns", T.Right); ("reach N*", T.Right);
        ("ln N*", T.Right); ("ln N_max (theory)", T.Right);
        ("discriminant", T.Right);
      ]
  in
  guarded pool ~id:"F6" ~width:6
    ~f:(fun lambda ->
      let r = FS.Frontier.line_single ~lambda in
      let cap =
        FS.Certificate.log_horizon_bound FS.Assigned.Line_symmetric ~k:1
          ~demand:1 ~lambda ()
      in
      [
        T.cell_f ~decimals:3 lambda;
        T.cell_i r.FS.Frontier.steps;
        Printf.sprintf "%.4g" r.FS.Frontier.horizon;
        T.cell_f ~decimals:3 (log r.FS.Frontier.horizon);
        T.cell_f ~decimals:2 cap;
        T.cell_f ~decimals:4 (FS.Frontier.characteristic_discriminant ~lambda);
      ])
    [ 5.0; 6.0; 7.0; 8.0; 8.5; 8.9; 8.99; 8.999 ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  print_endline
    "shape: both columns diverge as lambda -> 9 (the discriminant of the\n\
     greedy recursion z^2 - mu z + mu hits zero), with the construction\n\
     always below the theoretical cap; coverage below the bound is\n\
     possible but only on a bounded horizon — the quantitative Theorem 3.";
  (* multi-robot variant: the (3,1) line instance below its bound 5.2331 *)
  let tbl2 =
    T.create
      [
        ("lambda (bound 5.2331)", T.Right); ("steps", T.Right);
        ("reach N*", T.Right); ("ln N_max (theory)", T.Right);
      ]
  in
  guarded pool ~id:"F6b" ~width:4
    ~f:(fun lambda ->
      let r = FS.Frontier.multi ~lambda ~k:3 ~demand:1 () in
      let cap =
        FS.Certificate.log_horizon_bound FS.Assigned.Line_symmetric ~k:3
          ~demand:1 ~lambda ()
      in
      [
        T.cell_f ~decimals:3 lambda;
        T.cell_i r.FS.Frontier.steps;
        Printf.sprintf "%.4g" r.FS.Frontier.horizon;
        T.cell_f ~decimals:2 cap;
      ])
    [ 4.0; 4.5; 5.0; 5.2; 5.23 ]
  |> List.iter (T.add_row tbl2);
  print_endline "";
  T.print tbl2

(* ------------------------------------------------------------------ *)
(* X1 — the distance measure (Kao-Ma-Sipser-Yin, Section 3 remark).    *)

let x1_distance_measure pool =
  section "X1"
    "distance measure D/d: sequential schedules vs parallel strategies \
     charged by distance (Section 3 remark on [20])";
  let m = 4 in
  let n = 300. in
  let best_sequential k =
    let best = ref (infinity, 1.5) in
    for i = 0 to 24 do
      let alpha = 1.15 +. (0.14 *. float_of_int i) in
      let sched = FS.Work_schedule.kmsy ~alpha ~m ~k () in
      let r = (FS.Work_schedule.worst_ratio sched ~n ()).FS.Work_schedule.ratio in
      if r < fst !best then best := (r, alpha)
    done;
    !best
  in
  let tbl =
    T.create
      [
        ("k", T.Right); ("sequential D/d (best alpha)", T.Right);
        ("alpha", T.Right); ("parallel time-optimal charged k*T/d", T.Right);
      ]
  in
  guarded pool ~id:"X1" ~width:4
    ~f:(fun k ->
      let seq, alpha = best_sequential k in
      let parallel =
        if k >= m then "1 per robot"
        else
          let p = FS.Params.make ~m ~k ~f:0 in
          let trs = FS.Group.trajectories (FS.Group.optimal p) in
          T.cell_f ~decimals:4 (FS.Work_schedule.parallel_charged trs ~f:0 ~n)
      in
      [
        T.cell_i k; T.cell_f ~decimals:4 seq; T.cell_f ~decimals:3 alpha;
        parallel;
      ])
    [ 1; 2; 3 ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  Printf.printf
    "anchor: k=1 sequential equals the single-robot time bound %.4f;\n\
     shape: the sequential schedule (robots taking turns, k-1 of them\n\
     never backtracking) beats charging the time-optimal parallel\n\
     strategy by distance — 'the optimal algorithm does not really use\n\
     multiple robots simultaneously'.\n"
    (FS.Formulas.single_robot_mray ~m)

(* ------------------------------------------------------------------ *)
(* X2 — randomized cow path (Kao-Reif-Tate, cited as [21]).            *)

(* The Monte-Carlo trials are the stochastic face of the determinism
   contract: per beta, a fixed 16-shard decomposition of 4096 trials,
   each shard drawing from its own split-PRNG leaf, partial means folded
   in shard order — bit-identical at any --jobs count.  (Nested
   fan-out: the betas themselves are pool tasks.) *)
let x2_mc_shards = 16
let x2_mc_samples_per_shard = 256

let x2_mc_estimate pool ~prng ~beta ~x =
  Par.parallel_map pool
    ~f:(fun g ->
      FS.Randomized.expected_ratio_at ~beta ~x
        ~samples:x2_mc_samples_per_shard ~prng:g)
    (Array.to_list (FS.Shard.prngs ~root:prng ~n:x2_mc_shards))
  |> List.fold_left ( +. ) 0.
  |> fun sum -> sum /. float_of_int x2_mc_shards

let x2_randomized pool =
  section "X2" "randomized single-robot line search (cited as [21])";
  let beta_star = FS.Randomized.optimal_beta () in
  Printf.printf
    "beta* = %.6f (root of b ln b = b + 1), expected ratio 1 + beta* = %.6f \
     vs deterministic 9\n\n"
    beta_star
    (FS.Randomized.optimal_ratio ());
  let tbl =
    T.create
      [
        ("beta", T.Right); ("formula r(beta)", T.Right);
        ("quadrature E[T]/x at x=500", T.Right);
        ("MC 4096 trials (sharded)", T.Right);
      ]
  in
  FS.Shard.sharded_map pool ~root:(FS.Prng.make ~seed:20180723)
    ~f:(fun ~prng beta ->
      let formula = FS.Randomized.ratio_formula ~beta in
      let measured = FS.Randomized.expected_ratio_exact ~beta ~x:500. ~grid:1200 in
      let mc = x2_mc_estimate pool ~prng ~beta ~x:500. in
      [
        T.cell_f ~decimals:4 beta; T.cell_f ~decimals:5 formula;
        T.cell_f ~decimals:5 measured; T.cell_f ~decimals:5 mc;
      ])
    [ 2.0; 2.8; 3.2; beta_star; 4.0; 5.0; 6.0 ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  print_endline
    "(the quadrature sits ~2 beta/(x ln beta) below the asymptotic formula\n\
     at finite x; the minimum is at beta* in both columns; the sharded\n\
     Monte-Carlo column is bit-identical at any --jobs count)"

(* ------------------------------------------------------------------ *)
(* X3 — turn-cost ablation (Demaine-Fekete-Gal, cited as [15]).        *)

let x3_turn_cost pool =
  section "X3" "turn-cost ablation: worst ratio vs per-reversal cost c";
  let zig alpha =
    [|
      FS.Trajectory.compile
        (FS.Line_zigzag.itinerary (FS.Turning.geometric ~alpha ()));
    |]
  in
  let tbl =
    T.create
      ([ ("c", T.Right) ]
      @ List.map
          (fun a -> (Printf.sprintf "base %.1f" a, T.Right))
          [ 2.0; 3.0; 4.0 ])
  in
  guarded pool ~id:"X3" ~width:4
    ~f:(fun c ->
      T.cell_f ~decimals:1 c
      :: List.map
           (fun alpha ->
             T.cell_f ~decimals:3
               (FS.Turn_cost.worst_ratio (zig alpha) ~f:0 ~turn_cost:c
                  ~n:200. ()))
           [ 2.0; 3.0; 4.0 ])
    [ 0.; 0.5; 1.; 2.; 5.; 10.; 20. ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  print_endline
    "shape: ratios grow with c; the doubling base's advantage shrinks as c\n\
     grows (the worst case moves to a single charged reversal near x = 1)."

(* ------------------------------------------------------------------ *)
(* X4 — stochastic targets (the Bellman-Beck origin).                  *)

let x4_stochastic pool =
  section "X4" "stochastic targets: Beck quotients E[T]/E[|d|]";
  let cow = [| FS.Trajectory.compile (FS.Cyclic.doubling_cow ()) |] in
  let tbl =
    T.create
      [
        ("distribution", T.Left); ("E|d|", T.Right);
        ("doubling E[T]/E|d|", T.Right); ("sided sweep (knows dist)", T.Right);
      ]
  in
  guarded pool ~id:"X4" ~width:4
    ~f:(fun (name, d) ->
      [
        name;
        T.cell_f ~decimals:3 (FS.Stochastic.expected_distance d);
        T.cell_f ~decimals:4 (FS.Stochastic.beck_quotient cow ~f:0 d ~horizon:1e5);
        T.cell_f ~decimals:4 (FS.Stochastic.best_sided_sweep d);
      ])
    [
      ("uniform [1, 10]", FS.Stochastic.uniform_line ~cells:64 ~lo:1. ~hi:10.);
      ("uniform [1, 100]", FS.Stochastic.uniform_line ~cells:64 ~lo:1. ~hi:100.);
      ("uniform [1, 1000]", FS.Stochastic.uniform_line ~cells:64 ~lo:1. ~hi:1000.);
      ("geometric r=2, 10 terms", FS.Stochastic.geometric_line ~ratio:2. ~terms:10 ~lo:1.);
      ("point mass at 17", FS.Stochastic.point_mass (FS.World.point FS.World.line ~ray:0 ~dist:17.));
    ]
  |> List.iter (T.add_row tbl);
  T.print tbl;
  print_endline
    "shape: the worst-case-optimal doubling stays well under 9 in\n\
     expectation; a distribution-aware plan does better still — Bellman's\n\
     original question is easier than the adversarial one, and 9 is the\n\
     distribution-free limit (Beck-Newman)."

(* ------------------------------------------------------------------ *)
(* X5 — the Section 3.1 case split, executably.                        *)

let x5_induction () =
  section "X5" "Section 3.1 induction: Case 1/Case 2 split on real assignments";
  let tbl =
    T.create
      [
        ("instance", T.Left); ("intervals", T.Right);
        ("observed C", T.Right); ("case at 2C", T.Left);
        ("eps'(q,k)", T.Right);
      ]
  in
  List.iter
    (fun (k, f) ->
      let p = FS.Params.line ~k ~f in
      let lam0 = FS.Formulas.of_params p in
      let mu = (lam0 -. 1.) /. 2. in
      let q = FS.Params.q p in
      let turns = FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p) in
      match
        FS.Assigned.build FS.Assigned.Orc_setting ~mu ~demand:q ~turns
          ~up_to:300. ()
      with
      | FS.Assigned.Stuck _ -> ()
      | FS.Assigned.Complete ivs ->
          let c_obs = FS.Induction.observed_c ivs in
          let case =
            match
              FS.Induction.classify ivs ~k ~demand:q ~mu ~c:(2. *. c_obs)
            with
            | FS.Induction.Case1 _ -> "Case 1"
            | FS.Induction.Case2 _ -> "Case 2"
          in
          let eps' =
            if k > 1 then T.cell_f ~decimals:5 (FS.Induction.epsilon' ~q ~k)
            else "-"
          in
          T.add_row tbl
            [
              Printf.sprintf "k=%d f=%d" k f;
              T.cell_i (List.length ivs);
              T.cell_f ~decimals:4 c_obs;
              case; eps';
            ])
    [ (3, 1); (4, 2); (5, 2); (5, 3) ];
  T.print tbl;
  (* a forced jump: verify the Case-2 consequence on the real strategy *)
  let p = FS.Params.line ~k:3 ~f:1 in
  let lam0 = FS.Formulas.of_params p in
  let mu = (lam0 -. 1.) /. 2. in
  let turns = FS.Orc_cover.of_mray_group (FS.Mray_exponential.make p) in
  (match
     FS.Assigned.build FS.Assigned.Orc_setting ~mu ~demand:4 ~turns ~up_to:300. ()
   with
  | FS.Assigned.Complete ivs -> (
      let c = FS.Induction.observed_c ivs *. 0.99 in
      match FS.Induction.jumps ivs ~c with
      | jump :: _ -> (
          match FS.Induction.verify_reduction ~turns ~jump ~mu ~demand:4 with
          | FS.Sweep.Covered ->
              Printf.printf
                "\nforced jump at robot %d (%.3f -> %.3f): the other k-1 \
                 robots do (q-1)-fold cover the jump window — the induction \
                 hypothesis's premise holds\n"
                jump.FS.Induction.robot jump.FS.Induction.from_left
                jump.FS.Induction.to_left
          | FS.Sweep.Gap { at; _ } ->
              Printf.printf "\nunexpected reduced-coverage gap at %g\n" at)
      | [] -> ())
  | FS.Assigned.Stuck _ -> ())

(* ------------------------------------------------------------------ *)
(* CSV series for the figure-shaped experiments.                       *)

let write_csv_series pool =
  let dir = "results" in
  (* F1 *)
  let rows =
    List.init 61 (fun i ->
        let rho = 1. +. (0.05 *. float_of_int i) in
        [ FS.Csv_out.float_cell rho;
          FS.Csv_out.float_cell (FS.Asymptotics.lambda_of_rho rho) ])
  in
  FS.Csv_out.write ~path:(Filename.concat dir "f1_rho_curve.csv")
    ~header:[ "rho"; "lambda" ] ~rows;
  (* F2 *)
  let q = 4 and k = 3 in
  let a_star = FS.Formulas.alpha_star ~q ~k in
  let rows =
    List.init 41 (fun i ->
        let alpha = a_star *. (0.7 +. (0.6 *. float_of_int i /. 40.)) in
        [ FS.Csv_out.float_cell alpha;
          FS.Csv_out.float_cell (FS.Formulas.exponential_ratio ~q ~k ~alpha) ])
  in
  FS.Csv_out.write ~path:(Filename.concat dir "f2_alpha_sweep_k3_f1.csv")
    ~header:[ "alpha"; "ratio" ] ~rows;
  (* F4 *)
  let rows =
    Par.parallel_map pool
      ~f:(fun n ->
        let r = simulate_ratio ~m:2 ~k:3 ~f:1 ~n () in
        [ FS.Csv_out.float_cell n; FS.Csv_out.float_cell r ])
      [ 10.; 30.; 100.; 300.; 1000.; 3000.; 10000. ]
  in
  FS.Csv_out.write ~path:(Filename.concat dir "f4_horizon_k3_f1.csv")
    ~header:[ "n"; "sup_ratio" ] ~rows;
  Printf.printf "\n(csv series written under %s/)\n" dir

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)

let micro_benchmarks () =
  section "MICRO" "Bechamel micro-benchmarks of the core primitives";
  let open Bechamel in
  let p = FS.Params.line ~k:3 ~f:1 in
  let lam0 = FS.Formulas.of_params p in
  let strat = FS.Mray_exponential.make p in
  let make_turns () = FS.Orc_cover.of_mray_group strat in
  let tests =
    Test.make_grouped ~name:"primitives"
      [
        Test.make ~name:"formulas/a_mray"
          (Staged.stage (fun () -> FS.Formulas.a_mray ~m:3 ~k:2 ~f:1));
        Test.make ~name:"sweep/check-coverage-n100"
          (Staged.stage (fun () ->
               let turns = make_turns () in
               FS.Symmetric_cover.check turns ~demand:1
                 ~lambda:(lam0 +. 1e-6) ~n:100.));
        Test.make ~name:"assigned/build-n50"
          (Staged.stage (fun () ->
               let turns = make_turns () in
               FS.Assigned.build FS.Assigned.Orc_setting
                 ~mu:((lam0 -. 1.) /. 2.)
                 ~demand:4 ~turns ~up_to:50. ()));
        Test.make ~name:"trajectory/first-visit"
          (Staged.stage
             (let tr =
                FS.Trajectory.compile (FS.Mray_exponential.itinerary strat ~robot:0)
              in
              let target = FS.World.point FS.World.line ~ray:0 ~dist:37.3 in
              fun () -> FS.Trajectory.first_visit tr ~target ~horizon:1e4));
        Test.make ~name:"adversary/worst-case-n50"
          (Staged.stage (fun () ->
               let trs =
                 Array.map FS.Trajectory.compile
                   (FS.Mray_exponential.itineraries strat)
               in
               FS.Adversary.worst_case trs ~f:1 ~n:50. ()));
        Test.make ~name:"adversary/exact-n50"
          (Staged.stage (fun () ->
               let trs =
                 Array.map FS.Trajectory.compile
                   (FS.Mray_exponential.itineraries strat)
               in
               FS.Exact_adversary.worst_case trs ~f:1 ~n:50. ()));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let tbl = T.create [ ("benchmark", T.Left); ("time/run", T.Right) ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (v :: _) -> Some v
        | Some [] | None -> None
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let cell =
        match ns with
        | None -> "n/a"
        | Some ns ->
            if ns > 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
            else Printf.sprintf "%8.1f ns" ns
      in
      T.add_row tbl [ name; cell ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  T.print tbl

(* ------------------------------------------------------------------ *)

let timings_path = Filename.concat "results" "bench_timings.json"

let () =
  let jobs = ref (Pool.default_jobs ()) in
  Arg.parse
    [
      ( "--jobs",
        Arg.Set_int jobs,
        "N  run the experiment grids on N domains (default: the \
         recommended domain count; tables are byte-identical for any N)" );
      ( "--chaos-seed",
        Arg.Int (fun s -> chaos_seed := Some s),
        "SEED  inject deterministic faults into the grid cells (drill: \
         with enough --retries the tables are byte-identical to a \
         fault-free run)" );
      ( "--retries",
        Arg.Set_int retries,
        "R  retry each failed grid cell up to R times (attempts = R+1, \
         zero backoff)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "main.exe [--jobs N]";
  if !jobs < 1 then begin
    prerr_endline "main.exe: --jobs must be >= 1";
    exit 2
  end;
  let metrics = FS.Metrics.create ~jobs:!jobs () in
  print_endline
    "Reproduction harness: Kupavskii & Welzl, 'Lower Bounds for Searching\n\
     Robots, some Faulty' (PODC 2018).  One section per experiment of\n\
     EXPERIMENTS.md.";
  Pool.with_pool ~jobs:!jobs (fun pool ->
      let run id experiment = FS.Metrics.time metrics ~experiment:id experiment in
      run "T1" (fun () -> t1_line_ratio pool);
      run "T2" t2_byzantine;
      run "F1" f1_rho_curve;
      run "T3" (fun () -> t3_mray_ratio pool);
      run "T4" (fun () -> t4_parallel_rays pool);
      run "F2" (fun () -> f2_alpha_sweep pool);
      run "F3" f3_potential_growth;
      run "T5" (fun () -> t5_fractional pool);
      run "T6" t6_phase;
      run "T7" (fun () -> t7_classics pool);
      run "F4" (fun () -> f4_horizon pool);
      run "F5" (fun () -> f5_threshold pool);
      run "F6" (fun () -> f6_eps_n_tradeoff pool);
      run "X1" (fun () -> x1_distance_measure pool);
      run "X2" (fun () -> x2_randomized pool);
      run "X3" (fun () -> x3_turn_cost pool);
      run "X4" (fun () -> x4_stochastic pool);
      run "X5" x5_induction;
      run "CSV" (fun () -> write_csv_series pool);
      run "MICRO" micro_benchmarks);
  FS.Metrics.record metrics ~experiment:"suite" ~seconds:(FS.Metrics.total metrics);
  FS.Metrics.write metrics ~path:timings_path;
  Printf.printf "\n(per-experiment wall-clock written to %s)\n" timings_path;
  if !failed_cells > 0 then begin
    Printf.eprintf
      "bench: %d grid cell(s) failed (marked !ERR above); exiting 3\n%!"
      !failed_cells;
    exit 3
  end;
  print_endline "\nall experiments completed."
