(* Tests for the numerical substrate: float helpers, compensated
   summation, root finding, minimisation, rationals, intervals, the
   sweep-line coverage counter, lazy sequences, statistics, tables. *)

module X = Search_numerics.Xfloat
module Kahan = Search_numerics.Kahan
module Root = Search_numerics.Root
module Minimize = Search_numerics.Minimize
module Rational = Search_numerics.Rational
module I = Search_numerics.Interval1
module Sweep = Search_numerics.Sweep
module Lazy_seq = Search_numerics.Lazy_seq
module Stats = Search_numerics.Stats
module Table = Search_numerics.Table

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Xfloat *)

let test_approx_eq_basic () =
  check_bool "equal floats" true (X.approx_eq 1.0 1.0);
  check_bool "close floats" true (X.approx_eq 1.0 (1.0 +. 1e-12));
  check_bool "distant floats" false (X.approx_eq 1.0 1.1);
  check_bool "near zero" true (X.approx_eq 0.0 1e-12);
  check_bool "negatives" true (X.approx_eq (-2.0) (-2.0 -. 1e-12))

let test_approx_eq_scale () =
  (* relative tolerance: large magnitudes compare proportionally *)
  check_bool "large equal-ish" true (X.approx_eq 1e15 (1e15 +. 1.));
  check_bool "large different" false (X.approx_eq 1e15 (1.001e15))

let test_approx_le_ge () =
  check_bool "le strict" true (X.approx_le 1.0 2.0);
  check_bool "le equalish" true (X.approx_le (1.0 +. 1e-12) 1.0);
  check_bool "le violated" false (X.approx_le 2.0 1.0);
  check_bool "ge mirror" true (X.approx_ge 2.0 1.0);
  check_bool "ge equalish" true (X.approx_ge 1.0 (1.0 +. 1e-12))

let test_clamp () =
  checkf "inside" 0.5 (X.clamp ~lo:0. ~hi:1. 0.5);
  checkf "below" 0. (X.clamp ~lo:0. ~hi:1. (-3.));
  checkf "above" 1. (X.clamp ~lo:0. ~hi:1. 7.)

let test_is_finite () =
  check_bool "one" true (X.is_finite 1.);
  check_bool "zero" true (X.is_finite 0.);
  check_bool "inf" false (X.is_finite infinity);
  check_bool "nan" false (X.is_finite nan)

let test_log_pow_conventions () =
  checkf "0^0 = 1 (log 0)" 0. (X.log_pow 0. 0.);
  checkf "x^0 = 1" 0. (X.log_pow 5. 0.);
  checkf "2^3" (3. *. log 2.) (X.log_pow 2. 3.);
  checkf "pow matches **" (2. ** 10.) (X.pow 2. 10.);
  checkf "pow 0 0 = 1" 1. (X.pow 0. 0.)

let test_sum () = checkf "sum" 6. (X.sum [ 1.; 2.; 3. ])

(* ------------------------------------------------------------------ *)
(* Kahan *)

let test_kahan_simple () =
  checkf "empty" 0. (Kahan.value Kahan.zero);
  checkf "list" 10. (Kahan.sum [ 1.; 2.; 3.; 4. ]);
  checkf "array" 10. (Kahan.sum_array [| 1.; 2.; 3.; 4. |])

let test_kahan_beats_naive () =
  (* 1 followed by many tiny values: naive sum loses them *)
  let tiny = 1e-16 in
  let n = 10_000 in
  let xs = 1. :: List.init n (fun _ -> tiny) in
  let compensated = Kahan.sum xs in
  let expected = 1. +. (float_of_int n *. tiny) in
  Alcotest.(check (float 1e-18)) "compensated is exact" expected compensated;
  let naive = X.sum xs in
  check_bool "naive loses precision" true (naive < expected)

let test_kahan_alternating () =
  (* large cancellations: Neumaier handles the big-term-late case *)
  let xs = [ 1.; 1e100; 1.; -1e100 ] in
  checkf "neumaier cancellation" 2. (Kahan.sum xs)

(* ------------------------------------------------------------------ *)
(* Root *)

let test_bisect_linear () =
  checkf "root of x-1" 1. (Root.bisect ~f:(fun x -> x -. 1.) 0. 5.)

let test_bisect_endpoint_roots () =
  checkf "root at lo" 2. (Root.bisect ~f:(fun x -> x -. 2.) 2. 5.);
  checkf "root at hi" 5. (Root.bisect ~f:(fun x -> x -. 5.) 2. 5.)

let test_bisect_no_bracket () =
  Alcotest.check_raises "same sign raises"
    (Search_numerics.Search_error.Error
       (Search_numerics.Search_error.Invalid_input
          {
            where = "Root.bisect";
            what = "f(1)=1 and f(2)=2 have the same sign";
          }))
    (fun () -> ignore (Root.bisect ~f:(fun x -> x) 1. 2.))

let test_brent_polynomial () =
  (* x^3 - 2x - 5 has a root near 2.0945514815 *)
  let f x = (x ** 3.) -. (2. *. x) -. 5. in
  let r = Root.brent ~f 1. 3. in
  Alcotest.(check (float 1e-9)) "cubic root" 2.0945514815423265 r

let test_brent_agrees_with_bisect () =
  let f x = exp x -. 3. in
  let a = Root.bisect ~f 0. 2. and b = Root.brent ~f 0. 2. in
  Alcotest.(check (float 1e-9)) "agree" a b

let test_brent_transcendental () =
  (* the cow-path fixed point: 2 a^2/(a-1) minimal at a = 2, check root of
     derivative-like expression a^2 - 2a = 0 on (1, 3] *)
  let f a = (a *. a) -. (2. *. a) in
  Alcotest.(check (float 1e-9)) "a = 2" 2. (Root.brent ~f 1.5 3.)

let test_expand_bracket () =
  (match Root.expand_bracket ~f:(fun x -> x -. 10.) 0. 1. with
  | Some (lo, hi) ->
      check_bool "brackets root" true (lo <= 10. && 10. <= hi)
  | None -> Alcotest.fail "expected bracket");
  check_bool "hopeless stays none" true
    (Root.expand_bracket ~f:(fun _ -> 1.) ~max_iter:5 0. 1. = None)

(* ------------------------------------------------------------------ *)
(* Minimize *)

let test_golden_parabola () =
  let x, v = Minimize.golden ~f:(fun x -> (x -. 3.) ** 2.) 0. 10. in
  Alcotest.(check (float 1e-6)) "argmin" 3. x;
  Alcotest.(check (float 1e-9)) "min" 0. v

let test_golden_asymmetric () =
  (* the exponential-strategy objective a^2/(a-1), minimum at a = 2 *)
  let f a = a *. a /. (a -. 1.) in
  let x, v = Minimize.golden ~f 1.01 10. in
  Alcotest.(check (float 1e-6)) "alpha*" 2. x;
  Alcotest.(check (float 1e-6)) "value 4" 4. v

let test_grid_then_golden () =
  let f x = Float.abs (x -. 1.7) in
  let x, _ = Minimize.grid_then_golden ~samples:16 ~f 0. 10. in
  Alcotest.(check (float 1e-6)) "argmin of |x - 1.7|" 1.7 x

(* ------------------------------------------------------------------ *)
(* Rational *)

let test_rational_normalisation () =
  let r = Rational.make 6 4 in
  check_int "num" 3 (Rational.num r);
  check_int "den" 2 (Rational.den r);
  let r = Rational.make 3 (-6) in
  check_int "sign moves to num" (-1) (Rational.num r);
  check_int "den positive" 2 (Rational.den r)

let test_rational_arith () =
  let open Rational in
  let half = make 1 2 and third = make 1 3 in
  check_bool "1/2 + 1/3 = 5/6" true (equal (add half third) (make 5 6));
  check_bool "1/2 - 1/3 = 1/6" true (equal (sub half third) (make 1 6));
  check_bool "1/2 * 1/3 = 1/6" true (equal (mul half third) (make 1 6));
  check_bool "1/2 / 1/3 = 3/2" true (equal (div half third) (make 3 2));
  check_bool "neg" true (equal (neg half) (make (-1) 2));
  check_bool "inv" true (equal (inv third) (make 3 1));
  check_bool "abs" true (equal (abs (make (-3) 4)) (make 3 4))

let test_rational_compare () =
  let open Rational in
  check_bool "1/2 < 2/3" true (make 1 2 < make 2 3);
  check_bool "le refl" true (make 1 2 <= make 1 2);
  check_int "compare eq" 0 (Rational.compare (make 2 4) (make 1 2))

let test_rational_zero_division () =
  Alcotest.check_raises "make x 0" Rational.Division_by_zero_rational (fun () ->
      ignore (Rational.make 1 0));
  Alcotest.check_raises "inv zero" Rational.Division_by_zero_rational (fun () ->
      ignore (Rational.inv Rational.zero))

let test_rational_to_float () =
  checkf "3/4" 0.75 (Rational.to_float (Rational.make 3 4))

let test_rational_of_float () =
  let r = Rational.of_float_approx 0.75 in
  check_bool "3/4 recovered" true (Rational.equal r (Rational.make 3 4));
  let pi = Rational.of_float_approx ~max_den:1000 Float.pi in
  check_bool "pi approx close" true
    (Float.abs (Rational.to_float pi -. Float.pi) < 1e-5)

let test_rational_approximations_above () =
  let target = 2.3 in
  let approxs = Rational.approximations_above ~target ~count:6 in
  check_bool "several approximants" true (List.length approxs >= 3);
  check_bool "at most count" true (List.length approxs <= 6);
  List.iter
    (fun r -> check_bool "above target" true (Rational.to_float r >= target))
    approxs;
  (* strictly decreasing toward the target *)
  let dists = List.map (fun r -> Rational.to_float r -. target) approxs in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  check_bool "converging" true (decreasing dists);
  (* an exactly-rational target is reached and the sequence stops *)
  let exact = Rational.approximations_above ~target:1.5 ~count:6 in
  check_bool "exact target found" true
    (List.exists (fun r -> Rational.equal r (Rational.make 3 2)) exact)

let test_rational_pp () =
  Alcotest.(check string) "fraction" "3/2"
    (Format.asprintf "%a" Rational.pp (Rational.make 3 2));
  Alcotest.(check string) "integer" "4"
    (Format.asprintf "%a" Rational.pp (Rational.make 8 2))

(* ------------------------------------------------------------------ *)
(* Interval1 *)

let test_interval_mem () =
  let c = I.closed 1. 3. and o = I.left_open 1. 3. in
  check_bool "closed left end" true (I.mem 1. c);
  check_bool "open left end" false (I.mem 1. o);
  check_bool "right end both" true (I.mem 3. c && I.mem 3. o);
  check_bool "outside" false (I.mem 4. c)

let test_interval_constructors () =
  Alcotest.check_raises "closed backwards"
    (Invalid_argument "Interval1.make: lo > hi") (fun () ->
      ignore (I.closed 3. 1.));
  Alcotest.check_raises "open empty"
    (Invalid_argument "Interval1.make: lo >= hi (open)") (fun () ->
      ignore (I.left_open 1. 1.))

let test_interval_length_empty () =
  checkf "length" 2. (I.length (I.closed 1. 3.));
  check_bool "closed point not empty" false (I.is_empty (I.closed 2. 2.));
  check_bool "open nonempty" false (I.is_empty (I.left_open 1. 2.))

let test_interval_intersects () =
  check_bool "overlap" true (I.intersects (I.closed 1. 3.) (I.closed 2. 4.));
  check_bool "touch closed-closed" true
    (I.intersects (I.closed 1. 2.) (I.closed 2. 3.));
  check_bool "touch open start misses" false
    (I.intersects (I.left_open 2. 3.) (I.closed 1. 2.));
  check_bool "disjoint" false (I.intersects (I.closed 1. 2.) (I.closed 3. 4.))

let test_interval_subset () =
  check_bool "inside" true (I.subset (I.closed 2. 3.) (I.closed 1. 4.));
  check_bool "same" true (I.subset (I.closed 1. 4.) (I.closed 1. 4.));
  check_bool "closed not in open at end" false
    (I.subset (I.closed 1. 2.) (I.left_open 1. 4.));
  check_bool "open in closed" true (I.subset (I.left_open 1. 2.) (I.closed 1. 4.))

let test_interval_truncate_left () =
  let iv = I.closed 1. 3. in
  (match I.truncate_left iv 2. with
  | Some t ->
      check_bool "now open at 2" true (not (I.mem 2. t));
      check_bool "contains 2.5" true (I.mem 2.5 t)
  | None -> Alcotest.fail "unexpected None");
  check_bool "truncate before keeps" true
    (match I.truncate_left iv 0.5 with
    | Some t -> I.compare_by_left t iv = 0
    | None -> false);
  check_bool "truncate past end = None" true (I.truncate_left iv 3. = None)

let test_interval_compare_by_left () =
  let a = I.closed 1. 5. and b = I.left_open 1. 5. and c = I.closed 2. 3. in
  check_bool "closed before open at same point" true (I.compare_by_left a b < 0);
  check_bool "by left value" true (I.compare_by_left a c < 0)

(* ------------------------------------------------------------------ *)
(* Sweep *)

let test_sweep_covered () =
  let ivs = [ I.closed 0. 5.; I.closed 0. 5.; I.closed 2. 8. ] in
  check_bool "2-fold on [1,5]" true
    (Sweep.check ~demand:2 ~within:(1., 5.) ivs = Sweep.Covered)

let test_sweep_gap () =
  let ivs = [ I.closed 0. 2.; I.closed 3. 5. ] in
  match Sweep.check ~demand:1 ~within:(1., 5.) ivs with
  | Sweep.Covered -> Alcotest.fail "expected gap"
  | Sweep.Gap { from_; upto; at; multiplicity } ->
      checkf "gap starts at 2" 2. from_;
      checkf "gap ends at 3" 3. upto;
      check_bool "witness inside" true (2. < at && at < 3.);
      check_int "multiplicity zero" 0 multiplicity

let test_sweep_multiplicity_at () =
  let ivs = [ I.closed 0. 2.; I.left_open 1. 3.; I.closed 1. 4. ] in
  check_int "at 1: open excluded" 2 (Sweep.multiplicity_at 1. ivs);
  check_int "at 1.5: all three" 3 (Sweep.multiplicity_at 1.5 ivs);
  check_int "at 3.5" 1 (Sweep.multiplicity_at 3.5 ivs)

let test_sweep_profile () =
  let ivs = [ I.closed 0. 2.; I.closed 1. 3. ] in
  let profile = Sweep.coverage_profile ~within:(0., 3.) ivs in
  check_int "three pieces" 3 (List.length profile);
  let mults = List.map (fun (_, _, c) -> c) profile in
  Alcotest.(check (list int)) "1,2,1" [ 1; 2; 1 ] mults

let test_sweep_min_multiplicity () =
  let ivs = [ I.closed 0. 2.; I.closed 1. 3. ] in
  check_int "min over [0,3]" 1 (Sweep.min_multiplicity ~within:(0., 3.) ivs);
  check_int "min over [1,2]" 2 (Sweep.min_multiplicity ~within:(1., 2.) ivs);
  check_int "empty" 0 (Sweep.min_multiplicity ~within:(0., 3.) [])

let test_sweep_demand_boundary () =
  (* half-open left ends at shared endpoints must not create phantom gaps:
     (1,2] and [2,3] together 1-cover [1.5, 3] interiors *)
  let ivs = [ I.left_open 1. 2.; I.closed 2. 3. ] in
  check_bool "no phantom gap" true
    (Sweep.check ~demand:1 ~within:(1.5, 3.) ivs = Sweep.Covered)

(* ------------------------------------------------------------------ *)
(* Lazy_seq *)

let test_lazy_seq_get_prefix () =
  let s = Lazy_seq.of_fun (fun i -> i * i) in
  check_int "get 3" 9 (Lazy_seq.get s 3);
  Alcotest.(check (list int)) "prefix" [ 1; 4; 9; 16 ] (Lazy_seq.prefix s 4)

let test_lazy_seq_memoises () =
  let calls = ref 0 in
  let s =
    Lazy_seq.of_fun (fun i ->
        incr calls;
        i)
  in
  ignore (Lazy_seq.get s 5);
  ignore (Lazy_seq.get s 5);
  check_int "computed once" 1 !calls

let test_lazy_seq_bad_index () =
  let s = Lazy_seq.of_fun (fun i -> i) in
  Alcotest.check_raises "index 0"
    (Invalid_argument "Lazy_seq.get: index must be >= 1") (fun () ->
      ignore (Lazy_seq.get s 0))

let test_lazy_seq_of_list_then () =
  let s = Lazy_seq.of_list_then [ 10; 20 ] (fun i -> i) in
  Alcotest.(check (list int)) "prefix then tail" [ 10; 20; 3; 4 ]
    (Lazy_seq.prefix s 4)

let test_lazy_seq_unfold () =
  let s = Lazy_seq.unfold ~init:1 (fun st -> (st, st * 2)) in
  Alcotest.(check (list int)) "powers of two" [ 1; 2; 4; 8 ]
    (Lazy_seq.prefix s 4);
  (* out-of-order access must still be consistent *)
  let s2 = Lazy_seq.unfold ~init:0 (fun st -> (st + 1, st + 1)) in
  check_int "deep first" 7 (Lazy_seq.get s2 7);
  check_int "then shallow" 2 (Lazy_seq.get s2 2)

let test_lazy_seq_map_find () =
  let s = Lazy_seq.map (fun x -> x * 10) (Lazy_seq.of_fun (fun i -> i)) in
  check_int "map" 30 (Lazy_seq.get s 3);
  (match Lazy_seq.find_first (fun v -> v > 25) s ~limit:10 with
  | Some (i, v) ->
      check_int "index" 3 i;
      check_int "value" 30 v
  | None -> Alcotest.fail "expected find");
  check_bool "not found under limit" true
    (Lazy_seq.find_first (fun v -> v > 1000) s ~limit:5 = None)


let test_lazy_seq_deep_index_no_stack_overflow () =
  (* the unfold walk must be iterative: a 500k-deep first access used to
     overflow the stack with a recursive ensure *)
  let s = Lazy_seq.unfold ~init:0 (fun st -> (st + 1, st + 1)) in
  check_int "deep unfold" 500_000 (Lazy_seq.get s 500_000)

let test_lazy_seq_partial_sums () =
  let s = Lazy_seq.of_fun (fun i -> float_of_int i) in
  let sums = Lazy_seq.partial_sums s in
  checkf "1+2+3" 6. (Lazy_seq.get sums 3);
  checkf "first" 1. (Lazy_seq.get sums 1)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let t = List.fold_left Stats.add Stats.empty [ 1.; 2.; 3.; 4. ] in
  check_int "count" 4 (Stats.count t);
  checkf "mean" 2.5 (Stats.mean t);
  checkf "min" 1. (Stats.min t);
  checkf "max" 4. (Stats.max t);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 1.25) (Stats.stddev t)

let test_stats_empty_raises () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Stats.mean: empty summary") (fun () ->
      ignore (Stats.mean Stats.empty))

let test_stats_sup () =
  let s = Stats.sup_empty in
  check_bool "empty witness" true (Stats.sup_witness s = None);
  let s = Stats.sup_add s ~key:"a" ~value:1. in
  let s = Stats.sup_add s ~key:"b" ~value:3. in
  let s = Stats.sup_add s ~key:"c" ~value:2. in
  checkf "sup value" 3. (Stats.sup_value s);
  check_bool "witness b" true (Stats.sup_witness s = Some "b")

(* Regression: a NaN fed to the supremum used to be swallowed (every
   [>] comparison against NaN is false), silently under-reporting the
   worst case; it must surface as a typed error instead. *)
let test_stats_sup_nan_raises () =
  let s = Stats.sup_add Stats.sup_empty ~key:"a" ~value:1. in
  Alcotest.check_raises "NaN surfaces"
    (Search_numerics.Search_error.Error
       (Search_numerics.Search_error.Non_convergence
          {
            where = "Stats.sup_add";
            steps = 0;
            detail = "supremum fed a NaN sample";
          }))
    (fun () -> ignore (Stats.sup_add s ~key:"bad" ~value:Float.nan))

let test_stats_sup_infinity_legal () =
  (* infinity is the adversary's escape verdict (ratio_cap exceeded):
     a legitimate sample, not an error *)
  let s = Stats.sup_add Stats.sup_empty ~key:"a" ~value:2. in
  let s = Stats.sup_add s ~key:"esc" ~value:infinity in
  check_bool "sup is inf" true (Float.equal (Stats.sup_value s) infinity);
  check_bool "witness esc" true (Stats.sup_witness s = Some "esc")

let test_stats_nearest_rank () =
  let eq = Option.equal Float.equal in
  check_bool "empty" true (eq None (Stats.nearest_rank [||] ~p:50.));
  check_bool "singleton p0" true
    (eq (Some 7.) (Stats.nearest_rank [| 7. |] ~p:0.));
  check_bool "singleton p100" true
    (eq (Some 7.) (Stats.nearest_rank [| 7. |] ~p:100.));
  let a = [| 1.; 2.; 3.; 4. |] in
  check_bool "p50" true (eq (Some 2.) (Stats.nearest_rank a ~p:50.));
  check_bool "p75" true (eq (Some 3.) (Stats.nearest_rank a ~p:75.));
  check_bool "p99" true (eq (Some 4.) (Stats.nearest_rank a ~p:99.));
  Alcotest.check_raises "bad p"
    (Invalid_argument "Stats.nearest_rank: need 0 <= p <= 100") (fun () ->
      ignore (Stats.nearest_rank a ~p:101.))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "x"; "1.5" ];
  Table.add_row t [ "long-name"; "2" ];
  let s = Table.render t in
  check_bool "has header" true
    (String.length s > 0 && String.sub s 0 1 = "|");
  check_bool "aligned right"
    true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 0 && String.ends_with ~suffix:"  1.5 |" l) lines)

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "float" "1.50" (Table.cell_f ~decimals:2 1.5);
  Alcotest.(check string) "inf" "inf" (Table.cell_f infinity);
  Alcotest.(check string) "nan" "nan" (Table.cell_f nan);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)


(* ------------------------------------------------------------------ *)
(* Json *)

module Json = Search_numerics.Json

let test_json_print_atoms () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int-like" "42" (Json.to_string (Json.Number 42.));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Number 1.5));
  Alcotest.(check string) "string escape" "\"a\\nb\""
    (Json.to_string (Json.String "a\nb"))

let test_json_print_nested () =
  let v =
    Json.Assoc
      [ ("xs", Json.List [ Json.Number 1.; Json.Number 2. ]);
        ("ok", Json.Bool false) ]
  in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"ok\":false}"
    (Json.to_string v)

let test_json_nonfinite_rejected () =
  match Json.to_string (Json.Number infinity) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinity serialised"

let test_json_parse_basics () =
  let ok s v =
    match Json.of_string s with
    | Ok got -> check_bool s true (got = v)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "null" Json.Null;
  ok " true " (Json.Bool true);
  ok "-2.5e2" (Json.Number (-250.));
  ok "\"hi\"" (Json.String "hi");
  ok "[]" (Json.List []);
  ok "{}" (Json.Assoc []);
  ok "[1, [2], {\"a\": 3}]"
    (Json.List
       [ Json.Number 1.; Json.List [ Json.Number 2. ];
         Json.Assoc [ ("a", Json.Number 3.) ] ])

let test_json_parse_escapes () =
  (match Json.of_string "\"a\\nb\\u0041\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "escapes" "a\nbA" s
  | _ -> Alcotest.fail "bad escape parse");
  match Json.of_string "\"caf\\u00e9\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "bad unicode parse"

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "";
  bad "[1,";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let test_json_accessors () =
  let v = Json.Assoc [ ("x", Json.Number 3.); ("s", Json.String "y") ] in
  check_bool "member hit" true
    (match Json.member "x" v with
    | Some (Json.Number x) -> Float.equal x 3.
    | _ -> false);
  check_bool "member miss" true (Json.member "z" v = None);
  check_bool "to_int" true (Json.to_int (Json.Number 3.) = Some 3);
  check_bool "to_int non-integral" true (Json.to_int (Json.Number 3.5) = None);
  check_bool "to_bool" true (Json.to_bool (Json.Bool true) = Some true)

let rec json_gen depth =
  let open QCheck2.Gen in
  if depth = 0 then
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun x -> Json.Number x) (float_range (-1e6) 1e6);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 10)) ]
  else
    oneof
      [ json_gen 0;
        map (fun l -> Json.List l) (list_size (int_range 0 4) (json_gen (depth - 1)));
        map
          (fun kvs -> Json.Assoc kvs)
          (list_size (int_range 0 4)
             (pair (string_size ~gen:printable (int_range 1 6)) (json_gen (depth - 1)))) ]

let prop_json_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"json print/parse roundtrip" (json_gen 3)
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let prop_json_pretty_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"pretty json roundtrips too" (json_gen 2)
    (fun v ->
      match Json.of_string (Json.to_string ~pretty:true v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* properties *)

let prop_kahan_matches_exact =
  QCheck2.Test.make ~count:200 ~name:"kahan sum matches sorted-exact sum"
    QCheck2.Gen.(list_size (int_range 0 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let k = Kahan.sum xs in
      let reference = List.fold_left ( +. ) 0. (List.sort Float.compare xs) in
      Float.abs (k -. reference)
      <= 1e-6 *. Float.max 1. (Float.abs reference))

let prop_rational_add_commutes =
  let gen =
    QCheck2.Gen.(
      pair (pair (int_range (-1000) 1000) (int_range 1 1000))
        (pair (int_range (-1000) 1000) (int_range 1 1000)))
  in
  QCheck2.Test.make ~count:500 ~name:"rational add commutes" gen
    (fun ((a, b), (c, d)) ->
      let x = Rational.make a b and y = Rational.make c d in
      Rational.equal (Rational.add x y) (Rational.add y x))

let prop_rational_mul_inverse =
  let gen = QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 1000)) in
  QCheck2.Test.make ~count:500 ~name:"r * 1/r = 1" gen (fun (a, b) ->
      let r = Rational.make a b in
      Rational.equal (Rational.mul r (Rational.inv r)) Rational.one)

let prop_rational_float_roundtrip =
  let gen = QCheck2.Gen.(pair (int_range (-999) 999) (int_range 1 999)) in
  QCheck2.Test.make ~count:300 ~name:"of_float_approx recovers small rationals"
    gen (fun (a, b) ->
      let r = Rational.make a b in
      let r' = Rational.of_float_approx ~max_den:10_000 (Rational.to_float r) in
      Rational.equal r r')

let prop_brent_finds_root =
  QCheck2.Test.make ~count:200 ~name:"brent finds root of shifted cubic"
    QCheck2.Gen.(float_range (-5.) 5.)
    (fun c ->
      (* f(x) = x^3 - c has root c^(1/3) in a bracket around it *)
      let f x = (x ** 3.) -. c in
      let r = Root.brent ~f (-10.) 10. in
      Float.abs (f r) < 1e-6)

let prop_sweep_profile_partitions =
  (* profile pieces partition the window and multiplicities match
     pointwise counting at midpoints *)
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 12)
        (pair (float_range 0. 10.) (float_range 0. 10.)))
  in
  QCheck2.Test.make ~count:200 ~name:"sweep profile partitions window" gen
    (fun pairs ->
      let ivs =
        List.filter_map
          (fun (a, b) ->
            let lo = Float.min a b and hi = Float.max a b in
            if lo < hi then Some (I.closed lo hi) else None)
          pairs
      in
      let profile = Sweep.coverage_profile ~within:(0., 10.) ivs in
      let rec contiguous last = function
        | [] -> Float.equal last 10.
        | (a, b, c) :: rest ->
            Float.equal a last && b > a
            && c = Sweep.multiplicity_at (0.5 *. (a +. b)) ivs
            && contiguous b rest
      in
      contiguous 0. profile)

let prop_interval_truncate_subset =
  let gen =
    QCheck2.Gen.(pair (pair (float_range 0. 5.) (float_range 5.1 10.)) (float_range 0. 12.))
  in
  QCheck2.Test.make ~count:300 ~name:"truncate_left yields subset" gen
    (fun ((lo, hi), x) ->
      let iv = I.closed lo hi in
      match I.truncate_left iv x with
      | None -> x >= hi
      | Some t -> I.subset t iv)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_json_roundtrip;
      prop_json_pretty_roundtrip;
      prop_kahan_matches_exact;
      prop_rational_add_commutes;
      prop_rational_mul_inverse;
      prop_rational_float_roundtrip;
      prop_brent_finds_root;
      prop_sweep_profile_partitions;
      prop_interval_truncate_subset;
    ]

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "numerics"
    [
      ( "xfloat",
        [
          tc "approx_eq basic" `Quick test_approx_eq_basic;
          tc "approx_eq scale" `Quick test_approx_eq_scale;
          tc "approx le/ge" `Quick test_approx_le_ge;
          tc "clamp" `Quick test_clamp;
          tc "is_finite" `Quick test_is_finite;
          tc "log_pow conventions" `Quick test_log_pow_conventions;
          tc "sum" `Quick test_sum;
        ] );
      ( "kahan",
        [
          tc "simple" `Quick test_kahan_simple;
          tc "beats naive" `Quick test_kahan_beats_naive;
          tc "alternating" `Quick test_kahan_alternating;
        ] );
      ( "root",
        [
          tc "bisect linear" `Quick test_bisect_linear;
          tc "bisect endpoint roots" `Quick test_bisect_endpoint_roots;
          tc "bisect no bracket" `Quick test_bisect_no_bracket;
          tc "brent polynomial" `Quick test_brent_polynomial;
          tc "brent agrees with bisect" `Quick test_brent_agrees_with_bisect;
          tc "brent transcendental" `Quick test_brent_transcendental;
          tc "expand bracket" `Quick test_expand_bracket;
        ] );
      ( "minimize",
        [
          tc "golden parabola" `Quick test_golden_parabola;
          tc "golden asymmetric" `Quick test_golden_asymmetric;
          tc "grid then golden" `Quick test_grid_then_golden;
        ] );
      ( "rational",
        [
          tc "normalisation" `Quick test_rational_normalisation;
          tc "arithmetic" `Quick test_rational_arith;
          tc "compare" `Quick test_rational_compare;
          tc "zero division" `Quick test_rational_zero_division;
          tc "to_float" `Quick test_rational_to_float;
          tc "of_float" `Quick test_rational_of_float;
          tc "approximations above" `Quick test_rational_approximations_above;
          tc "pp" `Quick test_rational_pp;
        ] );
      ( "interval1",
        [
          tc "mem" `Quick test_interval_mem;
          tc "constructors" `Quick test_interval_constructors;
          tc "length/empty" `Quick test_interval_length_empty;
          tc "intersects" `Quick test_interval_intersects;
          tc "subset" `Quick test_interval_subset;
          tc "truncate_left" `Quick test_interval_truncate_left;
          tc "compare_by_left" `Quick test_interval_compare_by_left;
        ] );
      ( "sweep",
        [
          tc "covered" `Quick test_sweep_covered;
          tc "gap" `Quick test_sweep_gap;
          tc "multiplicity_at" `Quick test_sweep_multiplicity_at;
          tc "profile" `Quick test_sweep_profile;
          tc "min multiplicity" `Quick test_sweep_min_multiplicity;
          tc "shared endpoints" `Quick test_sweep_demand_boundary;
        ] );
      ( "lazy_seq",
        [
          tc "get/prefix" `Quick test_lazy_seq_get_prefix;
          tc "memoises" `Quick test_lazy_seq_memoises;
          tc "bad index" `Quick test_lazy_seq_bad_index;
          tc "of_list_then" `Quick test_lazy_seq_of_list_then;
          tc "unfold" `Quick test_lazy_seq_unfold;
          tc "map/find" `Quick test_lazy_seq_map_find;
          tc "partial sums" `Quick test_lazy_seq_partial_sums;
          tc "deep index" `Quick test_lazy_seq_deep_index_no_stack_overflow;
        ] );
      ( "stats",
        [
          tc "basic" `Quick test_stats_basic;
          tc "empty raises" `Quick test_stats_empty_raises;
          tc "sup tracking" `Quick test_stats_sup;
          tc "sup NaN raises" `Quick test_stats_sup_nan_raises;
          tc "sup infinity legal" `Quick test_stats_sup_infinity_legal;
          tc "nearest rank" `Quick test_stats_nearest_rank;
        ] );
      ( "table",
        [
          tc "render" `Quick test_table_render;
          tc "arity" `Quick test_table_arity;
          tc "cells" `Quick test_table_cells;
        ] );
      ( "json",
        [
          tc "print atoms" `Quick test_json_print_atoms;
          tc "print nested" `Quick test_json_print_nested;
          tc "nonfinite rejected" `Quick test_json_nonfinite_rejected;
          tc "parse basics" `Quick test_json_parse_basics;
          tc "parse escapes" `Quick test_json_parse_escapes;
          tc "parse errors" `Quick test_json_parse_errors;
          tc "accessors" `Quick test_json_accessors;
        ] );
      ("properties", properties);
    ]
