(* Tests for the typed, interprocedural analysis family: fixture trees
   compiled with ocamlc -bin-annot (so the cmt artefacts look exactly
   like dune's, with repo-relative source paths), driven through
   [Deep.collect] and [Driver.run ~deep:true].

   Covers the three advertised detectors — transitive nondeterminism
   taint with its source→sink chain, an unguarded shared ref captured
   by a pool-entry closure, and a two-mutex acquisition-order cycle —
   plus the audited-sink barrier, stale-allowlist detection, the lint
   exit-code contract and the GitHub annotation emitter. *)

module Finding = Search_analysis.Finding
module Allow = Search_analysis.Allow
module Driver = Search_analysis.Driver
module Callgraph = Search_analysis.Callgraph
module Deep = Search_analysis.Deep
module Pool = Search_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let make_tree files =
  let root = Filename.temp_file "faulty_search_deep" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  List.iter
    (fun (name, contents) -> write_file (Filename.concat root name) contents)
    files;
  root

(* Compile fixtures from the tree root so cmt_sourcefile comes out
   repo-relative ("lib/a.ml"), the way dune records it. *)
let compile root files =
  Sys.command
    (Printf.sprintf "cd %s && ocamlc -bin-annot -c -I lib %s >/dev/null 2>&1"
       (Filename.quote root)
       (String.concat " " files))
  = 0

let have_ocamlc =
  lazy (Sys.command "ocamlc -version >/dev/null 2>&1" = 0)

(* The toolchain container always has ocamlc; degrade to a vacuous pass
   elsewhere rather than failing the suite over infrastructure. *)
let with_ocamlc k = if Lazy.force have_ocamlc then k () else ()

let collect ?(audited = fun _ -> false) root =
  let findings, units, _budget_stale =
    Pool.with_pool ~jobs:1 @@ fun pool ->
    Deep.collect ~pool ~deep:true ~hotpath:false ~escape:false ~audited
      ~budget:Search_analysis.Budget.empty ~dirs:[ "lib" ] ~root
  in
  (findings, units)

let by_rule rule findings =
  List.filter (fun f -> String.equal f.Finding.rule rule) findings

let taint_tree () =
  make_tree
    [
      ( "lib/a.ml",
        "let noise () = Random.int 10\n\
         let w1 () = noise () + 1\n\
         let w2 () = w1 () * 2\n" );
      ("lib/uses.ml", "let call () = A.w2 ()\n");
    ]

(* ------------------------------------------------------------------ *)

let test_taint_chain () =
  with_ocamlc @@ fun () ->
  let root = taint_tree () in
  check_bool "fixtures compile" true
    (compile root [ "lib/a.ml"; "lib/uses.ml" ]);
  let findings, units = collect root in
  check_int "two units" 2 units;
  let taint = by_rule "deep-nondet" findings in
  (* noise, w1, w2 and the cross-module caller *)
  check_int "four tainted defs" 4 (List.length taint);
  match
    List.find_opt
      (fun f ->
        String.equal f.Finding.file "lib/a.ml" && f.Finding.line = 3)
      taint
  with
  | None -> Alcotest.fail "no finding at the w2 call site (lib/a.ml:3)"
  | Some f ->
      check_bool "full source->sink chain" true
        (let contains s sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length s
             && (String.equal (String.sub s i n) sub || go (i + 1))
           in
           go 0
         in
         contains f.Finding.message "A.w2 -> A.w1 -> A.noise -> Random.int")

let test_taint_barrier () =
  with_ocamlc @@ fun () ->
  let root = taint_tree () in
  check_bool "fixtures compile" true
    (compile root [ "lib/a.ml"; "lib/uses.ml" ]);
  (* auditing lib/a.ml stops propagation at its boundary (including
     between its own defs) but still reports the defs that touch a
     source directly, so the allow entry suppressing them registers as
     used rather than stale *)
  let findings, _ =
    collect ~audited:(fun file -> String.equal file "lib/a.ml") root
  in
  let taint = by_rule "deep-nondet" findings in
  check_int "only the direct source toucher" 1 (List.length taint);
  check_string "and it is in the audited file" "lib/a.ml"
    (List.hd taint).Finding.file

let test_race () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        ( "lib/b.ml",
          "let[@pool_entry] submit f = f ()\n\
           let leak = ref 0\n\
           let guard = Mutex.create ()\n\
           let leak2 = ref 0\n\
           let bad () = submit (fun () -> leak := !leak + 1)\n\
           let ok () =\n\
          \  submit (fun () -> Mutex.protect guard (fun () -> leak2 := !leak2 + 1))\n\
           let ok2 () =\n\
          \  submit (fun () -> Mutex.protect guard @@ fun () -> leak2 := !leak2 + 1)\n" );
      ]
  in
  check_bool "fixture compiles" true (compile root [ "lib/b.ml" ]);
  let findings, _ = collect root in
  let races = by_rule "deep-race" findings in
  check_int "exactly the unguarded cell" 1 (List.length races);
  let f = List.hd races in
  check_string "at the mutation site" "lib/b.ml" f.Finding.file;
  check_int "line of leak := ..." 5 f.Finding.line;
  check_bool "names the cell and the job chain" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s
         && (String.equal (String.sub s i n) sub || go (i + 1))
       in
       go 0
     in
     contains f.Finding.message "B.leak"
     && contains f.Finding.message "B.bad{B.submit}")

let test_lock_order () =
  with_ocamlc @@ fun () ->
  let root =
    make_tree
      [
        ( "lib/c.ml",
          "let ma = Mutex.create ()\n\
           let mb = Mutex.create ()\n\
           let f1 () = Mutex.protect ma (fun () -> Mutex.protect mb (fun () -> ()))\n\
           let f2 () = Mutex.protect mb (fun () -> Mutex.protect ma (fun () -> ()))\n" );
      ]
  in
  check_bool "fixture compiles" true (compile root [ "lib/c.ml" ]);
  let findings, _ = collect root in
  let cycles = by_rule "deep-lock-order" findings in
  check_int "one cycle, reported once" 1 (List.length cycles);
  let f = List.hd cycles in
  check_string "witnessed in c.ml" "lib/c.ml" f.Finding.file;
  check_int "at the inner protect of f1" 3 f.Finding.line;
  check_bool "names both mutexes" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s
         && (String.equal (String.sub s i n) sub || go (i + 1))
       in
       go 0
     in
     contains f.Finding.message "C.ma" && contains f.Finding.message "C.mb")

let test_deep_jobs_invariance () =
  with_ocamlc @@ fun () ->
  let root = taint_tree () in
  check_bool "fixtures compile" true
    (compile root [ "lib/a.ml"; "lib/uses.ml" ]);
  let o1 = Driver.run ~jobs:1 ~deep:true ~root () in
  let o4 = Driver.run ~jobs:4 ~deep:true ~root () in
  check_bool "deep pass ran" true (o1.Driver.units = 2);
  check_bool "found the planted taint" true
    (by_rule "deep-nondet" o1.Driver.findings <> []);
  check_string "text report byte-identical" (Driver.render_text o1)
    (Driver.render_text o4);
  check_string "json report byte-identical" (Driver.render_json o1)
    (Driver.render_json o4);
  check_string "github report byte-identical" (Driver.render_github o1)
    (Driver.render_github o4)

(* ------------------------------------------------------------------ *)

let test_entries_located () =
  match Allow.parse "a b\n\n# comment\nd e  # trailing\n" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok allow ->
      Alcotest.(check (list (triple string string int)))
        "line numbers recorded"
        [ ("a", "b", 1); ("d", "e", 4) ]
        (Allow.entries_located allow)

let test_stale_detection () =
  let root =
    make_tree
      [
        ("lib/x.ml", "let t () = Sys.time ()\n");
        ("lib/x.mli", "val t : unit -> float\n");
      ]
  in
  let allow =
    match
      Allow.parse
        "nondet lib/x.ml\nnondet lib/unused.ml\ndeep-race lib/unused.ml\n"
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let shallow = Driver.run ~jobs:1 ~allow ~root () in
  check_int "no surviving findings" 0 (List.length shallow.Driver.findings);
  (* the deep-race entry is out of scope without --deep; only the
     unmatched syntactic entry is stale *)
  Alcotest.(check (list (triple string string int)))
    "shallow stale set"
    [ ("nondet", "lib/unused.ml", 2) ]
    shallow.Driver.stale;
  let deep = Driver.run ~jobs:1 ~deep:true ~allow ~root () in
  Alcotest.(check (list (triple string string int)))
    "deep brings deep rules into scope"
    [ ("nondet", "lib/unused.ml", 2); ("deep-race", "lib/unused.ml", 3) ]
    deep.Driver.stale;
  check_int "clean tree + stale, default" 0 (Driver.exit_code shallow);
  check_int "clean tree + stale, strict" 1
    (Driver.exit_code ~strict:true shallow)

let test_exit_codes () =
  let parse_root = make_tree [ ("lib/broken.ml", "let = (\n") ] in
  let parse_out = Driver.run ~jobs:1 ~root:parse_root () in
  check_int "syntax error is internal" 3 (Driver.exit_code parse_out);
  (* a corrupt cmt artefact is likewise internal, not a lint verdict *)
  let cmt_root = make_tree [ ("lib/garbage.cmt", "not a cmt\n") ] in
  let cmt_out = Driver.run ~jobs:1 ~deep:true ~root:cmt_root () in
  check_bool "cmt-load finding surfaced" true
    (by_rule "cmt-load" cmt_out.Driver.findings <> []);
  check_int "corrupt artefact is internal" 3 (Driver.exit_code cmt_out);
  let clean_root =
    make_tree
      [
        ("lib/y.ml", "let add a b = a + b\n");
        ("lib/y.mli", "val add : int -> int -> int\n");
      ]
  in
  let clean = Driver.run ~jobs:1 ~root:clean_root () in
  check_int "clean is zero" 0 (Driver.exit_code ~strict:true clean);
  let finding_out = Driver.run ~jobs:1 ~root:(taint_tree ()) () in
  check_int "ordinary finding is one" 1 (Driver.exit_code finding_out)

let test_github_render () =
  let o =
    {
      Driver.findings =
        [
          Finding.v ~rule:"demo" ~severity:Finding.Error ~file:"lib/x.ml"
            ~loc:Location.none "50% bad\nsecond line";
        ];
      suppressed = 0;
      files = 1;
      units = 0;
      stale = [ ("nondet", "lib/unused.ml", 7) ];
      budget_stale = [ ("Gone.kernel", 3) ];
    }
  in
  let out = Driver.render_github o in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s
      && (String.equal (String.sub s i n) sub || go (i + 1))
    in
    go 0
  in
  check_bool "error annotation" true (contains out "::error file=lib/x.ml,line=");
  check_bool "percent escaped" true (contains out "50%25 bad");
  check_bool "newline escaped" true (contains out "%0Asecond line");
  check_bool "stale entry as warning on lint.allow" true
    (contains out "::warning file=lint.allow,line=7");
  check_bool "stale budget entry as warning on lint.budget" true
    (contains out "::warning file=lint.budget,line=3");
  check_bool "rule tag present" true (contains out "[demo]")

let test_display_name () =
  check_string "wrapper mangling stripped" "Supervise.map"
    (Callgraph.display_name "Search_exec__Supervise.map");
  check_string "plain unit kept" "A.w2" (Callgraph.display_name "A.w2");
  check_string "nested path" "Search_cli.(init)"
    (Callgraph.display_name "Dune__exe__Search_cli.(init)")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "deep"
    [
      ( "graph",
        [ Alcotest.test_case "display names" `Quick test_display_name ] );
      ( "taint",
        [
          Alcotest.test_case "transitive chain" `Quick test_taint_chain;
          Alcotest.test_case "audited barrier" `Quick test_taint_barrier;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "unguarded pooled ref" `Quick test_race;
          Alcotest.test_case "two-mutex cycle" `Quick test_lock_order;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deep jobs invariance" `Quick
            test_deep_jobs_invariance;
          Alcotest.test_case "allow entries located" `Quick
            test_entries_located;
          Alcotest.test_case "stale allowlist" `Quick test_stale_detection;
          Alcotest.test_case "exit-code contract" `Quick test_exit_codes;
          Alcotest.test_case "github annotations" `Quick test_github_render;
        ] );
    ]
