(* Tests for the serve subsystem: the wire codec (exact JSON roundtrip of
   every request/response variant), the incremental frame decoder (torn,
   oversized, negative-length, byte-at-a-time input), the bounded
   admission queue, the dispatcher's determinism contract (byte-identical
   responses at jobs 1 vs 4) and shared-cache accounting, and a live
   in-process end-to-end run over a real Unix-domain socket. *)

module P = Search_serve.Protocol
module Backlog = Search_serve.Backlog
module Dispatch = Search_serve.Dispatch
module Server = Search_serve.Server
module Client = Search_serve.Client
module Pool = Search_exec.Pool
module Json = Search_numerics.Json
module E = Search_numerics.Search_error

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* codec roundtrips *)

(* structural equality via the rendered bytes: decode the encoding, then
   re-encode and compare strings — exactly the property the daemon's
   determinism contract needs *)
let roundtrip_request req =
  let s = P.encode_request ~id:7 req in
  match P.decode_request s with
  | Ok (id, req') ->
      check_int "id echoed" 7 id;
      check_string "request re-encodes identically" s
        (P.encode_request ~id:7 req')
  | Error (_, msg) -> Alcotest.fail ("request did not decode: " ^ msg)

let roundtrip_response resp =
  let s = P.encode_response ~id:9 resp in
  match P.decode_response s with
  | Ok (id, resp') ->
      check_int "id echoed" 9 id;
      check_string "response re-encodes identically" s
        (P.encode_response ~id:9 resp')
  | Error msg -> Alcotest.fail ("response did not decode: " ^ msg)

let test_request_roundtrips () =
  List.iter roundtrip_request
    [
      P.Bound { m = 2; k = 3; f = 1 };
      P.Certify { m = 3; k = 4; f = 1; n = 200.; lambda = 5.25 };
      P.Sweep { m = 2; k = 3; f = 1; n = 1e4; samples = 11 };
      P.Simulate { beta = 3.59112; x = -250.5; samples = 64; seed = 12345 };
      P.Stats;
    ]

let test_response_roundtrips () =
  List.iter roundtrip_response
    [
      P.Bound_ok
        { bound = 5.233069471915198; regime = "searching";
          alpha_star = Some 1.5874010519681994 };
      (* the unsolvable regime really produces an infinite bound; it must
         survive the wire even though JSON has no Infinity literal *)
      P.Bound_ok { bound = infinity; regime = "unsolvable"; alpha_star = None };
      P.Bound_ok { bound = neg_infinity; regime = "unsolvable"; alpha_star = None };
      P.Certify_ok
        { verdict = "refuted-gap"; detail = "REFUTED: point 1.03"; bound = 5.2 };
      P.Sweep_ok { rows = [ [ "1.2"; "5.3"; "5.3" ]; [ "1.4"; "5.9"; "6.0" ] ] };
      P.Sweep_ok { rows = [] };
      P.Simulate_ok { estimate = 4.59112 };
      P.Stats_ok
        {
          served = 12; sheds = 3; batches = 4; max_batch = 5;
          cache = { hits = 9; misses = 2; evictions = 1; entries = 2; capacity = 8 };
          pool = { jobs = 4; submitted = 12; settled = 12; pending = 0 };
        };
      P.Overloaded { pending = 64; cap = 64 };
      P.Failed (E.Invalid_input { where = "serve/bound"; what = "bad k" });
      P.Failed
        (E.Budget_exceeded
           { task = "serve/req-3"; resource = E.Steps; limit = 10.; spent = 11. });
      P.Failed (E.Worker_crash { task = "serve/req-0"; attempt = 1; detail = "boom" });
    ]

let test_nan_roundtrips_as_string () =
  (* NaN is spelled as the JSON string "nan"; build it from the wire side
     so the test itself never constructs the literal *)
  let wire = {|{"tag":"bound","bound":"nan","regime":"searching","alpha_star":null}|} in
  match Json.of_string wire with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match P.response_of_json j with
      | Error e -> Alcotest.fail e
      | Ok resp ->
          let again = Json.to_string (P.response_to_json resp) in
          check_string "nan survives a decode/encode cycle" wire again;
          check_bool "decoded to a real NaN" true
            (match resp with
            | P.Bound_ok b -> Float.is_nan b.P.bound
            | _ -> false))

let test_garbage_decodes_to_error () =
  (match P.decode_request "this is not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error (id, _) -> check_bool "no id recoverable" true (Option.is_none id));
  (* the envelope is intact, so the error is addressable to its id *)
  (match P.decode_request {|{"id":5,"req":{"op":"launch-missiles"}}|} with
  | Ok _ -> Alcotest.fail "unknown op accepted"
  | Error (Some id, _) -> check_int "id recovered from bad request" 5 id
  | Error (None, _) -> Alcotest.fail "id lost");
  (match P.decode_request {|{"id":6,"req":{"op":"bound","m":2,"k":"three","f":0}}|} with
  | Ok _ -> Alcotest.fail "bad field type accepted"
  | Error (Some id, _) -> check_int "id recovered from bad field" 6 id
  | Error (None, _) -> Alcotest.fail "id lost");
  match P.decode_response "[1,2,3]" with
  | Ok _ -> Alcotest.fail "non-envelope accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* framing *)

let test_frame_roundtrip_and_torn () =
  let payload = {|{"id":1,"req":{"op":"stats"}}|} in
  let frame = P.Frame.encode payload in
  let d = P.Frame.Decoder.create () in
  (* a torn frame: everything but the last byte *)
  P.Frame.Decoder.feed_string d (String.sub frame 0 (String.length frame - 1));
  (match P.Frame.Decoder.next d with
  | `Awaiting -> ()
  | `Frame _ | `Corrupt _ -> Alcotest.fail "torn frame should await more input");
  P.Frame.Decoder.feed_string d
    (String.sub frame (String.length frame - 1) 1);
  (match P.Frame.Decoder.next d with
  | `Frame got -> check_string "payload recovered" payload got
  | `Awaiting | `Corrupt _ -> Alcotest.fail "completed frame not delivered");
  match P.Frame.Decoder.next d with
  | `Awaiting -> ()
  | `Frame _ | `Corrupt _ -> Alcotest.fail "decoder should be drained"

let test_frame_byte_at_a_time () =
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  let stream = String.concat "" (List.map P.Frame.encode payloads) in
  let d = P.Frame.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun ch ->
      P.Frame.Decoder.feed_string d (String.make 1 ch);
      let rec drain () =
        match P.Frame.Decoder.next d with
        | `Frame p ->
            got := p :: !got;
            drain ()
        | `Awaiting -> ()
        | `Corrupt msg -> Alcotest.fail ("corrupt: " ^ msg)
      in
      drain ())
    stream;
  check_int "all frames recovered" (List.length payloads) (List.length !got);
  List.iter2 (fun want g -> check_string "payload" want g) payloads
    (List.rev !got)

(* the decoder must be chunking-blind: any adversarial fragmentation of
   the same stream recovers the same frames as one whole-stream feed *)
let test_frame_adversarial_chunkings () =
  let payloads =
    [
      P.encode_request ~id:1 (P.Bound { m = 2; k = 3; f = 1 });
      "";
      P.encode_request ~id:2
        (P.Certify { m = 3; k = 4; f = 1; n = 200.; lambda = 5.25 });
      String.make 300 'z';
      P.encode_response ~id:3 (P.Overloaded { pending = 9; cap = 8 });
    ]
  in
  let stream = String.concat "" (List.map P.Frame.encode payloads) in
  let decode_feeding feed =
    let d = P.Frame.Decoder.create () in
    let got = ref [] in
    let rec drain () =
      match P.Frame.Decoder.next d with
      | `Frame p ->
          got := p :: !got;
          drain ()
      | `Awaiting -> ()
      | `Corrupt msg -> Alcotest.fail ("corrupt: " ^ msg)
    in
    feed d drain;
    drain ();
    List.rev !got
  in
  let whole =
    decode_feeding (fun d _ -> P.Frame.Decoder.feed_string d stream)
  in
  check_int "whole-stream decode recovers all frames" (List.length payloads)
    (List.length whole);
  List.iter2 (fun want g -> check_string "payload" want g) payloads whole;
  let buf = Bytes.of_string stream in
  for seed = 0 to 49 do
    let chunked =
      decode_feeding (fun d drain ->
          let prng = ref (Search_numerics.Prng.make ~seed) in
          let pos = ref 0 in
          while !pos < Bytes.length buf do
            let rem = Bytes.length buf - !pos in
            let cut, p =
              Search_numerics.Prng.int ~bound:(Int.min rem 23) !prng
            in
            prng := p;
            let len = 1 + cut in
            (* drain between feeds too: interleaving feed/next must not
               disturb reassembly *)
            drain ();
            P.Frame.Decoder.feed d buf ~off:!pos ~len;
            pos := !pos + len
          done)
    in
    check_bool
      (Printf.sprintf "chunking seed %d matches whole-stream decode" seed)
      true
      (List.equal String.equal whole chunked)
  done

let test_frame_oversized_is_sticky_corrupt () =
  let d = P.Frame.Decoder.create ~max_frame:16 () in
  P.Frame.Decoder.feed_string d (P.Frame.encode (String.make 64 'x'));
  (match P.Frame.Decoder.next d with
  | `Corrupt msg -> check_bool "carries a message" true (String.length msg > 0)
  | `Frame _ | `Awaiting -> Alcotest.fail "oversized length not rejected");
  (* sticky: feeding more valid data does not resurrect the stream *)
  P.Frame.Decoder.feed_string d (P.Frame.encode "ok");
  match P.Frame.Decoder.next d with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "corrupt state must be sticky"

let test_frame_negative_length_is_corrupt () =
  let d = P.Frame.Decoder.create () in
  P.Frame.Decoder.feed_string d "\xff\xff\xff\xfejunk";
  match P.Frame.Decoder.next d with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.fail "negative length not rejected"

(* ------------------------------------------------------------------ *)
(* backlog *)

let test_backlog_bounds_and_order () =
  let b = Backlog.create ~cap:3 () in
  check_int "cap" 3 (Backlog.cap b);
  List.iter
    (fun i ->
      match Backlog.push b i with
      | `Accepted -> ()
      | `Shed -> Alcotest.fail "shed below capacity")
    [ 1; 2; 3 ];
  (match Backlog.push b 4 with
  | `Shed -> ()
  | `Accepted -> Alcotest.fail "accepted beyond capacity");
  check_int "length" 3 (Backlog.length b);
  check_bool "fifo, bounded take" true (Backlog.take b ~max:2 = [ 1; 2 ]);
  check_bool "remainder" true (Backlog.take b ~max:10 = [ 3 ]);
  check_int "drained" 0 (Backlog.length b);
  (* capacity frees as items are taken *)
  match Backlog.push b 5 with
  | `Accepted -> ()
  | `Shed -> Alcotest.fail "shed after drain"

let test_backlog_rejects_bad_cap () =
  match Backlog.create ~cap:0 () with
  | _ -> Alcotest.fail "cap 0 accepted"
  | exception E.Error (E.Invalid_input _) -> ()

(* ------------------------------------------------------------------ *)
(* dispatcher *)

let mixed_batch =
  [
    P.Bound { m = 2; k = 3; f = 1 };
    P.Certify { m = 2; k = 3; f = 1; n = 200.; lambda = 5.0 };
    P.Bound { m = 2; k = 1; f = 1 };  (* unsolvable: infinite bound *)
    P.Simulate { beta = 3.5; x = 500.; samples = 32; seed = 11 };
    P.Sweep { m = 2; k = 3; f = 1; n = 100.; samples = 3 };
    P.Bound { m = 2; k = 0; f = 0 };  (* invalid: structured Failed *)
    P.Certify { m = 2; k = 8; f = 1; n = 100.; lambda = 2.0 };
    (* ratio-one regime: Regime_violation *)
    P.Stats;
    P.Bound { m = 2; k = 3; f = 1 };  (* repeat: cache hit on batch 2 *)
  ]

let run_mixed ~jobs =
  Pool.with_pool ~jobs @@ fun pool ->
  let d = Dispatch.create ~pool ~cache_capacity:8 () in
  let items = List.mapi (fun i req -> ((), i, req)) mixed_batch in
  (* two identical batches: the second's Bound requests must hit the
     shared cache without changing a byte of any response *)
  let batch1 = Dispatch.handle_batch d items in
  let batch2 = Dispatch.handle_batch d items in
  let render batch =
    List.map
      (fun ((), id, resp) -> (id, Json.to_string (P.response_to_json resp)))
      batch
  in
  (render batch1, render batch2, Dispatch.stats d)

let is_stats_req i = i = 7 (* index of P.Stats in mixed_batch *)

let test_dispatch_jobs_invariant () =
  let b1_j1, b2_j1, _ = run_mixed ~jobs:1 in
  let b1_j4, b2_j4, _ = run_mixed ~jobs:4 in
  let compare_runs a b =
    List.iter2
      (fun (id_a, s_a) (id_b, s_b) ->
        check_int "ids align" id_a id_b;
        if not (is_stats_req id_a) then
          check_string
            (Printf.sprintf "response %d byte-identical across jobs" id_a)
            s_a s_b)
      a b
  in
  compare_runs b1_j1 b1_j4;
  compare_runs b2_j1 b2_j4;
  (* caching is invisible in the bytes: batch 2 = batch 1 *)
  compare_runs b1_j1 b2_j1

let test_dispatch_failure_shapes () =
  let b1, _, _ = run_mixed ~jobs:2 in
  let find i = snd (List.nth b1 i) in
  check_bool "unsolvable bound is served, not failed" true
    (String.length (find 2) > 0
    &&
    match Json.of_string (find 2) with
    | Ok j -> (
        match Json.member "bound" j with
        | Some (Json.String s) -> String.equal s "inf"
        | _ -> false)
    | Error _ -> false);
  (* Failed responses carry the Search_error JSON, whose own tag lives
     under the payload's "error" field *)
  let error_tag rendered =
    match Json.of_string rendered with
    | Ok j -> (
        match Json.member "error" j with
        | Some err -> (
            match Json.member "error" err with
            | Some (Json.String t) -> Some t
            | _ -> None)
        | None -> None)
    | Error _ -> None
  in
  check_bool "invalid instance fails with regime-violation" true
    (match error_tag (find 5) with
    | Some t -> String.equal t "regime-violation"
    | None -> false);
  check_bool "ratio-one certify fails with regime-violation" true
    (match error_tag (find 6) with
    | Some t -> String.equal t "regime-violation"
    | None -> false)

let test_dispatch_cache_accounting () =
  let _, _, stats = run_mixed ~jobs:2 in
  check_bool "cache hits observed" true (stats.P.cache.P.hits > 0);
  check_bool "misses bounded by distinct bound keys" true
    (stats.P.cache.P.misses >= 3);
  check_int "served both batches" 18 stats.P.served;
  check_int "two batches" 2 stats.P.batches;
  check_int "max batch" 9 stats.P.max_batch;
  check_bool "pool settled everything" true
    (stats.P.pool.P.pending = 0
    && stats.P.pool.P.submitted = stats.P.pool.P.settled)

(* ------------------------------------------------------------------ *)
(* end-to-end over a real socket *)

let test_server_end_to_end () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fs-serve-test-%d.sock" (Unix.getpid ()))
  in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let dispatch = Dispatch.create ~pool ~cache_capacity:16 () in
  let stop = Atomic.make false in
  let config = Server.config ~socket_path:sock () in
  let server = Domain.spawn (fun () -> Server.run config ~dispatch ~stop) in
  let rec await_socket tries =
    if tries <= 0 then Alcotest.fail "server did not come up"
    else if Sys.file_exists sock then ()
    else begin
      Unix.sleepf 0.02;
      await_socket (tries - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      await_socket 250;
      Client.with_client ~socket_path:sock (fun c ->
          (* single call *)
          let id, resp = Client.call c ~id:3 (P.Bound { m = 2; k = 3; f = 1 }) in
          check_int "id echoed" 3 id;
          (match resp with
          | P.Bound_ok b -> check_string "regime" "searching" b.P.regime
          | _ -> Alcotest.fail "expected Bound_ok");
          (* pipelined: several requests in flight on one connection;
             responses come back in request order *)
          List.iter
            (fun i -> Client.send c ~id:i (P.Bound { m = 2; k = 3; f = 1 }))
            [ 10; 11; 12; 13 ];
          List.iter
            (fun i ->
              let id, resp = Client.recv c in
              check_int "pipelined order" i id;
              match resp with
              | P.Bound_ok _ -> ()
              | _ -> Alcotest.fail "expected Bound_ok")
            [ 10; 11; 12; 13 ];
          (* a malformed frame gets a structured error, and the
             connection survives it *)
          Client.send c ~id:20 P.Stats;
          let _, resp = Client.recv c in
          (match resp with
          | P.Stats_ok s -> check_bool "served some" true (s.P.served > 0)
          | _ -> Alcotest.fail "expected Stats_ok"));
      (* a second client on a fresh connection shares the same daemon *)
      Client.with_client ~socket_path:sock (fun c ->
          let _, _ = Client.call c ~id:1 (P.Bound { m = 2; k = 3; f = 1 }) in
          ()));
  check_bool "socket removed on shutdown" true (not (Sys.file_exists sock))

(* regression: Server.run's teardown must close the listener AND every
   live connection fd, even when clients are still connected at stop
   time — counted via /proc/self/fd (skipped where /proc is absent) *)
let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_server_teardown_closes_connection_fds () =
  if not (Sys.file_exists "/proc/self/fd") then ()
  else begin
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "fs-serve-fds-%d.sock" (Unix.getpid ()))
    in
    Pool.with_pool ~jobs:1 @@ fun pool ->
    let baseline = count_fds () in
    let dispatch = Dispatch.create ~pool () in
    let stop = Atomic.make false in
    let config = Server.config ~socket_path:sock () in
    let server = Domain.spawn (fun () -> Server.run config ~dispatch ~stop) in
    let rec await_socket tries =
      if tries <= 0 then Alcotest.fail "server did not come up"
      else if Sys.file_exists sock then ()
      else begin
        Unix.sleepf 0.02;
        await_socket (tries - 1)
      end
    in
    await_socket 250;
    (* three clients, all still connected when the server stops *)
    let clients =
      List.init 3 (fun i ->
          let c = Client.connect ~socket_path:sock () in
          let id, _ = Client.call c ~id:i (P.Bound { m = 2; k = 3; f = 1 }) in
          check_int "served before shutdown" i id;
          c)
    in
    check_bool "connections hold fds while live" true (count_fds () > baseline);
    Atomic.set stop true;
    Domain.join server;
    (* server side fully torn down: only the 3 client-side fds remain *)
    List.iter Client.close clients;
    check_int "no fd leaked by server teardown" baseline (count_fds ());
    check_bool "socket file removed" true (not (Sys.file_exists sock))
  end

let test_server_rejects_malformed_frame () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fs-serve-mal-%d.sock" (Unix.getpid ()))
  in
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let dispatch = Dispatch.create ~pool () in
  let stop = Atomic.make false in
  let config = Server.config ~socket_path:sock () in
  let server = Domain.spawn (fun () -> Server.run config ~dispatch ~stop) in
  let rec await_socket tries =
    if tries <= 0 then Alcotest.fail "server did not come up"
    else if Sys.file_exists sock then ()
    else begin
      Unix.sleepf 0.02;
      await_socket (tries - 1)
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      await_socket 250;
      (* garbage JSON inside a well-formed frame: structured error back,
         connection stays up for the next (valid) request *)
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let send_raw s =
        let rec go off =
          if off < String.length s then
            go (off + Unix.write_substring fd s off (String.length s - off))
        in
        go 0
      in
      let d = P.Frame.Decoder.create () in
      let scratch = Bytes.create 4096 in
      let rec recv_one () =
        match P.Frame.Decoder.next d with
        | `Frame payload -> payload
        | `Corrupt msg -> Alcotest.fail ("client-side corrupt: " ^ msg)
        | `Awaiting ->
            let n = Unix.read fd scratch 0 (Bytes.length scratch) in
            if n = 0 then Alcotest.fail "server hung up early"
            else begin
              P.Frame.Decoder.feed d scratch ~off:0 ~len:n;
              recv_one ()
            end
      in
      send_raw (P.Frame.encode "totally not json");
      (match P.decode_response (recv_one ()) with
      | Ok (id, P.Failed (E.Invalid_input _)) ->
          check_int "unaddressable error uses id -1" (-1) id
      | Ok _ -> Alcotest.fail "expected a Failed response"
      | Error e -> Alcotest.fail ("undecodable error response: " ^ e));
      send_raw (P.Frame.encode (P.encode_request ~id:2 P.Stats));
      (match P.decode_response (recv_one ()) with
      | Ok (2, P.Stats_ok _) -> ()
      | Ok _ -> Alcotest.fail "connection did not survive the bad frame"
      | Error e -> Alcotest.fail ("undecodable response: " ^ e));
      Unix.close fd)

(* ------------------------------------------------------------------ *)

let tc name speed fn = Alcotest.test_case name speed fn

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          tc "every request variant roundtrips" `Quick test_request_roundtrips;
          tc "every response variant roundtrips" `Quick
            test_response_roundtrips;
          tc "nan crosses the wire as a string" `Quick
            test_nan_roundtrips_as_string;
          tc "garbage decodes to an addressable error" `Quick
            test_garbage_decodes_to_error;
        ] );
      ( "framing",
        [
          tc "torn frames await more input" `Quick
            test_frame_roundtrip_and_torn;
          tc "byte-at-a-time reassembly" `Quick test_frame_byte_at_a_time;
          tc "adversarial chunkings match whole-stream decode" `Quick
            test_frame_adversarial_chunkings;
          tc "oversized length is sticky corrupt" `Quick
            test_frame_oversized_is_sticky_corrupt;
          tc "negative length is corrupt" `Quick
            test_frame_negative_length_is_corrupt;
        ] );
      ( "backlog",
        [
          tc "bounded fifo with shed" `Quick test_backlog_bounds_and_order;
          tc "rejects cap < 1" `Quick test_backlog_rejects_bad_cap;
        ] );
      ( "dispatch",
        [
          tc "responses byte-identical at jobs 1 vs 4" `Quick
            test_dispatch_jobs_invariant;
          tc "failures are structured, not fatal" `Quick
            test_dispatch_failure_shapes;
          tc "shared cache hits and counters" `Quick
            test_dispatch_cache_accounting;
        ] );
      ( "server",
        [
          tc "end-to-end calls, pipelining, clean shutdown" `Quick
            test_server_end_to_end;
          tc "teardown closes every live connection fd" `Quick
            test_server_teardown_closes_connection_fds;
          tc "malformed frames get structured errors" `Quick
            test_server_rejects_malformed_frame;
        ] );
    ]
