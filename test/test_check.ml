(* Tests for the property-based checking harness: generator determinism
   and validity, case JSON round-trips, the shrinker, the fuzz driver's
   jobs-invariance, and replay of the checked-in counterexample corpus. *)

module Json = Search_numerics.Json
module Case = Search_check.Case
module Gen = Search_check.Gen
module Invariant = Search_check.Invariant
module Shrink = Search_check.Shrink
module Corpus = Search_check.Corpus
module Fuzz = Search_check.Fuzz

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Gen *)

let test_gen_cases_valid () =
  let cases = Gen.cases ~seed:7 ~count:50 in
  check_int "count" 50 (List.length cases);
  List.iteri
    (fun i c ->
      check_int "ids are stream positions" i c.Case.id;
      match Case.validate c with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "generated case invalid: %s@\n%a" msg Case.pp c)
    cases

let test_gen_deterministic () =
  let a = Gen.cases ~seed:42 ~count:30 in
  let b = Gen.cases ~seed:42 ~count:30 in
  check_bool "same seed, same stream" true (List.for_all2 Case.equal a b);
  (* a prefix of a longer run is the shorter run: case [i] depends only
     on (seed, i), never on count *)
  let long = Gen.cases ~seed:42 ~count:60 in
  let prefix = List.filteri (fun i _ -> i < 30) long in
  check_bool "prefix-stable" true (List.for_all2 Case.equal a prefix);
  let other = Gen.cases ~seed:43 ~count:30 in
  check_bool "different seed, different stream" false
    (List.for_all2 Case.equal a other)

(* ------------------------------------------------------------------ *)
(* Case JSON *)

let test_case_json_roundtrip () =
  (* through the full string codec, not just the value tree: corpus
     files live on disk, so the float printer must round-trip exactly *)
  List.iter
    (fun c ->
      let s = Json.to_string ~pretty:true (Case.to_json c) in
      match Json.of_string s with
      | Error msg -> Alcotest.failf "reparse failed: %s" msg
      | Ok json -> (
          match Case.of_json json with
          | Error msg -> Alcotest.failf "of_json failed: %s" msg
          | Ok c' ->
              check_bool "round-trips exactly" true (Case.equal c c')))
    (Gen.cases ~seed:11 ~count:40)

let test_case_json_rejects_invalid () =
  let c = List.hd (Gen.cases ~seed:1 ~count:1) in
  let broken = Case.to_json { c with Case.f = c.Case.k } in
  check_bool "of_json validates" true
    (Result.is_error (Case.of_json broken))

(* ------------------------------------------------------------------ *)
(* Shrink *)

let test_shrink_candidates_valid () =
  List.iter
    (fun c ->
      List.iter
        (fun c' ->
          check_bool "candidate valid" true (Case.valid c');
          check_bool "candidate differs" false (Case.equal c c'))
        (Shrink.candidates c))
    (Gen.cases ~seed:5 ~count:25)

let test_shrink_minimizes () =
  (* a predicate that only looks at k: the shrinker should walk k down
     to the predicate's boundary and strip everything else *)
  let c0 =
    {
      Case.id = 0;
      m = 4;
      k = 5;
      f = 1;
      horizon = 80.;
      alpha_scale = 1.2;
      lambda_frac = 0.7;
      targets = [ (0, 3.); (2, 10.); (1, 40.) ];
      turn_seed = 99;
    }
  in
  check_bool "start valid" true (Case.valid c0);
  let still_fails c = c.Case.k >= 3 in
  let c = Shrink.minimize ~still_fails c0 in
  check_bool "result valid" true (Case.valid c);
  check_bool "result still fails" true (still_fails c);
  check_int "k at the boundary" 3 c.Case.k;
  check_int "single target" 1 (List.length c.Case.targets)

let test_shrink_minimal_fixpoint () =
  let still_fails _ = true in
  let c0 = List.hd (Gen.cases ~seed:9 ~count:1) in
  let c = Shrink.minimize ~still_fails c0 in
  (* with an always-failing predicate the result is a local minimum:
     no candidate of it passes the validity filter and differs *)
  check_bool "fixpoint" true (Shrink.candidates c = [])

(* ------------------------------------------------------------------ *)
(* Fuzz *)

let fuzz_cases = 30

let test_fuzz_smoke () =
  let outcome = Fuzz.run ~jobs:1 ~seed:42 ~cases:fuzz_cases () in
  check_int "seed recorded" 42 outcome.Fuzz.seed;
  check_int "cases recorded" fuzz_cases outcome.Fuzz.cases;
  if outcome.Fuzz.failures <> [] then
    Alcotest.failf "unexpected invariant violations:@\n%s"
      (Fuzz.report outcome)

let test_fuzz_jobs_invariance () =
  let r1 = Fuzz.report (Fuzz.run ~jobs:1 ~seed:42 ~cases:fuzz_cases ()) in
  let r4 = Fuzz.report (Fuzz.run ~jobs:4 ~seed:42 ~cases:fuzz_cases ()) in
  check_string "report identical at jobs 1 and 4" r1 r4;
  let r1' = Fuzz.report (Fuzz.run ~jobs:1 ~seed:42 ~cases:fuzz_cases ()) in
  check_string "report identical across runs" r1 r1'

(* ------------------------------------------------------------------ *)
(* Corpus replay *)

let test_corpus_replay () =
  (* the checked-in counterexamples (shrunk cases from bugs fixed during
     development) must replay clean: a fixed bug stays fixed *)
  let files = Corpus.files ~dir:"corpus" in
  check_bool "corpus entries present" true (files <> []);
  List.iter
    (fun path ->
      match Corpus.replay_file path with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" path msg)
    files

let test_corpus_save_load_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "check-corpus" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let c = List.hd (Gen.cases ~seed:3 ~count:1) in
  let violations =
    [ { Invariant.invariant = "engine.fixed_vs_worst"; detail = "demo" } ]
  in
  let path = Corpus.save ~dir c ~violations in
  let path' = Corpus.save ~dir c ~violations in
  check_string "content-addressed name is stable" path path';
  (match Corpus.load_file path with
  | Ok c' -> check_bool "loads back" true (Case.equal c c')
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Sys.remove path

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "check"
    [
      ( "gen",
        [
          tc "cases valid" `Quick test_gen_cases_valid;
          tc "deterministic" `Quick test_gen_deterministic;
        ] );
      ( "case",
        [
          tc "json roundtrip" `Quick test_case_json_roundtrip;
          tc "json validates" `Quick test_case_json_rejects_invalid;
        ] );
      ( "shrink",
        [
          tc "candidates valid" `Quick test_shrink_candidates_valid;
          tc "minimizes to boundary" `Quick test_shrink_minimizes;
          tc "fixpoint" `Quick test_shrink_minimal_fixpoint;
        ] );
      ( "fuzz",
        [
          tc "smoke" `Quick test_fuzz_smoke;
          tc "jobs invariance" `Quick test_fuzz_jobs_invariance;
        ] );
      ( "corpus",
        [
          tc "replay checked-in entries" `Quick test_corpus_replay;
          tc "save/load roundtrip" `Quick test_corpus_save_load_roundtrip;
        ] );
    ]
